//! A minimal, dependency-free subset of the `rand` 0.8 API.
//!
//! The workspace builds fully offline, so instead of the crates.io `rand`
//! this vendored shim provides exactly the surface the code base uses:
//!
//! * [`Rng::gen_range`] over (inclusive) ranges of floats and integers,
//! * [`Rng::gen_bool`],
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`],
//! * [`seq::SliceRandom::choose`] / [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64. It is
//! deliberately *not* the upstream ChaCha-based `StdRng` — sequences differ
//! from crates.io `rand` — but it is deterministic for a given seed, which is
//! the property the tests and experiment binaries rely on. There is no
//! entropy-based constructor at all (`from_entropy`/`thread_rng` do not
//! exist), so every RNG in the workspace is seed-deterministic by
//! construction.

pub mod rngs;
pub mod seq;

use core::ops::{Range, RangeInclusive};

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (taken from the high half).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from the given range.
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)` (or `[low, high]` when
    /// `inclusive` is set).
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample from an empty range");
        T::sample_range(rng, low, high, true)
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                low + (high - low) * u
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) + if inclusive { 1 } else { 0 };
                debug_assert!(span > 0);
                // Lemire-style widening multiply keeps the draw branch-free.
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = rng.gen_range(-5.0..3.0);
            assert!((-5.0..3.0).contains(&f));
            let i = rng.gen_range(2usize..9);
            assert!((2..9).contains(&i));
            let j = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&j));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn slice_random_choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3, 4];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be the identity");
    }
}
