//! Random operations on slices.

use crate::Rng;

/// Random selection and permutation of slice elements.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Returns a uniformly chosen element, or `None` for an empty slice.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}
