//! A minimal, offline reimplementation of the `criterion` API surface this
//! workspace uses: [`Criterion::bench_function`], benchmark groups, the
//! [`criterion_group!`]/[`criterion_main!`] macros and [`black_box`].
//!
//! It is a smoke-test harness, not a statistics engine: each benchmark is
//! calibrated with one run, then timed over enough iterations to fill a small
//! time budget, and the mean per-iteration time is printed. That keeps
//! `cargo bench` useful for comparing orders of magnitude while compiling
//! (`cargo bench --no-run`) against the same API as upstream criterion.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Times one closure invocation over a fixed iteration count.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the configured number of iterations and records the
    /// total wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Per-iteration time budget used to choose the iteration count.
const TIME_BUDGET: Duration = Duration::from_millis(200);

fn run_bench(id: &str, bench: &mut dyn FnMut(&mut Bencher)) {
    // Calibration pass: one iteration to estimate the per-iteration cost.
    let mut bencher = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    bench(&mut bencher);
    let per_iter_nanos = bencher.elapsed.as_nanos().max(1);
    let iterations = (TIME_BUDGET.as_nanos() / per_iter_nanos).clamp(1, 10_000) as u64;

    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    bench(&mut bencher);
    let mean_nanos = bencher.elapsed.as_nanos() as f64 / iterations as f64;
    println!(
        "{id:<48} time: {:>14} ({iterations} iterations)",
        format_nanos(mean_nanos)
    );
}

fn format_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// The benchmark driver handed to every registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, &mut f);
        self
    }

    /// Opens a named group; benchmark ids are prefixed with the group name.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (`group/bench` ids).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes runs by time budget.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates the `main` function of a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
