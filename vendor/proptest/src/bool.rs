//! Boolean strategies.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy type of [`ANY`].
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// Generates `true` and `false` with equal probability.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}
