//! Value-generation strategies.

use core::ops::{Range, RangeInclusive};

use rand::{Rng, SampleUniform};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply draws a fresh value from the test RNG.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.new_value(rng))
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $index:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$index.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
