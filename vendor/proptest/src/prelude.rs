//! The glob-importable prelude, mirroring `proptest::prelude`.

pub use crate::arbitrary::any;
pub use crate::strategy::Strategy;
pub use crate::test_runner::{ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

/// Module-style access to the strategy namespaces (`prop::collection::vec`,
/// `prop::bool::ANY`, ...), as upstream proptest provides.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::strategy;
}
