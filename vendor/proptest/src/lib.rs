//! A minimal, offline reimplementation of the `proptest` API surface this
//! workspace uses.
//!
//! Supported: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), [`strategy::Strategy`] with
//! `prop_map`, range and tuple strategies, [`arbitrary::any`],
//! `prop::collection::vec`, `prop::bool::ANY`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (override with `PROPTEST_SEED`) and failing inputs are *not*
//! shrunk — the panic message reports the failed assertion only.

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::deterministic_rng(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let strategy = ($($strategy,)+);
            let mut executed = 0u32;
            let mut attempts = 0u32;
            // A generous attempt budget so heavy `prop_assume!` rejection
            // cannot loop forever.
            while executed < config.cases && attempts < config.cases * 64 {
                attempts += 1;
                let ($($arg,)+) = $crate::strategy::Strategy::new_value(&strategy, &mut rng);
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => executed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => continue,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        message,
                    )) => panic!("proptest case {} failed: {}", executed + 1, message),
                }
            }
        }
    )*};
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
}

/// Fails the current case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
}

/// Discards the current case (without counting it) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
