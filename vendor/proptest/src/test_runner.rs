//! The per-test execution machinery behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG that drives value generation.
pub type TestRng = StdRng;

/// How a single generated case ended, when it did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` and is not counted.
    Reject(&'static str),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

/// Configuration accepted through `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// Builds the deterministic RNG for one named test. The seed mixes an FNV-1a
/// hash of the test path with the optional `PROPTEST_SEED` environment
/// variable, so reruns generate identical cases.
pub fn deterministic_rng(test_name: &str) -> TestRng {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    TestRng::seed_from_u64(hash ^ seed)
}
