//! Strategies for collections.

use core::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The accepted size specifications for [`vec`]: an exact length or a
/// half-open range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    low: usize,
    high: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            low: exact,
            high: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        Self {
            low: range.start,
            high: range.end,
        }
    }
}

/// A strategy generating `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.low + 1 == self.size.high {
            self.size.low
        } else {
            rng.gen_range(self.size.low..self.size.high)
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
