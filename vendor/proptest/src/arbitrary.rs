//! The `any::<T>()` strategy.

use core::marker::PhantomData;

use rand::{Rng, RngCore};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(-1.0e9..1.0e9)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
