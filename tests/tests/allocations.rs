//! Allocator-budget harness for the arena-backed workspaces (PR 7).
//!
//! This binary installs a counting `#[global_allocator]` and drives the two
//! hot loops the arena layer exists for — a recurrent training step
//! (graph build → backward → gradient extraction → recycle) and a
//! graph-free snapshot-inference sweep — asserting that, once warm, they
//! allocate (near-)nothing: matrix buffers cycle through the per-worker
//! buffer pool, autodiff nodes through the node arena, and snapshot scratch
//! through a caller-owned [`Workspace`].
//!
//! With `RM_ARENA=0` the pools are disabled and every buffer and node is a
//! fresh heap allocation; the harness then only reports the numbers (they
//! are the baseline for the ≥10× reduction recorded in
//! `BENCH_baseline.json`). Run it directly to see both sides:
//!
//! ```text
//! cargo test -p rm-integration-tests --test allocations -- --nocapture
//! RM_ARENA=0 cargo test -p rm-integration-tests --test allocations -- --nocapture
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rm_nn::{Linear, LstmCell, LstmState, LstmStateMatrix};
use rm_runtime::alloc_counter::CountingAlloc;
use rm_tensor::{arena_enabled, Matrix, Var, Workspace};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const FEATURES: usize = 8;
const HIDDEN: usize = 16;
const STEPS: usize = 6;
const WARMUP: usize = 5;
const MEASURED: usize = 50;

/// Deterministic per-step input vectors.
fn inputs() -> Vec<Vec<f64>> {
    (0..STEPS)
        .map(|t| {
            (0..FEATURES)
                .map(|f| -60.0 - (t as f64) * 1.5 - (f as f64) * 0.25)
                .collect()
        })
        .collect()
}

/// One training step over the live graph, shaped like the recurrent
/// imputers' inner loop: unroll an LSTM, read the states out, differentiate
/// a scalar loss, pull the gradients, and recycle the step's graph.
fn training_step(
    cell: &LstmCell,
    readout: &Linear,
    params: &[Var],
    xs: &[Vec<f64>],
    grad_sink: &mut f64,
) -> f64 {
    let mut state = LstmState::zeros(HIDDEN);
    let mut total = Var::scalar(0.0);
    for raw in xs {
        let x = Var::constant(Matrix::column(raw));
        state = cell.step(&x, &state);
        let est = readout.forward(&state.h);
        total = total.add(&est.square().sum());
    }
    let loss = total.scale(1.0 / xs.len() as f64);
    loss.backward();
    let value = loss.scalar_value();
    for p in params {
        *grad_sink += p.grad().get(0, 0);
        p.zero_grad();
    }
    let LstmState { h, c } = state;
    Var::recycle_all([loss, total, h, c]);
    value
}

/// One snapshot-inference sweep: the graph-free kernels with every
/// intermediate drawn from a caller-owned workspace.
fn inference_sweep(
    cell: &rm_nn::LstmCellWeights,
    readout: &rm_nn::LinearWeights,
    xs: &[Vec<f64>],
    ws: &mut Workspace,
) -> f64 {
    // Seed the state from the workspace (bitwise zeros) so the buffers it
    // retires at the end of the sweep are the ones the next sweep reuses.
    let mut state = LstmStateMatrix {
        h: ws.take(HIDDEN, 1),
        c: ws.take(HIDDEN, 1),
    };
    let mut sink = 0.0;
    for raw in xs {
        let x = Matrix::column(raw);
        let next = cell.step_ws(&x, &state, ws);
        ws.give(state.h);
        ws.give(state.c);
        state = next;
        let out = readout.forward_ws(&state.h, ws);
        sink += out.sum();
        ws.give(out);
    }
    ws.give(state.h);
    ws.give(state.c);
    sink
}

/// Steady-state allocation budget of the two hot loops. Both phases live in
/// one `#[test]` so no concurrently running test pollutes the process-wide
/// counters between the before/after reads.
#[test]
fn steady_state_hot_loops_allocate_near_zero() {
    let mut rng = StdRng::seed_from_u64(7);
    let cell = LstmCell::new(FEATURES, HIDDEN, &mut rng);
    let readout = Linear::new(HIDDEN, FEATURES, &mut rng);
    let mut params = cell.parameters();
    params.extend(readout.parameters());
    let xs = inputs();

    // ---- Training loop ----
    let mut grad_sink = 0.0;
    let mut loss_sink = 0.0;
    for _ in 0..WARMUP {
        loss_sink += training_step(&cell, &readout, &params, &xs, &mut grad_sink);
    }
    let before = ALLOC.allocations();
    let bytes_before = ALLOC.allocated_bytes();
    for _ in 0..MEASURED {
        loss_sink += training_step(&cell, &readout, &params, &xs, &mut grad_sink);
    }
    let train_allocs = ALLOC.allocations() - before;
    let train_bytes = ALLOC.allocated_bytes() - bytes_before;
    assert!(loss_sink.is_finite() && grad_sink.is_finite());

    // ---- Snapshot-inference loop ----
    let cell_w = cell.snapshot();
    let readout_w = readout.snapshot();
    let mut ws = Workspace::new();
    let mut infer_sink = 0.0;
    for _ in 0..WARMUP {
        infer_sink += inference_sweep(&cell_w, &readout_w, &xs, &mut ws);
    }
    let before = ALLOC.allocations();
    let bytes_before = ALLOC.allocated_bytes();
    for _ in 0..MEASURED {
        infer_sink += inference_sweep(&cell_w, &readout_w, &xs, &mut ws);
    }
    let infer_allocs = ALLOC.allocations() - before;
    let infer_bytes = ALLOC.allocated_bytes() - bytes_before;
    assert!(infer_sink.is_finite());

    eprintln!(
        "[alloc-harness] arena={} training: {} allocs / {} bytes over {} steps \
         ({:.1} allocs/step); inference: {} allocs / {} bytes over {} sweeps \
         ({:.1} allocs/sweep)",
        if arena_enabled() { "on" } else { "off" },
        train_allocs,
        train_bytes,
        MEASURED,
        train_allocs as f64 / MEASURED as f64,
        infer_allocs,
        infer_bytes,
        MEASURED,
        infer_allocs as f64 / MEASURED as f64,
    );

    if arena_enabled() {
        // Near-zero, not zero: the libtest harness itself may allocate a
        // handful of times on other threads while the loops run.
        assert!(
            train_allocs <= 8 * MEASURED as u64 / 10,
            "steady-state training allocated {train_allocs} times in {MEASURED} steps"
        );
        assert!(
            infer_allocs <= 8 * MEASURED as u64 / 10,
            "steady-state inference allocated {infer_allocs} times in {MEASURED} sweeps"
        );
    } else {
        // RM_ARENA=0 is the fresh-allocation reference: every node and
        // buffer hits the heap, so the loops must allocate heavily — this
        // guards the baseline the ≥10× reduction is measured against.
        assert!(
            train_allocs >= 10 * MEASURED as u64,
            "RM_ARENA=0 training allocated only {train_allocs} times — baseline invalid"
        );
        assert!(
            infer_allocs >= MEASURED as u64,
            "RM_ARENA=0 inference allocated only {infer_allocs} times — baseline invalid"
        );
    }
}
