//! Property-based tests on cross-crate invariants.

use proptest::prelude::*;
use radiomap_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds an arbitrary small radio map from generated observation patterns.
fn arb_radio_map() -> impl Strategy<Value = RadioMap> {
    (2usize..12, 2usize..8, any::<u64>()).prop_map(|(n, d, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut records = Vec::new();
        for i in 0..n {
            let values: Vec<Option<f64>> = (0..d)
                .map(|_| {
                    if rand::Rng::gen_bool(&mut rng, 0.5) {
                        Some(rand::Rng::gen_range(&mut rng, -99.0..-30.0))
                    } else {
                        None
                    }
                })
                .collect();
            let rp = if rand::Rng::gen_bool(&mut rng, 0.6) {
                Some(Point::new(
                    rand::Rng::gen_range(&mut rng, 0.0..50.0),
                    rand::Rng::gen_range(&mut rng, 0.0..30.0),
                ))
            } else {
                None
            };
            records.push(RadioMapRecord::new(
                Fingerprint::new(values),
                rp,
                i as f64,
                i / 6,
            ));
        }
        RadioMap::new(records, d)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Radio-map creation invariants: sparsity statistics are consistent.
    #[test]
    fn missing_rates_are_consistent(map in arb_radio_map()) {
        let total = map.len() * map.num_aps();
        let observed = map.observed_rssi_count();
        prop_assert!(observed <= total);
        let rate = map.missing_rssi_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
        prop_assert!(((total - observed) as f64 / total as f64 - rate).abs() < 1e-12);
    }

    /// The MAR-only and MNAR-only baselines partition missing entries and the
    /// amended mask never contains MNARs.
    #[test]
    fn mask_partition_invariants(map in arb_radio_map()) {
        let mar_mask = MarOnly.differentiate(&map);
        let mnar_mask = MnarOnly.differentiate(&map);
        let missing: usize = map.records().iter().map(|r| r.fingerprint.missing_count()).sum();
        prop_assert_eq!(mar_mask.counts().1, missing);
        prop_assert_eq!(mnar_mask.counts().2, missing);
        let amended = mnar_mask.amend_mnars_as_observed();
        prop_assert_eq!(amended.counts().2, 0);
    }

    /// Linear interpolation of RPs always produces locations inside the
    /// bounding box of the observed RPs on the same path.
    #[test]
    fn interpolated_rps_stay_in_bounding_box(map in arb_radio_map()) {
        let interpolated = map.interpolate_rps();
        let observed: Vec<Point> = map.records().iter().filter_map(|r| r.rp).collect();
        prop_assume!(!observed.is_empty());
        let min_x = observed.iter().map(|p| p.x).fold(f64::INFINITY, f64::min) - 1e-9;
        let max_x = observed.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max) + 1e-9;
        let min_y = observed.iter().map(|p| p.y).fold(f64::INFINITY, f64::min) - 1e-9;
        let max_y = observed.iter().map(|p| p.y).fold(f64::NEG_INFINITY, f64::max) + 1e-9;
        for p in interpolated.into_iter().flatten() {
            prop_assert!(p.x >= min_x && p.x <= max_x);
            prop_assert!(p.y >= min_y && p.y <= max_y);
        }
    }

    /// Fast imputers (CD, LI, SL, MICE, MF) keep every RSSI in the physical
    /// range and never alter observed values.
    #[test]
    fn fast_imputers_respect_ranges(map in arb_radio_map()) {
        let topology = MultiPolygon::empty();
        for imputer in [
            ImputerKind::CaseDeletion,
            ImputerKind::LinearInterpolation,
            ImputerKind::SemiSupervised,
            ImputerKind::Mice,
            ImputerKind::MatrixFactorization,
        ] {
            let pipeline = ImputationPipeline::new(PipelineConfig {
                differentiator: DifferentiatorKind::MnarOnly,
                imputer,
                ..PipelineConfig::default()
            });
            let (imputed, _) = pipeline.impute(&map, &topology);
            for (i, record) in map.records().iter().enumerate() {
                for ap in 0..map.num_aps() {
                    let v = imputed.rssi(i, ap);
                    prop_assert!((-100.0..=0.0).contains(&v));
                    if let Some(obs) = record.fingerprint.get(ap) {
                        prop_assert!((v - obs).abs() < 1e-9);
                    }
                }
            }
        }
    }

    /// Removing observations never decreases the missing-RSSI rate, and the
    /// removed values always come from observed entries.
    #[test]
    fn removal_increases_sparsity(map in arb_radio_map(), ratio in 0.0f64..0.9, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let before = map.missing_rssi_rate();
        let (after_map, removed) = remove_random_rssis(&map, ratio, &mut rng);
        prop_assert!(after_map.missing_rssi_rate() >= before - 1e-12);
        for r in &removed {
            prop_assert_eq!(map.record(r.record).fingerprint.get(r.ap), Some(r.value));
        }
    }

    /// The spatial sharder is a permutation of the venue: every record lands
    /// in exactly one shard, member lists are sorted, disjoint, and cover
    /// `0..n`, whole survey paths stay together, and concatenating the
    /// per-shard sub-maps in member order reproduces every record.
    #[test]
    fn sharder_is_a_permutation_of_the_venue(
        map in arb_radio_map(),
        num_shards in 1usize..6,
        seed in any::<u64>(),
    ) {
        let shards = VenueShards::compute(&map, num_shards, seed);
        prop_assert!(shards.num_shards() >= 1);
        prop_assert!(shards.num_shards() <= num_shards.max(1));
        prop_assert_eq!(shards.assignments().len(), map.len());

        // Member lists: sorted, disjoint, and exactly the assignment sets.
        let mut seen = vec![false; map.len()];
        for (shard, members) in shards.members().iter().enumerate() {
            for window in members.windows(2) {
                prop_assert!(window[0] < window[1], "members must be sorted unique");
            }
            for &record in members {
                prop_assert!(!seen[record], "record {} in two shards", record);
                seen[record] = true;
                prop_assert_eq!(shards.shard_of_record(record), shard);
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "every record must land in a shard");

        // Whole paths stay together: two records on the same path share a
        // shard, and the path routing table agrees with the assignments.
        for (i, record) in map.records().iter().enumerate() {
            prop_assert_eq!(
                shards.shard_of_path(record.path_id),
                Some(shards.shard_of_record(i)),
            );
        }

        // Splitting and re-reading in member order is the identity on
        // records (fingerprints, RPs, timestamps, path ids).
        let parts = shards.split(&map);
        prop_assert_eq!(parts.len(), shards.num_shards());
        for (shard, part) in parts.iter().enumerate() {
            let members = shards.members_of(shard);
            prop_assert_eq!(part.len(), members.len());
            for (local, &global) in members.iter().enumerate() {
                let (a, b) = (part.record(local), map.record(global));
                prop_assert_eq!(&a.fingerprint, &b.fingerprint);
                prop_assert_eq!(a.rp, b.rp);
                prop_assert_eq!(a.time.to_bits(), b.time.to_bits());
                prop_assert_eq!(a.path_id, b.path_id);
            }
        }
    }
}
