//! Cross-crate integration tests: the full survey → radio map →
//! differentiation → imputation → positioning chain.

use radiomap_core::prelude::*;
use rm_integration_tests::{straight_path_map, tiny_dataset};

/// The full T-BiSIM pipeline runs end-to-end on a synthetic venue and produces
/// a finite positioning error well below the venue diagonal.
#[test]
fn full_pipeline_end_to_end_on_synthetic_venue() {
    let dataset = tiny_dataset(VenuePreset::KaideLike, 5);
    let config = PipelineConfig {
        differentiator: DifferentiatorKind::TopoAc,
        imputer: ImputerKind::Bisim,
        // An explicit epoch count keeps the test fast and — unlike the old
        // `std::env::set_var("RM_EPOCHS", ...)` pattern — is safe under the
        // parallel test runner.
        epochs: Some(5),
        ..PipelineConfig::default()
    };
    let result = ImputationPipeline::new(config).evaluate(&dataset.radio_map, &dataset.venue.walls);
    assert!(result.num_test_queries > 0);
    assert!(result.ape_m.is_finite());
    let diagonal = (dataset.venue.width.powi(2) + dataset.venue.height.powi(2)).sqrt();
    assert!(
        result.ape_m < diagonal,
        "APE {} exceeds the venue diagonal {}",
        result.ape_m,
        diagonal
    );
}

/// Every imputer produces a dense map whose RSSIs are in the physical range
/// and whose observed entries are preserved exactly.
#[test]
fn all_imputers_preserve_observed_values_and_ranges() {
    let map = straight_path_map(15, 6);
    let topology = MultiPolygon::empty();
    for imputer_kind in ImputerKind::all() {
        let pipeline = ImputationPipeline::new(PipelineConfig {
            differentiator: DifferentiatorKind::MarOnly,
            imputer: imputer_kind,
            epochs: Some(3),
            ..PipelineConfig::default()
        });
        let (imputed, _) = pipeline.impute(&map, &topology);
        assert_eq!(imputed.len(), map.len(), "{}", imputer_kind.name());
        for (i, record) in map.records().iter().enumerate() {
            for ap in 0..map.num_aps() {
                let value = imputed.rssi(i, ap);
                assert!(
                    (-100.0..=0.0).contains(&value),
                    "{}: rssi {} out of range",
                    imputer_kind.name(),
                    value
                );
                if let Some(observed) = record.fingerprint.get(ap) {
                    assert!(
                        (value - observed).abs() < 1e-9,
                        "{}: observed value changed",
                        imputer_kind.name()
                    );
                }
            }
            if let Some(rp) = record.rp {
                assert_eq!(imputed.locations[i], Some(rp), "{}", imputer_kind.name());
            }
        }
    }
}

/// Differentiation must classify every missing entry and only missing entries.
#[test]
fn differentiators_classify_exactly_the_missing_entries() {
    let dataset = tiny_dataset(VenuePreset::WandaLike, 9);
    let map = &dataset.radio_map;
    for kind in [
        DifferentiatorKind::TopoAc,
        DifferentiatorKind::MarOnly,
        DifferentiatorKind::MnarOnly,
    ] {
        let pipeline = ImputationPipeline::new(PipelineConfig {
            differentiator: kind,
            ..PipelineConfig::default()
        });
        let mask = pipeline.differentiate(map, &dataset.venue.walls);
        let (observed, mar, mnar) = mask.counts();
        let missing: usize = map
            .records()
            .iter()
            .map(|r| r.fingerprint.missing_count())
            .sum();
        assert_eq!(mar + mnar, missing, "{}", kind.name());
        assert_eq!(
            observed,
            map.len() * map.num_aps() - missing,
            "{}",
            kind.name()
        );
    }
}

/// The evaluation protocol holds out test RPs: imputing with different
/// imputers changes the APE but never the number of test queries.
#[test]
fn evaluation_protocol_is_stable_across_imputers() {
    let dataset = tiny_dataset(VenuePreset::KaideLike, 13);
    let mut query_counts = Vec::new();
    for imputer in [ImputerKind::CaseDeletion, ImputerKind::LinearInterpolation] {
        let result = ImputationPipeline::new(PipelineConfig {
            differentiator: DifferentiatorKind::MnarOnly,
            imputer,
            ..PipelineConfig::default()
        })
        .evaluate(&dataset.radio_map, &dataset.venue.walls);
        query_counts.push(result.num_test_queries);
    }
    assert_eq!(query_counts[0], query_counts[1]);
}

/// Linear interpolation should beat case deletion on positioning accuracy when
/// many RPs are missing — the qualitative ordering the paper reports.
#[test]
fn li_is_no_worse_than_cd_on_sparse_rps() {
    let dataset = tiny_dataset(VenuePreset::KaideLike, 21);
    let evaluate = |imputer| {
        ImputationPipeline::new(PipelineConfig {
            differentiator: DifferentiatorKind::MnarOnly,
            imputer,
            seed: 77,
            ..PipelineConfig::default()
        })
        .evaluate(&dataset.radio_map, &dataset.venue.walls)
        .ape_m
    };
    let cd = evaluate(ImputerKind::CaseDeletion);
    let li = evaluate(ImputerKind::LinearInterpolation);
    // Allow a small tolerance: on tiny datasets the two can be close.
    assert!(
        li <= cd * 1.25 + 0.5,
        "LI ({li:.2} m) should not be clearly worse than CD ({cd:.2} m)"
    );
}
