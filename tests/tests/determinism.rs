//! The determinism suite: the whole pipeline must produce **bit-identical**
//! results at any thread count.
//!
//! This is the contract that makes parallelism a pure wall-clock knob: the
//! `rm-runtime` primitives are order-preserving, chunk boundaries never
//! depend on the thread count, and RNG streams are derived from item indices
//! — so `threads = 1`, `2` and `available_parallelism` must agree down to
//! the last bit of every imputed RSSI, imputed RP and APE metric.

use radiomap_core::prelude::*;
use rm_integration_tests::{multi_path_map, straight_path_map, tiny_dataset};

/// Imputers with internal fan-outs plus a fast baseline; BiSIM is covered by
/// the integration tests and trains serially anyway.
fn imputers_under_test() -> [ImputerKind; 4] {
    [
        ImputerKind::Mice,
        ImputerKind::MatrixFactorization,
        ImputerKind::Brits,
        ImputerKind::LinearInterpolation,
    ]
}

fn bitwise_eq_maps(a: &ImputedRadioMap, b: &ImputedRadioMap) -> bool {
    a.fingerprints.len() == b.fingerprints.len()
        && a.fingerprints
            .iter()
            .zip(b.fingerprints.iter())
            .all(|(ra, rb)| {
                ra.len() == rb.len()
                    && ra
                        .iter()
                        .zip(rb.iter())
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            })
        && a.locations.len() == b.locations.len()
        && a.locations
            .iter()
            .zip(b.locations.iter())
            .all(|(la, lb)| match (la, lb) {
                (Some(pa), Some(pb)) => {
                    pa.x.to_bits() == pb.x.to_bits() && pa.y.to_bits() == pb.y.to_bits()
                }
                (None, None) => true,
                _ => false,
            })
}

/// Imputed maps (RSSIs and RPs) are bit-identical across thread counts for
/// every parallelised imputer.
#[test]
fn imputed_maps_are_bit_identical_across_thread_counts() {
    let map = straight_path_map(24, 8);
    let topology = MultiPolygon::empty();
    let thread_counts = [1, 2, rm_runtime::default_threads()];
    for imputer in imputers_under_test() {
        let runs: Vec<ImputedRadioMap> = thread_counts
            .iter()
            .map(|&threads| {
                ImputationPipeline::new(PipelineConfig {
                    differentiator: DifferentiatorKind::MarOnly,
                    imputer,
                    epochs: Some(3),
                    threads,
                    ..PipelineConfig::default()
                })
                .impute(&map, &topology)
                .0
            })
            .collect();
        for run in &runs[1..] {
            assert!(
                bitwise_eq_maps(&runs[0], run),
                "{} imputation differs across thread counts",
                imputer.name()
            );
        }
    }
}

/// Batched training (a fixed `batch_size > 1`) obeys the same contract for
/// all three recurrent imputers: batch boundaries are fixed by the batch
/// size alone, per-sequence gradients inside a batch are computed against
/// the batch-start weights on detached graph replicas, and the gradient sums
/// reduce in sequence-index order — so training itself is now a parallel
/// fan-out whose model (and therefore whose imputations) is bit-identical at
/// `RM_THREADS = 1 / 2 / available_parallelism`.
#[test]
fn batched_training_is_bit_identical_across_thread_counts() {
    let map = straight_path_map(24, 8);
    let topology = MultiPolygon::empty();
    let thread_counts = [1, 2, rm_runtime::default_threads()];
    for imputer in [ImputerKind::Brits, ImputerKind::Ssgan, ImputerKind::Bisim] {
        let runs: Vec<ImputedRadioMap> = thread_counts
            .iter()
            .map(|&threads| {
                ImputationPipeline::new(PipelineConfig {
                    differentiator: DifferentiatorKind::MarOnly,
                    imputer,
                    epochs: Some(2),
                    threads,
                    batch_size: Some(4),
                    ..PipelineConfig::default()
                })
                .impute(&map, &topology)
                .0
            })
            .collect();
        for run in &runs[1..] {
            assert!(
                bitwise_eq_maps(&runs[0], run),
                "{} batched training differs across thread counts",
                imputer.name()
            );
        }
    }
}

/// The arena layer (PR 7) must be invisible to the contract: buffer and
/// node reuse is capacity-only, so with arenas at their default (enabled)
/// the recurrent imputers — whose training recycles every step's graph into
/// the per-worker node arena and whose snapshot inference draws all scratch
/// from caller-owned workspaces — are still bit-identical at any thread
/// count. (The CI `RM_ARENA=0` leg runs this same suite against the
/// fresh-allocation reference, closing the loop from the other side.)
#[test]
fn arena_backed_training_and_inference_are_bit_identical_across_thread_counts() {
    let map = straight_path_map(24, 8);
    let topology = MultiPolygon::empty();
    let thread_counts = [1, 2, rm_runtime::default_threads()];
    for imputer in [ImputerKind::Brits, ImputerKind::Ssgan, ImputerKind::Bisim] {
        let runs: Vec<ImputedRadioMap> = thread_counts
            .iter()
            .map(|&threads| {
                ImputationPipeline::new(PipelineConfig {
                    differentiator: DifferentiatorKind::MarOnly,
                    imputer,
                    epochs: Some(2),
                    threads,
                    batch_size: Some(2),
                    ..PipelineConfig::default()
                })
                .impute(&map, &topology)
                .0
            })
            .collect();
        for run in &runs[1..] {
            assert!(
                bitwise_eq_maps(&runs[0], run),
                "{} arena-backed run differs across thread counts",
                imputer.name()
            );
        }
    }
}

/// The f32 inference mode obeys the same contract as the default pipeline:
/// **bit-identical at any thread count**, with the explicit-width SIMD
/// kernels active at their default (the CI `RM_SIMD=0` leg runs this same
/// suite against the scalar reference, which the SIMD kernels are bitwise
/// checked against — so this case plus that leg pin SIMD-on ≡ SIMD-off ≡
/// any thread count). Precision changes which kernels run (and therefore
/// the values — f32 rounds differently from f64); it must never
/// re-introduce scheduling sensitivity. The f64 suite in this file is
/// unchanged, which is itself the second half of the contract: the default
/// precision still produces the PR 2 bits. BiSIM joined the precision axis
/// in PR 8 (graph-free snapshot inference), so it is covered here too.
#[test]
fn f32_pipeline_is_bit_identical_across_thread_counts() {
    let map = straight_path_map(24, 8);
    let topology = MultiPolygon::empty();
    let thread_counts = [1, 2, rm_runtime::default_threads()];
    for imputer in [ImputerKind::Brits, ImputerKind::Ssgan, ImputerKind::Bisim] {
        let runs: Vec<ImputedRadioMap> = thread_counts
            .iter()
            .map(|&threads| {
                ImputationPipeline::new(PipelineConfig {
                    differentiator: DifferentiatorKind::MarOnly,
                    imputer,
                    epochs: Some(3),
                    threads,
                    precision: Precision::F32,
                    ..PipelineConfig::default()
                })
                .impute(&map, &topology)
                .0
            })
            .collect();
        for run in &runs[1..] {
            assert!(
                bitwise_eq_maps(&runs[0], run),
                "{} f32 imputation differs across thread counts",
                imputer.name()
            );
        }
    }
}

/// bf16-resident snapshots keep the contract too: every inference task
/// decodes the shared bf16 snapshot into its own pooled f32 scratch, so the
/// decode is pure and per-task and the fan-out stays bit-identical at any
/// thread count (the values differ from f32/native — bf16 truncation is an
/// accuracy knob, like precision — but never across schedules).
#[test]
fn bf16_snapshot_pipeline_is_bit_identical_across_thread_counts() {
    let map = straight_path_map(24, 8);
    let topology = MultiPolygon::empty();
    let thread_counts = [1, 2, rm_runtime::default_threads()];
    for imputer in [ImputerKind::Brits, ImputerKind::Ssgan, ImputerKind::Bisim] {
        let runs: Vec<ImputedRadioMap> = thread_counts
            .iter()
            .map(|&threads| {
                ImputationPipeline::new(PipelineConfig {
                    differentiator: DifferentiatorKind::MarOnly,
                    imputer,
                    epochs: Some(2),
                    threads,
                    precision: Precision::F32,
                    snapshot_dtype: SnapshotDtype::Bf16,
                    ..PipelineConfig::default()
                })
                .impute(&map, &topology)
                .0
            })
            .collect();
        for run in &runs[1..] {
            assert!(
                bitwise_eq_maps(&runs[0], run),
                "{} bf16-snapshot imputation differs across thread counts",
                imputer.name()
            );
        }
    }
}

/// The full evaluation protocol (split → differentiate → impute → position)
/// yields bit-identical APE metrics across thread counts.
#[test]
fn full_evaluation_is_bit_identical_across_thread_counts() {
    let dataset = tiny_dataset(VenuePreset::KaideLike, 11);
    let thread_counts = [1, 2, rm_runtime::default_threads()];
    for imputer in [ImputerKind::Mice, ImputerKind::Brits] {
        let results: Vec<EvaluationResult> = thread_counts
            .iter()
            .map(|&threads| {
                ImputationPipeline::new(PipelineConfig {
                    differentiator: DifferentiatorKind::TopoAc,
                    imputer,
                    epochs: Some(2),
                    threads,
                    ..PipelineConfig::default()
                })
                .evaluate(&dataset.radio_map, &dataset.venue.walls)
            })
            .collect();
        for result in &results[1..] {
            assert_eq!(
                results[0].ape_m.to_bits(),
                result.ape_m.to_bits(),
                "{} APE differs across thread counts",
                imputer.name()
            );
            assert_eq!(results[0].num_test_queries, result.num_test_queries);
            assert_eq!(results[0].mar_fraction, result.mar_fraction);
        }
    }
}

/// The grid fan-out is bit-identical to serial per-cell evaluation and across
/// thread counts.
#[test]
fn evaluate_grid_is_bit_identical_across_thread_counts() {
    let dataset = tiny_dataset(VenuePreset::WandaLike, 5);
    let cells = [
        (
            DifferentiatorKind::MnarOnly,
            ImputerKind::LinearInterpolation,
        ),
        (DifferentiatorKind::TopoAc, ImputerKind::Mice),
        (
            DifferentiatorKind::MarOnly,
            ImputerKind::MatrixFactorization,
        ),
        (DifferentiatorKind::ElbowKm, ImputerKind::CaseDeletion),
    ];
    let run = |threads: usize| {
        ImputationPipeline::new(PipelineConfig {
            epochs: Some(2),
            threads,
            ..PipelineConfig::default()
        })
        .evaluate_grid(&dataset.radio_map, &dataset.venue.walls, &cells)
    };
    let serial = run(1);
    for threads in [2, rm_runtime::default_threads()] {
        let parallel = run(threads);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.ape_m.to_bits(), p.ape_m.to_bits());
            assert_eq!(s.num_test_queries, p.num_test_queries);
        }
    }
}

/// A deterministic synthetic dense map (no RNG involved) for the forest
/// cases: features 0/1 encode the location linearly, feature 2 is a
/// correlated distractor.
fn forest_training_map() -> DenseRadioMap {
    let mut fingerprints = Vec::new();
    let mut locations = Vec::new();
    for i in 0..90 {
        let x = (i % 9) as f64;
        let y = (i / 9) as f64;
        fingerprints.push(vec![
            -45.0 - x * 3.5,
            -45.0 - y * 3.5,
            -60.0 - ((i % 7) as f64) * 1.5,
        ]);
        locations.push(Point::new(x, y));
    }
    DenseRadioMap::new(fingerprints, locations, 3)
}

/// Random-forest training is bit-identical across thread counts: every tree
/// consumes only its own `derive_seed(seed, tree)` stream and trees are
/// collected in index order, so the forest is a pure function of
/// `(map, config)`. The serial (`threads = 1`) output is additionally pinned
/// to golden bits captured when per-tree seed streams were introduced (PR 4),
/// so the canonical forest for a fixed seed can never silently drift.
#[test]
fn random_forest_training_is_bit_identical_across_thread_counts() {
    use radiomap_core::positioning::{ForestConfig, RandomForest};

    let map = forest_training_map();
    let queries = [
        vec![-45.0, -45.0, -60.0],
        vec![-59.0, -52.0, -63.0],
        vec![-73.0, -76.0, -69.0],
    ];
    let estimate_bits = |threads: usize| -> Vec<(u64, u64)> {
        let forest = RandomForest::train(
            &map,
            &ForestConfig {
                threads,
                ..ForestConfig::default()
            },
        );
        queries
            .iter()
            .map(|q| {
                let p = forest.estimate(q).expect("forest answers every query");
                (p.x.to_bits(), p.y.to_bits())
            })
            .collect()
    };

    let serial = estimate_bits(1);
    for threads in [2, rm_runtime::default_threads(), 0] {
        assert_eq!(
            estimate_bits(threads),
            serial,
            "forest differs between threads=1 and threads={threads}"
        );
    }

    // The serial reference itself, pinned bit by bit (seed 17, 20 trees).
    let golden: Vec<(u64, u64)> = vec![
        (4609449230612460558, 4598775699495592482),
        (4616199000553982088, 4611836138414966920),
        (4619933235245010125, 4620392977706970862),
    ];
    assert_eq!(serial, golden, "the canonical seed-17 forest drifted");
}

/// The full evaluation protocol with the forest estimator is bit-identical
/// across thread counts — forest training now fans out per tree inside the
/// pipeline, which must stay a pure wall-clock knob.
#[test]
fn random_forest_evaluation_is_bit_identical_across_thread_counts() {
    let dataset = tiny_dataset(VenuePreset::KaideLike, 13);
    let thread_counts = [1, 2, rm_runtime::default_threads()];
    let results: Vec<EvaluationResult> = thread_counts
        .iter()
        .map(|&threads| {
            ImputationPipeline::new(PipelineConfig {
                differentiator: DifferentiatorKind::MarOnly,
                imputer: ImputerKind::LinearInterpolation,
                estimator: EstimatorKind::RandomForest,
                epochs: Some(2),
                threads,
                ..PipelineConfig::default()
            })
            .evaluate(&dataset.radio_map, &dataset.venue.walls)
        })
        .collect();
    for result in &results[1..] {
        assert_eq!(
            results[0].ape_m.to_bits(),
            result.ape_m.to_bits(),
            "RF APE differs across thread counts"
        );
        assert_eq!(results[0].num_test_queries, result.num_test_queries);
    }
}

/// Batched query serving joins the contract (PR 9): a fixed query log
/// replayed through the `rm-serve` micro-batching engine is bit-identical at
/// `threads = 1 / 2 / available_parallelism`, and every served position
/// equals the offline `evaluate_estimator` path's estimate on the same
/// model — serving a persisted artifact is the same pure function as
/// evaluating in-process, batched or not.
#[test]
fn batched_serving_is_bit_identical_and_equals_the_offline_path() {
    use rm_serve::{decode, encode, ModelRegistry, QueryEngine};

    let map = straight_path_map(24, 6);
    let topology = MultiPolygon::empty();
    let snapshot = ImputationPipeline::new(PipelineConfig {
        differentiator: DifferentiatorKind::MarOnly,
        imputer: ImputerKind::Mice,
        estimator: EstimatorKind::Wknn,
        epochs: Some(2),
        threads: 1,
        ..PipelineConfig::default()
    })
    .export_snapshot("det", &map, &topology);

    // The serving model comes from persisted bytes, not the live snapshot.
    let registry = ModelRegistry::new();
    registry.publish(decode(&encode(&snapshot)).expect("artifact decodes"), 1);

    // A log long enough to span several 64-query micro-batches.
    let log: Vec<Vec<f64>> = (0..150)
        .map(|i| {
            let base = snapshot.map.fingerprints()[i % snapshot.map.len()].clone();
            base.iter().map(|v| v + (i as f64) * 0.11).collect()
        })
        .collect();

    let offline = snapshot
        .estimator
        .build_threads(snapshot.map.clone(), snapshot.knn_k, 1);
    let reference = QueryEngine::new(&registry, "det", 1).run_log(&log);
    assert_eq!(reference.len(), log.len());
    for (response, fingerprint) in reference.iter().zip(&log) {
        let served = response.position.expect("dense map answers");
        let expected = offline.estimate(fingerprint).expect("offline answers");
        assert_eq!(
            (served.x.to_bits(), served.y.to_bits()),
            (expected.x.to_bits(), expected.y.to_bits()),
            "serving diverged from the offline estimator"
        );
    }

    for threads in [2, rm_runtime::default_threads(), 0] {
        let responses = QueryEngine::new(&registry, "det", threads).run_log(&log);
        for (a, b) in reference.iter().zip(&responses) {
            let (pa, pb) = (a.position.unwrap(), b.position.unwrap());
            assert_eq!(a.index, b.index);
            assert_eq!(
                (pa.x.to_bits(), pa.y.to_bits()),
                (pb.x.to_bits(), pb.y.to_bits()),
                "serving differs between threads=1 and threads={threads}"
            );
        }
    }
}

/// The sharded pipeline joins the contract (PR 10): a fixed shard count
/// produces bit-identical per-shard snapshots at any thread count — the
/// shard fan-out, like every other fan-out, is a pure wall-clock knob.
#[test]
fn sharded_exports_are_bit_identical_across_thread_counts() {
    use rm_serve::encode_sharded;

    let map = multi_path_map(4, 6, 8);
    let topology = MultiPolygon::empty();
    let export = |threads: usize| {
        ImputationPipeline::new(PipelineConfig {
            differentiator: DifferentiatorKind::MarOnly,
            imputer: ImputerKind::Brits,
            epochs: Some(2),
            threads,
            shards: Some(3),
            ..PipelineConfig::default()
        })
        .export_sharded_snapshot("det", &map, &topology)
    };
    let reference = encode_sharded(&export(1));
    for threads in [2, rm_runtime::default_threads()] {
        assert_eq!(
            encode_sharded(&export(threads)),
            reference,
            "sharded export differs between threads=1 and threads={threads}"
        );
    }
}

/// A shard count of 1 reproduces the unsharded pipeline bitwise — sharding
/// is a pure partitioning knob, with no hidden perturbation of the seeds or
/// the imputation itself.
#[test]
fn a_shard_count_of_one_reproduces_the_unsharded_pipeline_bitwise() {
    use rm_serve::encode;

    let map = multi_path_map(3, 6, 6);
    let topology = MultiPolygon::empty();
    let config = || PipelineConfig {
        differentiator: DifferentiatorKind::MarOnly,
        imputer: ImputerKind::Brits,
        epochs: Some(2),
        threads: 1,
        shards: Some(1),
        ..PipelineConfig::default()
    };
    let whole = ImputationPipeline::new(config()).export_snapshot("det", &map, &topology);
    let sharded = ImputationPipeline::new(config()).export_sharded_snapshot("det", &map, &topology);
    assert_eq!(sharded.num_shards(), 1);
    assert_eq!(encode(&sharded.snapshots[0]), encode(&whole));
}

/// A fixed ingest log replayed through `LiveVenue` is bit-identical at any
/// thread count — dirty-shard routing, recomputation and generations
/// included — and the incremental snapshots equal a full recompute of the
/// final map bitwise (clean shards are untouched by construction).
#[test]
fn a_fixed_ingest_log_is_bit_identical_across_thread_counts() {
    use rm_serve::{encode, encode_sharded};

    let ingest_log = |path: usize, base_x: f64| -> Vec<RadioMapRecord> {
        (0..3)
            .map(|i| {
                let values: Vec<Option<f64>> = (0..8)
                    .map(|ap| {
                        if (i + ap) % 3 == 0 {
                            None
                        } else {
                            Some(-48.0 - i as f64 - ap as f64)
                        }
                    })
                    .collect();
                RadioMapRecord::new(
                    Fingerprint::new(values),
                    Some(Point::new(base_x + i as f64, 4.0)),
                    i as f64,
                    path,
                )
            })
            .collect()
    };

    let run = |threads: usize| {
        let mut live = LiveVenue::build(
            "live",
            multi_path_map(4, 6, 8),
            MultiPolygon::empty(),
            PipelineConfig {
                differentiator: DifferentiatorKind::MarOnly,
                imputer: ImputerKind::Brits,
                epochs: Some(2),
                threads,
                shards: Some(3),
                ..PipelineConfig::default()
            },
        );
        // Two ingest rounds: a new path spatially inside an existing shard's
        // region, then more records on that same path.
        let first = live.ingest(&ingest_log(100, 41.0));
        let second = live.ingest(&ingest_log(100, 44.0));
        (first, second, live)
    };

    let (first_1, second_1, live_1) = run(1);
    assert!(!first_1.is_empty(), "the log must dirty at least one shard");
    assert_eq!(first_1, second_1, "the same path routes to the same shard");

    // Incremental ≡ full: recomputing every shard of the final map with the
    // build-time seeds reproduces the incrementally maintained snapshots.
    for (incremental, full) in live_1.snapshots().iter().zip(live_1.recompute_all()) {
        assert_eq!(encode(incremental), encode(&full));
    }

    let reference = encode_sharded(&live_1.sharded_snapshot());
    for threads in [2, rm_runtime::default_threads()] {
        let (first, second, live) = run(threads);
        assert_eq!(first, first_1);
        assert_eq!(second, second_1);
        assert_eq!(live.generation(), live_1.generation());
        assert_eq!(live.shard_generations(), live_1.shard_generations());
        assert_eq!(
            encode_sharded(&live.sharded_snapshot()),
            reference,
            "ingest log differs between threads=1 and threads={threads}"
        );
    }
}

/// Seed derivation is a pure function of `(base, index)` — the property that
/// keeps RNG-consuming tasks reproducible regardless of scheduling.
#[test]
fn derived_seeds_are_scheduling_independent() {
    let base = 2023;
    let serial: Vec<u64> = (0..64).map(|i| rm_runtime::derive_seed(base, i)).collect();
    let indices: Vec<u64> = (0..64).collect();
    let parallel = rm_runtime::par_map(4, &indices, |_, &i| rm_runtime::derive_seed(base, i));
    assert_eq!(serial, parallel);
}
