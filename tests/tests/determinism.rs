//! The determinism suite: the whole pipeline must produce **bit-identical**
//! results at any thread count.
//!
//! This is the contract that makes parallelism a pure wall-clock knob: the
//! `rm-runtime` primitives are order-preserving, chunk boundaries never
//! depend on the thread count, and RNG streams are derived from item indices
//! — so `threads = 1`, `2` and `available_parallelism` must agree down to
//! the last bit of every imputed RSSI, imputed RP and APE metric.

use radiomap_core::prelude::*;
use rm_integration_tests::{straight_path_map, tiny_dataset};

/// Imputers with internal fan-outs plus a fast baseline; BiSIM is covered by
/// the integration tests and trains serially anyway.
fn imputers_under_test() -> [ImputerKind; 4] {
    [
        ImputerKind::Mice,
        ImputerKind::MatrixFactorization,
        ImputerKind::Brits,
        ImputerKind::LinearInterpolation,
    ]
}

fn bitwise_eq_maps(a: &ImputedRadioMap, b: &ImputedRadioMap) -> bool {
    a.fingerprints.len() == b.fingerprints.len()
        && a.fingerprints
            .iter()
            .zip(b.fingerprints.iter())
            .all(|(ra, rb)| {
                ra.len() == rb.len()
                    && ra
                        .iter()
                        .zip(rb.iter())
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            })
        && a.locations.len() == b.locations.len()
        && a.locations
            .iter()
            .zip(b.locations.iter())
            .all(|(la, lb)| match (la, lb) {
                (Some(pa), Some(pb)) => {
                    pa.x.to_bits() == pb.x.to_bits() && pa.y.to_bits() == pb.y.to_bits()
                }
                (None, None) => true,
                _ => false,
            })
}

/// Imputed maps (RSSIs and RPs) are bit-identical across thread counts for
/// every parallelised imputer.
#[test]
fn imputed_maps_are_bit_identical_across_thread_counts() {
    let map = straight_path_map(24, 8);
    let topology = MultiPolygon::empty();
    let thread_counts = [1, 2, rm_runtime::default_threads()];
    for imputer in imputers_under_test() {
        let runs: Vec<ImputedRadioMap> = thread_counts
            .iter()
            .map(|&threads| {
                ImputationPipeline::new(PipelineConfig {
                    differentiator: DifferentiatorKind::MarOnly,
                    imputer,
                    epochs: Some(3),
                    threads,
                    ..PipelineConfig::default()
                })
                .impute(&map, &topology)
                .0
            })
            .collect();
        for run in &runs[1..] {
            assert!(
                bitwise_eq_maps(&runs[0], run),
                "{} imputation differs across thread counts",
                imputer.name()
            );
        }
    }
}

/// The f32 inference mode obeys the same contract as the default pipeline:
/// **bit-identical at any thread count**. Precision changes which kernels
/// run (and therefore the values — f32 rounds differently from f64); it must
/// never re-introduce scheduling sensitivity. The f64 suite in this file is
/// unchanged, which is itself the second half of the contract: the default
/// precision still produces the PR 2 bits.
#[test]
fn f32_pipeline_is_bit_identical_across_thread_counts() {
    let map = straight_path_map(24, 8);
    let topology = MultiPolygon::empty();
    let thread_counts = [1, 2, rm_runtime::default_threads()];
    for imputer in [ImputerKind::Brits, ImputerKind::Ssgan] {
        let runs: Vec<ImputedRadioMap> = thread_counts
            .iter()
            .map(|&threads| {
                ImputationPipeline::new(PipelineConfig {
                    differentiator: DifferentiatorKind::MarOnly,
                    imputer,
                    epochs: Some(3),
                    threads,
                    precision: Precision::F32,
                    ..PipelineConfig::default()
                })
                .impute(&map, &topology)
                .0
            })
            .collect();
        for run in &runs[1..] {
            assert!(
                bitwise_eq_maps(&runs[0], run),
                "{} f32 imputation differs across thread counts",
                imputer.name()
            );
        }
    }
}

/// The full evaluation protocol (split → differentiate → impute → position)
/// yields bit-identical APE metrics across thread counts.
#[test]
fn full_evaluation_is_bit_identical_across_thread_counts() {
    let dataset = tiny_dataset(VenuePreset::KaideLike, 11);
    let thread_counts = [1, 2, rm_runtime::default_threads()];
    for imputer in [ImputerKind::Mice, ImputerKind::Brits] {
        let results: Vec<EvaluationResult> = thread_counts
            .iter()
            .map(|&threads| {
                ImputationPipeline::new(PipelineConfig {
                    differentiator: DifferentiatorKind::TopoAc,
                    imputer,
                    epochs: Some(2),
                    threads,
                    ..PipelineConfig::default()
                })
                .evaluate(&dataset.radio_map, &dataset.venue.walls)
            })
            .collect();
        for result in &results[1..] {
            assert_eq!(
                results[0].ape_m.to_bits(),
                result.ape_m.to_bits(),
                "{} APE differs across thread counts",
                imputer.name()
            );
            assert_eq!(results[0].num_test_queries, result.num_test_queries);
            assert_eq!(results[0].mar_fraction, result.mar_fraction);
        }
    }
}

/// The grid fan-out is bit-identical to serial per-cell evaluation and across
/// thread counts.
#[test]
fn evaluate_grid_is_bit_identical_across_thread_counts() {
    let dataset = tiny_dataset(VenuePreset::WandaLike, 5);
    let cells = [
        (
            DifferentiatorKind::MnarOnly,
            ImputerKind::LinearInterpolation,
        ),
        (DifferentiatorKind::TopoAc, ImputerKind::Mice),
        (
            DifferentiatorKind::MarOnly,
            ImputerKind::MatrixFactorization,
        ),
        (DifferentiatorKind::ElbowKm, ImputerKind::CaseDeletion),
    ];
    let run = |threads: usize| {
        ImputationPipeline::new(PipelineConfig {
            epochs: Some(2),
            threads,
            ..PipelineConfig::default()
        })
        .evaluate_grid(&dataset.radio_map, &dataset.venue.walls, &cells)
    };
    let serial = run(1);
    for threads in [2, rm_runtime::default_threads()] {
        let parallel = run(threads);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.ape_m.to_bits(), p.ape_m.to_bits());
            assert_eq!(s.num_test_queries, p.num_test_queries);
        }
    }
}

/// Seed derivation is a pure function of `(base, index)` — the property that
/// keeps RNG-consuming tasks reproducible regardless of scheduling.
#[test]
fn derived_seeds_are_scheduling_independent() {
    let base = 2023;
    let serial: Vec<u64> = (0..64).map(|i| rm_runtime::derive_seed(base, i)).collect();
    let indices: Vec<u64> = (0..64).collect();
    let parallel = rm_runtime::par_map(4, &indices, |_, &i| rm_runtime::derive_seed(base, i));
    assert_eq!(serial, parallel);
}
