//! Shared fixtures for the cross-crate integration tests.

use radiomap_core::prelude::*;

/// Builds a tiny synthetic dataset used across the integration tests. The
/// scale is deliberately small so that even the neural imputers finish in a
/// few seconds per test.
pub fn tiny_dataset(preset: VenuePreset, seed: u64) -> Dataset {
    DatasetSpec::new(preset, seed).with_scale(0.05).build()
}

/// A hand-built radio map on a single survey path with controllable missing
/// entries; useful for deterministic property tests.
pub fn straight_path_map(num_records: usize, num_aps: usize) -> RadioMap {
    let mut records = Vec::new();
    for i in 0..num_records {
        let values: Vec<Option<f64>> = (0..num_aps)
            .map(|ap| {
                if (i + ap) % 4 == 0 {
                    None
                } else {
                    Some(-50.0 - (i as f64) - (ap as f64) * 3.0)
                }
            })
            .collect();
        let rp = if i % 3 == 0 {
            Some(Point::new(i as f64 * 2.0, 1.0))
        } else {
            None
        };
        records.push(RadioMapRecord::new(
            Fingerprint::new(values),
            rp,
            i as f64 * 2.0,
            0,
        ));
    }
    RadioMap::new(records, num_aps)
}

/// A venue surveyed along several spatially separated paths — enough spatial
/// structure for [`VenueShards`](radiomap_core::prelude::VenueShards) to
/// produce a real multi-shard partition. Path `p` runs along `x = 40 p`,
/// hears its own pair of APs strongly and the rest sporadically, and has an
/// RP on every other record.
pub fn multi_path_map(num_paths: usize, records_per_path: usize, num_aps: usize) -> RadioMap {
    let mut records = Vec::new();
    for path in 0..num_paths {
        for i in 0..records_per_path {
            let values: Vec<Option<f64>> = (0..num_aps)
                .map(|ap| {
                    if ap / 2 == path % (num_aps / 2).max(1) {
                        Some(-45.0 - i as f64 - ap as f64 * 2.0)
                    } else if (i + ap + path) % 3 == 0 {
                        Some(-80.0 - ((i + ap) % 7) as f64)
                    } else {
                        None
                    }
                })
                .collect();
            let rp = if i % 2 == 0 {
                Some(Point::new(
                    path as f64 * 40.0 + i as f64 * 2.0,
                    path as f64 * 8.0,
                ))
            } else {
                None
            };
            records.push(RadioMapRecord::new(
                Fingerprint::new(values),
                rp,
                i as f64,
                path,
            ));
        }
    }
    RadioMap::new(records, num_aps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let map = straight_path_map(9, 4);
        assert_eq!(map.len(), 9);
        assert!(map.missing_rssi_rate() > 0.0);
        assert!(map.observed_rp_count() >= 3);
    }
}
