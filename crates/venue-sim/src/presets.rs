//! Venue presets approximating the three evaluation venues of the paper
//! (Table V), plus a ready-to-use dataset builder.
//!
//! The absolute sizes of the real datasets (hundreds of APs, thousands of
//! fingerprints) are impractical for a CPU-only reproduction, so every preset
//! accepts a `scale` factor in `(0, 1]` that shrinks the AP count and the
//! number of survey passes while preserving the venue's qualitative character:
//! Wanda stays larger and sparser than Kaide, and Longhu stays a
//! Bluetooth venue with fewer, weaker beacons.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rm_radiomap::{RadioMap, RadioMapStats, WalkingSurveyTable};

use crate::propagation::PropagationModel;
use crate::survey_sim::{simulate_survey, SimulatedSurvey, SurveySimConfig};
use crate::venue::{RadioTechnology, Venue, VenueConfig};

/// The merge threshold ε used for radio-map creation throughout the paper's
/// evaluation (1 second).
pub const RADIO_MAP_EPSILON_S: f64 = 1.0;

/// Identifies one of the three evaluation venues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VenuePreset {
    /// Kaide Mall: smallest area, densest RPs, Wi-Fi.
    KaideLike,
    /// Wanda Square: larger, more APs and fingerprints, sparser, Wi-Fi.
    WandaLike,
    /// Longhu: largest area, Bluetooth beacons.
    LonghuLike,
}

impl VenuePreset {
    /// All presets, in the order reported by the paper.
    pub fn all() -> [VenuePreset; 3] {
        [
            VenuePreset::KaideLike,
            VenuePreset::WandaLike,
            VenuePreset::LonghuLike,
        ]
    }

    /// The preset's display name.
    pub fn name(self) -> &'static str {
        match self {
            VenuePreset::KaideLike => "kaide-like",
            VenuePreset::WandaLike => "wanda-like",
            VenuePreset::LonghuLike => "longhu-like",
        }
    }

    /// The venue generator configuration for this preset at the given scale.
    pub fn venue_config(self, scale: f64) -> VenueConfig {
        let scale = scale.clamp(0.05, 1.0);
        match self {
            // Kaide: 3225.7 m², 114 RPs (3.53 / 100 m²), 671 APs, 894 fingerprints.
            VenuePreset::KaideLike => VenueConfig {
                name: self.name().to_string(),
                width: 64.0,
                height: 50.0,
                rooms_per_side: 8,
                room_depth: 14.0,
                wall_thickness: 0.3,
                door_width: 2.5,
                hallway_rp_spacing: 3.2,
                rps_per_room: 4,
                num_aps: ((671.0 * scale) as usize).max(24),
                ap_tx_power_dbm: -44.0,
                weak_ap_fraction: 0.62,
                weak_ap_power_penalty_db: 22.0,
                radio: RadioTechnology::WiFi,
            },
            // Wanda: 4458.5 m², 118 RPs (2.65 / 100 m²), 929 APs, 4104 fingerprints.
            VenuePreset::WandaLike => VenueConfig {
                name: self.name().to_string(),
                width: 78.0,
                height: 57.0,
                rooms_per_side: 9,
                room_depth: 16.0,
                wall_thickness: 0.3,
                door_width: 2.5,
                hallway_rp_spacing: 4.2,
                rps_per_room: 3,
                num_aps: ((929.0 * scale) as usize).max(30),
                ap_tx_power_dbm: -46.0,
                weak_ap_fraction: 0.72,
                weak_ap_power_penalty_db: 24.0,
                radio: RadioTechnology::WiFi,
            },
            // Longhu: 6504.1 m², 202 RPs (3.11 / 100 m²), 330 Bluetooth beacons, 4617 fingerprints.
            VenuePreset::LonghuLike => VenueConfig {
                name: self.name().to_string(),
                width: 93.0,
                height: 70.0,
                rooms_per_side: 10,
                room_depth: 20.0,
                wall_thickness: 0.3,
                door_width: 2.5,
                hallway_rp_spacing: 3.6,
                rps_per_room: 4,
                num_aps: ((330.0 * scale) as usize).max(20),
                ap_tx_power_dbm: -52.0,
                weak_ap_fraction: 0.5,
                weak_ap_power_penalty_db: 16.0,
                radio: RadioTechnology::Bluetooth,
            },
        }
    }

    /// The propagation model matching the preset's radio technology.
    pub fn propagation(self) -> PropagationModel {
        match self {
            VenuePreset::LonghuLike => PropagationModel::bluetooth(),
            _ => PropagationModel::default(),
        }
    }

    /// The survey configuration for this preset at the given scale. Wanda and
    /// Longhu have several times more fingerprints than Kaide, realised here
    /// as additional survey passes.
    pub fn survey_config(self, scale: f64) -> SurveySimConfig {
        let scale = scale.clamp(0.05, 1.0);
        let passes = |full: usize| ((full as f64 * scale).round() as usize).max(1);
        match self {
            VenuePreset::KaideLike => SurveySimConfig {
                passes: passes(2),
                ..SurveySimConfig::default()
            },
            VenuePreset::WandaLike => SurveySimConfig {
                passes: passes(6),
                ..SurveySimConfig::default()
            },
            VenuePreset::LonghuLike => SurveySimConfig {
                passes: passes(5),
                ..SurveySimConfig::default()
            },
        }
    }
}

/// A fully-built synthetic dataset for one venue: the venue, the raw survey,
/// and the created (sparse) radio map.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The venue (topology, RPs, APs).
    pub venue: Venue,
    /// The propagation model used to generate signals.
    pub propagation: PropagationModel,
    /// The simulated walking survey.
    pub survey: SimulatedSurvey,
    /// The sparse radio map created from the survey (ε = 1 s).
    pub radio_map: RadioMap,
}

impl Dataset {
    /// Table V-style statistics of this dataset.
    pub fn stats(&self) -> RadioMapStats {
        RadioMapStats::from_radio_map(
            self.venue.name.clone(),
            self.venue.floor_area_m2(),
            self.venue.num_rps(),
            &self.radio_map,
        )
    }

    /// The underlying walking-survey table.
    pub fn survey_table(&self) -> &WalkingSurveyTable {
        &self.survey.table
    }
}

/// Options controlling dataset generation.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Which venue to emulate.
    pub preset: VenuePreset,
    /// Scale factor in `(0, 1]` applied to AP counts and survey passes.
    pub scale: f64,
    /// RNG seed; identical specs produce identical datasets.
    pub seed: u64,
    /// RP-record probability override (Fig. 16's RP density sweep); `None`
    /// keeps the default of 1.0.
    pub rp_record_probability: Option<f64>,
}

impl DatasetSpec {
    /// A spec with the default experiment scale.
    pub fn new(preset: VenuePreset, seed: u64) -> Self {
        Self {
            preset,
            scale: default_scale(),
            seed,
            rp_record_probability: None,
        }
    }

    /// Overrides the scale factor.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Overrides the RP-record probability.
    pub fn with_rp_record_probability(mut self, p: f64) -> Self {
        self.rp_record_probability = Some(p);
        self
    }

    /// Builds the dataset.
    pub fn build(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let venue = self.preset.venue_config(self.scale).build(&mut rng);
        let propagation = self.preset.propagation();
        let mut survey_config = self.preset.survey_config(self.scale);
        if let Some(p) = self.rp_record_probability {
            survey_config.rp_record_probability = p;
        }
        let survey = simulate_survey(&venue, &propagation, &survey_config, &mut rng);
        let radio_map = survey.table.create_radio_map(RADIO_MAP_EPSILON_S);
        Dataset {
            venue,
            propagation,
            survey,
            radio_map,
        }
    }
}

/// The default scale factor used by tests and the experiment harness. It can
/// be overridden through the `RM_SCALE` environment variable; `RM_QUICK=1`
/// selects an even smaller scale for smoke runs.
///
/// The value is resolved **once per process** and cached (like the
/// `RM_THREADS` resolution in `rm-runtime` and `default_epochs` in
/// `rm-imputers`), so repeated calls can never disagree and concurrent
/// tests can never observe a mid-run environment change.
#[allow(clippy::disallowed_methods)] // audited env reads; see the rm-lint allows inside
pub fn default_scale() -> f64 {
    static SCALE: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *SCALE.get_or_init(|| {
        // rm-lint: allow(no-raw-env-read): this IS the once-per-process cached accessor for RM_SCALE
        if let Ok(v) = std::env::var("RM_SCALE") {
            if let Ok(parsed) = v.parse::<f64>() {
                return parsed.clamp(0.05, 1.0);
            }
        }
        // rm-lint: allow(no-raw-env-read): RM_QUICK is folded into the same cached RM_SCALE resolution
        if std::env::var("RM_QUICK").map(|v| v == "1").unwrap_or(false) {
            0.08
        } else {
            0.15
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_distinct_characters() {
        let kaide = VenuePreset::KaideLike.venue_config(0.1);
        let wanda = VenuePreset::WandaLike.venue_config(0.1);
        let longhu = VenuePreset::LonghuLike.venue_config(0.1);
        assert!(wanda.width * wanda.height > kaide.width * kaide.height);
        assert!(longhu.width * longhu.height > wanda.width * wanda.height);
        assert!(wanda.num_aps > kaide.num_aps);
        assert_eq!(longhu.radio, RadioTechnology::Bluetooth);
        assert_eq!(kaide.radio, RadioTechnology::WiFi);
    }

    #[test]
    fn dataset_build_is_deterministic() {
        let spec = DatasetSpec::new(VenuePreset::KaideLike, 11).with_scale(0.06);
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.radio_map, b.radio_map);
        assert_eq!(a.venue, b.venue);
    }

    #[test]
    fn kaide_dataset_matches_table_v_shape() {
        let dataset = DatasetSpec::new(VenuePreset::KaideLike, 1)
            .with_scale(0.08)
            .build();
        let stats = dataset.stats();
        // Qualitative Table V properties: thousands of m², dozens of RPs,
        // high RSSI sparsity.
        assert!(stats.floor_area_m2 > 2500.0);
        assert!(stats.num_rps > 50);
        assert!(stats.num_fingerprints > 100);
        assert!(
            stats.missing_rssi_rate > 0.6,
            "expected a sparse radio map, got {}",
            stats.missing_rssi_rate
        );
        assert!(stats.missing_rp_rate > 0.3);
    }

    #[test]
    fn rp_probability_override_reduces_rp_records() {
        let full = DatasetSpec::new(VenuePreset::KaideLike, 5)
            .with_scale(0.06)
            .build();
        let sparse = DatasetSpec::new(VenuePreset::KaideLike, 5)
            .with_scale(0.06)
            .with_rp_record_probability(0.4)
            .build();
        assert!(sparse.radio_map.observed_rp_count() < full.radio_map.observed_rp_count());
    }

    #[test]
    fn scale_controls_ap_count() {
        let small = VenuePreset::WandaLike.venue_config(0.05);
        let large = VenuePreset::WandaLike.venue_config(0.5);
        assert!(large.num_aps > small.num_aps);
    }

    #[test]
    fn default_scale_is_sane() {
        let s = default_scale();
        assert!((0.05..=1.0).contains(&s));
    }

    #[test]
    fn preset_names_and_all() {
        assert_eq!(VenuePreset::all().len(), 3);
        assert_eq!(VenuePreset::KaideLike.name(), "kaide-like");
        assert_eq!(VenuePreset::LonghuLike.name(), "longhu-like");
    }
}
