//! Synthetic indoor venues, radio propagation and walking-survey simulation.
//!
//! The paper evaluates on proprietary walking-survey datasets from two
//! shopping malls (Kaide, Wanda) and one Bluetooth venue (Longhu). This crate
//! substitutes those datasets with a simulator that produces the same
//! artifacts the framework consumes:
//!
//! * a [`Venue`] with rooms, walls (the topological entities used by
//!   `TopoAC`), reference points and access points,
//! * a [`PropagationModel`] (log-distance path loss + wall attenuation +
//!   shadow fading) that defines ground-truth observability — the source of
//!   MNAR missingness,
//! * a walking-survey simulator that yields a
//!   [`rm_radiomap::WalkingSurveyTable`] with MAR drops and asynchronous
//!   RP/RSSI records,
//! * [`VenuePreset`]s approximating the three venues of Table V and a
//!   [`DatasetSpec`] builder used by tests, examples and the experiment
//!   harness.

pub mod presets;
pub mod propagation;
pub mod survey_sim;
pub mod venue;

pub use presets::{default_scale, Dataset, DatasetSpec, VenuePreset, RADIO_MAP_EPSILON_S};
pub use propagation::PropagationModel;
pub use survey_sim::{plan_paths, simulate_survey, SimulatedSurvey, SurveySimConfig};
pub use venue::{AccessPoint, RadioTechnology, Venue, VenueConfig};
