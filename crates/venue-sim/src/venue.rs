//! Synthetic indoor venues: floor plans, rooms, walls, reference points and
//! access points.
//!
//! The paper evaluates on two shopping malls (Kaide, Wanda) and one Bluetooth
//! venue (Longhu) from the Microsoft Research indoor-location datasets. Those
//! datasets are not redistributable here, so this module generates venues with
//! the same structural ingredients the algorithms rely on: a hallway loop with
//! rooms on both sides, walls acting as topological entities (used by the
//! `TopoAC` differentiator and by the propagation model), pre-selected
//! reference points, and access points scattered over the floor.

use rand::Rng;
use rm_geometry::{MultiPolygon, Point, Polygon};

/// The radio technology of a venue's access points (Table V: Longhu uses
/// Bluetooth beacons instead of Wi-Fi APs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioTechnology {
    /// IEEE 802.11 Wi-Fi access points.
    WiFi,
    /// Bluetooth Low Energy beacons.
    Bluetooth,
}

/// A transmitting access point (or Bluetooth beacon).
#[derive(Debug, Clone, PartialEq)]
pub struct AccessPoint {
    /// Deployment location.
    pub location: Point,
    /// Transmit power referenced at one metre, in dBm. Bluetooth beacons are
    /// weaker than Wi-Fi APs.
    pub tx_power_dbm: f64,
}

/// A synthetic indoor venue.
#[derive(Debug, Clone, PartialEq)]
pub struct Venue {
    /// Venue name (e.g. `kaide-like`).
    pub name: String,
    /// Bounding width in metres.
    pub width: f64,
    /// Bounding height in metres.
    pub height: f64,
    /// Topological entities (walls) as a multipolygon — the input `T` of the
    /// `EntityExist` check (Algorithm 4).
    pub walls: MultiPolygon,
    /// Room footprints (interior areas enclosed by walls).
    pub rooms: Vec<Polygon>,
    /// Pre-selected reference points visited by surveyors.
    pub reference_points: Vec<Point>,
    /// Deployed access points.
    pub access_points: Vec<AccessPoint>,
    /// Radio technology of the access points.
    pub radio: RadioTechnology,
}

impl Venue {
    /// Floor area in square metres.
    pub fn floor_area_m2(&self) -> f64 {
        self.width * self.height
    }

    /// Reference points per 100 square metres (Table V's RP density).
    pub fn rp_density_per_100m2(&self) -> f64 {
        if self.floor_area_m2() > 0.0 {
            self.reference_points.len() as f64 / self.floor_area_m2() * 100.0
        } else {
            0.0
        }
    }

    /// Number of access points.
    pub fn num_aps(&self) -> usize {
        self.access_points.len()
    }

    /// Number of reference points.
    pub fn num_rps(&self) -> usize {
        self.reference_points.len()
    }
}

/// Parameters for the synthetic floor-plan generator.
#[derive(Debug, Clone)]
pub struct VenueConfig {
    /// Venue name.
    pub name: String,
    /// Venue width in metres.
    pub width: f64,
    /// Venue height in metres.
    pub height: f64,
    /// Number of rooms along the top edge and along the bottom edge (each).
    pub rooms_per_side: usize,
    /// Depth of the rooms (metres); the remaining band is the hallway.
    pub room_depth: f64,
    /// Wall thickness in metres.
    pub wall_thickness: f64,
    /// Width of the door opening in each room's hallway-facing wall.
    pub door_width: f64,
    /// Spacing between hallway reference points (metres).
    pub hallway_rp_spacing: f64,
    /// Number of reference points inside each room.
    pub rps_per_room: usize,
    /// Number of access points to deploy.
    pub num_aps: usize,
    /// Transmit power at one metre (dBm) of a regular ("strong") access point.
    pub ap_tx_power_dbm: f64,
    /// Fraction of access points that are weak/remote (e.g. located on another
    /// floor or in a neighbouring building). These dominate real radio maps
    /// and are the main source of MNAR sparsity: they are only observable in a
    /// small neighbourhood.
    pub weak_ap_fraction: f64,
    /// Transmit-power penalty applied to weak access points, in dB.
    pub weak_ap_power_penalty_db: f64,
    /// Radio technology.
    pub radio: RadioTechnology,
}

impl VenueConfig {
    /// A small venue useful in unit tests: 40 m × 25 m, 3 rooms per side.
    pub fn small_test(name: &str) -> Self {
        Self {
            name: name.to_string(),
            width: 40.0,
            height: 25.0,
            rooms_per_side: 3,
            room_depth: 8.0,
            wall_thickness: 0.3,
            door_width: 2.0,
            hallway_rp_spacing: 4.0,
            rps_per_room: 2,
            num_aps: 30,
            ap_tx_power_dbm: -45.0,
            weak_ap_fraction: 0.6,
            weak_ap_power_penalty_db: 21.0,
            radio: RadioTechnology::WiFi,
        }
    }

    /// Builds the venue, placing access points with `rng`.
    pub fn build(&self, rng: &mut impl Rng) -> Venue {
        let mut walls = MultiPolygon::empty();
        let mut rooms = Vec::new();
        let mut reference_points = Vec::new();

        let hallway_bottom = self.room_depth;
        let hallway_top = self.height - self.room_depth;
        let room_width = self.width / self.rooms_per_side as f64;
        let t = self.wall_thickness;

        // Rooms along the bottom (facing up) and top (facing down) edges.
        for side in 0..2 {
            for i in 0..self.rooms_per_side {
                let x0 = i as f64 * room_width;
                let x1 = x0 + room_width;
                let (y0, y1, facing_y) = if side == 0 {
                    (0.0, hallway_bottom, hallway_bottom)
                } else {
                    (hallway_top, self.height, hallway_top)
                };
                rooms.push(Polygon::rectangle(Point::new(x0, y0), Point::new(x1, y1)));

                // Side walls between adjacent rooms (skip the venue boundary).
                if i > 0 {
                    walls.push(Polygon::rectangle(
                        Point::new(x0 - t / 2.0, y0),
                        Point::new(x0 + t / 2.0, y1),
                    ));
                }
                // Hallway-facing wall with a centred door gap.
                let door_center = (x0 + x1) / 2.0;
                let door_half = self.door_width / 2.0;
                let wall_y0 = facing_y - t / 2.0;
                let wall_y1 = facing_y + t / 2.0;
                if door_center - door_half > x0 {
                    walls.push(Polygon::rectangle(
                        Point::new(x0, wall_y0),
                        Point::new(door_center - door_half, wall_y1),
                    ));
                }
                if door_center + door_half < x1 {
                    walls.push(Polygon::rectangle(
                        Point::new(door_center + door_half, wall_y0),
                        Point::new(x1, wall_y1),
                    ));
                }

                // Reference points inside the room, spread along its centre line.
                let room_cy = (y0 + y1) / 2.0;
                for k in 0..self.rps_per_room {
                    let fx = (k as f64 + 1.0) / (self.rps_per_room as f64 + 1.0);
                    reference_points.push(Point::new(x0 + fx * room_width, room_cy));
                }
            }
        }

        // Hallway reference points: two lines running along the hallway.
        let hallway_mid_low = hallway_bottom + (hallway_top - hallway_bottom) / 3.0;
        let hallway_mid_high = hallway_bottom + 2.0 * (hallway_top - hallway_bottom) / 3.0;
        let mut x = self.hallway_rp_spacing / 2.0;
        while x < self.width {
            reference_points.push(Point::new(x, hallway_mid_low));
            reference_points.push(Point::new(x, hallway_mid_high));
            x += self.hallway_rp_spacing;
        }

        // Access points: mostly in the hallway and near room doors, some in rooms.
        let mut access_points = Vec::with_capacity(self.num_aps);
        for i in 0..self.num_aps {
            let location = if i % 3 == 0 && !rooms.is_empty() {
                // Inside a random room.
                let room = &rooms[rng.gen_range(0..rooms.len())];
                let (lo, hi) = room.bounding_box().expect("room has a bounding box");
                Point::new(
                    rng.gen_range(lo.x..hi.x.max(lo.x + 1e-6)),
                    rng.gen_range(lo.y..hi.y.max(lo.y + 1e-6)),
                )
            } else {
                // In the hallway band.
                Point::new(
                    rng.gen_range(0.0..self.width),
                    rng.gen_range(hallway_bottom..hallway_top),
                )
            };
            let weak_penalty = if rng.gen_bool(self.weak_ap_fraction.clamp(0.0, 1.0)) {
                // Weak/remote AP: observable only in a small neighbourhood.
                self.weak_ap_power_penalty_db + rng.gen_range(0.0..6.0)
            } else {
                0.0
            };
            access_points.push(AccessPoint {
                location,
                tx_power_dbm: self.ap_tx_power_dbm - weak_penalty + rng.gen_range(-3.0..3.0),
            });
        }

        Venue {
            name: self.name.clone(),
            width: self.width,
            height: self.height,
            walls,
            rooms,
            reference_points,
            access_points,
            radio: self.radio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_venue_has_expected_structure() {
        let mut rng = StdRng::seed_from_u64(1);
        let venue = VenueConfig::small_test("t").build(&mut rng);
        assert_eq!(venue.rooms.len(), 6);
        assert_eq!(venue.num_aps(), 30);
        assert!(venue.num_rps() > 10);
        assert!((venue.floor_area_m2() - 1000.0).abs() < 1e-9);
        assert!(venue.rp_density_per_100m2() > 0.0);
        assert!(!venue.walls.is_empty());
    }

    #[test]
    fn all_rps_and_aps_are_inside_the_venue() {
        let mut rng = StdRng::seed_from_u64(2);
        let venue = VenueConfig::small_test("t").build(&mut rng);
        for p in &venue.reference_points {
            assert!(p.x >= 0.0 && p.x <= venue.width && p.y >= 0.0 && p.y <= venue.height);
        }
        for ap in &venue.access_points {
            let p = ap.location;
            assert!(p.x >= 0.0 && p.x <= venue.width && p.y >= 0.0 && p.y <= venue.height);
        }
    }

    #[test]
    fn hallway_rps_are_not_inside_walls() {
        let mut rng = StdRng::seed_from_u64(3);
        let venue = VenueConfig::small_test("t").build(&mut rng);
        // RPs placed in the hallway band must not fall inside wall polygons.
        let hallway_rps: Vec<_> = venue
            .reference_points
            .iter()
            .filter(|p| p.y > 8.0 && p.y < venue.height - 8.0)
            .collect();
        assert!(!hallway_rps.is_empty());
        for p in hallway_rps {
            assert!(!venue.walls.contains(*p), "hallway RP {p:?} inside a wall");
        }
    }

    #[test]
    fn walls_separate_adjacent_rooms() {
        let mut rng = StdRng::seed_from_u64(4);
        let venue = VenueConfig::small_test("t").build(&mut rng);
        // A segment between the centres of two adjacent bottom rooms crosses a wall.
        let a = venue.rooms[0].centroid();
        let b = venue.rooms[1].centroid();
        let seg = rm_geometry::Segment::new(a, b);
        assert!(venue.walls.intersects_segment(&seg));
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let a = VenueConfig::small_test("t").build(&mut StdRng::seed_from_u64(7));
        let b = VenueConfig::small_test("t").build(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn tx_power_mixes_strong_and_weak_aps() {
        let mut rng = StdRng::seed_from_u64(5);
        let venue = VenueConfig::small_test("t").build(&mut rng);
        let strong = venue
            .access_points
            .iter()
            .filter(|ap| ap.tx_power_dbm > -50.0)
            .count();
        let weak = venue.access_points.len() - strong;
        assert!(strong > 0, "some APs must be strong");
        assert!(weak > 0, "some APs must be weak/remote");
        for ap in &venue.access_points {
            // Strong APs sit near the nominal power, weak ones below it.
            assert!(ap.tx_power_dbm <= -45.0 + 3.0);
            assert!(ap.tx_power_dbm >= -45.0 - 21.0 - 6.0 - 3.0);
        }
    }
}
