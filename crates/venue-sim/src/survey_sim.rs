//! Walking-survey simulation.
//!
//! A simulated surveyor walks survey paths through a [`Venue`], visiting
//! reference points and collecting RSSI scans along the way, exactly as in the
//! data-collection procedure of Section II-B of the paper. The output is a
//! [`WalkingSurveyTable`] whose radio map exhibits the two kinds of
//! missingness the framework targets:
//!
//! * **MNAR** — access points whose signal is below the detection threshold at
//!   the scan position simply do not appear in the scan;
//! * **MAR** — observable readings are dropped with a small probability,
//!   modelling random events such as temporarily blocked transmission paths.

use std::cmp::Ordering;

use rand::Rng;
use rm_geometry::Point;
use rm_radiomap::{SurveyEntry, WalkingSurveyTable};

use crate::propagation::PropagationModel;
use crate::venue::Venue;

/// Configuration of the simulated walking survey.
#[derive(Debug, Clone)]
pub struct SurveySimConfig {
    /// Surveyor walking speed in metres per second.
    pub walking_speed_mps: f64,
    /// Interval between consecutive RSSI scans, in seconds.
    pub scan_interval_s: f64,
    /// Probability that an observable reading is dropped from a scan (MAR).
    pub mar_drop_probability: f64,
    /// Probability that an RP visit is actually recorded in the survey table.
    /// Scaling this down reproduces the RP-density experiment (Fig. 16).
    pub rp_record_probability: f64,
    /// Number of reference points per survey path.
    pub rps_per_path: usize,
    /// How many times the full set of paths is surveyed. More passes produce
    /// more fingerprints (Wanda has ~4.5× the fingerprints of Kaide).
    pub passes: usize,
}

impl Default for SurveySimConfig {
    fn default() -> Self {
        Self {
            walking_speed_mps: 1.2,
            scan_interval_s: 2.0,
            mar_drop_probability: 0.05,
            rp_record_probability: 1.0,
            rps_per_path: 10,
            passes: 1,
        }
    }
}

/// The result of a simulated survey: the record table plus, for testing and
/// debugging, the surveyor's true position at every scan.
#[derive(Debug, Clone)]
pub struct SimulatedSurvey {
    /// The walking-survey record table (input to radio-map creation).
    pub table: WalkingSurveyTable,
    /// Ground-truth `(time, position)` of every RSSI scan, per path.
    pub scan_positions: Vec<Vec<(f64, Point)>>,
}

/// Simulates walking surveys over all reference points of `venue`.
pub fn simulate_survey(
    venue: &Venue,
    propagation: &PropagationModel,
    config: &SurveySimConfig,
    rng: &mut impl Rng,
) -> SimulatedSurvey {
    let mut table = WalkingSurveyTable::new(venue.num_aps());
    let mut scan_positions = Vec::new();

    for _pass in 0..config.passes {
        for path_rps in plan_paths(venue, config.rps_per_path) {
            let (entries, positions) = walk_path(venue, propagation, config, &path_rps, rng);
            table.add_path(entries);
            scan_positions.push(positions);
        }
    }
    SimulatedSurvey {
        table,
        scan_positions,
    }
}

/// Groups the venue's reference points into survey paths of roughly
/// `rps_per_path` points each, ordered so that consecutive RPs are spatially
/// close (sorted by vertical band, then horizontally, serpentine within a
/// band — the way a surveyor would sweep a mall corridor).
pub fn plan_paths(venue: &Venue, rps_per_path: usize) -> Vec<Vec<Point>> {
    let mut rps = venue.reference_points.clone();
    if rps.is_empty() {
        return Vec::new();
    }
    // Sort by coarse y band then x.
    let band_height = 5.0f64;
    rps.sort_by(|a, b| {
        let band_a = (a.y / band_height).floor();
        let band_b = (b.y / band_height).floor();
        band_a
            .partial_cmp(&band_b)
            .unwrap_or(Ordering::Equal)
            .then(a.x.partial_cmp(&b.x).unwrap_or(Ordering::Equal))
    });

    let per_path = rps_per_path.max(2);
    let mut paths: Vec<Vec<Point>> = rps.chunks(per_path).map(|c| c.to_vec()).collect();
    // Reverse every other path to emulate a serpentine sweep.
    for (i, path) in paths.iter_mut().enumerate() {
        if i % 2 == 1 {
            path.reverse();
        }
    }
    // A trailing path with a single RP cannot be walked; merge it into the
    // previous one.
    if paths.len() >= 2 && paths.last().map(|p| p.len() < 2).unwrap_or(false) {
        let last = paths.pop().expect("non-empty");
        paths.last_mut().expect("non-empty").extend(last);
    }
    paths
}

/// Walks one path and produces its survey entries plus ground-truth scan
/// positions.
fn walk_path(
    venue: &Venue,
    propagation: &PropagationModel,
    config: &SurveySimConfig,
    path_rps: &[Point],
    rng: &mut impl Rng,
) -> (Vec<SurveyEntry>, Vec<(f64, Point)>) {
    let mut entries = Vec::new();
    let mut positions = Vec::new();
    let mut time = 0.0f64;
    let mut next_scan_time = config.scan_interval_s;

    // Record the first RP at time zero.
    if rng.gen_bool(config.rp_record_probability.clamp(0.0, 1.0)) {
        entries.push(SurveyEntry::rp(time, path_rps[0]));
    }

    for window in path_rps.windows(2) {
        let (from, to) = (window[0], window[1]);
        let leg_length = from.distance(to);
        let leg_duration = (leg_length / config.walking_speed_mps).max(1e-6);
        let leg_start = time;

        // Scans while walking this leg.
        while next_scan_time <= leg_start + leg_duration {
            let progress = ((next_scan_time - leg_start) / leg_duration).clamp(0.0, 1.0);
            let position = from.lerp(to, progress);
            let scan = scan_at(venue, propagation, config, position, rng);
            if !scan.is_empty() {
                entries.push(SurveyEntry::rssi(next_scan_time, scan));
            }
            positions.push((next_scan_time, position));
            next_scan_time += config.scan_interval_s;
        }

        time = leg_start + leg_duration;
        // Arriving at the next RP.
        if rng.gen_bool(config.rp_record_probability.clamp(0.0, 1.0)) {
            entries.push(SurveyEntry::rp(time, to));
        }
    }
    (entries, positions)
}

/// Performs one RSSI scan at `position`: every observable AP contributes a
/// reading unless dropped by the MAR process.
fn scan_at(
    venue: &Venue,
    propagation: &PropagationModel,
    config: &SurveySimConfig,
    position: Point,
    rng: &mut impl Rng,
) -> Vec<(usize, f64)> {
    let mut readings = Vec::new();
    for (ap_index, ap) in venue.access_points.iter().enumerate() {
        if let Some(rssi) = propagation.sample_rssi(venue, ap, position, rng) {
            if rng.gen_bool(config.mar_drop_probability.clamp(0.0, 1.0)) {
                continue; // MAR: observable but lost to a random event.
            }
            readings.push((ap_index, rssi));
        }
    }
    readings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::venue::VenueConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Venue, PropagationModel) {
        let venue = VenueConfig::small_test("survey").build(&mut StdRng::seed_from_u64(1));
        (venue, PropagationModel::default())
    }

    #[test]
    fn paths_cover_all_reference_points() {
        let (venue, _) = setup();
        let paths = plan_paths(&venue, 8);
        let total: usize = paths.iter().map(Vec::len).sum();
        assert_eq!(total, venue.num_rps());
        assert!(paths.iter().all(|p| p.len() >= 2));
    }

    #[test]
    fn survey_produces_rp_and_rssi_entries() {
        let (venue, propagation) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let survey = simulate_survey(&venue, &propagation, &SurveySimConfig::default(), &mut rng);
        assert!(survey.table.rp_entry_count() > 0);
        assert!(survey.table.rssi_entry_count() > 0);
        assert_eq!(survey.table.num_aps(), venue.num_aps());
        assert_eq!(survey.table.num_paths(), survey.scan_positions.len());
    }

    #[test]
    fn created_radio_map_is_sparse() {
        let (venue, propagation) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let survey = simulate_survey(&venue, &propagation, &SurveySimConfig::default(), &mut rng);
        let map = survey.table.create_radio_map(1.0);
        assert!(map.len() > 10);
        // A 40x25 venue with 30 APs: most APs are out of range of most scans.
        let missing = map.missing_rssi_rate();
        assert!(
            missing > 0.3 && missing < 0.999,
            "unexpected missing-RSSI rate {missing}"
        );
        assert!(map.missing_rp_rate() > 0.0, "walking surveys leave RP gaps");
    }

    #[test]
    fn lower_rp_probability_records_fewer_rps() {
        let (venue, propagation) = setup();
        let dense_cfg = SurveySimConfig::default();
        let sparse_cfg = SurveySimConfig {
            rp_record_probability: 0.3,
            ..SurveySimConfig::default()
        };
        let dense = simulate_survey(
            &venue,
            &propagation,
            &dense_cfg,
            &mut StdRng::seed_from_u64(4),
        );
        let sparse = simulate_survey(
            &venue,
            &propagation,
            &sparse_cfg,
            &mut StdRng::seed_from_u64(4),
        );
        assert!(sparse.table.rp_entry_count() < dense.table.rp_entry_count());
    }

    #[test]
    fn more_passes_produce_more_fingerprints() {
        let (venue, propagation) = setup();
        let one = SurveySimConfig::default();
        let three = SurveySimConfig {
            passes: 3,
            ..SurveySimConfig::default()
        };
        let a = simulate_survey(&venue, &propagation, &one, &mut StdRng::seed_from_u64(5));
        let b = simulate_survey(&venue, &propagation, &three, &mut StdRng::seed_from_u64(5));
        assert!(b.table.rssi_entry_count() > 2 * a.table.rssi_entry_count());
    }

    #[test]
    fn higher_mar_probability_increases_sparsity() {
        let (venue, propagation) = setup();
        let low = SurveySimConfig {
            mar_drop_probability: 0.0,
            ..SurveySimConfig::default()
        };
        let high = SurveySimConfig {
            mar_drop_probability: 0.5,
            ..SurveySimConfig::default()
        };
        let a = simulate_survey(&venue, &propagation, &low, &mut StdRng::seed_from_u64(6))
            .table
            .create_radio_map(1.0);
        let b = simulate_survey(&venue, &propagation, &high, &mut StdRng::seed_from_u64(6))
            .table
            .create_radio_map(1.0);
        assert!(b.missing_rssi_rate() > a.missing_rssi_rate());
    }

    #[test]
    fn empty_venue_produces_empty_survey() {
        let (mut venue, propagation) = setup();
        venue.reference_points.clear();
        let survey = simulate_survey(
            &venue,
            &propagation,
            &SurveySimConfig::default(),
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(survey.table.num_paths(), 0);
    }
}
