//! Indoor radio propagation: log-distance path loss with wall attenuation and
//! log-normal shadowing.
//!
//! The model produces two things the framework needs:
//!
//! * a *deterministic* expected RSSI per (access point, location), which
//!   defines ground-truth observability — the basis of MNAR missingness, and
//! * *sampled* RSSIs with shadow fading, clamped to the observable range
//!   `[-99, 0]` dBm, which populate the simulated walking surveys.

use rand::Rng;
use rm_geometry::{Point, Segment};
use rm_radiomap::{MAX_OBSERVED_RSSI, MIN_OBSERVED_RSSI};

use crate::venue::{AccessPoint, Venue};

/// Configuration of the log-distance propagation model.
#[derive(Debug, Clone)]
pub struct PropagationModel {
    /// Path-loss exponent `n`; indoor environments are typically 2.5–3.5.
    pub path_loss_exponent: f64,
    /// Attenuation added per wall crossed, in dB.
    pub wall_attenuation_db: f64,
    /// Standard deviation of the log-normal shadow fading, in dB.
    pub shadowing_sigma_db: f64,
    /// Signals with expected strength below this threshold are unobservable
    /// (their absence is MNAR).
    pub detection_threshold_dbm: f64,
}

impl Default for PropagationModel {
    fn default() -> Self {
        Self {
            path_loss_exponent: 3.5,
            wall_attenuation_db: 7.0,
            shadowing_sigma_db: 3.0,
            detection_threshold_dbm: -90.0,
        }
    }
}

impl PropagationModel {
    /// A model suited to Bluetooth beacons: faster decay and a slightly higher
    /// detection threshold, reflecting the lower transmit power and shorter
    /// range of BLE.
    pub fn bluetooth() -> Self {
        Self {
            path_loss_exponent: 3.6,
            wall_attenuation_db: 8.0,
            shadowing_sigma_db: 4.0,
            detection_threshold_dbm: -88.0,
        }
    }

    /// Expected (noise-free) RSSI of `ap` at `location`, in dBm.
    pub fn expected_rssi(&self, venue: &Venue, ap: &AccessPoint, location: Point) -> f64 {
        let distance = ap.location.distance(location).max(1.0);
        let walls_crossed = venue
            .walls
            .count_edge_crossings(&Segment::new(ap.location, location));
        ap.tx_power_dbm
            - 10.0 * self.path_loss_exponent * distance.log10()
            - self.wall_attenuation_db * walls_crossed as f64
    }

    /// Whether `ap` is observable at `location` (expected RSSI at or above the
    /// detection threshold). A missing reading for an unobservable AP is, by
    /// definition, MNAR.
    pub fn observable(&self, venue: &Venue, ap: &AccessPoint, location: Point) -> bool {
        self.expected_rssi(venue, ap, location) >= self.detection_threshold_dbm
    }

    /// Samples a noisy RSSI reading of `ap` at `location`.
    ///
    /// Returns `None` if the faded signal falls below the detection threshold;
    /// otherwise the reading is clamped to the observable range
    /// `[-99, 0]` dBm.
    pub fn sample_rssi(
        &self,
        venue: &Venue,
        ap: &AccessPoint,
        location: Point,
        rng: &mut impl Rng,
    ) -> Option<f64> {
        let expected = self.expected_rssi(venue, ap, location);
        let faded = expected + gaussian(rng) * self.shadowing_sigma_db;
        if faded < self.detection_threshold_dbm {
            None
        } else {
            Some(faded.clamp(MIN_OBSERVED_RSSI, MAX_OBSERVED_RSSI))
        }
    }

    /// Expected RSSI of every AP at `location`, with `None` for unobservable
    /// APs — the noise-free ground-truth fingerprint at that location.
    pub fn ground_truth_fingerprint(&self, venue: &Venue, location: Point) -> Vec<Option<f64>> {
        venue
            .access_points
            .iter()
            .map(|ap| {
                let e = self.expected_rssi(venue, ap, location);
                if e >= self.detection_threshold_dbm {
                    Some(e.clamp(MIN_OBSERVED_RSSI, MAX_OBSERVED_RSSI))
                } else {
                    None
                }
            })
            .collect()
    }
}

/// Standard-normal sample via the Box–Muller transform (avoids pulling the
/// rand_distr crate into the workspace).
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::venue::VenueConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_venue() -> Venue {
        VenueConfig::small_test("prop").build(&mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn rssi_decreases_with_distance() {
        let venue = test_venue();
        let model = PropagationModel::default();
        let ap = &venue.access_points[0];
        let near = model.expected_rssi(&venue, ap, ap.location + Point::new(1.0, 0.0));
        let far = model.expected_rssi(&venue, ap, ap.location + Point::new(15.0, 0.0));
        assert!(near > far);
    }

    #[test]
    fn walls_attenuate_signal() {
        let venue = test_venue();
        let model = PropagationModel::default();
        // Place a virtual AP in a bottom room; a receiver diagonally offset in
        // the hallway has the hallway-facing wall in its path (the segment
        // crosses the wall band away from the door gap).
        let room = &venue.rooms[1];
        let c = room.centroid();
        let ap = AccessPoint {
            location: c,
            tx_power_dbm: -30.0,
        };
        let receiver = Point::new(c.x + 4.0, c.y + 6.0);
        let distance = c.distance(receiver);
        let through_wall = model.expected_rssi(&venue, &ap, receiver);
        let free_space_same_dist =
            ap.tx_power_dbm - 10.0 * model.path_loss_exponent * distance.log10();
        assert!(
            through_wall < free_space_same_dist - 1.0,
            "wall must attenuate: {through_wall} vs free-space {free_space_same_dist}"
        );
    }

    #[test]
    fn observability_matches_threshold() {
        let venue = test_venue();
        let model = PropagationModel::default();
        let ap = &venue.access_points[0];
        assert!(model.observable(&venue, ap, ap.location + Point::new(1.0, 0.0)));
        // Very far away (outside the venue, but geometry still works): unobservable.
        let far = Point::new(ap.location.x + 100_000.0, ap.location.y);
        assert!(!model.observable(&venue, ap, far));
    }

    #[test]
    fn sampled_rssi_is_in_valid_range() {
        let venue = test_venue();
        let model = PropagationModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut observed = 0;
        for ap in &venue.access_points {
            for rp in &venue.reference_points {
                if let Some(v) = model.sample_rssi(&venue, ap, *rp, &mut rng) {
                    assert!((MIN_OBSERVED_RSSI..=MAX_OBSERVED_RSSI).contains(&v));
                    observed += 1;
                }
            }
        }
        assert!(observed > 0, "some readings must be observable");
    }

    #[test]
    fn ground_truth_fingerprint_has_one_entry_per_ap() {
        let venue = test_venue();
        let model = PropagationModel::default();
        let f = model.ground_truth_fingerprint(&venue, venue.reference_points[0]);
        assert_eq!(f.len(), venue.num_aps());
        // At least one AP should be visible from an RP in a 40x25 venue.
        assert!(f.iter().any(Option::is_some));
    }

    #[test]
    fn bluetooth_model_decays_faster() {
        let venue = test_venue();
        let wifi = PropagationModel::default();
        let ble = PropagationModel::bluetooth();
        let ap = &venue.access_points[0];
        let pos = ap.location + Point::new(10.0, 0.0);
        assert!(ble.expected_rssi(&venue, ap, pos) < wifi.expected_rssi(&venue, ap, pos));
    }

    #[test]
    fn gaussian_sampling_is_roughly_standard_normal() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
