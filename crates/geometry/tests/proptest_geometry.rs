//! Property-based tests for the geometry primitives.

use proptest::prelude::*;
use rm_geometry::{convex_hull, Point, Polygon, Segment};

fn arb_point() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn convex_hull_contains_all_points(pts in prop::collection::vec(arb_point(), 3..40)) {
        let hull_pts = convex_hull(&pts);
        prop_assume!(hull_pts.len() >= 3);
        let hull = Polygon::new(hull_pts);
        for p in &pts {
            // Allow boundary membership; numeric tolerance handled inside.
            prop_assert!(hull.contains_or_boundary(*p), "point {:?} outside hull", p);
        }
    }

    #[test]
    fn convex_hull_is_convex(pts in prop::collection::vec(arb_point(), 3..40)) {
        let hull_pts = convex_hull(&pts);
        prop_assume!(hull_pts.len() >= 3);
        let n = hull_pts.len();
        for i in 0..n {
            let a = hull_pts[i];
            let b = hull_pts[(i + 1) % n];
            let c = hull_pts[(i + 2) % n];
            let cross = (b - a).cross(c - b);
            prop_assert!(cross >= -1e-6, "hull has a clockwise turn at index {}", i);
        }
    }

    #[test]
    fn segment_intersection_is_symmetric(a in arb_point(), b in arb_point(), c in arb_point(), d in arb_point()) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        prop_assert_eq!(s1.intersects(&s2), s2.intersects(&s1));
    }

    #[test]
    fn rectangle_contains_its_centroid(a in arb_point(), b in arb_point()) {
        prop_assume!((a.x - b.x).abs() > 1e-3 && (a.y - b.y).abs() > 1e-3);
        let r = Polygon::rectangle(a, b);
        prop_assert!(r.contains(r.centroid()));
    }

    #[test]
    fn polygon_area_is_translation_invariant(pts in prop::collection::vec(arb_point(), 3..20), dx in -50.0f64..50.0, dy in -50.0f64..50.0) {
        let p1 = Polygon::new(pts.clone());
        let shifted: Vec<Point> = pts.iter().map(|p| Point::new(p.x + dx, p.y + dy)).collect();
        let p2 = Polygon::new(shifted);
        prop_assert!((p1.area() - p2.area()).abs() < 1e-6 * (1.0 + p1.area()));
    }

    #[test]
    fn distance_to_point_bounded_by_endpoint_distances(a in arb_point(), b in arb_point(), p in arb_point()) {
        let s = Segment::new(a, b);
        let d = s.distance_to_point(p);
        prop_assert!(d <= a.distance(p) + 1e-9);
        prop_assert!(d <= b.distance(p) + 1e-9);
    }
}
