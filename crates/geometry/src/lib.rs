//! 2D geometry primitives used across the radio-map imputation framework.
//!
//! The missing-RSSI differentiator `TopoAC` needs to decide whether the convex
//! hull of a candidate cluster of reference points intersects any topological
//! entity (wall, pillar, closed room) of the indoor space. The venue simulator
//! needs the same primitives to trace signal paths through walls and to lay out
//! survey paths inside hallways.
//!
//! This crate provides exactly those primitives, with no external dependencies:
//!
//! * [`Point`] — a 2D point with the usual vector arithmetic,
//! * [`Segment`] — a line segment with robust intersection tests,
//! * [`Polygon`] — a simple polygon with area / containment / intersection,
//! * [`MultiPolygon`] — a set of polygons modelling the indoor topology,
//! * [`convex_hull`] — Andrew's monotone-chain convex hull.
//!
//! All coordinates are `f64` metres in a venue-local frame.

pub mod hull;
pub mod point;
pub mod polygon;
pub mod segment;

pub use hull::convex_hull;
pub use point::{centroid, Point};
pub use polygon::{MultiPolygon, Polygon};
pub use segment::Segment;

/// Numerical tolerance used by the geometric predicates in this crate.
///
/// Coordinates are metres; one nanometre is far below any measurement noise in
/// the indoor-positioning setting, so treating differences below `EPS` as zero
/// is safe.
pub const EPS: f64 = 1e-9;

/// Orientation of the ordered triple `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Counter-clockwise turn.
    CounterClockwise,
    /// Clockwise turn.
    Clockwise,
    /// The three points are collinear.
    Collinear,
}

/// Computes the orientation of the ordered triple `(a, b, c)`.
pub fn orientation(a: Point, b: Point, c: Point) -> Orientation {
    let cross = (b - a).cross(c - a);
    if cross > EPS {
        Orientation::CounterClockwise
    } else if cross < -EPS {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_basic() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(
            orientation(a, b, Point::new(1.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orientation(a, b, Point::new(1.0, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orientation(a, b, Point::new(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn orientation_is_antisymmetric() {
        let a = Point::new(0.3, 0.7);
        let b = Point::new(2.1, -0.4);
        let c = Point::new(-1.0, 1.5);
        let o1 = orientation(a, b, c);
        let o2 = orientation(a, c, b);
        match (o1, o2) {
            (Orientation::CounterClockwise, Orientation::Clockwise)
            | (Orientation::Clockwise, Orientation::CounterClockwise)
            | (Orientation::Collinear, Orientation::Collinear) => {}
            other => panic!("orientation not antisymmetric: {other:?}"),
        }
    }
}
