//! 2D points and vector arithmetic.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or free vector) in the venue-local 2D coordinate frame, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate in metres.
    pub x: f64,
    /// Vertical coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Creates a new point from its coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const fn origin() -> Self {
        Self { x: 0.0, y: 0.0 }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`; cheaper than [`Point::distance`]
    /// when only comparisons are needed.
    pub fn distance_squared(self, other: Point) -> f64 {
        let d = self - other;
        d.x * d.x + d.y * d.y
    }

    /// Euclidean norm of the vector from the origin to this point.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Dot product, treating both points as vectors.
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (z-component of the 3D cross product).
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// Midpoint of `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Returns `true` if both coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Component-wise minimum.
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

/// Centroid (arithmetic mean) of a non-empty set of points.
///
/// Returns `None` for an empty slice.
pub fn centroid(points: &[Point]) -> Option<Point> {
    if points.is_empty() {
        return None;
    }
    let sum = points.iter().fold(Point::origin(), |acc, &p| acc + p);
    Some(sum / points.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-0.5, 4.0);
        assert_eq!(a + b - b, a);
        assert_eq!((a * 2.0) / 2.0, a);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn distance_and_norm() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((b.norm() - 5.0).abs() < 1e-12);
        assert!((a.distance_squared(b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn dot_and_cross() {
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(2.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(3.0, 4.0));
    }

    #[test]
    fn centroid_of_square() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        assert_eq!(centroid(&pts), Some(Point::new(1.0, 1.0)));
        assert_eq!(centroid(&[]), None);
    }

    #[test]
    fn conversions() {
        let p: Point = (1.5, -2.5).into();
        assert_eq!(p, Point::new(1.5, -2.5));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.5, -2.5));
    }

    #[test]
    fn min_max_componentwise() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 3.0);
        assert_eq!(a.min(b), Point::new(1.0, 3.0));
        assert_eq!(a.max(b), Point::new(2.0, 5.0));
    }
}
