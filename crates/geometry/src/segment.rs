//! Line segments and intersection predicates.

use crate::{orientation, Orientation, Point, EPS};

/// A closed line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from its endpoints.
    pub const fn new(a: Point, b: Point) -> Self {
        Self { a, b }
    }

    /// Length of the segment in metres.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint of the segment.
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// Returns `true` if `p` lies on this segment (within [`EPS`]).
    pub fn contains_point(&self, p: Point) -> bool {
        if orientation(self.a, self.b, p) != Orientation::Collinear {
            return false;
        }
        self.in_bounding_box(p)
    }

    /// Returns `true` if `p` is inside the axis-aligned bounding box of the
    /// segment (inclusive, with tolerance).
    fn in_bounding_box(&self, p: Point) -> bool {
        p.x >= self.a.x.min(self.b.x) - EPS
            && p.x <= self.a.x.max(self.b.x) + EPS
            && p.y >= self.a.y.min(self.b.y) - EPS
            && p.y <= self.a.y.max(self.b.y) + EPS
    }

    /// Returns `true` if this segment intersects `other`, including touching
    /// endpoints and collinear overlap.
    pub fn intersects(&self, other: &Segment) -> bool {
        let o1 = orientation(self.a, self.b, other.a);
        let o2 = orientation(self.a, self.b, other.b);
        let o3 = orientation(other.a, other.b, self.a);
        let o4 = orientation(other.a, other.b, self.b);

        if o1 != o2 && o3 != o4 {
            return true;
        }
        // Collinear special cases: one endpoint lies on the other segment.
        (o1 == Orientation::Collinear && self.in_bounding_box(other.a))
            || (o2 == Orientation::Collinear && self.in_bounding_box(other.b))
            || (o3 == Orientation::Collinear && other.in_bounding_box(self.a))
            || (o4 == Orientation::Collinear && other.in_bounding_box(self.b))
    }

    /// Intersection point with `other` when the segments cross at exactly one
    /// point that is not an endpoint-only touch of parallel segments.
    ///
    /// Returns `None` for parallel or non-intersecting segments. Collinear
    /// overlapping segments also return `None` (there is no unique point).
    pub fn intersection_point(&self, other: &Segment) -> Option<Point> {
        let r = self.b - self.a;
        let s = other.b - other.a;
        let denom = r.cross(s);
        if denom.abs() < EPS {
            return None;
        }
        let qp = other.a - self.a;
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        if (-EPS..=1.0 + EPS).contains(&t) && (-EPS..=1.0 + EPS).contains(&u) {
            Some(self.a + r * t)
        } else {
            None
        }
    }

    /// Shortest Euclidean distance from point `p` to this segment.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        let d = self.b - self.a;
        let len_sq = d.dot(d);
        if len_sq < EPS {
            return self.a.distance(p);
        }
        let t = ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0);
        (self.a + d * t).distance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = seg(0.0, 0.0, 2.0, 2.0);
        let s2 = seg(0.0, 2.0, 2.0, 0.0);
        assert!(s1.intersects(&s2));
        let p = s1.intersection_point(&s2).unwrap();
        assert!((p.x - 1.0).abs() < 1e-9 && (p.y - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_segments_do_not_intersect() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(0.0, 1.0, 1.0, 1.0);
        assert!(!s1.intersects(&s2));
        assert!(s1.intersection_point(&s2).is_none());
    }

    #[test]
    fn touching_at_endpoint_counts_as_intersection() {
        let s1 = seg(0.0, 0.0, 1.0, 1.0);
        let s2 = seg(1.0, 1.0, 2.0, 0.0);
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn collinear_overlap_intersects_but_has_no_unique_point() {
        let s1 = seg(0.0, 0.0, 2.0, 0.0);
        let s2 = seg(1.0, 0.0, 3.0, 0.0);
        assert!(s1.intersects(&s2));
        assert!(s1.intersection_point(&s2).is_none());
    }

    #[test]
    fn collinear_disjoint_does_not_intersect() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(2.0, 0.0, 3.0, 0.0);
        assert!(!s1.intersects(&s2));
    }

    #[test]
    fn contains_point_on_and_off_segment() {
        let s = seg(0.0, 0.0, 2.0, 2.0);
        assert!(s.contains_point(Point::new(1.0, 1.0)));
        assert!(s.contains_point(Point::new(0.0, 0.0)));
        assert!(!s.contains_point(Point::new(3.0, 3.0)));
        assert!(!s.contains_point(Point::new(1.0, 0.0)));
    }

    #[test]
    fn distance_to_point_cases() {
        let s = seg(0.0, 0.0, 2.0, 0.0);
        // Perpendicular projection inside the segment.
        assert!((s.distance_to_point(Point::new(1.0, 1.0)) - 1.0).abs() < 1e-12);
        // Projection beyond an endpoint.
        assert!((s.distance_to_point(Point::new(3.0, 0.0)) - 1.0).abs() < 1e-12);
        // Degenerate segment.
        let d = seg(1.0, 1.0, 1.0, 1.0);
        assert!((d.distance_to_point(Point::new(2.0, 1.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn length_and_midpoint() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert!((s.length() - 5.0).abs() < 1e-12);
        assert_eq!(s.midpoint(), Point::new(1.5, 2.0));
    }
}
