//! Convex hull computation (Andrew's monotone chain).

use std::cmp::Ordering;

use crate::Point;

/// Computes the convex hull of a point set using Andrew's monotone chain
/// algorithm in `O(n log n)`.
///
/// The result is returned in counter-clockwise order without repeating the
/// first vertex. Degenerate inputs are handled gracefully:
///
/// * an empty input yields an empty hull,
/// * a single point yields that point,
/// * collinear points yield the two extreme points.
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap_or(Ordering::Equal)
            .then(a.y.partial_cmp(&b.y).unwrap_or(Ordering::Equal))
    });
    pts.dedup_by(|a, b| (a.x - b.x).abs() < crate::EPS && (a.y - b.y).abs() < crate::EPS);

    let n = pts.len();
    if n <= 2 {
        return pts;
    }

    let cross = |o: Point, a: Point, b: Point| (a - o).cross(b - o);

    let mut lower: Vec<Point> = Vec::with_capacity(n);
    for &p in &pts {
        while lower.len() >= 2
            && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= crate::EPS
        {
            lower.pop();
        }
        lower.push(p);
    }

    let mut upper: Vec<Point> = Vec::with_capacity(n);
    for &p in pts.iter().rev() {
        while upper.len() >= 2
            && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= crate::EPS
        {
            upper.pop();
        }
        upper.push(p);
    }

    lower.pop();
    upper.pop();
    lower.extend(upper);
    lower
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Polygon;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0),
            Point::new(1.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        let poly = Polygon::new(hull);
        assert!((poly.area() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn hull_of_collinear_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(3.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 2);
    }

    #[test]
    fn hull_of_small_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point::new(1.0, 1.0)]).len(), 1);
        assert_eq!(
            convex_hull(&[Point::new(1.0, 1.0), Point::new(2.0, 2.0)]).len(),
            2
        );
        // Duplicated points collapse.
        assert_eq!(
            convex_hull(&[Point::new(1.0, 1.0), Point::new(1.0, 1.0)]).len(),
            1
        );
    }

    #[test]
    fn hull_is_counter_clockwise() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(4.0, 4.0),
            Point::new(1.0, 3.0),
            Point::new(2.0, 2.0),
        ];
        let hull = convex_hull(&pts);
        let poly = Polygon::new(hull);
        assert!(poly.signed_area() > 0.0, "hull must be counter-clockwise");
    }

    #[test]
    fn hull_contains_all_input_points() {
        let pts: Vec<Point> = (0..30)
            .map(|i| {
                let a = i as f64 * 0.7;
                Point::new(a.sin() * 5.0 + 0.1 * i as f64, a.cos() * 3.0)
            })
            .collect();
        let hull = Polygon::new(convex_hull(&pts));
        for p in &pts {
            assert!(
                hull.contains_or_boundary(*p),
                "hull must contain input point {p:?}"
            );
        }
    }
}
