//! Simple polygons and multipolygons modelling indoor topology.

use crate::{Point, Segment, EPS};

/// A simple polygon given by its vertices in order (either orientation).
///
/// The polygon is implicitly closed: an edge connects the last vertex back to
/// the first one. Polygons with fewer than three vertices are treated as
/// degenerate (zero area, containing nothing).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from its vertices in order.
    pub fn new(vertices: Vec<Point>) -> Self {
        Self { vertices }
    }

    /// Creates an axis-aligned rectangle from two opposite corners.
    pub fn rectangle(corner_a: Point, corner_b: Point) -> Self {
        let lo = corner_a.min(corner_b);
        let hi = corner_a.max(corner_b);
        Self::new(vec![
            Point::new(lo.x, lo.y),
            Point::new(hi.x, lo.y),
            Point::new(hi.x, hi.y),
            Point::new(lo.x, hi.y),
        ])
    }

    /// The polygon's vertices in order.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Returns `true` if the polygon has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Returns `true` if the polygon has fewer than three vertices.
    pub fn is_degenerate(&self) -> bool {
        self.vertices.len() < 3
    }

    /// Iterator over the polygon's edges as segments.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area (positive for counter-clockwise vertex order).
    pub fn signed_area(&self) -> f64 {
        if self.is_degenerate() {
            return 0.0;
        }
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            acc += p.cross(q);
        }
        acc / 2.0
    }

    /// Absolute area in square metres.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Perimeter length in metres.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Centroid of the polygon (area-weighted). Falls back to the vertex mean
    /// for degenerate polygons.
    pub fn centroid(&self) -> Point {
        let a = self.signed_area();
        if a.abs() < EPS {
            return crate::point::centroid(&self.vertices).unwrap_or_default();
        }
        let n = self.vertices.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.cross(q);
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Point::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Axis-aligned bounding box as `(min, max)` corners, or `None` when empty.
    pub fn bounding_box(&self) -> Option<(Point, Point)> {
        let first = *self.vertices.first()?;
        let mut lo = first;
        let mut hi = first;
        for &v in &self.vertices[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Strict interior containment test (boundary points return `false`).
    pub fn contains(&self, p: Point) -> bool {
        if self.is_degenerate() || self.on_boundary(p) {
            return false;
        }
        self.winding_contains(p)
    }

    /// Containment test that also accepts points on the boundary.
    pub fn contains_or_boundary(&self, p: Point) -> bool {
        if self.is_degenerate() {
            return false;
        }
        self.on_boundary(p) || self.winding_contains(p)
    }

    /// Returns `true` if `p` lies on the polygon's boundary.
    pub fn on_boundary(&self, p: Point) -> bool {
        self.edges().any(|e| e.contains_point(p))
    }

    fn winding_contains(&self, p: Point) -> bool {
        // Ray casting towards +x with careful handling of vertices.
        let n = self.vertices.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            let intersects = ((vi.y > p.y) != (vj.y > p.y))
                && (p.x < (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x);
            if intersects {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Returns `true` if this polygon and `other` overlap: they share interior
    /// area, one contains the other, or their boundaries cross.
    pub fn intersects_polygon(&self, other: &Polygon) -> bool {
        if self.is_degenerate() || other.is_degenerate() {
            return false;
        }
        // Fast reject via bounding boxes.
        if let (Some((lo_a, hi_a)), Some((lo_b, hi_b))) =
            (self.bounding_box(), other.bounding_box())
        {
            if lo_a.x > hi_b.x + EPS
                || lo_b.x > hi_a.x + EPS
                || lo_a.y > hi_b.y + EPS
                || lo_b.y > hi_a.y + EPS
            {
                return false;
            }
        }
        // Edge crossings.
        for ea in self.edges() {
            for eb in other.edges() {
                if ea.intersects(&eb) {
                    return true;
                }
            }
        }
        // One fully inside the other.
        self.contains_or_boundary(other.vertices[0]) || other.contains_or_boundary(self.vertices[0])
    }

    /// Returns `true` if the segment `s` crosses or touches this polygon.
    pub fn intersects_segment(&self, s: &Segment) -> bool {
        if self.is_degenerate() {
            return false;
        }
        self.contains_or_boundary(s.a)
            || self.contains_or_boundary(s.b)
            || self.edges().any(|e| e.intersects(s))
    }

    /// Number of times segment `s` crosses the polygon boundary, counting each
    /// crossed edge once. Used by the radio propagation model to count wall
    /// penetrations between an access point and a receiver.
    pub fn count_edge_crossings(&self, s: &Segment) -> usize {
        self.edges().filter(|e| e.intersects(s)).count()
    }
}

/// A collection of polygons modelling the topological entities of an indoor
/// space (rooms, walls, pillars), as used by `TopoAC`'s `EntityExist` check.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MultiPolygon {
    polygons: Vec<Polygon>,
}

impl MultiPolygon {
    /// Creates a multipolygon from individual polygons, dropping degenerate
    /// ones (fewer than three vertices).
    pub fn new(polygons: Vec<Polygon>) -> Self {
        Self {
            polygons: polygons
                .into_iter()
                .filter(|p| !p.is_degenerate())
                .collect(),
        }
    }

    /// An empty multipolygon (no topological entities).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The member polygons.
    pub fn polygons(&self) -> &[Polygon] {
        &self.polygons
    }

    /// Number of member polygons.
    pub fn len(&self) -> usize {
        self.polygons.len()
    }

    /// Returns `true` if there are no member polygons.
    pub fn is_empty(&self) -> bool {
        self.polygons.is_empty()
    }

    /// Adds a polygon unless it is degenerate.
    pub fn push(&mut self, polygon: Polygon) {
        if !polygon.is_degenerate() {
            self.polygons.push(polygon);
        }
    }

    /// Total area of all member polygons (overlaps counted twice).
    pub fn area(&self) -> f64 {
        self.polygons.iter().map(|p| p.area()).sum()
    }

    /// Returns `true` if any member polygon contains `p` (boundary included).
    pub fn contains(&self, p: Point) -> bool {
        self.polygons
            .iter()
            .any(|poly| poly.contains_or_boundary(p))
    }

    /// Returns `true` if any member polygon overlaps `other`.
    pub fn intersects_polygon(&self, other: &Polygon) -> bool {
        self.polygons
            .iter()
            .any(|poly| poly.intersects_polygon(other))
    }

    /// Returns `true` if any member polygon crosses or touches the segment.
    pub fn intersects_segment(&self, s: &Segment) -> bool {
        self.polygons.iter().any(|poly| poly.intersects_segment(s))
    }

    /// Total number of member-polygon edges crossed by segment `s`.
    pub fn count_edge_crossings(&self, s: &Segment) -> usize {
        self.polygons
            .iter()
            .map(|poly| poly.count_edge_crossings(s))
            .sum()
    }
}

impl FromIterator<Polygon> for MultiPolygon {
    fn from_iter<T: IntoIterator<Item = Polygon>>(iter: T) -> Self {
        MultiPolygon::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    #[test]
    fn rectangle_area_perimeter_centroid() {
        let r = Polygon::rectangle(Point::new(1.0, 2.0), Point::new(4.0, 6.0));
        assert!((r.area() - 12.0).abs() < 1e-9);
        assert!((r.perimeter() - 14.0).abs() < 1e-9);
        let c = r.centroid();
        assert!((c.x - 2.5).abs() < 1e-9 && (c.y - 4.0).abs() < 1e-9);
    }

    #[test]
    fn signed_area_orientation() {
        let ccw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
        ]);
        let cw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
        ]);
        assert!(ccw.signed_area() > 0.0);
        assert!(cw.signed_area() < 0.0);
        assert!((ccw.area() - cw.area()).abs() < 1e-12);
    }

    #[test]
    fn containment_interior_boundary_exterior() {
        let sq = unit_square();
        assert!(sq.contains(Point::new(0.5, 0.5)));
        assert!(!sq.contains(Point::new(1.5, 0.5)));
        assert!(!sq.contains(Point::new(1.0, 0.5))); // boundary is not interior
        assert!(sq.contains_or_boundary(Point::new(1.0, 0.5)));
        assert!(sq.contains_or_boundary(Point::new(0.0, 0.0)));
        assert!(!sq.contains_or_boundary(Point::new(-0.1, 0.0)));
    }

    #[test]
    fn degenerate_polygons_contain_nothing() {
        let line = Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        assert!(line.is_degenerate());
        assert!(!line.contains(Point::new(0.5, 0.0)));
        assert_eq!(line.area(), 0.0);
    }

    #[test]
    fn polygon_intersection_cases() {
        let a = unit_square();
        // Overlapping.
        let b = Polygon::rectangle(Point::new(0.5, 0.5), Point::new(2.0, 2.0));
        assert!(a.intersects_polygon(&b));
        // Disjoint.
        let c = Polygon::rectangle(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        assert!(!a.intersects_polygon(&c));
        // Contained.
        let d = Polygon::rectangle(Point::new(0.25, 0.25), Point::new(0.75, 0.75));
        assert!(a.intersects_polygon(&d));
        assert!(d.intersects_polygon(&a));
        // Touching edge counts as intersecting.
        let e = Polygon::rectangle(Point::new(1.0, 0.0), Point::new(2.0, 1.0));
        assert!(a.intersects_polygon(&e));
    }

    #[test]
    fn segment_intersection_and_crossing_count() {
        let sq = unit_square();
        let through = Segment::new(Point::new(-1.0, 0.5), Point::new(2.0, 0.5));
        assert!(sq.intersects_segment(&through));
        assert_eq!(sq.count_edge_crossings(&through), 2);

        let outside = Segment::new(Point::new(-1.0, 2.0), Point::new(2.0, 2.0));
        assert!(!sq.intersects_segment(&outside));
        assert_eq!(sq.count_edge_crossings(&outside), 0);

        let inside = Segment::new(Point::new(0.2, 0.2), Point::new(0.8, 0.8));
        assert!(sq.intersects_segment(&inside));
        assert_eq!(sq.count_edge_crossings(&inside), 0);
    }

    #[test]
    fn multipolygon_behaviour() {
        let mut mp = MultiPolygon::empty();
        assert!(mp.is_empty());
        mp.push(unit_square());
        mp.push(Polygon::rectangle(
            Point::new(3.0, 3.0),
            Point::new(4.0, 4.0),
        ));
        // Degenerate polygons are dropped.
        mp.push(Polygon::new(vec![Point::new(0.0, 0.0)]));
        assert_eq!(mp.len(), 2);
        assert!((mp.area() - 2.0).abs() < 1e-9);

        assert!(mp.contains(Point::new(0.5, 0.5)));
        assert!(mp.contains(Point::new(3.5, 3.5)));
        assert!(!mp.contains(Point::new(2.0, 2.0)));

        let hull = Polygon::rectangle(Point::new(2.5, 2.5), Point::new(5.0, 5.0));
        assert!(mp.intersects_polygon(&hull));
        let far = Polygon::rectangle(Point::new(10.0, 10.0), Point::new(11.0, 11.0));
        assert!(!mp.intersects_polygon(&far));

        let wall_crossing = Segment::new(Point::new(2.5, 3.5), Point::new(4.5, 3.5));
        assert_eq!(mp.count_edge_crossings(&wall_crossing), 2);
    }

    #[test]
    fn from_iterator_builds_multipolygon() {
        let mp: MultiPolygon = vec![unit_square(), unit_square()].into_iter().collect();
        assert_eq!(mp.len(), 2);
    }

    #[test]
    fn bounding_box() {
        let p = Polygon::new(vec![
            Point::new(1.0, 5.0),
            Point::new(4.0, 2.0),
            Point::new(-1.0, 3.0),
        ]);
        let (lo, hi) = p.bounding_box().unwrap();
        assert_eq!(lo, Point::new(-1.0, 2.0));
        assert_eq!(hi, Point::new(4.0, 5.0));
        assert!(Polygon::default().bounding_box().is_none());
    }
}
