//! `DasaKM`: differentiation-accuracy-aware, sampling-based K-means
//! (Algorithm 3), together with the ground-truth sampling procedure and the
//! differentiation accuracy (DA) metric of Section III-B.

use std::cmp::Ordering;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use rm_clustering::{euclidean_distance_sq, kmeans, Clustering, KMeansConfig};

use crate::differentiation::ClusteringStrategy;
use crate::samples::{DiffSample, SampleConfig};

/// One sampled ground-truth missing entry used by the DA metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroundTruthEntry {
    /// Index of the sample (radio-map record) the entry belongs to.
    pub sample_index: usize,
    /// Access-point dimension of the entry.
    pub ap: usize,
    /// `true` if the entry is a sampled MAR, `false` for a sampled MNAR.
    pub is_mar: bool,
}

/// A sampled ground-truth set at one MNAR:MAR proportion `γ`, together with
/// the modified sample profiles (`X_γ`) in which the sampled MAR observations
/// have been nullified.
#[derive(Debug, Clone)]
pub struct GroundTruthSet {
    /// The labelled missing entries.
    pub entries: Vec<GroundTruthEntry>,
    /// Sample profiles after nullifying the sampled MAR observations.
    pub modified_profiles: Vec<Vec<f64>>,
    /// The proportion γ = #MNARs / #MARs this set was sampled at.
    pub gamma: f64,
}

/// Ground-truth sampling (Section III-B):
///
/// * **MARs** are created by nullifying randomly chosen *observed* entries —
///   they are observable by construction, so a correct differentiator should
///   call them MAR.
/// * **MNARs** are taken from groups of `adjacency_group_size` spatially
///   adjacent samples that *all* miss the same AP — the AP is plausibly
///   unobservable over that whole area.
pub fn sample_ground_truth(
    samples: &[DiffSample],
    gamma: f64,
    target_mnars: usize,
    adjacency_group_size: usize,
    rng: &mut impl Rng,
) -> GroundTruthSet {
    let n = samples.len();
    let num_aps = samples.first().map(|s| s.profile.len()).unwrap_or(0);
    let mut entries = Vec::new();
    let mut modified_profiles: Vec<Vec<f64>> = samples.iter().map(|s| s.profile.clone()).collect();

    // ---- Sample MNARs from adjacent groups that jointly miss an AP. ----
    let mut mnar_entries: Vec<GroundTruthEntry> = Vec::new();
    if n > 0 && num_aps > 0 {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        'outer: for &seed in &order {
            // The seed's nearest neighbours by location.
            let seed_loc = samples[seed].location.unwrap_or_default();
            let mut by_distance: Vec<usize> = (0..n).filter(|&i| i != seed).collect();
            by_distance.sort_by(|&a, &b| {
                let da = samples[a]
                    .location
                    .unwrap_or_default()
                    .distance_squared(seed_loc);
                let db = samples[b]
                    .location
                    .unwrap_or_default()
                    .distance_squared(seed_loc);
                da.partial_cmp(&db).unwrap_or(Ordering::Equal)
            });
            let group: Vec<usize> = std::iter::once(seed)
                .chain(
                    by_distance
                        .into_iter()
                        .take(adjacency_group_size.saturating_sub(1)),
                )
                .collect();
            for ap in 0..num_aps {
                let all_missing = group.iter().all(|&i| samples[i].profile[ap] < 0.5);
                if all_missing {
                    for &i in &group {
                        mnar_entries.push(GroundTruthEntry {
                            sample_index: i,
                            ap,
                            is_mar: false,
                        });
                        if mnar_entries.len() >= target_mnars {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }

    // ---- Sample MARs by nullifying observed entries. ----
    let target_mars = if gamma > 0.0 {
        ((mnar_entries.len() as f64) / gamma).round() as usize
    } else {
        mnar_entries.len()
    };
    let mut observed: Vec<(usize, usize)> = Vec::new();
    for (i, s) in samples.iter().enumerate() {
        for (ap, &v) in s.profile.iter().enumerate() {
            if v > 0.5 {
                observed.push((i, ap));
            }
        }
    }
    observed.shuffle(rng);
    for &(i, ap) in observed.iter().take(target_mars) {
        modified_profiles[i][ap] = 0.0;
        entries.push(GroundTruthEntry {
            sample_index: i,
            ap,
            is_mar: true,
        });
    }
    entries.extend(mnar_entries);

    GroundTruthSet {
        entries,
        modified_profiles,
        gamma,
    }
}

/// Differentiation accuracy (DA): the balanced accuracy of classifying the
/// ground-truth entries using the given clustering — the arithmetic mean of
/// the true-positive rate over MARs and the true-negative rate over MNARs.
///
/// Returns 0.5 (chance level) when either class is absent from the ground
/// truth, so that degenerate samplings do not dominate the average.
pub fn differentiation_accuracy(
    ground_truth: &GroundTruthSet,
    clustering: &Clustering,
    eta: f64,
) -> f64 {
    if clustering.is_empty() {
        return 0.5;
    }
    let clusters = clustering.clusters();
    let assignments = clustering.assignments();
    let num_aps = ground_truth
        .modified_profiles
        .first()
        .map(Vec::len)
        .unwrap_or(0);

    // Observed fraction per (cluster, ap) on the modified profiles.
    let mut fractions = vec![vec![0.0f64; num_aps]; clusters.len()];
    for (c, members) in clusters.iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        for ap in 0..num_aps {
            let observed = members
                .iter()
                .filter(|&&m| ground_truth.modified_profiles[m][ap] > 0.5)
                .count();
            fractions[c][ap] = observed as f64 / members.len() as f64;
        }
    }

    let mut mar_total = 0usize;
    let mut mar_correct = 0usize;
    let mut mnar_total = 0usize;
    let mut mnar_correct = 0usize;
    for entry in &ground_truth.entries {
        if entry.sample_index >= assignments.len() || entry.ap >= num_aps {
            continue;
        }
        let cluster = assignments[entry.sample_index];
        let predicted_mar = fractions[cluster][entry.ap] > eta;
        if entry.is_mar {
            mar_total += 1;
            if predicted_mar {
                mar_correct += 1;
            }
        } else {
            mnar_total += 1;
            if !predicted_mar {
                mnar_correct += 1;
            }
        }
    }
    if mar_total == 0 || mnar_total == 0 {
        return 0.5;
    }
    let tpr = mar_correct as f64 / mar_total as f64;
    let tnr = mnar_correct as f64 / mnar_total as f64;
    (tpr + tnr) / 2.0
}

/// `DasaKM` (Algorithm 3): selects the number of clusters `K` by maximising
/// the average differentiation accuracy over ground-truth sets sampled at
/// several MNAR:MAR proportions, then returns the K-means clustering of the
/// full sample set with the selected `K`.
pub struct DasaKm {
    /// Upper bound `U` on the searched `K`.
    pub upper_bound_k: usize,
    /// Step between candidate `K` values (1 reproduces the exhaustive search of
    /// the paper; larger steps trade accuracy for speed).
    pub k_step: usize,
    /// The MNAR:MAR proportions `Γ` used for ground-truth sampling.
    pub proportions: Vec<f64>,
    /// Number of MNAR entries sampled per ground-truth set.
    pub mnar_sample_count: usize,
    /// Size of the adjacent-RP groups used to sample MNARs (6 in the paper).
    pub adjacency_group_size: usize,
    /// Fraction threshold η used when computing DA.
    pub eta: f64,
    /// Feature construction configuration.
    pub sample_config: SampleConfig,
    /// RNG seed (the strategy is deterministic given the seed).
    pub seed: u64,
}

impl DasaKm {
    /// Creates a `DasaKM` strategy with defaults sized for the synthetic
    /// datasets of this workspace. The paper uses `U = 200` and
    /// `Γ = 1..=20`; the defaults here are smaller so that the exhaustive
    /// search stays tractable on a CPU, and can be raised via the public
    /// fields.
    pub fn new(seed: u64) -> Self {
        Self {
            upper_bound_k: 40,
            k_step: 4,
            proportions: vec![1.0, 2.0, 4.0, 8.0],
            mnar_sample_count: 200,
            adjacency_group_size: 6,
            eta: 0.1,
            sample_config: SampleConfig::default(),
            seed,
        }
    }

    /// Overrides the upper bound `U` and step of the `K` search.
    pub fn with_k_search(mut self, upper_bound: usize, step: usize) -> Self {
        self.upper_bound_k = upper_bound;
        self.k_step = step.max(1);
        self
    }

    /// Selects the best `K` (returned for introspection / tests).
    pub fn select_k(&self, samples: &[DiffSample]) -> usize {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let ground_truths: Vec<GroundTruthSet> = self
            .proportions
            .iter()
            .map(|&gamma| {
                sample_ground_truth(
                    samples,
                    gamma,
                    self.mnar_sample_count,
                    self.adjacency_group_size,
                    &mut rng,
                )
            })
            .collect();

        // Pre-build the feature matrices of each modified sample set.
        let feature_sets: Vec<Vec<Vec<f64>>> = ground_truths
            .iter()
            .map(|gt| {
                samples
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        let mut v = gt.modified_profiles[i].clone();
                        let loc = s.location.unwrap_or_default();
                        v.push(loc.x * self.sample_config.location_weight);
                        v.push(loc.y * self.sample_config.location_weight);
                        v
                    })
                    .collect()
            })
            .collect();

        let mut best_k = 1;
        let mut best_da = f64::NEG_INFINITY;
        let mut k = 2;
        while k <= self.upper_bound_k.max(2) {
            let mut total = 0.0;
            for (gt, features) in ground_truths.iter().zip(feature_sets.iter()) {
                let clustering = kmeans(features, &KMeansConfig::new(k), &mut rng);
                total += differentiation_accuracy(gt, &clustering, self.eta);
            }
            let avg = total / ground_truths.len().max(1) as f64;
            if avg > best_da {
                best_da = avg;
                best_k = k;
            }
            k += self.k_step;
        }
        best_k
    }
}

impl ClusteringStrategy for DasaKm {
    fn cluster(&self, samples: &[DiffSample]) -> Clustering {
        if samples.is_empty() {
            return Clustering::empty();
        }
        let k = self.select_k(samples);
        let features: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| s.feature_vector(self.sample_config.location_weight))
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
        kmeans(&features, &KMeansConfig::new(k), &mut rng)
    }

    fn name(&self) -> &'static str {
        "DasaKM"
    }
}

/// Squared distance helper re-exported for tests of nearest-cluster logic.
pub fn nearest_cluster(feature: &[f64], clustering: &Clustering) -> Option<usize> {
    clustering
        .centroids()
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            euclidean_distance_sq(feature, a)
                .partial_cmp(&euclidean_distance_sq(feature, b))
                .unwrap_or(Ordering::Equal)
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_geometry::Point;

    /// Builds samples in two spatial groups: group A (near origin) observes
    /// APs {0,1}, group B (far) observes AP {2}. AP 3 is observed nowhere.
    fn structured_samples() -> Vec<DiffSample> {
        let mut samples = Vec::new();
        for i in 0..12 {
            let (profile, location) = if i < 6 {
                (vec![1.0, 1.0, 0.0, 0.0], Point::new(i as f64 * 0.5, 0.0))
            } else {
                (
                    vec![0.0, 0.0, 1.0, 0.0],
                    Point::new(50.0 + i as f64 * 0.5, 0.0),
                )
            };
            samples.push(DiffSample {
                record_index: i,
                profile,
                location: Some(location),
            });
        }
        samples
    }

    #[test]
    fn ground_truth_sampling_respects_gamma() {
        let samples = structured_samples();
        let mut rng = StdRng::seed_from_u64(1);
        let gt = sample_ground_truth(&samples, 2.0, 12, 6, &mut rng);
        let mars = gt.entries.iter().filter(|e| e.is_mar).count();
        let mnars = gt.entries.iter().filter(|e| !e.is_mar).count();
        assert!(mnars > 0, "AP 3 is missing everywhere, MNARs must be found");
        assert!(mars > 0);
        // γ = #MNAR / #MAR ≈ 2.
        let ratio = mnars as f64 / mars as f64;
        assert!((1.0..=4.0).contains(&ratio), "ratio {ratio}");
        // Sampled MARs are nullified in the modified profiles.
        for e in gt.entries.iter().filter(|e| e.is_mar) {
            assert_eq!(gt.modified_profiles[e.sample_index][e.ap], 0.0);
            assert_eq!(samples[e.sample_index].profile[e.ap], 1.0);
        }
    }

    #[test]
    fn da_is_high_for_a_good_clustering_and_low_for_a_bad_one() {
        let samples = structured_samples();
        let mut rng = StdRng::seed_from_u64(2);
        let gt = sample_ground_truth(&samples, 1.0, 12, 6, &mut rng);

        // Good clustering: the two spatial groups.
        let good = Clustering::new(
            (0..12).map(|i| usize::from(i >= 6)).collect(),
            vec![vec![0.0], vec![1.0]],
        );
        // Bad clustering: everything in one cluster.
        let bad = Clustering::new(vec![0; 12], vec![vec![0.0]]);
        let da_good = differentiation_accuracy(&gt, &good, 0.1);
        let da_bad = differentiation_accuracy(&gt, &bad, 0.1);
        assert!(da_good >= da_bad, "good {da_good} < bad {da_bad}");
        assert!(da_good > 0.6);
    }

    #[test]
    fn da_returns_chance_level_for_degenerate_inputs() {
        let gt = GroundTruthSet {
            entries: vec![],
            modified_profiles: vec![vec![1.0]],
            gamma: 1.0,
        };
        let clustering = Clustering::new(vec![0], vec![vec![1.0]]);
        assert_eq!(differentiation_accuracy(&gt, &clustering, 0.1), 0.5);
        assert_eq!(
            differentiation_accuracy(&gt, &Clustering::empty(), 0.1),
            0.5
        );
    }

    #[test]
    fn dasakm_clusters_all_samples() {
        let samples = structured_samples();
        let strategy = DasaKm {
            upper_bound_k: 6,
            k_step: 2,
            mnar_sample_count: 12,
            proportions: vec![1.0, 2.0],
            ..DasaKm::new(7)
        };
        let clustering = strategy.cluster(&samples);
        assert_eq!(clustering.num_samples(), 12);
        assert!(clustering.num_clusters() >= 2);
        assert_eq!(strategy.name(), "DasaKM");
    }

    #[test]
    fn dasakm_separates_the_two_spatial_groups() {
        let samples = structured_samples();
        let strategy = DasaKm {
            upper_bound_k: 4,
            k_step: 1,
            mnar_sample_count: 12,
            proportions: vec![1.0],
            ..DasaKm::new(3)
        };
        let clustering = strategy.cluster(&samples);
        // No cluster should contain members of both spatial groups.
        for members in clustering.clusters() {
            let has_a = members.iter().any(|&m| m < 6);
            let has_b = members.iter().any(|&m| m >= 6);
            assert!(!(has_a && has_b), "cluster mixes the two groups");
        }
    }

    #[test]
    fn nearest_cluster_picks_closest_centroid() {
        let clustering = Clustering::new(vec![0, 1], vec![vec![0.0, 0.0], vec![10.0, 10.0]]);
        assert_eq!(nearest_cluster(&[1.0, 1.0], &clustering), Some(0));
        assert_eq!(nearest_cluster(&[9.0, 9.0], &clustering), Some(1));
        assert_eq!(nearest_cluster(&[0.0], &Clustering::empty()), None);
    }

    #[test]
    fn empty_samples_yield_empty_clustering() {
        let strategy = DasaKm::new(1);
        assert!(strategy.cluster(&[]).is_empty());
    }
}
