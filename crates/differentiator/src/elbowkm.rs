//! `ElbowKM`: the baseline differentiator that selects `K` for K-means with
//! the elbow method (Section V-B), disregarding differentiation accuracy.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rm_clustering::{elbow_method, kmeans, Clustering, KMeansConfig};

use crate::differentiation::ClusteringStrategy;
use crate::samples::{DiffSample, SampleConfig};

/// K-means with the elbow method for selecting `K`.
pub struct ElbowKm {
    /// Upper bound on the searched `K` (the paper uses 200; smaller values
    /// keep the search tractable on the synthetic datasets).
    pub upper_bound_k: usize,
    /// Feature construction configuration.
    pub sample_config: SampleConfig,
    /// RNG seed.
    pub seed: u64,
}

impl ElbowKm {
    /// Creates the strategy with a default `K` upper bound of 40.
    pub fn new(seed: u64) -> Self {
        Self {
            upper_bound_k: 40,
            sample_config: SampleConfig::default(),
            seed,
        }
    }

    /// Overrides the `K` upper bound.
    pub fn with_upper_bound(mut self, upper_bound_k: usize) -> Self {
        self.upper_bound_k = upper_bound_k;
        self
    }
}

impl ClusteringStrategy for ElbowKm {
    fn cluster(&self, samples: &[DiffSample]) -> Clustering {
        if samples.is_empty() {
            return Clustering::empty();
        }
        let features: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| s.feature_vector(self.sample_config.location_weight))
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let k = elbow_method(&features, self.upper_bound_k, &mut rng).max(1);
        kmeans(&features, &KMeansConfig::new(k), &mut rng)
    }

    fn name(&self) -> &'static str {
        "ElbowKM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_geometry::Point;

    fn blob_samples() -> Vec<DiffSample> {
        let mut samples = Vec::new();
        for i in 0..20 {
            let (x, profile) = if i < 10 {
                (i as f64 * 0.3, vec![1.0, 0.0])
            } else {
                (60.0 + i as f64 * 0.3, vec![0.0, 1.0])
            };
            samples.push(DiffSample {
                record_index: i,
                profile,
                location: Some(Point::new(x, 0.0)),
            });
        }
        samples
    }

    #[test]
    fn elbowkm_clusters_all_samples() {
        let strategy = ElbowKm::new(1).with_upper_bound(8);
        let clustering = strategy.cluster(&blob_samples());
        assert_eq!(clustering.num_samples(), 20);
        assert!(clustering.num_clusters() >= 1);
        assert_eq!(strategy.name(), "ElbowKM");
    }

    #[test]
    fn elbowkm_handles_empty_input() {
        assert!(ElbowKm::new(1).cluster(&[]).is_empty());
    }

    #[test]
    fn elbowkm_is_deterministic_per_seed() {
        let samples = blob_samples();
        let a = ElbowKm::new(9).with_upper_bound(6).cluster(&samples);
        let b = ElbowKm::new(9).with_upper_bound(6).cluster(&samples);
        assert_eq!(a.assignments(), b.assignments());
    }
}
