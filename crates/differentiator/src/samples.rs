//! Construction of the differentiation sample set `X` (Algorithm 2, lines 2–5).
//!
//! Each radio-map record contributes one sample `x_i = b_i ⊕ l̂_i`: the
//! binarized AP profile of its fingerprint concatenated with its (possibly
//! linearly interpolated) reference-point location.

use rm_geometry::Point;
use rm_radiomap::RadioMap;

/// One differentiation sample: the binary AP profile and the (interpolated)
/// location of a radio-map record.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffSample {
    /// Index of the originating radio-map record.
    pub record_index: usize,
    /// Binary AP profile `b_i` (1 = observed, 0 = missing).
    pub profile: Vec<f64>,
    /// The record's location: observed, or linearly interpolated along its
    /// survey path. `None` when the path has no observed RP at all.
    pub location: Option<Point>,
}

impl DiffSample {
    /// The concatenated feature vector `b_i ⊕ l̂_i` used for clustering.
    /// The location is scaled by `location_weight`; records without any
    /// location use the venue-agnostic fallback of zeros (their profile still
    /// participates in clustering).
    pub fn feature_vector(&self, location_weight: f64) -> Vec<f64> {
        let mut v = self.profile.clone();
        match self.location {
            Some(p) => {
                v.push(p.x * location_weight);
                v.push(p.y * location_weight);
            }
            None => {
                v.push(0.0);
                v.push(0.0);
            }
        }
        v
    }
}

/// Configuration of sample construction.
#[derive(Debug, Clone)]
pub struct SampleConfig {
    /// Weight applied to the location coordinates when concatenating them to
    /// the binary profile. The paper concatenates raw coordinates; a weight
    /// below 1 balances the metre-scale coordinates against the 0/1 profile.
    pub location_weight: f64,
}

impl Default for SampleConfig {
    fn default() -> Self {
        Self {
            location_weight: 0.25,
        }
    }
}

/// Builds the differentiation samples for every record of the radio map
/// (binarized profile + interpolated location).
pub fn build_samples(map: &RadioMap) -> Vec<DiffSample> {
    let interpolated = map.interpolate_rps();
    map.records()
        .iter()
        .enumerate()
        .map(|(i, record)| DiffSample {
            record_index: i,
            profile: record.fingerprint.binarize(),
            location: interpolated[i],
        })
        .collect()
}

/// Converts samples to the concatenated feature vectors used by the clustering
/// algorithms.
pub fn feature_matrix(samples: &[DiffSample], config: &SampleConfig) -> Vec<Vec<f64>> {
    samples
        .iter()
        .map(|s| s.feature_vector(config.location_weight))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_radiomap::{Fingerprint, RadioMapRecord};

    fn small_map() -> RadioMap {
        let records = vec![
            RadioMapRecord::new(
                Fingerprint::new(vec![Some(-70.0), None, Some(-80.0)]),
                Some(Point::new(0.0, 0.0)),
                0.0,
                0,
            ),
            RadioMapRecord::new(
                Fingerprint::new(vec![None, Some(-60.0), None]),
                None,
                5.0,
                0,
            ),
            RadioMapRecord::new(
                Fingerprint::new(vec![Some(-72.0), None, None]),
                Some(Point::new(10.0, 0.0)),
                10.0,
                0,
            ),
        ];
        RadioMap::new(records, 3)
    }

    #[test]
    fn samples_binarize_and_interpolate() {
        let samples = build_samples(&small_map());
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].profile, vec![1.0, 0.0, 1.0]);
        assert_eq!(samples[1].profile, vec![0.0, 1.0, 0.0]);
        // Middle record at t=5 between (0,0) at t=0 and (10,0) at t=10.
        let loc = samples[1].location.unwrap();
        assert!((loc.x - 5.0).abs() < 1e-9 && loc.y.abs() < 1e-9);
    }

    #[test]
    fn feature_vector_appends_weighted_location() {
        let samples = build_samples(&small_map());
        let v = samples[2].feature_vector(0.5);
        assert_eq!(v.len(), 5);
        assert_eq!(v[3], 5.0); // 10.0 * 0.5
        assert_eq!(v[4], 0.0);
    }

    #[test]
    fn missing_location_falls_back_to_zeros() {
        let sample = DiffSample {
            record_index: 0,
            profile: vec![1.0, 0.0],
            location: None,
        };
        assert_eq!(sample.feature_vector(1.0), vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn feature_matrix_has_one_row_per_sample() {
        let samples = build_samples(&small_map());
        let matrix = feature_matrix(&samples, &SampleConfig::default());
        assert_eq!(matrix.len(), 3);
        assert!(matrix.iter().all(|r| r.len() == 5));
    }
}
