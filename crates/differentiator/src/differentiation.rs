//! The differentiation procedure (Algorithm 2) and the baseline
//! differentiators that skip differentiation altogether.

use rm_clustering::Clustering;
use rm_radiomap::{EntryKind, MaskMatrix, RadioMap};

use crate::samples::{build_samples, DiffSample};

/// A strategy that clusters the differentiation samples. Implemented by
/// `DasaKM`, `TopoAC` and `ElbowKM`.
pub trait ClusteringStrategy {
    /// Clusters the samples; the returned [`Clustering`] must assign every
    /// sample to a cluster.
    fn cluster(&self, samples: &[DiffSample]) -> Clustering;

    /// Human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}

/// A missing-RSSI differentiator: maps a sparse radio map to its MNAR/MAR
/// mask matrix.
pub trait Differentiator {
    /// Classifies every missing RSSI in `map` as MAR or MNAR.
    fn differentiate(&self, map: &RadioMap) -> MaskMatrix;

    /// Human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}

/// Algorithm 2: clusters the AP profiles and, within each cluster, marks
/// missing RSSIs of an AP as MAR when the AP is observed by more than a
/// fraction `eta` of the cluster's samples (and as MNAR otherwise).
pub struct ClusteringDifferentiator<S: ClusteringStrategy> {
    strategy: S,
    /// The fraction threshold `η` of Algorithm 2 (0.1 by default, the best
    /// value in the paper's Fig. 13).
    pub eta: f64,
}

impl<S: ClusteringStrategy> ClusteringDifferentiator<S> {
    /// Creates the differentiator with the paper's default threshold η = 0.1.
    pub fn new(strategy: S) -> Self {
        Self { strategy, eta: 0.1 }
    }

    /// Overrides the fraction threshold η.
    pub fn with_eta(mut self, eta: f64) -> Self {
        self.eta = eta;
        self
    }

    /// The underlying clustering strategy.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }
}

impl<S: ClusteringStrategy> Differentiator for ClusteringDifferentiator<S> {
    fn differentiate(&self, map: &RadioMap) -> MaskMatrix {
        let samples = build_samples(map);
        if samples.is_empty() {
            return MaskMatrix::all_observed(0, map.num_aps());
        }
        let clustering = self.strategy.cluster(&samples);
        classify_with_clustering(map, &samples, &clustering, self.eta)
    }

    fn name(&self) -> &'static str {
        self.strategy.name()
    }
}

/// Shared mask construction used both by Algorithm 2 and by the DA metric:
/// given a clustering of the samples, per cluster and per AP dimension compute
/// the observed fraction `η_j`; missing entries are MAR when `η_j > eta`,
/// MNAR otherwise.
pub fn classify_with_clustering(
    map: &RadioMap,
    samples: &[DiffSample],
    clustering: &Clustering,
    eta: f64,
) -> MaskMatrix {
    let num_aps = map.num_aps();
    let mut mask = MaskMatrix::all_observed(map.len(), num_aps);

    for members in clustering.clusters() {
        if members.is_empty() {
            continue;
        }
        for ap in 0..num_aps {
            let observed = members
                .iter()
                .filter(|&&s| samples[s].profile[ap] > 0.5)
                .count();
            let fraction = observed as f64 / members.len() as f64;
            let kind = if fraction > eta {
                EntryKind::Mar
            } else {
                EntryKind::Mnar
            };
            for &s in &members {
                let record = samples[s].record_index;
                if map.record(record).fingerprint.get(ap).is_none() {
                    mask.set(record, ap, kind);
                }
            }
        }
    }
    mask
}

/// Baseline that treats every missing RSSI as MAR (general data-imputation
/// methods implicitly do this).
#[derive(Debug, Clone, Copy, Default)]
pub struct MarOnly;

impl Differentiator for MarOnly {
    fn differentiate(&self, map: &RadioMap) -> MaskMatrix {
        let mut mask = MaskMatrix::all_observed(map.len(), map.num_aps());
        for (i, record) in map.records().iter().enumerate() {
            for ap in 0..map.num_aps() {
                if record.fingerprint.get(ap).is_none() {
                    mask.set(i, ap, EntryKind::Mar);
                }
            }
        }
        mask
    }

    fn name(&self) -> &'static str {
        "MAR-only"
    }
}

/// Baseline that treats every missing RSSI as MNAR (traditional radio-map
/// completion methods fill them all with −100 dBm).
#[derive(Debug, Clone, Copy, Default)]
pub struct MnarOnly;

impl Differentiator for MnarOnly {
    fn differentiate(&self, map: &RadioMap) -> MaskMatrix {
        let mut mask = MaskMatrix::all_observed(map.len(), map.num_aps());
        for (i, record) in map.records().iter().enumerate() {
            for ap in 0..map.num_aps() {
                if record.fingerprint.get(ap).is_none() {
                    mask.set(i, ap, EntryKind::Mnar);
                }
            }
        }
        mask
    }

    fn name(&self) -> &'static str {
        "MNAR-only"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_geometry::Point;
    use rm_radiomap::{Fingerprint, RadioMapRecord};

    /// A clustering strategy that puts everything in one cluster.
    struct SingleCluster;
    impl ClusteringStrategy for SingleCluster {
        fn cluster(&self, samples: &[DiffSample]) -> Clustering {
            Clustering::new(vec![0; samples.len()], vec![vec![0.0]])
        }
        fn name(&self) -> &'static str {
            "single"
        }
    }

    /// Map with 4 records over 2 APs. AP 0 observed by 3/4 records (missing in
    /// one: that null should be MAR for η < 0.75). AP 1 observed by 1/4
    /// records (η_1 = 0.25).
    fn test_map() -> RadioMap {
        let mk = |a: Option<f64>, b: Option<f64>, i: usize| {
            RadioMapRecord::new(
                Fingerprint::new(vec![a, b]),
                Some(Point::new(i as f64, 0.0)),
                i as f64,
                0,
            )
        };
        RadioMap::new(
            vec![
                mk(Some(-70.0), None, 0),
                mk(Some(-71.0), None, 1),
                mk(Some(-69.0), Some(-80.0), 2),
                mk(None, None, 3),
            ],
            2,
        )
    }

    #[test]
    fn eta_controls_mar_mnar_split() {
        let map = test_map();
        // η = 0.1: AP0 fraction 0.75 > 0.1 -> MAR; AP1 fraction 0.25 > 0.1 -> MAR.
        let diff = ClusteringDifferentiator::new(SingleCluster).with_eta(0.1);
        let mask = diff.differentiate(&map);
        assert_eq!(mask.get(3, 0), EntryKind::Mar);
        assert_eq!(mask.get(0, 1), EntryKind::Mar);

        // η = 0.5: AP0 still MAR, AP1 (0.25 <= 0.5) becomes MNAR.
        let diff = ClusteringDifferentiator::new(SingleCluster).with_eta(0.5);
        let mask = diff.differentiate(&map);
        assert_eq!(mask.get(3, 0), EntryKind::Mar);
        assert_eq!(mask.get(0, 1), EntryKind::Mnar);

        // η = 0.9: everything missing becomes MNAR.
        let diff = ClusteringDifferentiator::new(SingleCluster).with_eta(0.9);
        let mask = diff.differentiate(&map);
        let (_, mar, _) = mask.counts();
        assert_eq!(mar, 0);
    }

    #[test]
    fn observed_entries_stay_observed() {
        let map = test_map();
        let mask = ClusteringDifferentiator::new(SingleCluster).differentiate(&map);
        assert_eq!(mask.get(0, 0), EntryKind::Observed);
        assert_eq!(mask.get(2, 1), EntryKind::Observed);
    }

    #[test]
    fn mar_only_and_mnar_only_baselines() {
        let map = test_map();
        let mar_mask = MarOnly.differentiate(&map);
        let (observed, mar, mnar) = mar_mask.counts();
        assert_eq!(observed, 4);
        assert_eq!(mar, 4);
        assert_eq!(mnar, 0);

        let mnar_mask = MnarOnly.differentiate(&map);
        let (observed, mar, mnar) = mnar_mask.counts();
        assert_eq!(observed, 4);
        assert_eq!(mar, 0);
        assert_eq!(mnar, 4);
        assert_eq!(MarOnly.name(), "MAR-only");
        assert_eq!(MnarOnly.name(), "MNAR-only");
    }

    #[test]
    fn empty_map_yields_empty_mask() {
        let map = RadioMap::empty(3);
        let mask = ClusteringDifferentiator::new(SingleCluster).differentiate(&map);
        assert_eq!(mask.rows(), 0);
    }

    #[test]
    fn eta_zero_marks_all_missing_as_mar_matching_mar_only() {
        // η = 0 means every AP with at least one observation in the cluster is
        // MAR; for APs never observed in the cluster the fraction is 0 which
        // is not > 0, so they stay MNAR. In this map both APs are observed at
        // least once, so the result matches MAR-only.
        let map = test_map();
        let mask = ClusteringDifferentiator::new(SingleCluster)
            .with_eta(0.0)
            .differentiate(&map);
        let (_, mar, mnar) = mask.counts();
        assert_eq!(mar, 4);
        assert_eq!(mnar, 0);
    }
}
