//! Missing-RSSI differentiation (Section III of the paper).
//!
//! A radio map's missing RSSIs have two very different causes:
//!
//! * **MNAR** (missing not at random) — the access point is simply
//!   unobservable at that location; the right imputation is the sentinel
//!   −100 dBm,
//! * **MAR** (missing at random) — the access point was observable but the
//!   reading was lost to a random event; the right imputation is a real value
//!   in `[-99, 0]` dBm predicted by the data imputer.
//!
//! This crate implements the clustering-based differentiator of Algorithm 2
//! with three interchangeable clustering strategies:
//!
//! * [`DasaKm`] — K-means whose `K` is selected by maximising the
//!   differentiation accuracy (DA) over sampled ground-truth sets,
//! * [`TopoAc`] — hyper-parameter-free agglomerative clustering constrained by
//!   the indoor topology (walls must not lie inside a cluster's convex hull),
//! * [`ElbowKm`] — the baseline that picks `K` with the elbow method,
//!
//! plus the no-differentiation baselines [`MarOnly`] and [`MnarOnly`].

pub mod dasakm;
pub mod differentiation;
pub mod elbowkm;
pub mod samples;
pub mod topoac;

pub use dasakm::{
    differentiation_accuracy, sample_ground_truth, DasaKm, GroundTruthEntry, GroundTruthSet,
};
pub use differentiation::{
    classify_with_clustering, ClusteringDifferentiator, ClusteringStrategy, Differentiator,
    MarOnly, MnarOnly,
};
pub use elbowkm::ElbowKm;
pub use samples::{build_samples, feature_matrix, DiffSample, SampleConfig};
pub use topoac::{entity_exist, TopoAc};

/// Convenience constructors for the differentiators evaluated in the paper.
pub mod presets {
    use rm_geometry::MultiPolygon;

    use super::{ClusteringDifferentiator, DasaKm, ElbowKm, TopoAc};

    /// `T-`: the topology-aware differentiator with the default η = 0.1.
    pub fn topo_ac(topology: MultiPolygon) -> ClusteringDifferentiator<TopoAc> {
        ClusteringDifferentiator::new(TopoAc::new(topology))
    }

    /// `D-`: the DA-aware sampled K-means differentiator with η = 0.1.
    pub fn dasa_km(seed: u64) -> ClusteringDifferentiator<DasaKm> {
        ClusteringDifferentiator::new(DasaKm::new(seed))
    }

    /// The elbow-method baseline differentiator with η = 0.1.
    pub fn elbow_km(seed: u64) -> ClusteringDifferentiator<ElbowKm> {
        ClusteringDifferentiator::new(ElbowKm::new(seed))
    }
}

#[cfg(test)]
mod integration_tests {
    use super::*;
    use rm_radiomap::EntryKind;
    use rm_venue_sim::{DatasetSpec, VenuePreset};

    /// On a synthetic venue with ground-truth observability, the clustering
    /// differentiators should classify clearly-unobservable APs as MNAR far
    /// more often than clearly-observable ones.
    #[test]
    fn topoac_differentiator_finds_mostly_mnars_on_synthetic_data() {
        let dataset = DatasetSpec::new(VenuePreset::KaideLike, 42)
            .with_scale(0.05)
            .build();
        let map = &dataset.radio_map;
        let differentiator = presets::topo_ac(dataset.venue.walls.clone());
        let mask = differentiator.differentiate(map);
        let (observed, mar, mnar) = mask.counts();
        assert_eq!(observed + mar + mnar, map.len() * map.num_aps());
        // The paper reports MARs at ~7-10% of all missing RSSIs; on the
        // synthetic data we only require the right order: far fewer MARs
        // than MNARs.
        assert!(
            mnar > mar,
            "expected MNARs ({mnar}) to dominate MARs ({mar})"
        );
        assert!(mar > 0, "some MARs should be detected");
    }

    #[test]
    fn differentiators_only_touch_missing_entries() {
        let dataset = DatasetSpec::new(VenuePreset::KaideLike, 7)
            .with_scale(0.05)
            .build();
        let map = &dataset.radio_map;
        let mask = presets::topo_ac(dataset.venue.walls.clone()).differentiate(map);
        for (record, ap, kind) in mask.iter() {
            let observed = map.record(record).fingerprint.get(ap).is_some();
            if observed {
                assert_eq!(kind, EntryKind::Observed);
            } else {
                assert_ne!(kind, EntryKind::Observed);
            }
        }
    }
}
