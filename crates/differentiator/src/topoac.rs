//! `TopoAC`: topology-aware agglomerative clustering (Algorithms 4 and 5).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rm_clustering::Clustering;
use rm_geometry::{convex_hull, MultiPolygon, Point, Polygon};

use crate::differentiation::ClusteringStrategy;
use crate::samples::{DiffSample, SampleConfig};

/// Algorithm 4 — `EntityExist`: returns `true` if the convex hull of the
/// cluster's member locations intersects any topological entity (wall,
/// obstacle) of the indoor space.
pub fn entity_exist(member_locations: &[Point], topology: &MultiPolygon) -> bool {
    if member_locations.len() < 2 || topology.is_empty() {
        return false;
    }
    let hull_points = convex_hull(member_locations);
    if hull_points.len() < 3 {
        // Degenerate hull (collinear RPs): check the segment they span.
        if hull_points.len() == 2 {
            let seg = rm_geometry::Segment::new(hull_points[0], hull_points[1]);
            return topology.intersects_segment(&seg);
        }
        return false;
    }
    let hull = Polygon::new(hull_points);
    topology.intersects_polygon(&hull)
}

/// Algorithm 5 — `TopoAC`: agglomerative clustering that only merges two
/// clusters when the merged cluster passes the topological examination of
/// Algorithm 4. No hyper-parameters are required.
///
/// Compared to the paper's pseudo-code this implementation adds a merge
/// distance cap (`max_merge_distance_m`) purely as a performance guard: two
/// clusters whose centroids are tens of metres apart always enclose walls in
/// the venues considered, so skipping them does not change the result but
/// avoids a quadratic blow-up of hull computations.
pub struct TopoAc {
    topology: MultiPolygon,
    sample_config: SampleConfig,
    /// Candidate pairs further apart than this (in metres, centroid-to-centroid
    /// in location space) are never considered for merging.
    pub max_merge_distance_m: f64,
}

impl TopoAc {
    /// Creates the strategy for a venue whose topological entities are given
    /// as a multipolygon.
    pub fn new(topology: MultiPolygon) -> Self {
        Self {
            topology,
            sample_config: SampleConfig::default(),
            max_merge_distance_m: 25.0,
        }
    }

    /// Overrides the sample feature configuration.
    pub fn with_sample_config(mut self, config: SampleConfig) -> Self {
        self.sample_config = config;
        self
    }

    /// Overrides the merge distance cap.
    pub fn with_max_merge_distance(mut self, metres: f64) -> Self {
        self.max_merge_distance_m = metres;
        self
    }
}

/// A candidate merge between two cluster versions, ordered by distance
/// (smallest first) for use in a max-heap via reversed ordering.
struct Candidate {
    distance: f64,
    a: usize,
    b: usize,
    version_a: u32,
    version_b: u32,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.distance == other.distance
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest distance on top.
        other
            .distance
            .partial_cmp(&self.distance)
            .unwrap_or(Ordering::Equal)
    }
}

struct ClusterState {
    members: Vec<usize>,
    /// Mean location of the members (location space only).
    centroid: Point,
    version: u32,
    alive: bool,
}

impl ClusteringStrategy for TopoAc {
    fn cluster(&self, samples: &[DiffSample]) -> Clustering {
        let n = samples.len();
        if n == 0 {
            return Clustering::empty();
        }
        let locations: Vec<Point> = samples
            .iter()
            .map(|s| s.location.unwrap_or(Point::origin()))
            .collect();

        let mut clusters: Vec<ClusterState> = locations
            .iter()
            .enumerate()
            .map(|(i, &loc)| ClusterState {
                members: vec![i],
                centroid: loc,
                version: 0,
                alive: true,
            })
            .collect();

        // Seed the candidate heap with all sufficiently close singleton pairs.
        let mut heap = BinaryHeap::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let d = locations[i].distance(locations[j]);
                if d <= self.max_merge_distance_m {
                    heap.push(Candidate {
                        distance: d,
                        a: i,
                        b: j,
                        version_a: 0,
                        version_b: 0,
                    });
                }
            }
        }

        while let Some(candidate) = heap.pop() {
            let (a, b) = (candidate.a, candidate.b);
            if !clusters[a].alive
                || !clusters[b].alive
                || clusters[a].version != candidate.version_a
                || clusters[b].version != candidate.version_b
            {
                continue; // Stale candidate.
            }
            // Topological examination of the would-be merged cluster.
            let mut merged_members = clusters[a].members.clone();
            merged_members.extend_from_slice(&clusters[b].members);
            let member_locations: Vec<Point> =
                merged_members.iter().map(|&m| locations[m]).collect();
            if entity_exist(&member_locations, &self.topology) {
                continue; // Merge rejected; the pair can never become valid again.
            }

            // Merge b into a.
            let centroid = rm_geometry::centroid(&member_locations).unwrap_or(Point::origin());
            clusters[b].alive = false;
            clusters[a].members = merged_members;
            clusters[a].centroid = centroid;
            clusters[a].version += 1;

            // New candidates between the merged cluster and every other live cluster.
            let version_a = clusters[a].version;
            for (other, state) in clusters.iter().enumerate() {
                if other == a || !state.alive {
                    continue;
                }
                let d = centroid.distance(state.centroid);
                if d <= self.max_merge_distance_m {
                    heap.push(Candidate {
                        distance: d,
                        a,
                        b: other,
                        version_a,
                        version_b: state.version,
                    });
                }
            }
        }

        // Compact the surviving clusters.
        let mut assignments = vec![0usize; n];
        let mut centroids = Vec::new();
        for state in clusters.iter().filter(|c| c.alive) {
            let id = centroids.len();
            for &m in &state.members {
                assignments[m] = id;
            }
            // Report the full feature-space centroid for API consistency.
            let dim = samples[0]
                .feature_vector(self.sample_config.location_weight)
                .len();
            let mut centroid = vec![0.0; dim];
            for &m in &state.members {
                let f = samples[m].feature_vector(self.sample_config.location_weight);
                for (c, v) in centroid.iter_mut().zip(f.iter()) {
                    *c += v;
                }
            }
            for c in centroid.iter_mut() {
                *c /= state.members.len() as f64;
            }
            centroids.push(centroid);
        }
        Clustering::new(assignments, centroids)
    }

    fn name(&self) -> &'static str {
        "TopoAC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_at(i: usize, x: f64, y: f64) -> DiffSample {
        DiffSample {
            record_index: i,
            profile: vec![1.0, 0.0],
            location: Some(Point::new(x, y)),
        }
    }

    /// A single vertical wall at x = 5 spanning y in [-10, 10].
    fn wall() -> MultiPolygon {
        MultiPolygon::new(vec![Polygon::rectangle(
            Point::new(4.9, -10.0),
            Point::new(5.1, 10.0),
        )])
    }

    #[test]
    fn entity_exist_detects_wall_inside_hull() {
        let topology = wall();
        // Hull spanning both sides of the wall.
        let across = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 5.0),
        ];
        assert!(entity_exist(&across, &topology));
        // Hull entirely on one side.
        let one_side = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(1.5, 3.0),
        ];
        assert!(!entity_exist(&one_side, &topology));
    }

    #[test]
    fn entity_exist_degenerate_cases() {
        let topology = wall();
        assert!(!entity_exist(&[], &topology));
        assert!(!entity_exist(&[Point::new(0.0, 0.0)], &topology));
        // Two points straddling the wall: the connecting segment crosses it.
        assert!(entity_exist(
            &[Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            &topology
        ));
        // Empty topology never blocks.
        assert!(!entity_exist(
            &[Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            &MultiPolygon::empty()
        ));
    }

    #[test]
    fn topoac_does_not_merge_across_walls() {
        let samples = vec![
            sample_at(0, 0.0, 0.0),
            sample_at(1, 1.0, 0.5),
            sample_at(2, 0.5, 1.0),
            sample_at(3, 9.0, 0.0),
            sample_at(4, 10.0, 0.5),
            sample_at(5, 9.5, 1.0),
        ];
        let clustering = TopoAc::new(wall()).cluster(&samples);
        assert_eq!(clustering.num_clusters(), 2);
        assert_eq!(clustering.assignments()[0], clustering.assignments()[1]);
        assert_eq!(clustering.assignments()[3], clustering.assignments()[4]);
        assert_ne!(clustering.assignments()[0], clustering.assignments()[3]);
    }

    #[test]
    fn topoac_merges_everything_without_topology() {
        let samples = vec![
            sample_at(0, 0.0, 0.0),
            sample_at(1, 1.0, 0.0),
            sample_at(2, 9.0, 0.0),
            sample_at(3, 10.0, 0.0),
        ];
        let clustering = TopoAc::new(MultiPolygon::empty()).cluster(&samples);
        assert_eq!(clustering.num_clusters(), 1);
    }

    #[test]
    fn distance_cap_prevents_distant_merges() {
        let samples = vec![sample_at(0, 0.0, 0.0), sample_at(1, 100.0, 0.0)];
        let clustering = TopoAc::new(MultiPolygon::empty())
            .with_max_merge_distance(10.0)
            .cluster(&samples);
        assert_eq!(clustering.num_clusters(), 2);
    }

    #[test]
    fn empty_input_and_name() {
        let strategy = TopoAc::new(MultiPolygon::empty());
        assert!(strategy.cluster(&[]).is_empty());
        assert_eq!(strategy.name(), "TopoAC");
    }
}
