//! A counting global allocator for allocation-budget tests.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and counts every
//! allocation (and the bytes requested) behind relaxed atomics, so a test
//! binary can install it as its `#[global_allocator]` and assert that a hot
//! loop is allocation-free in steady state:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: rm_runtime::alloc_counter::CountingAlloc =
//!     rm_runtime::alloc_counter::CountingAlloc::new();
//!
//! let before = ALLOC.allocations();
//! hot_loop();
//! assert_eq!(ALLOC.allocations() - before, 0);
//! ```
//!
//! The counters are monotonically increasing totals — never reset — so
//! concurrent tests in the same binary can each take before/after deltas
//! without coordinating. Reallocation counts once (it is one new placement,
//! whatever the copy does underneath); deallocation is not counted.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`GlobalAlloc`] that forwards to [`System`] and counts allocations.
///
/// All methods are lock-free; the counters use relaxed ordering because the
/// tests that read them only need eventual totals around synchronising
/// operations (joining worker threads, finishing a loop), not ordering
/// guarantees of their own.
#[derive(Debug)]
pub struct CountingAlloc {
    allocations: AtomicU64,
    bytes: AtomicU64,
}

impl CountingAlloc {
    /// Creates the allocator with zeroed counters (`const`, so it can
    /// initialise a `static`).
    pub const fn new() -> Self {
        Self {
            allocations: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Total number of allocation placements (`alloc`, `alloc_zeroed` and
    /// `realloc`) served since process start.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Total bytes requested by those placements.
    pub fn allocated_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    fn record(&self, size: usize) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(size as u64, Ordering::Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates are pure atomic arithmetic
// with no allocation, unwinding or reentrancy of their own.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.record(layout.size());
        // SAFETY: the caller upholds `alloc`'s contract (non-zero-sized
        // layout); we pass it through unchanged.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: the caller guarantees `ptr` was allocated by this
        // allocator with this `layout`; we forward both unchanged to the
        // `System` allocator that produced the block.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.record(layout.size());
        // SAFETY: same contract pass-through as `alloc`.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.record(new_size);
        // SAFETY: the caller guarantees `ptr`/`layout` describe a live
        // block from this allocator and `new_size` is valid for it; all
        // three are forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as the global allocator here (the test harness itself
    // allocates constantly); driven directly instead.
    #[test]
    #[allow(unsafe_code)]
    fn counts_each_placement_and_its_bytes() {
        let counter = CountingAlloc::new();
        assert_eq!(counter.allocations(), 0);
        let layout = Layout::from_size_align(64, 8).unwrap();
        // SAFETY: `layout` is non-zero-sized, and every pointer is freed
        // below with the same layout it was allocated with.
        unsafe {
            let a = counter.alloc(layout);
            assert!(!a.is_null());
            let b = counter.alloc_zeroed(layout);
            assert!(!b.is_null());
            let b = counter.realloc(b, layout, 128);
            assert!(!b.is_null());
            counter.dealloc(a, layout);
            counter.dealloc(b, Layout::from_size_align(128, 8).unwrap());
        }
        assert_eq!(counter.allocations(), 3);
        assert_eq!(counter.allocated_bytes(), 64 + 64 + 128);
    }
}
