//! The persistent worker pool behind [`par_map`](crate::par_map).
//!
//! PR 2's runtime spawned scoped threads on every fan-out, which costs tens
//! of microseconds per worker per call — cheap for grid cells, ruinous for
//! the fine-grained fan-outs (MICE predictor scans, per-row predictions,
//! sequence reversals) that had to hide behind conservative minimum-work
//! gates. This module replaces the per-call spawn with a lazily-initialized,
//! process-lifetime pool: workers park on a condition variable and are handed
//! *tickets* — type-erased pointers to a job living on the dispatching
//! caller's stack — so a dispatch is one queue push plus a wakeup instead of
//! a thread spawn.
//!
//! # Determinism
//!
//! The pool changes *where* closures run, never *what* they compute: the
//! caller still owns the output slots, every item's result lands in its input
//! slot, and nested fan-outs still degrade to serial (workers are permanently
//! flagged via [`in_worker`](crate::in_worker), and the dispatching caller is
//! flagged while it participates). `par_map` through the pool is bit-identical
//! to the scoped implementation ([`par_map_scoped`](crate::par_map_scoped)),
//! which is kept as the reference baseline and cross-checked by property
//! tests.
//!
//! # Lifecycle and safety
//!
//! * **Init** — the pool is created on the first parallel dispatch; no
//!   threads exist until then (fully serial programs never pay for it).
//! * **Sizing** — workers are spawned on demand up to `requested - 1` per
//!   call (the caller is always the remaining participant), capped at
//!   [`MAX_WORKERS`]; the pool grows monotonically and never shrinks, so a
//!   process that once fanned out 8-wide keeps 7 parked workers (a few KiB of
//!   stack each).
//! * **Job lifetime** — a ticket borrows the job from the caller's stack.
//!   The caller blocks on a heap-allocated [`Latch`] until every ticket has
//!   finished executing, so the borrow can never dangle; the latch is
//!   reference-counted precisely so that a finishing worker touches only the
//!   latch — never the (about-to-be-freed) job — after its final count-down.
//!   Once the caller has drained the whole job itself it *reclaims* its
//!   still-queued tickets, so one fan-out never waits behind an unrelated
//!   concurrent fan-out's work just to have a no-op ticket popped.
//! * **Panics** — job bodies catch their own panics and re-raise them on the
//!   caller (see `pool_par_map` in the crate root), so a panicking closure
//!   never kills a worker: the pool survives and later fan-outs reuse it.
//! * **Shutdown** — none. Workers park forever and die with the process,
//!   exactly like the threads of a global async runtime.
//!
//! Set `RM_POOL=0` (or `off`/`scoped`) to disable the pool and route every
//! fan-out through the scoped-spawn implementation — useful for A/B
//! measurements and as an escape hatch.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on pool size: far above any sensible `RM_THREADS`, low enough
/// that a buggy caller requesting `usize::MAX` threads cannot fork-bomb the
/// process.
pub const MAX_WORKERS: usize = 256;

/// A count-down latch: the caller waits until every dispatched ticket has
/// finished. Heap-allocated behind an [`Arc`] so the *last* action a worker
/// performs on shared state is on memory that is guaranteed to outlive it —
/// the job itself (on the caller's stack) is only ever touched strictly
/// before the count-down.
struct Latch {
    pending: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(pending: usize) -> Self {
        Self {
            pending: Mutex::new(pending),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut pending = self.pending.lock().unwrap();
        while *pending != 0 {
            pending = self.done.wait(pending).unwrap();
        }
    }
}

/// A type-erased invitation to participate in one fan-out: `run(data)` makes
/// the executing worker drain the job's shared work queue. `data` points at a
/// closure on the dispatching caller's stack; the latch keeps that frame
/// alive until every ticket has run.
struct Ticket {
    data: *const (),
    // SAFETY: the function is only ever `run_ticket::<B>` for the `B` that
    // `data` points to (both are set together in `Pool::run`), so the cast
    // inside can never type-pun.
    run: unsafe fn(*const ()),
    latch: Arc<Latch>,
}

// SAFETY: `data` is only dereferenced by `run` while the dispatching caller
// blocks on `latch` (the caller's stack frame outlives every ticket), and the
// pointed-to closure is `Sync` (enforced by `Pool::run`'s bound), so sharing
// the pointer across threads is sound.
#[allow(unsafe_code)]
unsafe impl Send for Ticket {}

/// Runs the job closure a ticket points to. Monomorphised per job type so the
/// pool itself stays object-code small and allocation-free on dispatch.
///
/// SAFETY (caller): `data` must point to a live `B` shared via `Pool::run`.
#[allow(unsafe_code)]
unsafe fn run_ticket<B: Fn() + Sync>(data: *const ()) {
    // SAFETY: per this function's contract, `data` points to a live `B` on
    // the dispatching caller's stack, kept alive by the ticket's latch.
    unsafe { (*data.cast::<B>())() };
}

/// Cumulative pool counters, exposed for the stress suite (leak detection)
/// and the overhead benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads spawned so far (monotonic; the pool never shrinks).
    pub workers: usize,
    /// Fan-outs dispatched through the pool so far.
    pub dispatches: u64,
    /// Tickets handed to workers so far (one per extra participant per
    /// dispatch).
    pub tickets: u64,
    /// Tickets reclaimed unexecuted by their caller (the caller drained the
    /// whole job before any worker popped them — common under contention).
    pub tickets_reclaimed: u64,
}

pub(crate) struct Pool {
    queue: Mutex<VecDeque<Ticket>>,
    available: Condvar,
    /// Number of spawned workers; also the lock serialising spawns.
    spawned: Mutex<usize>,
    dispatches: AtomicU64,
    tickets: AtomicU64,
    tickets_reclaimed: AtomicU64,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// Whether fan-outs go through the persistent pool (default) or the scoped
/// reference implementation (`RM_POOL=0`/`off`/`scoped`). Resolved once per
/// process, like `RM_THREADS`.
pub fn pool_enabled() -> bool {
    enabled()
}

#[allow(clippy::disallowed_methods)] // audited env read; see the rm-lint allow inside
pub(crate) fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            // rm-lint: allow(no-raw-env-read): this IS the once-per-process cached accessor for RM_POOL
            std::env::var("RM_POOL").as_deref(),
            Ok("0") | Ok("off") | Ok("scoped")
        )
    })
}

/// The process-wide pool, created on first use.
pub(crate) fn get() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        spawned: Mutex::new(0),
        dispatches: AtomicU64::new(0),
        tickets: AtomicU64::new(0),
        tickets_reclaimed: AtomicU64::new(0),
    })
}

/// Current pool counters (zeros if no fan-out has dispatched yet).
pub fn pool_stats() -> PoolStats {
    match POOL.get() {
        Some(pool) => PoolStats {
            workers: *pool.spawned.lock().unwrap(),
            dispatches: pool.dispatches.load(Ordering::Relaxed),
            tickets: pool.tickets.load(Ordering::Relaxed),
            tickets_reclaimed: pool.tickets_reclaimed.load(Ordering::Relaxed),
        },
        None => PoolStats {
            workers: 0,
            dispatches: 0,
            tickets: 0,
            tickets_reclaimed: 0,
        },
    }
}

impl Pool {
    /// Makes at least `target` workers exist (capped at [`MAX_WORKERS`]) and
    /// returns how many actually do. Spawn failures are swallowed: the
    /// fan-out still completes because the caller participates, dispatches
    /// only as many tickets as there are workers to pop them, and reclaims
    /// any ticket still queued once it runs out of work (a ticket is an
    /// *invitation*, not a work assignment).
    fn ensure_workers(&'static self, target: usize) -> usize {
        let target = target.min(MAX_WORKERS);
        let mut spawned = self.spawned.lock().unwrap();
        while *spawned < target {
            let name = format!("rm-pool-{}", *spawned);
            let builder = std::thread::Builder::new().name(name);
            if builder.spawn(move || self.worker_loop()).is_err() {
                break;
            }
            *spawned += 1;
        }
        *spawned
    }

    fn worker_loop(&self) {
        // Workers are permanently "in a worker": nested fan-outs inside jobs
        // degrade to serial instead of re-entering the pool (which both
        // bounds the thread count and makes worker-side deadlock impossible
        // — a worker never blocks on another job).
        crate::IN_WORKER.with(|w| w.set(true));
        loop {
            let ticket = {
                let mut queue = self.queue.lock().unwrap();
                loop {
                    if let Some(ticket) = queue.pop_front() {
                        break ticket;
                    }
                    queue = self.available.wait(queue).unwrap();
                }
            };
            // SAFETY: the dispatching caller blocks on this ticket's latch,
            // so the job behind `data` is alive for the whole call; the
            // count-down below strictly follows it.
            #[allow(unsafe_code)]
            unsafe {
                (ticket.run)(ticket.data)
            };
            ticket.latch.count_down();
        }
    }

    /// Runs `body` on `1 + extra` participants: `extra` pool workers are
    /// invited via tickets and the caller itself participates (flagged as a
    /// worker so nested fan-outs degrade to serial). Returns only once every
    /// ticket has finished, so `body` may freely borrow from the caller's
    /// stack. `body` must not unwind — wrap panicky work in `catch_unwind`
    /// (as `pool_par_map` does) so a worker executing the ticket survives.
    pub(crate) fn run<B: Fn() + Sync>(&'static self, body: &B, extra: usize) {
        // Never dispatch more tickets than there are workers to pop them: if
        // thread creation fails entirely (RLIMIT_NPROC exhaustion and the
        // like), `extra` clamps to 0 and the call is simply the caller
        // running `body` serially — no orphaned tickets, no latch deadlock.
        let extra = extra.min(self.ensure_workers(extra));
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        self.tickets.fetch_add(extra as u64, Ordering::Relaxed);

        let latch = Arc::new(Latch::new(extra));
        if extra > 0 {
            let mut queue = self.queue.lock().unwrap();
            for _ in 0..extra {
                queue.push_back(Ticket {
                    data: (body as *const B).cast::<()>(),
                    run: run_ticket::<B>,
                    latch: Arc::clone(&latch),
                });
            }
            drop(queue);
            self.available.notify_all();
        }

        // Wait for every ticket even if `body` unwinds (it should not — see
        // the doc contract — but a dangling ticket would be use-after-free,
        // so the guard makes the wait unconditional).
        struct WaitGuard<'a>(&'a Latch);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                self.0.wait();
            }
        }
        let guard = WaitGuard(&latch);

        // Restore the caller's worker flag even if `body` unwinds — a
        // permanently-flagged caller thread would silently serialise every
        // later fan-out it dispatches.
        struct WorkerFlagGuard(bool);
        impl Drop for WorkerFlagGuard {
            fn drop(&mut self) {
                crate::IN_WORKER.with(|w| w.set(self.0));
            }
        }
        {
            let _flag = WorkerFlagGuard(crate::IN_WORKER.with(|w| w.replace(true)));
            body();
        }

        // The caller has drained the work; reclaim any of *this* fan-out's
        // tickets that no worker got around to popping (they would only make
        // an already-finished job re-check an exhausted cursor, while forcing
        // this caller to wait behind unrelated concurrent fan-outs' jobs).
        if extra > 0 {
            let mut queue = self.queue.lock().unwrap();
            let before = queue.len();
            queue.retain(|ticket| !Arc::ptr_eq(&ticket.latch, &latch));
            let reclaimed = before - queue.len();
            drop(queue);
            if reclaimed > 0 {
                self.tickets_reclaimed
                    .fetch_add(reclaimed as u64, Ordering::Relaxed);
                for _ in 0..reclaimed {
                    latch.count_down();
                }
            }
        }

        drop(guard);
    }
}
