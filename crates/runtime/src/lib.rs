//! `rm-runtime` — a std-only, offline-safe parallel runtime with a
//! *determinism contract*.
//!
//! Every layer of the pipeline (differentiation grids, imputer column loops,
//! positioning queries, experiment cells) fans independent work items out over
//! a **persistent worker pool** (see [`pool`]): workers are spawned lazily on
//! the first parallel fan-out, park between calls, and are handed borrowed
//! jobs through type-erased tickets, so a dispatch costs a queue push and a
//! wakeup instead of a thread spawn. The pre-pool scoped-spawn implementation
//! is kept as [`par_map_scoped`] — the reference baseline that the pool must
//! match bitwise (cross-checked by property tests) and the unit of comparison
//! for the dispatch-overhead benches. The primitives are designed so that
//! **results are bit-identical at any thread count**:
//!
//! * [`par_map`] is *order-preserving*: item `i`'s result always lands in
//!   output slot `i`, no matter which worker computed it or in which order
//!   workers finished. As long as the mapped closure is a pure function of
//!   `(index, item)`, the output vector is independent of scheduling.
//! * [`par_chunks`] fixes the chunk boundaries from the *chunk size*, never
//!   from the thread count, so per-chunk reductions (partial sums, local
//!   argmins) combine in the same order regardless of parallelism.
//! * [`derive_seed`] gives every work item its own RNG stream derived from
//!   `(base_seed, item_index)`. Tasks that consume randomness stay
//!   reproducible because their seed depends on *what* they compute, not on
//!   *which thread* computes it or *when*.
//!
//! Nested fan-outs are degraded to serial execution inside worker threads (the
//! outer level already saturates the machine), which bounds the total thread
//! count and keeps wall-clock predictable. This changes nothing observable:
//! serial execution is just the one-thread schedule of the same deterministic
//! plan.
//!
//! # Thread-count resolution
//!
//! All primitives take a `threads` argument where `0` means *auto*: the
//! `RM_THREADS` environment variable if set to a positive integer, otherwise
//! [`std::thread::available_parallelism`]. Passing `1` forces the serial
//! fallback path (no threads are spawned at all). The *auto* value is
//! resolved once per process and cached, but an explicit positive request
//! always wins over the cache — callers that set
//! `PipelineConfig.threads` get exactly that width no matter what
//! `RM_THREADS` said when the cache was filled.

// Every `unsafe` operation must be argued individually, even inside an
// `unsafe fn` — rm-lint's `unsafe-needs-safety-comment` rule then pins a
// `// SAFETY:` justification to each explicit block.
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::{Cell, UnsafeCell};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

pub mod alloc_counter;
pub mod pool;

pub use pool::{pool_enabled, pool_stats, PoolStats, MAX_WORKERS};

thread_local! {
    /// Set inside pool workers so nested fan-outs run serially instead of
    /// oversubscribing the machine.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The auto thread count, resolved once per process: probing
/// `available_parallelism` goes through a syscall (and cgroup files on
/// Linux), far too slow for the per-call fast path of fine-grained fan-outs.
static AUTO_THREADS: OnceLock<usize> = OnceLock::new();

/// Resolves a requested thread count: positive values pass through, `0` means
/// the `RM_THREADS` environment variable (if a positive integer) and finally
/// the machine's available parallelism. The auto value is resolved **once per
/// process** and cached; set `RM_THREADS` before the first fan-out.
#[allow(clippy::disallowed_methods)] // audited env read; see the rm-lint allow inside
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    *AUTO_THREADS.get_or_init(|| {
        // rm-lint: allow(no-raw-env-read): this IS the once-per-process cached accessor for RM_THREADS
        if let Ok(v) = std::env::var("RM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The thread count `par_map`/`par_chunks` would use for `requested = 0`
/// (`RM_THREADS` override, else available parallelism).
pub fn default_threads() -> usize {
    resolve_threads(0)
}

/// Fan-out rounds timed by [`measured_dispatch_micros`]; the minimum over
/// the rounds filters scheduler noise.
const DISPATCH_PROBE_ROUNDS: usize = 16;

/// The pool's dispatch cost on *this* machine, measured **once per process**
/// and cached: the best-of-[`DISPATCH_PROBE_ROUNDS`] wall-clock time of a
/// small 2-wide [`par_map`] round trip, in microseconds. Consumers (the
/// minimum-work gates in `rm_imputers::gates`) scale their serial/parallel
/// thresholds by this reading instead of trusting constants sized on one
/// reference machine.
///
/// Returns `None` — *use the reference constants* — when probing is
/// disabled (`RM_GATE_PROBE=0`) or when the process resolves to a single
/// thread (`RM_THREADS=1`): a serial run never dispatches, so there is
/// nothing to measure and the reference behaviour is pinned exactly.
///
/// Determinism: the reading is wall-clock derived and varies across
/// machines and runs, but it only ever selects *which side of a
/// serial/parallel fork runs* — and both sides are bit-identical by this
/// crate's determinism contract — so results never depend on it.
#[allow(clippy::disallowed_methods)] // audited wall-clock + env reads; see the rm-lint allows inside
pub fn measured_dispatch_micros() -> Option<f64> {
    static PROBE: OnceLock<Option<f64>> = OnceLock::new();
    *PROBE.get_or_init(|| {
        // rm-lint: allow(no-raw-env-read): this IS the once-per-process cached accessor for RM_GATE_PROBE
        if std::env::var("RM_GATE_PROBE")
            .map(|v| v == "0")
            .unwrap_or(false)
        {
            return None;
        }
        if default_threads() <= 1 {
            return None;
        }
        let items = [0u64; 8];
        let work = |i: usize, &v: &u64| derive_seed(v, i as u64);
        // Warm-up: the first fan-out pays the one-time worker spawn, which
        // is not the steady-state dispatch cost the gates amortise.
        std::hint::black_box(par_map(2, &items, work));
        let mut best = f64::INFINITY;
        for _ in 0..DISPATCH_PROBE_ROUNDS {
            // rm-lint: allow(no-wallclock-in-deterministic-path): the probe measures dispatch cost once per process; the reading only picks between bit-identical serial/parallel schedules
            let start = std::time::Instant::now();
            std::hint::black_box(par_map(2, &items, work));
            best = best.min(start.elapsed().as_secs_f64() * 1e6);
        }
        Some(best)
    })
}

/// Returns `true` when called from inside an `rm-runtime` worker thread
/// (where nested fan-outs degrade to serial execution).
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Derives a per-item RNG seed from a base seed and an item index using a
/// SplitMix64-style finalizer. The mapping is:
///
/// * deterministic — the same `(base, stream)` always yields the same seed,
/// * scheduling-independent — it only depends on the item's *index*, so a
///   task's randomness is identical whether it runs first, last, serial or
///   parallel,
/// * well-spread — nearby indices produce statistically unrelated seeds, so
///   sibling tasks do not walk correlated RNG streams.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-preserving parallel map over a slice.
///
/// Applies `f(index, &items[index])` to every item using up to `threads`
/// participants (see [`resolve_threads`]; `0` = auto) — the calling thread
/// plus `threads - 1` persistent pool workers (see [`pool`]) — and returns
/// the results **in input order**. Work is distributed dynamically (an atomic
/// cursor), but the output is scheduling-independent: slot `i` always holds
/// `f(i, &items[i])`.
///
/// Falls back to a plain serial loop when one thread is requested, when there
/// is at most one item, or when called from inside another `par_map` worker
/// (nested parallelism would oversubscribe the machine). Set `RM_POOL=0` to
/// route parallel calls through [`par_map_scoped`] instead of the pool.
///
/// # Panics
/// Propagates panics from `f` (the first panicking participant aborts the
/// map; its original payload is re-raised on the caller). A panic never kills
/// a pool worker — the pool stays usable afterwards.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match parallel_width(threads, items.len()) {
        None => items.iter().enumerate().map(|(i, t)| f(i, t)).collect(),
        Some(threads) if pool::enabled() => pool_par_map(threads, items, f),
        Some(threads) => scoped_par_map(threads, items, f),
    }
}

/// Resolves the effective width of a fan-out over `len` items, or `None`
/// when the call must take the serial fallback (at most one item, nested
/// inside a worker, or a resolved thread count of 1). Shared by [`par_map`]
/// and [`par_map_scoped`] so the pool path and the reference baseline can
/// never disagree about *whether* a call parallelises — only *how*.
fn parallel_width(threads: usize, len: usize) -> Option<usize> {
    if len <= 1 || in_worker() {
        return None;
    }
    let threads = resolve_threads(threads).min(len);
    if threads <= 1 {
        None
    } else {
        Some(threads)
    }
}

/// A fixed array of per-participant result buckets for the pool fan-out.
///
/// Each execution of a fan-out's job body claims a distinct bucket index
/// from an atomic cursor and is the only thread that ever touches that
/// bucket, so the buckets need no locking; the dispatching caller reads them
/// only after `Pool::run` returned (i.e. after every ticket finished, which
/// the pool's latch guarantees with a happens-before edge).
struct ParticipantSlots<R> {
    buckets: Vec<UnsafeCell<Vec<(usize, R)>>>,
}

// SAFETY: distinct participants access distinct buckets (unique indices from
// an atomic claim cursor), and the caller's final read is ordered after all
// participant writes by the pool latch, so sharing the array is sound for any
// `R` the results themselves allow crossing threads (`R: Send`).
#[allow(unsafe_code)]
unsafe impl<R: Send> Sync for ParticipantSlots<R> {}

impl<R> ParticipantSlots<R> {
    fn new(participants: usize) -> Self {
        let mut buckets = Vec::with_capacity(participants);
        buckets.resize_with(participants, || UnsafeCell::new(Vec::new()));
        Self { buckets }
    }

    /// Raw pointer to bucket `pid` (also keeps closures capturing the whole
    /// `Sync` wrapper rather than disjointly capturing the inner vector).
    ///
    /// SAFETY (caller): dereference only while `pid` is this thread's
    /// uniquely claimed participant index.
    fn bucket(&self, pid: usize) -> *mut Vec<(usize, R)> {
        self.buckets[pid].get()
    }
}

/// [`par_map`] dispatched through the persistent pool: the caller and
/// `threads - 1` pool workers drain a shared atomic cursor, each pushing its
/// `(index, result)` pairs into its own slot of a per-participant array —
/// the merge into the output vector happens on the caller alone, after the
/// fan-out's latch, so no participant ever takes a lock for its results.
/// Slot `i` of the output always ends up holding `f(i, &items[i])`.
fn pool_par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let extra = threads - 1;
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    // One bucket per possible participant: `extra` tickets plus the caller.
    // (A ticket the caller reclaims unexecuted claims no bucket.)
    let participant = AtomicUsize::new(0);
    let slots: ParticipantSlots<R> = ParticipantSlots::new(extra + 1);
    // Panics are the cold path; a mutex on the payload slot is fine.
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let body = || {
        let pid = participant.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `pid` is unique per body execution and at most
        // `extra + 1` executions exist (one per dispatched ticket plus the
        // caller), so this is the only live reference to bucket `pid`; the
        // caller merges the buckets only after `Pool::run` returns.
        #[allow(unsafe_code)]
        let local = unsafe { &mut *slots.bucket(pid) };
        // Catch panics *inside* the job so the executing pool worker (or the
        // caller mid-dispatch) never unwinds through pool machinery; the
        // first payload is re-raised on the caller below.
        let outcome = catch_unwind(AssertUnwindSafe(|| loop {
            if abort.load(Ordering::Relaxed) {
                break;
            }
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= items.len() {
                break;
            }
            local.push((i, f(i, &items[i])));
        }));
        if let Err(payload) = outcome {
            abort.store(true, Ordering::Relaxed);
            let mut slot = panic_payload.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    };
    pool::get().run(&body, extra);

    if let Some(payload) = panic_payload.into_inner().unwrap() {
        std::panic::resume_unwind(payload);
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    for bucket in slots.buckets {
        for (i, r) in bucket.into_inner() {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("par_map filled every slot"))
        .collect()
}

/// The pre-pool implementation of [`par_map`]: spawns `threads` scoped
/// workers per call via [`std::thread::scope`] and joins them before
/// returning.
///
/// Kept public on purpose: it is the *reference baseline* of the determinism
/// contract — the pool path must produce bitwise-identical output (property
/// tests cross-check the two) — and the unit of comparison for the
/// dispatch-overhead benches that justify the minimum-work gate values in
/// `rm_imputers::gates`. Pipeline code should call [`par_map`].
///
/// # Panics
/// Propagates panics from `f` with their original payload.
pub fn par_map_scoped<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match parallel_width(threads, items.len()) {
        None => items.iter().enumerate().map(|(i, t)| f(i, t)).collect(),
        Some(threads) => scoped_par_map(threads, items, f),
    }
}

/// Scoped-spawn fan-out over an already-resolved thread count (`threads ≥ 2`).
fn scoped_par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            // Re-raise worker panics with their original payload so assertion
            // messages from inside fan-outs stay diagnosable.
            let local = match handle.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            for (i, r) in local {
                slots[i] = Some(r);
            }
        }
    });

    slots
        .into_iter()
        .map(|r| r.expect("par_map filled every slot"))
        .collect()
}

/// Order-preserving parallel map over fixed-size chunks of a slice.
///
/// The slice is split into consecutive chunks of `chunk_size` (the last chunk
/// may be shorter) and `f(chunk_index, chunk)` is applied to each via
/// [`par_map`]. Because the chunk boundaries depend only on `chunk_size` —
/// never on the thread count — reductions that combine the per-chunk results
/// in order are bit-identical at any parallelism level.
pub fn par_chunks<T, R, F>(threads: usize, items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let chunks: Vec<&[T]> = items.chunks(chunk_size.max(1)).collect();
    par_map(threads, &chunks, |i, chunk| f(i, chunk))
}

/// Convenience: [`par_map`] over an index range `0..n` (for loops that index
/// into shared state instead of iterating a slice).
pub fn par_indices<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map(threads, &indices, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(4, &items, |i, &v| {
            assert_eq!(i, v);
            v * 2
        });
        assert_eq!(out, (0..1000).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_is_identical_across_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let f = |i: usize, &v: &u64| derive_seed(v, i as u64);
        let serial = par_map(1, &items, f);
        for threads in [2, 3, 8] {
            assert_eq!(par_map(threads, &items, f), serial);
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(8, &empty, |_, &v| v).is_empty());
        assert_eq!(par_map(8, &[7u32], |_, &v| v + 1), vec![8]);
    }

    #[test]
    fn par_chunks_boundaries_do_not_depend_on_threads() {
        let items: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let sums = |threads| par_chunks(threads, &items, 7, |_, c| c.iter().sum::<f64>());
        let serial = sums(1);
        assert_eq!(serial.len(), 100usize.div_ceil(7));
        for threads in [2, 5] {
            // Bitwise equality: same chunks, same per-chunk summation order.
            let parallel = sums(threads);
            assert!(serial
                .iter()
                .zip(parallel.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn par_indices_covers_the_range() {
        assert_eq!(par_indices(3, 5, |i| i * i), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn nested_par_map_degrades_to_serial() {
        let outer: Vec<usize> = (0..4).collect();
        let out = par_map(4, &outer, |_, &i| {
            assert!(in_worker());
            let inner: Vec<usize> = (0..8).collect();
            // Runs serially (no nested spawn) but must produce the same result.
            par_map(4, &inner, |_, &j| i * 10 + j)
        });
        assert_eq!(out[2], vec![20, 21, 22, 23, 24, 25, 26, 27]);
        assert!(!in_worker());
    }

    #[test]
    fn derive_seed_is_stable_and_spread() {
        assert_eq!(derive_seed(2023, 0), derive_seed(2023, 0));
        assert_ne!(derive_seed(2023, 0), derive_seed(2023, 1));
        assert_ne!(derive_seed(2023, 1), derive_seed(2024, 1));
        // Low bits should differ between adjacent streams (not a lattice).
        let a = derive_seed(1, 1) & 0xFFFF;
        let b = derive_seed(1, 2) & 0xFFFF;
        assert_ne!(a, b);
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
        assert!(default_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate_with_their_payload() {
        let items: Vec<usize> = (0..64).collect();
        let _ = par_map(2, &items, |_, &v| {
            if v == 63 {
                panic!("boom");
            }
            v
        });
    }
}
