//! Property tests of the runtime's determinism contract.
//!
//! Three invariants carry the whole pipeline's bit-identical guarantee:
//!
//! 1. `par_chunks` boundaries are a function of `chunk_size` alone — never of
//!    the thread count — so ordered per-chunk reductions are
//!    schedule-independent.
//! 2. `derive_seed` streams are stable (pure in `(base, index)`) and
//!    collision-free over the index ranges a fan-out actually uses.
//! 3. The persistent pool and the scoped reference implementation agree
//!    *bitwise* — the pool changes where closures run, never what they
//!    compute.

// rm-lint: allow(no-unordered-iteration): collision detection only — seeds are inserted and never iterated
use std::collections::HashSet;

use proptest::prelude::*;
use rm_runtime::{derive_seed, par_chunks, par_map, par_map_scoped};

proptest! {
    #[test]
    fn par_chunks_boundaries_depend_only_on_chunk_size(
        len in 0usize..300,
        chunk_size in 1usize..40,
        threads in 0usize..6,
    ) {
        let items: Vec<u32> = (0..len as u32).collect();
        // Observe the actual boundaries: every chunk's (first, len).
        let observed = par_chunks(threads, &items, chunk_size, |_, c| {
            (c.first().copied(), c.len())
        });
        let expected_chunks = if len == 0 { 0 } else { len.div_ceil(chunk_size) };
        prop_assert_eq!(observed.len(), expected_chunks);
        for (ci, &(first, clen)) in observed.iter().enumerate() {
            prop_assert_eq!(first, Some((ci * chunk_size) as u32));
            let expected_len = if ci == expected_chunks - 1 {
                len - ci * chunk_size
            } else {
                chunk_size
            };
            prop_assert_eq!(clen, expected_len);
        }
    }

    #[test]
    fn derived_seed_streams_are_stable_and_collision_free(
        base in proptest::arbitrary::any::<u64>(),
        n in 1u64..2_000,
    ) {
        // rm-lint: allow(no-unordered-iteration): membership-only collision check, never iterated
        let mut seen = HashSet::with_capacity(n as usize);
        for i in 0..n {
            let seed = derive_seed(base, i);
            // Stable: recomputation yields the same seed.
            prop_assert_eq!(seed, derive_seed(base, i));
            // Collision-free over the range a fan-out indexes.
            prop_assert!(seen.insert(seed), "seed collision at index {}", i);
        }
    }

    #[test]
    fn pool_and_scoped_par_map_agree_bitwise(
        values in prop::collection::vec(-1e6f64..1e6, 2..120),
        threads in 2usize..5,
    ) {
        // A float-heavy closure: any scheduling sensitivity would show up in
        // the low bits of the results.
        let f = |i: usize, v: &f64| (v * 1.000_000_1 + i as f64).sin() * v.abs().sqrt();
        let pooled = par_map(threads, &values, f);
        let scoped = par_map_scoped(threads, &values, f);
        let serial = par_map(1, &values, f);
        prop_assert_eq!(pooled.len(), scoped.len());
        for ((p, s), r) in pooled.iter().zip(scoped.iter()).zip(serial.iter()) {
            prop_assert_eq!(p.to_bits(), s.to_bits());
            prop_assert_eq!(p.to_bits(), r.to_bits());
        }
    }

    /// The same parity with heap-owning results: every item's `Vec` must
    /// come back exactly once through the pool's lock-free per-participant
    /// slot merge (a double-deposit or dropped bucket would corrupt or lose
    /// allocations, which this shape surfaces immediately).
    #[test]
    fn pool_and_scoped_par_map_agree_on_heap_results(
        values in prop::collection::vec(0u32..1_000, 2..120),
        threads in 2usize..6,
    ) {
        let f = |i: usize, v: &u32| vec![i as u32, *v, v.wrapping_mul(31)];
        let pooled = par_map(threads, &values, f);
        let scoped = par_map_scoped(threads, &values, f);
        prop_assert_eq!(&pooled, &scoped);
        for (i, (out, v)) in pooled.iter().zip(values.iter()).enumerate() {
            prop_assert_eq!(out, &vec![i as u32, *v, v.wrapping_mul(31)]);
        }
    }

    #[test]
    fn pool_and_scoped_par_chunks_agree_bitwise(
        values in prop::collection::vec(-1e3f64..1e3, 1..200),
        chunk_size in 1usize..17,
        threads in 2usize..5,
    ) {
        let sum = |_: usize, c: &[f64]| c.iter().sum::<f64>();
        let pooled = par_chunks(threads, &values, chunk_size, sum);
        let serial = par_chunks(1, &values, chunk_size, sum);
        prop_assert_eq!(pooled.len(), serial.len());
        for (p, s) in pooled.iter().zip(serial.iter()) {
            prop_assert_eq!(p.to_bits(), s.to_bits());
        }
    }
}

/// Pinned `derive_seed` outputs: the SplitMix64-style finalizer is part of
/// the persistence contract — forests, bootstraps and per-item RNG streams
/// all reproduce across releases only if these exact values never change.
#[test]
fn derive_seed_golden_values_are_stable() {
    assert_eq!(derive_seed(0, 0), 0);
    assert_eq!(derive_seed(2023, 0), 14_552_697_717_352_991_844);
    assert_eq!(derive_seed(2023, 1), 4_042_333_156_385_447_415);
    assert_eq!(derive_seed(17, 19), 12_834_174_620_753_702_837);
}
