//! Stress tests of the persistent worker pool: thousands of tiny fan-outs,
//! mixed sizes, nested calls and panicking closures, all asserting the
//! determinism contract (order preservation), panic propagation with the
//! original payload, and that the pool neither deadlocks nor leaks workers
//! across repeated use.
//!
//! Every parallel call pins an explicit thread count (2–8): the suite must
//! exercise the pool even on a single-CPU container (where auto resolves to
//! 1 and `par_map` would fall back to serial) and under the `RM_THREADS=1`
//! CI leg (explicit requests override the cached auto value — see
//! `explicit_threads_override_cached_auto_value` below).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rm_runtime::{par_chunks, par_indices, par_map, par_map_scoped, pool_stats};

/// Thousands of tiny fan-outs of mixed sizes reuse the pool without
/// deadlocking, and every single one preserves input order.
#[test]
fn hammer_tiny_fan_outs_preserve_order() {
    for round in 0..2_000u64 {
        let len = (round % 13) as usize + 2; // 2..=14 items
        let threads = (round % 3) as usize + 2; // 2..=4 participants
        let items: Vec<u64> = (0..len as u64).map(|i| i * 31 + round).collect();
        let out = par_map(threads, &items, |i, &v| {
            assert_eq!(v, i as u64 * 31 + round);
            rm_runtime::derive_seed(v, i as u64)
        });
        for (i, (&v, r)) in items.iter().zip(out.iter()).enumerate() {
            assert_eq!(*r, rm_runtime::derive_seed(v, i as u64));
        }
    }
}

/// Interleaved `par_map`/`par_chunks`/`par_indices` calls of irregular sizes
/// agree bitwise with their serial runs across thousands of reuses.
#[test]
fn hammer_mixed_primitives_match_serial() {
    for round in 0..500usize {
        let n = 1 + (round * 7) % 97;
        let items: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 - round as f64).collect();

        let chunked = par_chunks(3, &items, 5, |_, c| c.iter().sum::<f64>());
        let chunked_serial = par_chunks(1, &items, 5, |_, c| c.iter().sum::<f64>());
        assert_eq!(chunked.len(), n.div_ceil(5));
        assert!(chunked
            .iter()
            .zip(chunked_serial.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits()));

        let indexed = par_indices(4, n, |i| i * i + round);
        assert_eq!(indexed, (0..n).map(|i| i * i + round).collect::<Vec<_>>());
    }
}

/// Nested fan-outs inside pool workers degrade to serial (no deadlock, no
/// worker explosion) and still produce the right answer, repeatedly.
#[test]
fn hammer_nested_fan_outs() {
    for _ in 0..300 {
        let outer: Vec<usize> = (0..6).collect();
        let out = par_map(3, &outer, |_, &i| {
            assert!(rm_runtime::in_worker());
            let inner: Vec<usize> = (0..10).collect();
            par_map(4, &inner, |_, &j| i * 100 + j)
                .iter()
                .sum::<usize>()
        });
        for (i, &s) in out.iter().enumerate() {
            assert_eq!(s, (0..10).map(|j| i * 100 + j).sum::<usize>());
        }
        assert!(!rm_runtime::in_worker());
    }
}

/// Panicking closures propagate their original payload to the caller, never
/// kill a pool worker, and leave the pool fully usable — even after hundreds
/// of panics.
#[test]
fn hammer_panicking_closures() {
    let items: Vec<usize> = (0..32).collect();
    for round in 0..200usize {
        let bomb = round % items.len();
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map(3, &items, |_, &v| {
                if v == bomb {
                    panic!("bomb {bomb}");
                }
                v * 2
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("payload is the formatted panic message");
        assert_eq!(message, format!("bomb {bomb}"));

        // The pool must still work right after the panic.
        let ok = par_map(3, &items, |i, &v| v + i);
        assert_eq!(ok, items.iter().map(|&v| v * 2).collect::<Vec<_>>());
    }
}

/// Repeated use must not leak workers: the pool grows to the widest explicit
/// request seen in this test binary and then stays constant, no matter how
/// many fan-outs run.
#[test]
fn pool_does_not_leak_workers_across_reuse() {
    if !rm_runtime::pool_enabled() {
        // RM_POOL=0 routes fan-outs through scoped spawning; there is no pool
        // to leak from (and the counters below never move).
        return;
    }
    let items: Vec<u64> = (0..48).collect();
    // Warm the pool up to the widest fan-out this suite uses.
    let _ = par_map(8, &items, |i, &v| v + i as u64);
    let after_warmup = pool_stats().workers;
    assert!(
        after_warmup <= 16,
        "pool grew past this binary's widest request: {after_warmup} workers"
    );

    for _ in 0..1_000 {
        let _ = par_map(8, &items, |i, &v| v ^ i as u64);
    }
    let after_hammer = pool_stats();
    assert_eq!(
        after_hammer.workers, after_warmup,
        "pool grew while re-running fan-outs of the same width"
    );
    assert!(after_hammer.dispatches >= 1_000);
    // Reclaimed tickets (caller finished before a worker popped them) are a
    // subset of dispatched tickets, never phantom count-downs.
    assert!(after_hammer.tickets_reclaimed <= after_hammer.tickets);
}

/// Regression test for the `AUTO_THREADS` cache interaction: the auto value
/// (`RM_THREADS`, else available parallelism) is resolved once per process,
/// but an explicit positive `threads` request — what tests set through
/// `PipelineConfig.threads` — must always override it. The two-item
/// rendezvous below only completes when both items really run concurrently,
/// i.e. when `par_map(2, ..)` actually dispatches 2-wide even though the
/// cached auto value may be 1 (single-CPU container, or the `RM_THREADS=1`
/// CI leg).
#[test]
fn explicit_threads_override_cached_auto_value() {
    // Fill the auto cache first, as a pipeline using `threads: 0` would.
    let auto = rm_runtime::default_threads();
    assert!(auto >= 1);
    assert_eq!(rm_runtime::resolve_threads(5), 5);

    let arrived = AtomicUsize::new(0);
    let items = [0usize, 1];
    let out = par_map(2, &items, |_, &v| {
        arrived.fetch_add(1, Ordering::SeqCst);
        #[allow(clippy::disallowed_methods)]
        // rm-lint: allow(no-wallclock-in-deterministic-path): watchdog deadline so a serialised schedule fails instead of hanging
        let deadline = Instant::now() + Duration::from_secs(20);
        // Each item waits until it has seen the *other* item start, which is
        // impossible under a serial schedule.
        while arrived.load(Ordering::SeqCst) < 2 {
            #[allow(clippy::disallowed_methods)]
            // rm-lint: allow(no-wallclock-in-deterministic-path): watchdog poll against the deadline above
            if Instant::now() > deadline {
                panic!("par_map(2, ..) ran serially despite the explicit request");
            }
            std::thread::yield_now();
        }
        v + 10
    });
    assert_eq!(out, vec![10, 11]);
}

/// The scoped reference implementation obeys the same ordering contract under
/// stress (it backs the `RM_POOL=0` escape hatch and the overhead benches).
#[test]
fn scoped_fallback_still_preserves_order_under_stress() {
    for round in 0..100u64 {
        let items: Vec<u64> = (0..40).map(|i| i + round).collect();
        let pooled = par_map(3, &items, |i, &v| rm_runtime::derive_seed(v, i as u64));
        let scoped = par_map_scoped(3, &items, |i, &v| rm_runtime::derive_seed(v, i as u64));
        assert_eq!(pooled, scoped);
    }
}
