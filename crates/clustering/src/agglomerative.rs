//! Constrained agglomerative clustering.
//!
//! `TopoAC` (Algorithm 5 of the paper) is an agglomerative clustering where a
//! merge is only allowed if the merged cluster passes a topological
//! examination (its convex hull must not contain any indoor obstacle). This
//! module implements the generic agglomerative process with a pluggable merge
//! constraint; the topology-specific predicate lives in `rm-differentiator`.

use crate::{euclidean_distance_sq, Clustering};

/// A predicate deciding whether the union of two clusters (given by the member
/// sample indices of the would-be merged cluster) is admissible.
pub trait MergeConstraint {
    /// Returns `true` if a cluster containing exactly `member_indices` may be
    /// formed.
    fn allows(&self, member_indices: &[usize]) -> bool;
}

/// A constraint that always allows merging — plain average-linkage
/// agglomerative clustering down to `target_clusters` clusters.
#[derive(Debug, Clone, Copy)]
pub struct Unconstrained;

impl MergeConstraint for Unconstrained {
    fn allows(&self, _member_indices: &[usize]) -> bool {
        true
    }
}

/// A constraint expressed as a closure over the member indices.
pub struct FnConstraint<F: Fn(&[usize]) -> bool>(pub F);

impl<F: Fn(&[usize]) -> bool> MergeConstraint for FnConstraint<F> {
    fn allows(&self, member_indices: &[usize]) -> bool {
        (self.0)(member_indices)
    }
}

/// Configuration for [`agglomerative`].
#[derive(Debug, Clone)]
pub struct AgglomerativeConfig {
    /// Stop merging once this many clusters remain (1 keeps merging as long as
    /// any admissible pair exists).
    pub target_clusters: usize,
}

impl Default for AgglomerativeConfig {
    fn default() -> Self {
        Self { target_clusters: 1 }
    }
}

/// Runs constraint-aware agglomerative clustering with centroid linkage.
///
/// Starting from singleton clusters, the pair of clusters with the smallest
/// centroid-to-centroid distance whose union satisfies `constraint` is merged,
/// until no admissible pair remains or `config.target_clusters` is reached.
pub fn agglomerative(
    samples: &[Vec<f64>],
    config: &AgglomerativeConfig,
    constraint: &impl MergeConstraint,
) -> Clustering {
    let n = samples.len();
    if n == 0 {
        return Clustering::empty();
    }
    // Each cluster: member indices + centroid. `None` marks a cluster merged away.
    let mut clusters: Vec<Option<(Vec<usize>, Vec<f64>)>> = samples
        .iter()
        .enumerate()
        .map(|(i, s)| Some((vec![i], s.clone())))
        .collect();
    let mut active = n;

    while active > config.target_clusters.max(1) {
        // Find the closest admissible pair.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..clusters.len() {
            let Some((_, ci)) = &clusters[i] else {
                continue;
            };
            for j in (i + 1)..clusters.len() {
                let Some((_, cj)) = &clusters[j] else {
                    continue;
                };
                let d = euclidean_distance_sq(ci, cj);
                if best.map(|(_, _, bd)| d < bd).unwrap_or(true) {
                    // Check the constraint lazily only for candidate improvements.
                    let mut merged_members = clusters[i].as_ref().unwrap().0.clone();
                    merged_members.extend_from_slice(&clusters[j].as_ref().unwrap().0);
                    if constraint.allows(&merged_members) {
                        best = Some((i, j, d));
                    }
                }
            }
        }
        let Some((i, j, _)) = best else { break };

        // Merge j into i.
        let (members_j, _) = clusters[j].take().expect("cluster j active");
        let (members_i, _) = clusters[i].take().expect("cluster i active");
        let mut members = members_i;
        members.extend(members_j);
        let dim = samples[0].len();
        let mut centroid = vec![0.0; dim];
        for &m in &members {
            for (c, &v) in centroid.iter_mut().zip(samples[m].iter()) {
                *c += v;
            }
        }
        for c in centroid.iter_mut() {
            *c /= members.len() as f64;
        }
        clusters[i] = Some((members, centroid));
        active -= 1;
    }

    // Compact into a Clustering.
    let mut assignments = vec![0usize; n];
    let mut centroids = Vec::new();
    for cluster in clusters.into_iter().flatten() {
        let (members, centroid) = cluster;
        let cluster_id = centroids.len();
        for m in members {
            assignments[m] = cluster_id;
        }
        centroids.push(centroid);
    }
    Clustering::new(assignments, centroids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![0.5, 0.1],
            vec![0.2, 0.4],
            vec![10.0, 10.0],
            vec![10.3, 9.8],
            vec![9.9, 10.2],
        ]
    }

    #[test]
    fn unconstrained_merges_to_target() {
        let samples = two_blobs();
        let c = agglomerative(
            &samples,
            &AgglomerativeConfig { target_clusters: 2 },
            &Unconstrained,
        );
        assert_eq!(c.num_clusters(), 2);
        // The two spatial blobs end up in different clusters.
        assert_eq!(c.assignments()[0], c.assignments()[1]);
        assert_eq!(c.assignments()[3], c.assignments()[4]);
        assert_ne!(c.assignments()[0], c.assignments()[3]);
    }

    #[test]
    fn unconstrained_merges_everything_with_target_one() {
        let samples = two_blobs();
        let c = agglomerative(&samples, &AgglomerativeConfig::default(), &Unconstrained);
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn constraint_blocks_merges() {
        let samples = two_blobs();
        // Forbid any cluster larger than 1: nothing can merge.
        let constraint = FnConstraint(|members: &[usize]| members.len() <= 1);
        let c = agglomerative(&samples, &AgglomerativeConfig::default(), &constraint);
        assert_eq!(c.num_clusters(), samples.len());
    }

    #[test]
    fn constraint_limiting_cluster_size() {
        let samples = two_blobs();
        let constraint = FnConstraint(|members: &[usize]| members.len() <= 3);
        let c = agglomerative(&samples, &AgglomerativeConfig::default(), &constraint);
        // With max size 3 the six samples form exactly the two natural blobs.
        assert_eq!(c.num_clusters(), 2);
        for cluster_id in 0..c.num_clusters() {
            assert!(c.members_of(cluster_id).len() <= 3);
        }
    }

    #[test]
    fn cross_blob_constraint_prevents_mixing() {
        let samples = two_blobs();
        // Disallow clusters containing samples from both blobs (indices < 3 and >= 3).
        let constraint = FnConstraint(|members: &[usize]| {
            let has_a = members.iter().any(|&m| m < 3);
            let has_b = members.iter().any(|&m| m >= 3);
            !(has_a && has_b)
        });
        let c = agglomerative(&samples, &AgglomerativeConfig::default(), &constraint);
        assert_eq!(c.num_clusters(), 2);
    }

    #[test]
    fn empty_input_gives_empty_clustering() {
        let c = agglomerative(&[], &AgglomerativeConfig::default(), &Unconstrained);
        assert!(c.is_empty());
    }

    #[test]
    fn single_sample_is_single_cluster() {
        let c = agglomerative(
            &[vec![1.0, 2.0]],
            &AgglomerativeConfig::default(),
            &Unconstrained,
        );
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.assignments(), &[0]);
    }

    #[test]
    fn centroids_are_member_means() {
        let samples = vec![vec![0.0, 0.0], vec![2.0, 2.0]];
        let c = agglomerative(&samples, &AgglomerativeConfig::default(), &Unconstrained);
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.centroids()[0], vec![1.0, 1.0]);
    }
}
