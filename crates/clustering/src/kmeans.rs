//! K-means clustering with k-means++ initialisation and the elbow method.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{euclidean_distance_sq, Clustering};

/// Configuration for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on total centroid movement.
    pub tolerance: f64,
}

impl KMeansConfig {
    /// Creates a configuration with the default iteration budget.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iterations: 100,
            tolerance: 1e-6,
        }
    }
}

/// Runs k-means with k-means++ seeding.
///
/// `samples` is a slice of equal-length feature vectors. Returns a
/// [`Clustering`] with one assignment per sample. When `k` is zero or there
/// are no samples an empty clustering is returned; when `k >= samples.len()`
/// each sample becomes its own cluster.
pub fn kmeans(samples: &[Vec<f64>], config: &KMeansConfig, rng: &mut impl Rng) -> Clustering {
    let n = samples.len();
    if n == 0 || config.k == 0 {
        return Clustering::empty();
    }
    if config.k >= n {
        // Each sample is its own cluster.
        let assignments = (0..n).collect();
        let centroids = samples.to_vec();
        return Clustering::new(assignments, centroids);
    }

    let mut centroids = kmeans_plus_plus_init(samples, config.k, rng);
    let mut assignments = vec![0usize; n];

    for _ in 0..config.max_iterations {
        // Assignment step.
        for (i, sample) in samples.iter().enumerate() {
            assignments[i] = nearest_centroid(sample, &centroids);
        }
        // Update step.
        let mut new_centroids = vec![vec![0.0; samples[0].len()]; config.k];
        let mut counts = vec![0usize; config.k];
        for (sample, &a) in samples.iter().zip(assignments.iter()) {
            counts[a] += 1;
            for (acc, &v) in new_centroids[a].iter_mut().zip(sample.iter()) {
                *acc += v;
            }
        }
        for (centroid, &count) in new_centroids.iter_mut().zip(counts.iter()) {
            if count > 0 {
                for v in centroid.iter_mut() {
                    *v /= count as f64;
                }
            }
        }
        // Re-seed empty clusters with a random sample to avoid dead centroids.
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                new_centroids[c] = samples.choose(rng).expect("samples non-empty").clone();
            }
        }

        let movement: f64 = centroids
            .iter()
            .zip(new_centroids.iter())
            .map(|(old, new)| euclidean_distance_sq(old, new).sqrt())
            .sum();
        centroids = new_centroids;
        if movement < config.tolerance {
            break;
        }
    }

    // Final assignment against the converged centroids.
    for (i, sample) in samples.iter().enumerate() {
        assignments[i] = nearest_centroid(sample, &centroids);
    }
    Clustering::new(assignments, centroids)
}

/// K-means++ centroid seeding: the first centroid is uniform-random, each
/// subsequent one is drawn with probability proportional to the squared
/// distance to the nearest already-chosen centroid.
fn kmeans_plus_plus_init(samples: &[Vec<f64>], k: usize, rng: &mut impl Rng) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(samples.choose(rng).expect("samples non-empty").clone());
    let mut distances: Vec<f64> = samples
        .iter()
        .map(|s| euclidean_distance_sq(s, &centroids[0]))
        .collect();

    while centroids.len() < k {
        let total: f64 = distances.iter().sum();
        let next = if total <= f64::EPSILON {
            // All samples coincide with existing centroids; pick randomly.
            samples.choose(rng).expect("samples non-empty").clone()
        } else {
            let mut threshold = rng.gen_range(0.0..total);
            let mut chosen = samples.len() - 1;
            for (i, &d) in distances.iter().enumerate() {
                if threshold < d {
                    chosen = i;
                    break;
                }
                threshold -= d;
            }
            samples[chosen].clone()
        };
        for (d, s) in distances.iter_mut().zip(samples.iter()) {
            *d = d.min(euclidean_distance_sq(s, &next));
        }
        centroids.push(next);
    }
    centroids
}

/// Index of the centroid nearest to `sample`.
fn nearest_centroid(sample: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_dist = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = euclidean_distance_sq(sample, c);
        if d < best_dist {
            best_dist = d;
            best = i;
        }
    }
    best
}

/// Within-cluster sum of squares of a clustering over `samples`.
pub fn within_cluster_sum_of_squares(samples: &[Vec<f64>], clustering: &Clustering) -> f64 {
    samples
        .iter()
        .zip(clustering.assignments().iter())
        .map(|(s, &a)| euclidean_distance_sq(s, &clustering.centroids()[a]))
        .sum()
}

/// Selects `k` by the elbow method: runs k-means for `k = 1..=max_k` and
/// returns the `k` with the largest second difference ("knee") of the
/// within-cluster sum of squares curve.
///
/// This mirrors the `ElbowKM` baseline differentiator of the paper
/// (Section V-B), which the evaluation shows to be inferior to `DasaKM`.
pub fn elbow_method(samples: &[Vec<f64>], max_k: usize, rng: &mut impl Rng) -> usize {
    if samples.is_empty() || max_k == 0 {
        return 0;
    }
    let max_k = max_k.min(samples.len());
    let mut wcss = Vec::with_capacity(max_k);
    for k in 1..=max_k {
        let clustering = kmeans(samples, &KMeansConfig::new(k), rng);
        wcss.push(within_cluster_sum_of_squares(samples, &clustering));
    }
    if wcss.len() < 3 {
        return wcss.len();
    }
    // Largest positive curvature of the decreasing WCSS curve.
    let mut best_k = 2;
    let mut best_curvature = f64::NEG_INFINITY;
    for i in 1..wcss.len() - 1 {
        let curvature = wcss[i - 1] - 2.0 * wcss[i] + wcss[i + 1];
        if curvature > best_curvature {
            best_curvature = curvature;
            best_k = i + 1; // index i corresponds to k = i + 1
        }
    }
    best_k
}

#[cfg(test)]
mod tests {
    // rm-lint: allow(no-unordered-iteration): test-only cardinality check — the set is counted, never iterated
    use std::collections::HashSet;

    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Three well-separated 2D blobs.
    fn blobs(rng: &mut StdRng) -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [(0.0, 0.0), (10.0, 10.0), (20.0, 0.0)];
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for (label, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..30 {
                samples.push(vec![
                    cx + rng.gen_range(-1.0..1.0),
                    cy + rng.gen_range(-1.0..1.0),
                ]);
                labels.push(label);
            }
        }
        (samples, labels)
    }

    #[test]
    fn kmeans_separates_well_separated_blobs() {
        let mut rng = StdRng::seed_from_u64(42);
        let (samples, labels) = blobs(&mut rng);
        let clustering = kmeans(&samples, &KMeansConfig::new(3), &mut rng);
        assert_eq!(clustering.num_clusters(), 3);
        // Every ground-truth blob must map to a single cluster.
        for blob in 0..3 {
            // rm-lint: allow(no-unordered-iteration): deduplicates assignments to count them — order never observed
            let assigned: HashSet<usize> = labels
                .iter()
                .zip(clustering.assignments().iter())
                .filter(|(l, _)| **l == blob)
                .map(|(_, &a)| a)
                .collect();
            assert_eq!(assigned.len(), 1, "blob {blob} split across clusters");
        }
    }

    #[test]
    fn kmeans_handles_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(kmeans(&[], &KMeansConfig::new(3), &mut rng).is_empty());
        let samples = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert!(kmeans(&samples, &KMeansConfig::new(0), &mut rng).is_empty());
        // k >= n: every sample its own cluster.
        let c = kmeans(&samples, &KMeansConfig::new(5), &mut rng);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.assignments(), &[0, 1]);
    }

    #[test]
    fn kmeans_with_identical_samples_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples = vec![vec![1.0, 1.0]; 10];
        let c = kmeans(&samples, &KMeansConfig::new(3), &mut rng);
        assert_eq!(c.assignments().len(), 10);
    }

    #[test]
    fn wcss_decreases_with_more_clusters() {
        let mut rng = StdRng::seed_from_u64(3);
        let (samples, _) = blobs(&mut rng);
        let w1 = within_cluster_sum_of_squares(
            &samples,
            &kmeans(&samples, &KMeansConfig::new(1), &mut rng),
        );
        let w3 = within_cluster_sum_of_squares(
            &samples,
            &kmeans(&samples, &KMeansConfig::new(3), &mut rng),
        );
        assert!(w3 < w1);
    }

    #[test]
    fn elbow_method_finds_three_blobs() {
        let mut rng = StdRng::seed_from_u64(4);
        let (samples, _) = blobs(&mut rng);
        let k = elbow_method(&samples, 8, &mut rng);
        // The elbow should be near the true cluster count.
        assert!((2..=4).contains(&k), "elbow chose k = {k}");
    }

    #[test]
    fn elbow_method_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(elbow_method(&[], 5, &mut rng), 0);
        let samples = vec![vec![0.0], vec![1.0]];
        assert!(elbow_method(&samples, 5, &mut rng) <= 2);
    }

    #[test]
    fn all_assignments_are_valid_cluster_indices() {
        let mut rng = StdRng::seed_from_u64(6);
        let (samples, _) = blobs(&mut rng);
        let c = kmeans(&samples, &KMeansConfig::new(5), &mut rng);
        assert!(c.assignments().iter().all(|&a| a < c.num_clusters()));
        assert_eq!(c.assignments().len(), samples.len());
    }
}
