//! Clustering algorithms used by the missing-RSSI differentiator.
//!
//! * [`kmeans`] — Lloyd's algorithm with k-means++ seeding, plus the elbow
//!   method for selecting `K` (the `ElbowKM` baseline of the paper),
//! * [`agglomerative`] — centroid-linkage agglomerative clustering with a
//!   pluggable [`MergeConstraint`], the substrate for `TopoAC`,
//! * [`Clustering`] — a shared result type (assignments + centroids).

pub mod agglomerative;
pub mod kmeans;

pub use agglomerative::{
    agglomerative, AgglomerativeConfig, FnConstraint, MergeConstraint, Unconstrained,
};
pub use kmeans::{elbow_method, kmeans, within_cluster_sum_of_squares, KMeansConfig};

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
/// Panics (in debug builds) if the vectors have different lengths.
pub fn euclidean_distance_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "distance between different dimensions");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two equal-length vectors.
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    euclidean_distance_sq(a, b).sqrt()
}

/// The result of a clustering run: a cluster index per sample and the cluster
/// centroids.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    assignments: Vec<usize>,
    centroids: Vec<Vec<f64>>,
}

impl Clustering {
    /// Creates a clustering from assignments and centroids.
    pub fn new(assignments: Vec<usize>, centroids: Vec<Vec<f64>>) -> Self {
        Self {
            assignments,
            centroids,
        }
    }

    /// An empty clustering (no samples, no clusters).
    pub fn empty() -> Self {
        Self {
            assignments: Vec::new(),
            centroids: Vec::new(),
        }
    }

    /// Returns `true` if the clustering covers no samples.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// The cluster index assigned to each sample.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Cluster centroids, indexed by cluster id.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centroids.len()
    }

    /// Number of clustered samples.
    pub fn num_samples(&self) -> usize {
        self.assignments.len()
    }

    /// Indices of the samples belonging to cluster `cluster_id`.
    pub fn members_of(&self, cluster_id: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == cluster_id)
            .map(|(i, _)| i)
            .collect()
    }

    /// Groups sample indices by cluster: `result[c]` lists the members of
    /// cluster `c`.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.num_clusters()];
        for (i, &a) in self.assignments.iter().enumerate() {
            groups[a].push(i);
        }
        groups
    }

    /// Size of the largest cluster (0 when empty).
    pub fn max_cluster_size(&self) -> usize {
        self.clusters().iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        assert_eq!(euclidean_distance_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn clustering_accessors() {
        let c = Clustering::new(vec![0, 1, 0, 1, 1], vec![vec![0.0], vec![1.0]]);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.num_samples(), 5);
        assert_eq!(c.members_of(0), vec![0, 2]);
        assert_eq!(c.members_of(1), vec![1, 3, 4]);
        assert_eq!(c.clusters(), vec![vec![0, 2], vec![1, 3, 4]]);
        assert_eq!(c.max_cluster_size(), 3);
        assert!(!c.is_empty());
        assert!(Clustering::empty().is_empty());
        assert_eq!(Clustering::empty().max_cluster_size(), 0);
    }
}
