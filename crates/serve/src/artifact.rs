//! The on-disk venue-model artifact: a stable, checksummed, dependency-free
//! binary encoding of a [`VenueSnapshot`].
//!
//! # Format (version 1, all integers little-endian)
//!
//! ```text
//! header   magic        4 B   b"RMVM"
//!          version      u32   1
//!          payload_len  u64   bytes of payload that follow the header
//!          checksum     u64   FNV-1a 64 over the payload bytes
//! payload  venue        string (u32 length + UTF-8 bytes)
//!          estimator    u8    0 = KNN, 1 = WKNN, 2 = RandomForest
//!          knn_k        u32
//!          seed         u64
//!          precision    u8    0 = f64, 1 = f32
//!          dtype        u8    0 = native, 1 = bf16
//!          num_aps      u32
//!          map          n: u32; n × num_aps f64 bit patterns (fingerprints,
//!                       row-major); n × 2 f64 bit patterns (locations x, y)
//!          mask         rows: u32; cols: u32; rows × cols i8 entries
//!                       (1 observed, 0 MAR, −1 MNAR; anything else rejects)
//!          tensors      count: u32; per tensor: name string, dtype u8
//!                       (0 = f64, 1 = f32, 2 = bf16), rows u32, cols u32,
//!                       rows × cols raw bit patterns (u64 / u32 / u16)
//! ```
//!
//! Floats are serialized as their IEEE-754 bit patterns (`to_bits`), never
//! re-parsed through text, so encode → decode is the identity on every value
//! including NaNs and signed zeros — the bitwise round-trip guarantee the
//! serving tests pin. Decoding is fully validated: malformed, truncated or
//! corrupted input of any kind returns a typed [`ArtifactError`], never
//! panics, and no length field is trusted before checking it against the
//! bytes actually present (a forged multi-terabyte count fails fast instead
//! of allocating).

use std::fmt;

use radiomap_core::{ShardedVenueSnapshot, VenueSnapshot};
use rm_geometry::Point;
use rm_positioning::EstimatorKind;
use rm_radiomap::{DenseRadioMap, EntryKind, MaskMatrix, VenueShards};
use rm_tensor::{Bf16Matrix, Matrix, NamedTensor, Precision, SnapshotDtype, TensorPayload};

/// The artifact magic: "RMVM" (Radio-Map Venue Model).
pub const MAGIC: [u8; 4] = *b"RMVM";

/// The sharded-container magic: "RMVS" (Radio-Map Venue Shards). A sharded
/// artifact is a checksummed container of the venue's partition plus one
/// complete inner [`MAGIC`] artifact per shard — each shard blob is exactly
/// the bytes [`encode`] produces, so a shard can be extracted and republished
/// without re-encoding.
pub const SHARDED_MAGIC: [u8; 4] = *b"RMVS";

/// The format version this build writes and the only one it reads.
pub const FORMAT_VERSION: u32 = 1;

/// Bytes of the fixed-size artifact header (magic + version + payload length
/// + checksum).
pub const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// Why an artifact failed to decode. Every malformed input maps to one of
/// these — decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// Fewer bytes than a field (or the header) requires. `field` names the
    /// first field that could not be read.
    Truncated {
        /// The field being read when the input ran out.
        field: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// The first four bytes are not the expected magic ([`MAGIC`] for a
    /// venue artifact, [`SHARDED_MAGIC`] for a sharded container).
    BadMagic([u8; 4]),
    /// A version this build does not read.
    UnsupportedVersion(u32),
    /// The header's payload length disagrees with the bytes present.
    PayloadLengthMismatch {
        /// Length stored in the header.
        stored: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// The stored checksum does not match the payload (bit rot, torn write,
    /// or tampering).
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// FNV-1a 64 of the payload as read.
        computed: u64,
    },
    /// An enum tag outside its domain (estimator / precision / dtype / mask
    /// entry).
    InvalidTag {
        /// The field holding the tag.
        field: &'static str,
        /// The out-of-domain value (sign-extended for i8 tags).
        value: i64,
    },
    /// A string field holding invalid UTF-8.
    InvalidUtf8 {
        /// The offending field.
        field: &'static str,
    },
    /// Payload bytes remain after the last field — the artifact was written
    /// by something this format does not describe.
    TrailingBytes {
        /// Number of unconsumed payload bytes.
        extra: usize,
    },
    /// A sharded container whose partition fields are inconsistent: an
    /// assignment or routing pair referencing a nonexistent shard, or a
    /// shard-snapshot count that disagrees with the partition.
    InconsistentShards,
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Truncated {
                field,
                needed,
                available,
            } => write!(
                f,
                "artifact truncated reading `{field}`: needed {needed} bytes, {available} available"
            ),
            ArtifactError::BadMagic(m) => write!(f, "bad artifact magic {m:02x?}"),
            ArtifactError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported artifact version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            ArtifactError::PayloadLengthMismatch { stored, actual } => write!(
                f,
                "header claims {stored} payload bytes but {actual} are present"
            ),
            ArtifactError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: header {stored:#018x}, payload hashes to {computed:#018x}"
            ),
            ArtifactError::InvalidTag { field, value } => {
                write!(f, "invalid `{field}` tag {value}")
            }
            ArtifactError::InvalidUtf8 { field } => write!(f, "`{field}` is not valid UTF-8"),
            ArtifactError::TrailingBytes { extra } => {
                write!(f, "{extra} unexpected trailing payload bytes")
            }
            ArtifactError::InconsistentShards => {
                write!(f, "sharded container's partition fields are inconsistent")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

/// FNV-1a 64 over `bytes` — a dependency-free integrity check. Not
/// cryptographic: it detects bit rot and truncation, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn estimator_tag(kind: EstimatorKind) -> u8 {
    match kind {
        EstimatorKind::Knn => 0,
        EstimatorKind::Wknn => 1,
        EstimatorKind::RandomForest => 2,
    }
}

fn precision_tag(precision: Precision) -> u8 {
    match precision {
        Precision::F64 => 0,
        Precision::F32 => 1,
    }
}

fn dtype_tag(dtype: SnapshotDtype) -> u8 {
    match dtype {
        SnapshotDtype::Native => 0,
        SnapshotDtype::Bf16 => 1,
    }
}

/// Serializes a snapshot into a self-contained artifact byte buffer.
pub fn encode(snapshot: &VenueSnapshot) -> Vec<u8> {
    let mut payload = Vec::new();
    write_string(&mut payload, &snapshot.venue);
    payload.push(estimator_tag(snapshot.estimator));
    payload.extend_from_slice(&(snapshot.knn_k as u32).to_le_bytes());
    payload.extend_from_slice(&snapshot.seed.to_le_bytes());
    payload.push(precision_tag(snapshot.precision));
    payload.push(dtype_tag(snapshot.snapshot_dtype));
    payload.extend_from_slice(&(snapshot.map.num_aps() as u32).to_le_bytes());

    // Dense radio map.
    payload.extend_from_slice(&(snapshot.map.len() as u32).to_le_bytes());
    for fingerprint in snapshot.map.fingerprints() {
        for &v in fingerprint {
            payload.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    for location in snapshot.map.locations() {
        payload.extend_from_slice(&location.x.to_bits().to_le_bytes());
        payload.extend_from_slice(&location.y.to_bits().to_le_bytes());
    }

    // Mask matrix.
    payload.extend_from_slice(&(snapshot.mask.rows() as u32).to_le_bytes());
    payload.extend_from_slice(&(snapshot.mask.cols() as u32).to_le_bytes());
    for r in 0..snapshot.mask.rows() {
        for c in 0..snapshot.mask.cols() {
            payload.push(snapshot.mask.get(r, c).as_i8() as u8);
        }
    }

    // Tensor section.
    payload.extend_from_slice(&(snapshot.tensors.len() as u32).to_le_bytes());
    for tensor in &snapshot.tensors {
        write_string(&mut payload, &tensor.name);
        match &tensor.payload {
            TensorPayload::F64(m) => {
                write_tensor_header(&mut payload, 0, m.rows(), m.cols());
                for &v in m.data() {
                    payload.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            TensorPayload::F32(m) => {
                write_tensor_header(&mut payload, 1, m.rows(), m.cols());
                for &v in m.data() {
                    payload.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            TensorPayload::Bf16(m) => {
                write_tensor_header(&mut payload, 2, m.rows(), m.cols());
                for &bits in m.bits() {
                    payload.extend_from_slice(&bits.to_le_bytes());
                }
            }
        }
    }

    seal(MAGIC, payload)
}

/// Prepends the checksummed artifact header to `payload`.
fn seal(magic: [u8; 4], payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&magic);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Serializes a sharded snapshot into a self-contained [`SHARDED_MAGIC`]
/// container: the venue's partition (assignments, centroids, path routing)
/// followed by one complete inner artifact per shard.
pub fn encode_sharded(snapshot: &ShardedVenueSnapshot) -> Vec<u8> {
    let mut payload = Vec::new();
    write_string(&mut payload, &snapshot.venue);
    let shards = &snapshot.shards;
    payload.extend_from_slice(&(shards.assignments().len() as u32).to_le_bytes());
    for &shard in shards.assignments() {
        payload.extend_from_slice(&(shard as u32).to_le_bytes());
    }
    payload.extend_from_slice(&(shards.num_shards() as u32).to_le_bytes());
    for centroid in shards.centroids() {
        payload.extend_from_slice(&centroid.x.to_bits().to_le_bytes());
        payload.extend_from_slice(&centroid.y.to_bits().to_le_bytes());
    }
    payload.extend_from_slice(&(shards.path_shards().len() as u32).to_le_bytes());
    for &(path_id, shard) in shards.path_shards() {
        payload.extend_from_slice(&(path_id as u32).to_le_bytes());
        payload.extend_from_slice(&(shard as u32).to_le_bytes());
    }
    payload.extend_from_slice(&(snapshot.snapshots.len() as u32).to_le_bytes());
    for shard_snapshot in &snapshot.snapshots {
        let inner = encode(shard_snapshot);
        payload.extend_from_slice(&(inner.len() as u64).to_le_bytes());
        payload.extend_from_slice(&inner);
    }
    seal(SHARDED_MAGIC, payload)
}

/// Deserializes a sharded container produced by [`encode_sharded`], with the
/// same guarantees as [`decode`]: bitwise round-trip, typed errors, no
/// panics, and no length field trusted before the bytes are present.
pub fn decode_sharded(bytes: &[u8]) -> Result<ShardedVenueSnapshot, ArtifactError> {
    let payload = validated_payload(bytes, SHARDED_MAGIC)?;
    let mut r = Reader::new(payload);
    let venue = r.string("venue")?;
    let num_records = r.u32("shards.records")? as usize;
    let mut assignments =
        Vec::with_capacity(r.bounded_count("shards.assignments", num_records, 4)?);
    for _ in 0..num_records {
        assignments.push(r.u32("shards.assignments")? as usize);
    }
    let num_shards = r.u32("shards.len")? as usize;
    let mut centroids = Vec::with_capacity(r.bounded_count("shards.centroids", num_shards, 16)?);
    for _ in 0..num_shards {
        let x = f64::from_bits(r.u64("shards.centroids")?);
        let y = f64::from_bits(r.u64("shards.centroids")?);
        centroids.push(Point::new(x, y));
    }
    let num_paths = r.u32("shards.paths")? as usize;
    let mut path_shards = Vec::with_capacity(r.bounded_count("shards.paths", num_paths, 8)?);
    for _ in 0..num_paths {
        let path_id = r.u32("shards.paths")? as usize;
        let shard = r.u32("shards.paths")? as usize;
        path_shards.push((path_id, shard));
    }
    let shards = VenueShards::from_parts(assignments, centroids, path_shards)
        .ok_or(ArtifactError::InconsistentShards)?;

    let snapshot_count = r.u32("snapshots.len")? as usize;
    if snapshot_count != shards.num_shards() {
        return Err(ArtifactError::InconsistentShards);
    }
    let mut snapshots = Vec::with_capacity(r.bounded_count("snapshots", snapshot_count, 8)?);
    for _ in 0..snapshot_count {
        let len = r.u64("shard.artifact.len")? as usize;
        let inner = r.take("shard.artifact", len)?;
        snapshots.push(decode(inner)?);
    }
    if r.remaining() > 0 {
        return Err(ArtifactError::TrailingBytes {
            extra: r.remaining(),
        });
    }
    Ok(ShardedVenueSnapshot {
        venue,
        snapshots,
        shards,
    })
}

fn write_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn write_tensor_header(out: &mut Vec<u8>, dtype: u8, rows: usize, cols: usize) {
    out.push(dtype);
    out.extend_from_slice(&(rows as u32).to_le_bytes());
    out.extend_from_slice(&(cols as u32).to_le_bytes());
}

/// Deserializes an artifact produced by [`encode`]. Returns the snapshot with
/// every float bit-identical to the encoded one, or a typed error for any
/// malformed input.
pub fn decode(bytes: &[u8]) -> Result<VenueSnapshot, ArtifactError> {
    let payload = validated_payload(bytes, MAGIC)?;
    let mut r = Reader::new(payload);
    let venue = r.string("venue")?;
    let estimator = match r.u8("estimator")? {
        0 => EstimatorKind::Knn,
        1 => EstimatorKind::Wknn,
        2 => EstimatorKind::RandomForest,
        value => {
            return Err(ArtifactError::InvalidTag {
                field: "estimator",
                value: i64::from(value),
            })
        }
    };
    let knn_k = r.u32("knn_k")? as usize;
    let seed = r.u64("seed")?;
    let precision = match r.u8("precision")? {
        0 => Precision::F64,
        1 => Precision::F32,
        value => {
            return Err(ArtifactError::InvalidTag {
                field: "precision",
                value: i64::from(value),
            })
        }
    };
    let snapshot_dtype = match r.u8("dtype")? {
        0 => SnapshotDtype::Native,
        1 => SnapshotDtype::Bf16,
        value => {
            return Err(ArtifactError::InvalidTag {
                field: "dtype",
                value: i64::from(value),
            })
        }
    };
    let num_aps = r.u32("num_aps")? as usize;

    let n = r.u32("map.len")? as usize;
    let mut fingerprints =
        Vec::with_capacity(r.bounded_count("map.fingerprints", n, num_aps * 8)?);
    for _ in 0..n {
        let mut row = Vec::with_capacity(num_aps);
        for _ in 0..num_aps {
            row.push(f64::from_bits(r.u64("map.fingerprints")?));
        }
        fingerprints.push(row);
    }
    let mut locations = Vec::with_capacity(n);
    for _ in 0..n {
        let x = f64::from_bits(r.u64("map.locations")?);
        let y = f64::from_bits(r.u64("map.locations")?);
        locations.push(Point::new(x, y));
    }
    let map = DenseRadioMap::new(fingerprints, locations, num_aps);

    let mask_rows = r.u32("mask.rows")? as usize;
    let mask_cols = r.u32("mask.cols")? as usize;
    r.bounded_count("mask.entries", mask_rows.saturating_mul(mask_cols), 1)?;
    let mut mask = MaskMatrix::all_observed(mask_rows, mask_cols);
    for row in 0..mask_rows {
        for col in 0..mask_cols {
            let raw = r.u8("mask.entries")? as i8;
            // `EntryKind::from_i8` panics outside {-1, 0, 1}; reject first.
            let kind = match raw {
                1 => EntryKind::Observed,
                0 => EntryKind::Mar,
                -1 => EntryKind::Mnar,
                value => {
                    return Err(ArtifactError::InvalidTag {
                        field: "mask.entries",
                        value: i64::from(value),
                    })
                }
            };
            mask.set(row, col, kind);
        }
    }

    let tensor_count = r.u32("tensors.len")? as usize;
    let mut tensors = Vec::with_capacity(r.bounded_count("tensors", tensor_count, 9)?);
    for _ in 0..tensor_count {
        let name = r.string("tensor.name")?;
        let dtype = r.u8("tensor.dtype")?;
        let rows = r.u32("tensor.rows")? as usize;
        let cols = r.u32("tensor.cols")? as usize;
        let elements = rows.saturating_mul(cols);
        let payload = match dtype {
            0 => {
                r.bounded_count("tensor.payload", elements, 8)?;
                let data: Vec<f64> = (0..elements)
                    .map(|_| r.u64("tensor.payload").map(f64::from_bits))
                    .collect::<Result<_, _>>()?;
                TensorPayload::F64(Matrix::from_vec(rows, cols, data))
            }
            1 => {
                r.bounded_count("tensor.payload", elements, 4)?;
                let data: Vec<f32> = (0..elements)
                    .map(|_| r.u32("tensor.payload").map(f32::from_bits))
                    .collect::<Result<_, _>>()?;
                TensorPayload::F32(Matrix::from_vec(rows, cols, data))
            }
            2 => {
                r.bounded_count("tensor.payload", elements, 2)?;
                let bits: Vec<u16> = (0..elements)
                    .map(|_| r.u16("tensor.payload"))
                    .collect::<Result<_, _>>()?;
                TensorPayload::Bf16(Bf16Matrix::from_bits(rows, cols, bits))
            }
            value => {
                return Err(ArtifactError::InvalidTag {
                    field: "tensor.dtype",
                    value: i64::from(value),
                })
            }
        };
        tensors.push(NamedTensor { name, payload });
    }

    if r.remaining() > 0 {
        return Err(ArtifactError::TrailingBytes {
            extra: r.remaining(),
        });
    }

    Ok(VenueSnapshot {
        venue,
        map,
        mask,
        estimator,
        knn_k,
        seed,
        precision,
        snapshot_dtype,
        tensors,
    })
}

/// Validates an artifact header (expected magic, version, payload length,
/// checksum) and returns the payload slice that follows it.
fn validated_payload(bytes: &[u8], magic: [u8; 4]) -> Result<&[u8], ArtifactError> {
    if bytes.len() < HEADER_LEN {
        return Err(ArtifactError::Truncated {
            field: "header",
            needed: HEADER_LEN,
            available: bytes.len(),
        });
    }
    let found: [u8; 4] = bytes[0..4].try_into().expect("sliced 4 bytes");
    if found != magic {
        return Err(ArtifactError::BadMagic(found));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("sliced 4 bytes"));
    if version != FORMAT_VERSION {
        return Err(ArtifactError::UnsupportedVersion(version));
    }
    let stored_len = u64::from_le_bytes(bytes[8..16].try_into().expect("sliced 8 bytes"));
    let payload = &bytes[HEADER_LEN..];
    if stored_len != payload.len() as u64 {
        return Err(ArtifactError::PayloadLengthMismatch {
            stored: stored_len,
            actual: payload.len() as u64,
        });
    }
    let stored_checksum = u64::from_le_bytes(bytes[16..24].try_into().expect("sliced 8 bytes"));
    let computed = fnv1a64(payload);
    if stored_checksum != computed {
        return Err(ArtifactError::ChecksumMismatch {
            stored: stored_checksum,
            computed,
        });
    }
    Ok(payload)
}

/// A bounds-checked little-endian payload reader: every read either yields
/// the value or a [`ArtifactError::Truncated`] naming the field.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, field: &'static str, len: usize) -> Result<&'a [u8], ArtifactError> {
        if self.remaining() < len {
            return Err(ArtifactError::Truncated {
                field,
                needed: len,
                available: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, ArtifactError> {
        Ok(self.take(field, 1)?[0])
    }

    fn u16(&mut self, field: &'static str) -> Result<u16, ArtifactError> {
        Ok(u16::from_le_bytes(
            self.take(field, 2)?.try_into().expect("sliced 2 bytes"),
        ))
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(
            self.take(field, 4)?.try_into().expect("sliced 4 bytes"),
        ))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(
            self.take(field, 8)?.try_into().expect("sliced 8 bytes"),
        ))
    }

    fn string(&mut self, field: &'static str) -> Result<String, ArtifactError> {
        let len = self.u32(field)? as usize;
        let bytes = self.take(field, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ArtifactError::InvalidUtf8 { field })
    }

    /// Validates that `count` items of at least `min_item_bytes` each can
    /// still be read, returning `count` — the guard that keeps a forged
    /// count field from driving a huge allocation before the truncation
    /// would be noticed element by element.
    fn bounded_count(
        &self,
        field: &'static str,
        count: usize,
        min_item_bytes: usize,
    ) -> Result<usize, ArtifactError> {
        let needed = count.saturating_mul(min_item_bytes.max(1));
        if needed > self.remaining() {
            return Err(ArtifactError::Truncated {
                field,
                needed,
                available: self.remaining(),
            });
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_snapshot() -> VenueSnapshot {
        let map = DenseRadioMap::new(
            vec![vec![-50.0, f64::NAN], vec![-0.0, -70.5]],
            vec![Point::new(0.0, 1.0), Point::new(2.5, -3.5)],
            2,
        );
        let mut mask = MaskMatrix::all_observed(2, 2);
        mask.set(0, 1, EntryKind::Mar);
        mask.set(1, 0, EntryKind::Mnar);
        VenueSnapshot {
            venue: "hall-α".to_string(),
            map,
            mask,
            estimator: EstimatorKind::Wknn,
            knn_k: 3,
            seed: 2023,
            precision: Precision::F32,
            snapshot_dtype: SnapshotDtype::Bf16,
            tensors: vec![
                NamedTensor::new("w.f64", Matrix::<f64>::from_vec(1, 2, vec![1.5, f64::NAN])),
                NamedTensor::new("w.f32", Matrix::<f32>::from_vec(2, 1, vec![-0.0, 7.25])),
                NamedTensor::new(
                    "w.bf16",
                    Bf16Matrix::from_matrix(&Matrix::<f32>::from_vec(1, 3, vec![0.5, -1.0, 3.0])),
                ),
            ],
        }
    }

    fn assert_snapshots_bits_eq(a: &VenueSnapshot, b: &VenueSnapshot) {
        assert_eq!(a.venue, b.venue);
        assert_eq!(a.estimator, b.estimator);
        assert_eq!(a.knn_k, b.knn_k);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.precision, b.precision);
        assert_eq!(a.snapshot_dtype, b.snapshot_dtype);
        assert_eq!(a.map.num_aps(), b.map.num_aps());
        assert_eq!(a.map.len(), b.map.len());
        for (fa, fb) in a.map.fingerprints().iter().zip(b.map.fingerprints()) {
            for (x, y) in fa.iter().zip(fb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        for (pa, pb) in a.map.locations().iter().zip(b.map.locations()) {
            assert_eq!(pa.x.to_bits(), pb.x.to_bits());
            assert_eq!(pa.y.to_bits(), pb.y.to_bits());
        }
        assert_eq!(a.mask, b.mask);
        assert_eq!(a.tensors.len(), b.tensors.len());
        for (ta, tb) in a.tensors.iter().zip(&b.tensors) {
            assert!(ta.bits_eq(tb), "tensor {} drifted", ta.name);
        }
    }

    #[test]
    fn round_trip_is_bitwise_identity() {
        let snapshot = tiny_snapshot();
        let bytes = encode(&snapshot);
        let decoded = decode(&bytes).expect("decode");
        assert_snapshots_bits_eq(&snapshot, &decoded);
        // Re-encoding the decoded snapshot reproduces the byte stream.
        assert_eq!(bytes, encode(&decoded));
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let mut bytes = encode(&tiny_snapshot());
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(matches!(decode(&wrong), Err(ArtifactError::BadMagic(_))));
        bytes[4] = 99;
        assert!(matches!(
            decode(&bytes),
            Err(ArtifactError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn every_truncation_point_is_a_typed_error_never_a_panic() {
        let bytes = encode(&tiny_snapshot());
        for len in 0..bytes.len() {
            let err = decode(&bytes[..len]).expect_err("truncated artifact must not decode");
            assert!(
                matches!(
                    err,
                    ArtifactError::Truncated { .. } | ArtifactError::PayloadLengthMismatch { .. }
                ),
                "unexpected error at length {len}: {err}"
            );
        }
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let bytes = encode(&tiny_snapshot());
        for flip in [HEADER_LEN, HEADER_LEN + 7, bytes.len() - 1] {
            let mut corrupt = bytes.clone();
            corrupt[flip] ^= 0x40;
            assert!(
                matches!(
                    decode(&corrupt),
                    Err(ArtifactError::ChecksumMismatch { .. })
                ),
                "flip at {flip} not caught"
            );
        }
        // A corrupted checksum itself is also caught.
        let mut corrupt = bytes.clone();
        corrupt[16] ^= 1;
        assert!(matches!(
            decode(&corrupt),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn invalid_tags_are_rejected_before_construction() {
        // Re-encode with each enum tag forged (fixing up the checksum so the
        // tag check, not the checksum, is what rejects).
        let snapshot = tiny_snapshot();
        let bytes = encode(&snapshot);
        let venue_len = 4 + snapshot.venue.len();
        let estimator_off = HEADER_LEN + venue_len;
        let precision_off = estimator_off + 1 + 4 + 8;
        for (offset, field) in [(estimator_off, "estimator"), (precision_off, "precision")] {
            let mut forged = bytes.clone();
            forged[offset] = 0xEE;
            let payload = forged[HEADER_LEN..].to_vec();
            forged[16..24].copy_from_slice(&fnv1a64(&payload).to_le_bytes());
            match decode(&forged) {
                Err(ArtifactError::InvalidTag { field: got, .. }) => assert_eq!(got, field),
                other => panic!("forged {field} tag: {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&tiny_snapshot());
        bytes.push(0);
        // Appending without touching the header breaks the length check...
        assert!(matches!(
            decode(&bytes),
            Err(ArtifactError::PayloadLengthMismatch { .. })
        ));
        // ...and fixing up length + checksum exposes the trailing-byte check.
        let new_len = (bytes.len() - HEADER_LEN) as u64;
        bytes[8..16].copy_from_slice(&new_len.to_le_bytes());
        let checksum = fnv1a64(&bytes[HEADER_LEN..]);
        bytes[16..24].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            decode(&bytes),
            Err(ArtifactError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn forged_giant_counts_fail_fast_without_allocating() {
        // Forge the tensor count to u32::MAX with a valid checksum: the
        // bounded-count guard must reject it instead of reserving gigabytes.
        let snapshot = VenueSnapshot {
            tensors: Vec::new(),
            ..tiny_snapshot()
        };
        let bytes = encode(&snapshot);
        let mut forged = bytes.clone();
        let count_off = bytes.len() - 4; // tensor count is the last field
        forged[count_off..].copy_from_slice(&u32::MAX.to_le_bytes());
        let payload = forged[HEADER_LEN..].to_vec();
        forged[16..24].copy_from_slice(&fnv1a64(&payload).to_le_bytes());
        assert!(matches!(
            decode(&forged),
            Err(ArtifactError::Truncated {
                field: "tensors",
                ..
            })
        ));
    }

    fn tiny_sharded_snapshot() -> ShardedVenueSnapshot {
        let shards = VenueShards::from_parts(
            vec![0, 1, 0],
            vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            vec![(0, 0), (1, 1)],
        )
        .expect("consistent partition");
        let snapshots = vec![
            VenueSnapshot {
                venue: "hall-α/shard0".to_string(),
                ..tiny_snapshot()
            },
            VenueSnapshot {
                venue: "hall-α/shard1".to_string(),
                tensors: Vec::new(),
                ..tiny_snapshot()
            },
        ];
        ShardedVenueSnapshot {
            venue: "hall-α".to_string(),
            snapshots,
            shards,
        }
    }

    #[test]
    fn sharded_round_trip_is_bitwise_identity() {
        let snapshot = tiny_sharded_snapshot();
        let bytes = encode_sharded(&snapshot);
        let decoded = decode_sharded(&bytes).expect("decode sharded");
        assert_eq!(decoded.venue, snapshot.venue);
        assert_eq!(decoded.shards.assignments(), snapshot.shards.assignments());
        assert_eq!(decoded.shards.num_shards(), snapshot.shards.num_shards());
        for (a, b) in decoded
            .shards
            .centroids()
            .iter()
            .zip(snapshot.shards.centroids())
        {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
        }
        assert_eq!(decoded.shards.path_shards(), snapshot.shards.path_shards());
        assert_eq!(decoded.snapshots.len(), snapshot.snapshots.len());
        for (a, b) in decoded.snapshots.iter().zip(&snapshot.snapshots) {
            assert_snapshots_bits_eq(a, b);
        }
        // Re-encoding the decoded container reproduces the byte stream.
        assert_eq!(bytes, encode_sharded(&decoded));
    }

    #[test]
    fn sharded_magic_is_distinct_and_checked_both_ways() {
        let sharded = encode_sharded(&tiny_sharded_snapshot());
        let plain = encode(&tiny_snapshot());
        // A plain artifact is not a sharded container and vice versa.
        assert!(matches!(
            decode_sharded(&plain),
            Err(ArtifactError::BadMagic(m)) if m == MAGIC
        ));
        assert!(matches!(
            decode(&sharded),
            Err(ArtifactError::BadMagic(m)) if m == SHARDED_MAGIC
        ));
    }

    #[test]
    fn every_sharded_truncation_point_is_a_typed_error_never_a_panic() {
        let bytes = encode_sharded(&tiny_sharded_snapshot());
        for len in 0..bytes.len() {
            let err =
                decode_sharded(&bytes[..len]).expect_err("truncated container must not decode");
            assert!(
                matches!(
                    err,
                    ArtifactError::Truncated { .. } | ArtifactError::PayloadLengthMismatch { .. }
                ),
                "unexpected error at length {len}: {err}"
            );
        }
    }

    #[test]
    fn inconsistent_partitions_are_rejected() {
        // An assignment referencing a nonexistent shard must fail decoding
        // even though the bytes themselves are well-formed. Forge the first
        // assignment (right after the venue string) and fix up the checksum.
        let snapshot = tiny_sharded_snapshot();
        let bytes = encode_sharded(&snapshot);
        let assignment_off = HEADER_LEN + 4 + snapshot.venue.len() + 4;
        let mut forged = bytes.clone();
        forged[assignment_off..assignment_off + 4].copy_from_slice(&99u32.to_le_bytes());
        let payload = forged[HEADER_LEN..].to_vec();
        forged[16..24].copy_from_slice(&fnv1a64(&payload).to_le_bytes());
        assert!(matches!(
            decode_sharded(&forged),
            Err(ArtifactError::InconsistentShards)
        ));

        // A snapshot count that disagrees with the partition is also
        // inconsistent: encode with one shard snapshot missing.
        let mut short = snapshot;
        short.snapshots.pop();
        assert!(matches!(
            decode_sharded(&encode_sharded(&short)),
            Err(ArtifactError::InconsistentShards)
        ));
    }

    #[test]
    fn errors_display_their_diagnosis() {
        let e = ArtifactError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum"));
        assert!(ArtifactError::BadMagic(*b"nope")
            .to_string()
            .contains("magic"));
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(boxed.to_string().contains("checksum"));
    }
}
