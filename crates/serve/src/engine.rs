//! The request-batching query front end.

use rm_geometry::Point;

use crate::registry::ModelRegistry;

/// Upper bound on one micro-batch: requests are fanned over the worker pool
/// in groups of at most this many, so a flush's latency is bounded no matter
/// how fast requests arrive.
pub const MAX_MICRO_BATCH: usize = 64;

/// One answered query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// Position of the query in this engine's submission order (0-based).
    pub index: u64,
    /// The estimated location, or `None` when the model declined the query.
    pub position: Option<Point>,
    /// The registry generation of the model that answered — every response
    /// is attributable to exactly one published model.
    pub generation: u64,
}

/// A batching query engine for one venue.
///
/// Requests accumulate in submission order and are flushed in micro-batches
/// of at most [`MAX_MICRO_BATCH`]: each flush clones the venue's current
/// `Arc<VenueModel>` from the registry **once** and fans the whole batch
/// over the deterministic worker pool against that one immutable model — so
/// a batch can never straddle a hot swap, and every response carries the
/// generation that actually answered it.
///
/// # Determinism
///
/// Batch boundaries depend only on the submission order and the batch
/// capacity — never on the thread count — and the fan-out is
/// `rm_runtime::par_map`, which is order-preserving and bit-identical at
/// any width. A fixed query log against a fixed model therefore yields
/// bit-identical responses at `RM_THREADS=1`, `2` or `N`, and each response
/// equals the offline `evaluate_estimator` path's per-query estimate on the
/// same model (both are exactly `estimator.estimate(fingerprint)`).
pub struct QueryEngine<'a> {
    registry: &'a ModelRegistry,
    venue: String,
    threads: usize,
    max_batch: usize,
    next_index: u64,
    pending: Vec<(u64, Vec<f64>)>,
    answered: Vec<QueryResponse>,
}

impl<'a> QueryEngine<'a> {
    /// An engine serving `venue` from `registry`, flushing at
    /// [`MAX_MICRO_BATCH`] pending requests. `threads` is the fan-out width
    /// per micro-batch (`0` = auto, `1` = serial; responses are
    /// bit-identical at any value).
    pub fn new(registry: &'a ModelRegistry, venue: impl Into<String>, threads: usize) -> Self {
        Self::with_max_batch(registry, venue, threads, MAX_MICRO_BATCH)
    }

    /// [`QueryEngine::new`] with an explicit micro-batch capacity, clamped
    /// to `1..=MAX_MICRO_BATCH`. The capacity changes scheduling (how many
    /// requests share one model acquisition), never results.
    pub fn with_max_batch(
        registry: &'a ModelRegistry,
        venue: impl Into<String>,
        threads: usize,
        max_batch: usize,
    ) -> Self {
        Self {
            registry,
            venue: venue.into(),
            threads,
            max_batch: max_batch.clamp(1, MAX_MICRO_BATCH),
            next_index: 0,
            pending: Vec::new(),
            answered: Vec::new(),
        }
    }

    /// The venue this engine serves.
    pub fn venue(&self) -> &str {
        &self.venue
    }

    /// Enqueues one query; flushes automatically when the micro-batch is
    /// full. Returns the query's submission index.
    pub fn submit(&mut self, fingerprint: Vec<f64>) -> u64 {
        let index = self.next_index;
        self.next_index += 1;
        self.pending.push((index, fingerprint));
        if self.pending.len() >= self.max_batch {
            self.flush();
        }
        index
    }

    /// Flushes the pending (possibly partial) micro-batch. A no-op when
    /// nothing is pending. Panics if no model was ever published for this
    /// venue — serving without a model is a deployment error, not a query
    /// error.
    pub fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let model = self
            .registry
            .model(&self.venue)
            .unwrap_or_else(|| panic!("no model published for venue `{}`", self.venue));
        let batch = std::mem::take(&mut self.pending);
        // One Arc acquisition for the whole batch: every response below is
        // computed by — and attributed to — this one immutable model, no
        // matter what the registry publishes meanwhile.
        let generation = model.generation();
        let positions = rm_runtime::par_map(self.threads, &batch, |_, (_, fingerprint)| {
            model.estimate(fingerprint)
        });
        self.answered
            .extend(
                batch
                    .iter()
                    .zip(positions)
                    .map(|(&(index, _), position)| QueryResponse {
                        index,
                        position,
                        generation,
                    }),
            );
    }

    /// Flushes any partial batch and returns every response answered since
    /// the last drain, in submission order.
    pub fn drain(&mut self) -> Vec<QueryResponse> {
        self.flush();
        std::mem::take(&mut self.answered)
    }

    /// Convenience for replaying a fixed query log: submits every
    /// fingerprint, flushes, and returns all responses in submission order.
    pub fn run_log(&mut self, log: &[Vec<f64>]) -> Vec<QueryResponse> {
        for fingerprint in log {
            self.submit(fingerprint.clone());
        }
        self.drain()
    }
}

/// One answered query against a sharded venue.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedQueryResponse {
    /// Position of the query in this engine's submission order (0-based).
    pub index: u64,
    /// The estimated location (cross-shard re-rank; see
    /// [`ShardedVenueModel`](crate::model::ShardedVenueModel)).
    pub position: Option<Point>,
    /// The primary shard the query routed to (AP overlap, ties by nearest
    /// signal centroid).
    pub shard: usize,
    /// The generation of the primary shard's model — after an incremental
    /// republish, queries routing to clean shards keep reporting those
    /// shards' old generations.
    pub generation: u64,
}

/// The sharded counterpart of [`QueryEngine`]: batching, flush rules, and
/// determinism contract are identical, but each flush acquires the venue's
/// composed [`ShardedVenueModel`](crate::model::ShardedVenueModel) once, and
/// every response carries the primary shard it routed to plus that shard's
/// generation. A batch can therefore never straddle a per-shard republish:
/// all its answers come from one consistent set of shard models.
pub struct ShardedQueryEngine<'a> {
    registry: &'a ModelRegistry,
    venue: String,
    threads: usize,
    max_batch: usize,
    next_index: u64,
    pending: Vec<(u64, Vec<f64>)>,
    answered: Vec<ShardedQueryResponse>,
}

impl<'a> ShardedQueryEngine<'a> {
    /// An engine serving the sharded venue `venue` from `registry`, flushing
    /// at [`MAX_MICRO_BATCH`] pending requests (`threads` as in
    /// [`QueryEngine::new`]).
    pub fn new(registry: &'a ModelRegistry, venue: impl Into<String>, threads: usize) -> Self {
        Self::with_max_batch(registry, venue, threads, MAX_MICRO_BATCH)
    }

    /// [`ShardedQueryEngine::new`] with an explicit micro-batch capacity,
    /// clamped to `1..=MAX_MICRO_BATCH`. Capacity changes scheduling, never
    /// results.
    pub fn with_max_batch(
        registry: &'a ModelRegistry,
        venue: impl Into<String>,
        threads: usize,
        max_batch: usize,
    ) -> Self {
        Self {
            registry,
            venue: venue.into(),
            threads,
            max_batch: max_batch.clamp(1, MAX_MICRO_BATCH),
            next_index: 0,
            pending: Vec::new(),
            answered: Vec::new(),
        }
    }

    /// The venue this engine serves.
    pub fn venue(&self) -> &str {
        &self.venue
    }

    /// Enqueues one query; flushes automatically when the micro-batch is
    /// full. Returns the query's submission index.
    pub fn submit(&mut self, fingerprint: Vec<f64>) -> u64 {
        let index = self.next_index;
        self.next_index += 1;
        self.pending.push((index, fingerprint));
        if self.pending.len() >= self.max_batch {
            self.flush();
        }
        index
    }

    /// Flushes the pending (possibly partial) micro-batch. Panics if no
    /// sharded model was ever published for this venue.
    pub fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let model = self
            .registry
            .sharded_model(&self.venue)
            .unwrap_or_else(|| panic!("no sharded model published for venue `{}`", self.venue));
        let batch = std::mem::take(&mut self.pending);
        let answers = rm_runtime::par_map(self.threads, &batch, |_, (_, fingerprint)| {
            (model.route(fingerprint), model.estimate(fingerprint))
        });
        self.answered.extend(
            batch
                .iter()
                .zip(answers)
                .map(|(&(index, _), (shard, position))| ShardedQueryResponse {
                    index,
                    position,
                    shard,
                    generation: model.models()[shard].generation(),
                }),
        );
    }

    /// Flushes any partial batch and returns every response answered since
    /// the last drain, in submission order.
    pub fn drain(&mut self) -> Vec<ShardedQueryResponse> {
        self.flush();
        std::mem::take(&mut self.answered)
    }

    /// Submits every fingerprint of a fixed query log, flushes, and returns
    /// all responses in submission order.
    pub fn run_log(&mut self, log: &[Vec<f64>]) -> Vec<ShardedQueryResponse> {
        for fingerprint in log {
            self.submit(fingerprint.clone());
        }
        self.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radiomap_core::prelude::EstimatorKind;
    use radiomap_core::VenueSnapshot;
    use rm_radiomap::{DenseRadioMap, MaskMatrix};
    use rm_tensor::{Precision, SnapshotDtype};

    fn registry_with_grid() -> ModelRegistry {
        // 4 reference points on a line; 1-NN is exact on its fingerprints.
        let fingerprints: Vec<Vec<f64>> = (0..4).map(|i| vec![-50.0 - 10.0 * i as f64]).collect();
        let locations = (0..4).map(|i| Point::new(i as f64, 0.0)).collect();
        let registry = ModelRegistry::new();
        registry.publish(
            VenueSnapshot {
                venue: "v".into(),
                map: DenseRadioMap::new(fingerprints, locations, 1),
                mask: MaskMatrix::all_observed(4, 1),
                estimator: EstimatorKind::Knn,
                knn_k: 1,
                seed: 0,
                precision: Precision::F64,
                snapshot_dtype: SnapshotDtype::Native,
                tensors: Vec::new(),
            },
            1,
        );
        registry
    }

    #[test]
    fn responses_arrive_in_submission_order_with_generations() {
        let registry = registry_with_grid();
        let mut engine = QueryEngine::with_max_batch(&registry, "v", 1, 2);
        let log: Vec<Vec<f64>> = vec![vec![-50.0], vec![-70.0], vec![-60.0]];
        let responses = engine.run_log(&log);
        assert_eq!(responses.len(), 3);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.index, i as u64);
            assert_eq!(r.generation, 1);
        }
        assert_eq!(responses[0].position.unwrap().x, 0.0);
        assert_eq!(responses[1].position.unwrap().x, 2.0);
        assert_eq!(responses[2].position.unwrap().x, 1.0);
    }

    #[test]
    fn submit_autoflushes_at_capacity_and_drain_flushes_the_rest() {
        let registry = registry_with_grid();
        let mut engine = QueryEngine::with_max_batch(&registry, "v", 1, 2);
        engine.submit(vec![-50.0]);
        assert!(engine.answered.is_empty());
        engine.submit(vec![-60.0]); // fills the batch → autoflush
        assert_eq!(engine.answered.len(), 2);
        engine.submit(vec![-70.0]); // partial
        let responses = engine.drain();
        assert_eq!(responses.len(), 3);
        assert!(engine.drain().is_empty());
        // Indices keep counting across drains.
        assert_eq!(engine.submit(vec![-50.0]), 3);
    }

    #[test]
    fn capacity_is_clamped_to_the_micro_batch_bound() {
        let registry = registry_with_grid();
        let engine = QueryEngine::with_max_batch(&registry, "v", 1, 10_000);
        assert_eq!(engine.max_batch, MAX_MICRO_BATCH);
        let engine = QueryEngine::with_max_batch(&registry, "v", 1, 0);
        assert_eq!(engine.max_batch, 1);
    }

    #[test]
    #[should_panic(expected = "no model published for venue")]
    fn flushing_against_an_unpublished_venue_panics() {
        let registry = ModelRegistry::new();
        let mut engine = QueryEngine::new(&registry, "ghost", 1);
        engine.submit(vec![-50.0]);
        engine.flush();
    }

    #[test]
    fn batch_capacity_changes_scheduling_never_results() {
        let registry = registry_with_grid();
        let log: Vec<Vec<f64>> = (0..37).map(|i| vec![-45.0 - (i as f64) * 1.3]).collect();
        let reference = QueryEngine::with_max_batch(&registry, "v", 1, 1).run_log(&log);
        for capacity in [2, 7, MAX_MICRO_BATCH] {
            let got = QueryEngine::with_max_batch(&registry, "v", 1, capacity).run_log(&log);
            assert_eq!(got, reference, "capacity {capacity} changed responses");
        }
    }
}
