//! A loaded, immutable venue model: the unit the registry swaps and the
//! query engine estimates against.

use radiomap_core::VenueSnapshot;
use rm_geometry::Point;
use rm_positioning::LocationEstimator;

/// An immutable serving model for one venue: the decoded [`VenueSnapshot`]
/// plus the location estimator built from it, tagged with the registry
/// generation that published it.
///
/// Loading is deterministic — the estimator is built from the snapshot's
/// radio map with the snapshot's configuration, the same construction the
/// offline pipeline uses — so a model loaded from a persisted artifact
/// answers every query bit-identically to the offline
/// `evaluate_estimator` path over the same snapshot. Models are never
/// mutated after construction; the registry retires whole models by
/// swapping `Arc`s.
pub struct VenueModel {
    snapshot: VenueSnapshot,
    estimator: Box<dyn LocationEstimator>,
    generation: u64,
}

impl VenueModel {
    /// Builds the serving model for `snapshot` under registry `generation`.
    /// `threads` bounds the estimator's training-time fan-out (`0` = auto;
    /// only the random forest trains) — the built model is bit-identical at
    /// any value.
    pub fn load(snapshot: VenueSnapshot, generation: u64, threads: usize) -> Self {
        let estimator =
            snapshot
                .estimator
                .build_threads(snapshot.map.clone(), snapshot.knn_k, threads);
        Self {
            snapshot,
            estimator,
            generation,
        }
    }

    /// The venue this model serves.
    pub fn venue(&self) -> &str {
        &self.snapshot.venue
    }

    /// The registry generation that published this model.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The snapshot this model was loaded from.
    pub fn snapshot(&self) -> &VenueSnapshot {
        &self.snapshot
    }

    /// Estimates the location of a device reporting `fingerprint` — exactly
    /// [`LocationEstimator::estimate`] on the model's estimator.
    pub fn estimate(&self, fingerprint: &[f64]) -> Option<Point> {
        self.estimator.estimate(fingerprint)
    }

    /// The estimator's display name (for reports).
    pub fn estimator_name(&self) -> &'static str {
        self.estimator.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radiomap_core::prelude::EstimatorKind;
    use rm_radiomap::{DenseRadioMap, MaskMatrix};
    use rm_tensor::{Precision, SnapshotDtype};

    fn snapshot() -> VenueSnapshot {
        VenueSnapshot {
            venue: "t".into(),
            map: DenseRadioMap::new(
                vec![vec![-50.0, -90.0], vec![-90.0, -50.0]],
                vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
                2,
            ),
            mask: MaskMatrix::all_observed(2, 2),
            estimator: EstimatorKind::Knn,
            knn_k: 1,
            seed: 7,
            precision: Precision::F64,
            snapshot_dtype: SnapshotDtype::Native,
            tensors: Vec::new(),
        }
    }

    #[test]
    fn load_builds_the_configured_estimator() {
        let model = VenueModel::load(snapshot(), 3, 1);
        assert_eq!(model.venue(), "t");
        assert_eq!(model.generation(), 3);
        assert_eq!(model.estimator_name(), "KNN");
        assert_eq!(model.snapshot().knn_k, 1);
        // 1-NN on an exact fingerprint returns its reference point.
        let p = model.estimate(&[-50.0, -90.0]).unwrap();
        assert_eq!((p.x, p.y), (0.0, 0.0));
    }

    /// The registry shares models across threads; the compiler must agree.
    #[test]
    fn venue_model_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VenueModel>();
    }
}
