//! A loaded, immutable venue model: the unit the registry swaps and the
//! query engine estimates against. Sharded venues load one [`ShardModel`]
//! per spatial shard and compose them into a [`ShardedVenueModel`] whose
//! answers match whole-venue serving via a cross-shard candidate re-rank.

use std::sync::Arc;

use radiomap_core::{ShardedVenueSnapshot, VenueSnapshot};
use rm_geometry::Point;
use rm_positioning::{
    knn_estimate, merge_candidates, wknn_estimate, EstimatorKind, Knn, KnnCandidate,
    LocationEstimator,
};
use rm_radiomap::{VenueShards, MNAR_FILL_VALUE};

/// An immutable serving model for one venue: the decoded [`VenueSnapshot`]
/// plus the location estimator built from it, tagged with the registry
/// generation that published it.
///
/// Loading is deterministic — the estimator is built from the snapshot's
/// radio map with the snapshot's configuration, the same construction the
/// offline pipeline uses — so a model loaded from a persisted artifact
/// answers every query bit-identically to the offline
/// `evaluate_estimator` path over the same snapshot. Models are never
/// mutated after construction; the registry retires whole models by
/// swapping `Arc`s.
pub struct VenueModel {
    snapshot: VenueSnapshot,
    estimator: Box<dyn LocationEstimator>,
    generation: u64,
}

impl VenueModel {
    /// Builds the serving model for `snapshot` under registry `generation`.
    /// `threads` bounds the estimator's training-time fan-out (`0` = auto;
    /// only the random forest trains) — the built model is bit-identical at
    /// any value.
    pub fn load(snapshot: VenueSnapshot, generation: u64, threads: usize) -> Self {
        let estimator =
            snapshot
                .estimator
                .build_threads(snapshot.map.clone(), snapshot.knn_k, threads);
        Self {
            snapshot,
            estimator,
            generation,
        }
    }

    /// The venue this model serves.
    pub fn venue(&self) -> &str {
        &self.snapshot.venue
    }

    /// The registry generation that published this model.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The snapshot this model was loaded from.
    pub fn snapshot(&self) -> &VenueSnapshot {
        &self.snapshot
    }

    /// Estimates the location of a device reporting `fingerprint` — exactly
    /// [`LocationEstimator::estimate`] on the model's estimator.
    pub fn estimate(&self, fingerprint: &[f64]) -> Option<Point> {
        self.estimator.estimate(fingerprint)
    }

    /// The estimator's display name (for reports).
    pub fn estimator_name(&self) -> &'static str {
        self.estimator.name()
    }
}

/// The ranking core of one shard: KNN-family estimators keep the concrete
/// [`Knn`] so the venue model can merge their per-shard candidates exactly;
/// anything else serves through the trait object and answers shard-locally.
enum ShardEstimator {
    Knn(Knn),
    Wknn(Knn),
    Other(Box<dyn LocationEstimator>),
}

/// An immutable serving model for one spatial shard — the per-shard publish
/// unit. Like [`VenueModel`] it is never mutated after construction; an
/// incremental republish swaps a single shard's `Arc` and leaves the clean
/// shards' models (and generations) untouched.
pub struct ShardModel {
    snapshot: VenueSnapshot,
    estimator: ShardEstimator,
    /// Global record index per shard-local row (the shard's sorted member
    /// list) — rewrites local candidate indices into the venue-wide space.
    global_indices: Vec<usize>,
    /// Per-AP coverage: `true` when any record in this shard hears the AP
    /// above the −100 dBm floor. Drives AP-overlap routing.
    ap_coverage: Vec<bool>,
    /// Mean fingerprint of the shard's records (the shard's signal
    /// centroid); routing tie-break for queries overlapping several shards
    /// equally.
    signal_centroid: Vec<f64>,
    generation: u64,
}

impl ShardModel {
    /// Builds the serving model for one shard under registry `generation`.
    /// `global_indices` is the shard's member list (shard-local row →
    /// global record index); `threads` bounds estimator training as in
    /// [`VenueModel::load`].
    pub fn load(
        snapshot: VenueSnapshot,
        global_indices: Vec<usize>,
        generation: u64,
        threads: usize,
    ) -> Self {
        assert_eq!(
            snapshot.map.len(),
            global_indices.len(),
            "shard member list does not match its snapshot"
        );
        let estimator = match snapshot.estimator {
            EstimatorKind::Knn => {
                ShardEstimator::Knn(Knn::new(snapshot.map.clone(), snapshot.knn_k))
            }
            EstimatorKind::Wknn => {
                ShardEstimator::Wknn(Knn::new(snapshot.map.clone(), snapshot.knn_k))
            }
            other => ShardEstimator::Other(other.build_threads(
                snapshot.map.clone(),
                snapshot.knn_k,
                threads,
            )),
        };
        let num_aps = snapshot.map.num_aps();
        let mut ap_coverage = vec![false; num_aps];
        let mut signal_centroid = vec![0.0; num_aps];
        for fingerprint in snapshot.map.fingerprints() {
            for (ap, &v) in fingerprint.iter().enumerate() {
                if v > MNAR_FILL_VALUE {
                    ap_coverage[ap] = true;
                }
                signal_centroid[ap] += v;
            }
        }
        if !snapshot.map.is_empty() {
            let n = snapshot.map.len() as f64;
            for v in &mut signal_centroid {
                *v /= n;
            }
        }
        Self {
            snapshot,
            estimator,
            global_indices,
            ap_coverage,
            signal_centroid,
            generation,
        }
    }

    /// The registry generation that published this shard.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The shard's snapshot.
    pub fn snapshot(&self) -> &VenueSnapshot {
        &self.snapshot
    }

    /// Shard-local estimate (exactly the configured estimator over this
    /// shard's sub-map).
    pub fn estimate(&self, fingerprint: &[f64]) -> Option<Point> {
        match &self.estimator {
            ShardEstimator::Knn(knn) => knn_estimate(&knn.candidates(fingerprint)),
            ShardEstimator::Wknn(knn) => wknn_estimate(&knn.candidates(fingerprint)),
            ShardEstimator::Other(e) => e.estimate(fingerprint),
        }
    }

    /// This shard's top-`k` candidates with indices rewritten into the
    /// global record space, or `None` when the estimator has no KNN ranking
    /// core to merge.
    fn global_candidates(&self, fingerprint: &[f64]) -> Option<Vec<KnnCandidate>> {
        let knn = match &self.estimator {
            ShardEstimator::Knn(knn) | ShardEstimator::Wknn(knn) => knn,
            ShardEstimator::Other(_) => return None,
        };
        Some(
            knn.candidates(fingerprint)
                .into_iter()
                .map(|c| KnnCandidate {
                    index: self.global_indices[c.index as usize] as u32,
                    ..c
                })
                .collect(),
        )
    }

    /// How many APs this query and shard both cover (query above the −100
    /// floor on an AP some shard record hears).
    fn ap_overlap(&self, fingerprint: &[f64]) -> usize {
        fingerprint
            .iter()
            .zip(&self.ap_coverage)
            .filter(|&(&v, &covered)| covered && v > MNAR_FILL_VALUE)
            .count()
    }

    /// Squared distance between the query and the shard's signal centroid
    /// (routing tie-break).
    fn signal_distance_sq(&self, fingerprint: &[f64]) -> f64 {
        fingerprint
            .iter()
            .zip(&self.signal_centroid)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
}

/// A composed serving model for a sharded venue: one immutable
/// [`ShardModel`] per spatial shard plus the partition that produced them.
///
/// Queries are **routed** to a primary shard by AP overlap (the shard
/// hearing the most of the query's APs, ties broken by nearest signal
/// centroid, then lowest shard id) — that shard's generation stamps the
/// response. For the KNN-family estimators the **answer** is computed by
/// cross-shard re-rank: every shard contributes its top-`k` candidates with
/// global record indices, the union is merged exactly like the whole-venue
/// scan (ascending exact distance, ties by global index) and folded with the
/// same arithmetic — so a sharded model answers bit-identically to the
/// whole-venue model over the merged map whenever the per-shard quantized
/// windows capture their true top-`k` (the same standing assumption the
/// whole-venue scan makes). Non-ranking estimators (the forest) answer from
/// the primary shard alone.
pub struct ShardedVenueModel {
    venue: String,
    shards: VenueShards,
    models: Vec<Arc<ShardModel>>,
}

impl ShardedVenueModel {
    /// Loads every shard of `snapshot`, stamping shard `i` with
    /// `generations[i]`.
    pub(crate) fn load(
        snapshot: ShardedVenueSnapshot,
        generations: &[u64],
        threads: usize,
    ) -> Self {
        let ShardedVenueSnapshot {
            venue,
            snapshots,
            shards,
        } = snapshot;
        assert_eq!(
            snapshots.len(),
            shards.num_shards(),
            "sharded snapshot is missing shards"
        );
        assert_eq!(snapshots.len(), generations.len());
        let models = snapshots
            .into_iter()
            .zip(generations)
            .enumerate()
            .map(|(shard, (snap, &generation))| {
                Arc::new(ShardModel::load(
                    snap,
                    shards.members_of(shard).to_vec(),
                    generation,
                    threads,
                ))
            })
            .collect();
        Self {
            venue,
            shards,
            models,
        }
    }

    /// Replaces one shard's model, leaving every other shard's `Arc` (and
    /// generation) untouched. The partition is replaced too — an incremental
    /// ingest may have appended records to the dirty shard's member list.
    pub(crate) fn with_shard(
        &self,
        shard: usize,
        model: Arc<ShardModel>,
        shards: VenueShards,
    ) -> Self {
        let mut models = self.models.clone();
        models[shard] = model;
        Self {
            venue: self.venue.clone(),
            shards,
            models,
        }
    }

    /// The venue this model serves.
    pub fn venue(&self) -> &str {
        &self.venue
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.models.len()
    }

    /// The partition this model serves under.
    pub fn shards(&self) -> &VenueShards {
        &self.shards
    }

    /// The shard models, in shard-id order.
    pub fn models(&self) -> &[Arc<ShardModel>] {
        &self.models
    }

    /// Per-shard generations, in shard-id order. After an incremental
    /// republish only the dirty shards' entries change.
    pub fn shard_generations(&self) -> Vec<u64> {
        self.models.iter().map(|m| m.generation()).collect()
    }

    /// The newest generation across shards — the venue's publish version.
    pub fn generation(&self) -> u64 {
        self.models
            .iter()
            .map(|m| m.generation())
            .max()
            .unwrap_or(0)
    }

    /// The primary shard for `fingerprint`: most APs in common, ties broken
    /// by nearest signal centroid, then lowest shard id.
    pub fn route(&self, fingerprint: &[f64]) -> usize {
        let mut best = 0usize;
        let mut best_overlap = 0usize;
        let mut best_dist = f64::INFINITY;
        for (shard, model) in self.models.iter().enumerate() {
            let overlap = model.ap_overlap(fingerprint);
            let dist = model.signal_distance_sq(fingerprint);
            if overlap > best_overlap || (overlap == best_overlap && dist < best_dist) {
                best = shard;
                best_overlap = overlap;
                best_dist = dist;
            }
        }
        best
    }

    /// Estimates the query's location (see the type docs for the cross-shard
    /// re-rank contract).
    pub fn estimate(&self, fingerprint: &[f64]) -> Option<Point> {
        let mut pooled: Vec<KnnCandidate> = Vec::new();
        let mut k = 0usize;
        for model in &self.models {
            match model.global_candidates(fingerprint) {
                Some(candidates) => {
                    k = k.max(model.snapshot().knn_k.max(1));
                    pooled.extend(candidates);
                }
                // A non-ranking estimator: answer from the primary shard.
                None => return self.models[self.route(fingerprint)].estimate(fingerprint),
            }
        }
        let merged = merge_candidates(k, pooled);
        match self.models.first().map(|m| m.snapshot().estimator) {
            Some(EstimatorKind::Wknn) => wknn_estimate(&merged),
            _ => knn_estimate(&merged),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radiomap_core::prelude::EstimatorKind;
    use rm_radiomap::{DenseRadioMap, MaskMatrix};
    use rm_tensor::{Precision, SnapshotDtype};

    fn snapshot() -> VenueSnapshot {
        VenueSnapshot {
            venue: "t".into(),
            map: DenseRadioMap::new(
                vec![vec![-50.0, -90.0], vec![-90.0, -50.0]],
                vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
                2,
            ),
            mask: MaskMatrix::all_observed(2, 2),
            estimator: EstimatorKind::Knn,
            knn_k: 1,
            seed: 7,
            precision: Precision::F64,
            snapshot_dtype: SnapshotDtype::Native,
            tensors: Vec::new(),
        }
    }

    #[test]
    fn load_builds_the_configured_estimator() {
        let model = VenueModel::load(snapshot(), 3, 1);
        assert_eq!(model.venue(), "t");
        assert_eq!(model.generation(), 3);
        assert_eq!(model.estimator_name(), "KNN");
        assert_eq!(model.snapshot().knn_k, 1);
        // 1-NN on an exact fingerprint returns its reference point.
        let p = model.estimate(&[-50.0, -90.0]).unwrap();
        assert_eq!((p.x, p.y), (0.0, 0.0));
    }

    /// The registry shares models across threads; the compiler must agree.
    #[test]
    fn venue_model_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VenueModel>();
    }
}
