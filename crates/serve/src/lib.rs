//! # rm-serve — versioned venue-model artifacts and snapshot-swap serving
//!
//! The online half of the pipeline: the offline side trains imputers and
//! exports a [`VenueSnapshot`](radiomap_core::VenueSnapshot); this crate
//! persists it, loads it, and answers location queries against it.
//!
//! * [`artifact`] — a stable, checksummed, dependency-free on-disk format
//!   for `VenueSnapshot`s with a bitwise round-trip guarantee. Snapshots
//!   exported at `SnapshotDtype::Bf16` serialize their tensors at 2 bytes
//!   per element, so bf16 artifacts are 4× smaller than f64 ones.
//! * [`model`] — [`VenueModel`]: an immutable snapshot + estimator pair,
//!   tagged with the generation that published it.
//! * [`registry`] — [`ModelRegistry`]: an atomically hot-swappable
//!   `Arc<VenueModel>` per venue with monotonic generation counters; no
//!   query ever observes a torn model.
//! * [`engine`] — [`QueryEngine`]: a request-batching front end that fans
//!   micro-batches of at most [`MAX_MICRO_BATCH`] queries over the
//!   deterministic worker pool. A fixed query log yields bit-identical
//!   responses at any thread count, and each response equals the offline
//!   `evaluate_estimator` path's estimate on the same model.
//!
//! Sharded venues get a parallel set of types: [`encode_sharded`] /
//! [`decode_sharded`] persist a
//! [`ShardedVenueSnapshot`](radiomap_core::ShardedVenueSnapshot) as a
//! container of per-shard artifacts, [`ShardedVenueModel`] composes one
//! [`ShardModel`] per shard (each independently republishable via
//! [`ModelRegistry::publish_shard`] without rebuilding clean shards), and
//! [`ShardedQueryEngine`] routes queries by AP overlap with exact
//! cross-shard KNN re-ranking, so answers match whole-venue serving.
//!
//! ```no_run
//! use radiomap_core::prelude::*;
//! use rm_serve::{load_artifact, ModelRegistry, QueryEngine};
//!
//! let snapshot = load_artifact("venue.rmvm").unwrap();
//! let registry = ModelRegistry::new();
//! registry.publish(snapshot, 0);
//! let mut engine = QueryEngine::new(&registry, "venue", 0);
//! let responses = engine.run_log(&[vec![-52.0, -71.0]]);
//! # let _ = responses;
//! ```

pub mod artifact;
pub mod engine;
pub mod model;
pub mod registry;

pub use artifact::{
    decode, decode_sharded, encode, encode_sharded, ArtifactError, FORMAT_VERSION, SHARDED_MAGIC,
};
pub use engine::{
    QueryEngine, QueryResponse, ShardedQueryEngine, ShardedQueryResponse, MAX_MICRO_BATCH,
};
pub use model::{ShardModel, ShardedVenueModel, VenueModel};
pub use registry::ModelRegistry;

use std::path::Path;

use radiomap_core::{ShardedVenueSnapshot, VenueSnapshot};

/// Why [`load_artifact`] failed: the file couldn't be read, or it could but
/// its bytes are not a valid artifact.
#[derive(Debug)]
pub enum LoadError {
    /// Reading the file failed.
    Io(std::io::Error),
    /// The file's bytes failed artifact validation.
    Format(ArtifactError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "reading artifact: {e}"),
            LoadError::Format(e) => write!(f, "decoding artifact: {e}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Format(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<ArtifactError> for LoadError {
    fn from(e: ArtifactError) -> Self {
        LoadError::Format(e)
    }
}

/// Encodes `snapshot` and writes it to `path` ([`encode`] + `fs::write`).
pub fn save_artifact(path: impl AsRef<Path>, snapshot: &VenueSnapshot) -> std::io::Result<()> {
    std::fs::write(path, encode(snapshot))
}

/// Reads `path` and decodes it ([`decode`] + `fs::read`), distinguishing
/// I/O failures from malformed artifacts.
pub fn load_artifact(path: impl AsRef<Path>) -> Result<VenueSnapshot, LoadError> {
    Ok(decode(&std::fs::read(path)?)?)
}

/// Encodes a sharded snapshot and writes it to `path`
/// ([`encode_sharded`] + `fs::write`).
pub fn save_sharded_artifact(
    path: impl AsRef<Path>,
    snapshot: &ShardedVenueSnapshot,
) -> std::io::Result<()> {
    std::fs::write(path, encode_sharded(snapshot))
}

/// Reads `path` and decodes it as a sharded container
/// ([`decode_sharded`] + `fs::read`).
pub fn load_sharded_artifact(path: impl AsRef<Path>) -> Result<ShardedVenueSnapshot, LoadError> {
    Ok(decode_sharded(&std::fs::read(path)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radiomap_core::prelude::EstimatorKind;
    use rm_geometry::Point;
    use rm_radiomap::{DenseRadioMap, MaskMatrix};
    use rm_tensor::{Precision, SnapshotDtype};

    fn snapshot() -> VenueSnapshot {
        VenueSnapshot {
            venue: "disk".into(),
            map: DenseRadioMap::new(vec![vec![-61.5]], vec![Point::new(3.0, 4.0)], 1),
            mask: MaskMatrix::all_observed(1, 1),
            estimator: EstimatorKind::Wknn,
            knn_k: 3,
            seed: 11,
            precision: Precision::F32,
            snapshot_dtype: SnapshotDtype::Native,
            tensors: Vec::new(),
        }
    }

    #[test]
    fn save_then_load_round_trips_through_the_filesystem() {
        let dir = std::env::temp_dir().join(format!("rm-serve-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("venue.rmvm");
        let original = snapshot();
        save_artifact(&path, &original).unwrap();
        let loaded = load_artifact(&path).unwrap();
        assert_eq!(encode(&loaded), encode(&original));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_distinguishes_io_from_format_errors() {
        let missing = load_artifact("/nonexistent/venue.rmvm").unwrap_err();
        assert!(matches!(missing, LoadError::Io(_)), "{missing}");

        let dir = std::env::temp_dir().join(format!("rm-serve-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.rmvm");
        std::fs::write(&path, b"not an artifact").unwrap();
        let garbage = load_artifact(&path).unwrap_err();
        assert!(matches!(garbage, LoadError::Format(_)), "{garbage}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
