//! The hot-swappable model registry: queries read an `Arc` snapshot of the
//! current model, publishers atomically replace it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use radiomap_core::{ShardedVenueSnapshot, VenueSnapshot};
use rm_radiomap::VenueShards;

use crate::model::{ShardModel, ShardedVenueModel, VenueModel};

/// A registry of live [`VenueModel`]s, one slot per venue, with
/// atomic-swap semantics:
///
/// * **No torn models.** A reader clones the venue's current
///   `Arc<VenueModel>` under a read lock and works against that immutable
///   model from then on; [`ModelRegistry::publish`] builds the replacement
///   *outside* the lock and swaps the `Arc` in one write-locked assignment.
///   Every query therefore observes exactly one complete model — there is
///   no intermediate state to observe.
/// * **Monotonic generations.** Each publish stamps its model from a
///   process-wide counter, so any response can be attributed to exactly one
///   generation and swaps are totally ordered.
/// * **Prompt retirement.** The swapped-out `Arc` is returned to the
///   publisher; once the last in-flight batch drops its clone, the retired
///   model (radio map, tensors, estimator) is freed — pinned by the
///   hot-reload stress test via a `Weak` upgrade.
///
/// Venue slots are kept sorted by name (binary-searched, no unordered
/// containers in the serving path).
#[derive(Default)]
pub struct ModelRegistry {
    /// Sorted by venue name; the `Arc` per slot is the swap unit.
    models: RwLock<Vec<(String, Arc<VenueModel>)>>,
    /// Sharded venues, sorted by name. The swap unit is the composed venue
    /// `Arc`, but an incremental publish rebuilds only the dirty shard's
    /// [`ShardModel`] — the clean shards' `Arc`s (and generations) are
    /// carried over unchanged.
    sharded: RwLock<Vec<(String, Arc<ShardedVenueModel>)>>,
    /// Monotonic generation source; the first publish is generation 1.
    /// Shared between whole-venue and per-shard publishes, so every swap in
    /// the process is totally ordered.
    generations: AtomicU64,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a model from `snapshot` and publishes it under the snapshot's
    /// venue name, replacing any current model for that venue. Returns the
    /// retired model (`None` on first publish), whose memory is freed once
    /// the last in-flight reader drops its `Arc`.
    ///
    /// The expensive part — estimator construction — happens before the
    /// write lock is taken, so concurrent readers are only blocked for the
    /// duration of one pointer swap.
    pub fn publish(&self, snapshot: VenueSnapshot, threads: usize) -> Option<Arc<VenueModel>> {
        let generation = self.generations.fetch_add(1, Ordering::Relaxed) + 1;
        let model = Arc::new(VenueModel::load(snapshot, generation, threads));
        let venue = model.venue().to_string();
        let mut slots = self.models.write().expect("registry lock poisoned");
        match slots.binary_search_by(|(name, _)| name.as_str().cmp(&venue)) {
            Ok(i) => Some(std::mem::replace(&mut slots[i].1, model)),
            Err(i) => {
                slots.insert(i, (venue, model));
                None
            }
        }
    }

    /// Builds one [`ShardModel`] per shard of `snapshot` and publishes the
    /// composed [`ShardedVenueModel`] under the snapshot's venue name. Every
    /// shard gets its own generation stamp (in shard-id order). Returns the
    /// retired venue model, as [`ModelRegistry::publish`] does.
    ///
    /// Like the unsharded path, all estimator construction happens outside
    /// the write lock; readers only ever see a torn-free pointer swap.
    pub fn publish_sharded(
        &self,
        snapshot: ShardedVenueSnapshot,
        threads: usize,
    ) -> Option<Arc<ShardedVenueModel>> {
        let generations: Vec<u64> = (0..snapshot.snapshots.len())
            .map(|_| self.generations.fetch_add(1, Ordering::Relaxed) + 1)
            .collect();
        let model = Arc::new(ShardedVenueModel::load(snapshot, &generations, threads));
        let venue = model.venue().to_string();
        let mut slots = self.sharded.write().expect("registry lock poisoned");
        match slots.binary_search_by(|(name, _)| name.as_str().cmp(&venue)) {
            Ok(i) => Some(std::mem::replace(&mut slots[i].1, model)),
            Err(i) => {
                slots.insert(i, (venue, model));
                None
            }
        }
    }

    /// Incrementally republishes **one** shard of an already-published
    /// sharded venue: builds the replacement [`ShardModel`] from
    /// `snapshot` (stamped with a fresh generation), carries every clean
    /// shard's `Arc` over untouched, and swaps the composed venue model.
    /// `shards` is the venue's current partition — ingest may have appended
    /// records, so the dirty shard's member list (and the routing centroids)
    /// ride along with the republish. Returns the retired shard model.
    ///
    /// # Panics
    /// Panics when the venue was never sharded-published or `shard` is out
    /// of range — republishing into the void is a deployment error.
    pub fn publish_shard(
        &self,
        venue: &str,
        shard: usize,
        snapshot: VenueSnapshot,
        shards: &VenueShards,
        threads: usize,
    ) -> Arc<ShardModel> {
        let generation = self.generations.fetch_add(1, Ordering::Relaxed) + 1;
        // The expensive part — estimator construction — happens before the
        // lock; under the lock only the cheap slot-vector compose runs, and
        // it composes against whatever is current *at swap time*, so a
        // concurrent publish of another shard is never discarded.
        let replacement = Arc::new(ShardModel::load(
            snapshot,
            shards.members_of(shard).to_vec(),
            generation,
            threads,
        ));
        let mut slots = self.sharded.write().expect("registry lock poisoned");
        match slots.binary_search_by(|(name, _)| name.as_str().cmp(venue)) {
            Ok(i) => {
                let composed = Arc::new(slots[i].1.with_shard(shard, replacement, shards.clone()));
                let retired = std::mem::replace(&mut slots[i].1, composed);
                Arc::clone(&retired.models()[shard])
            }
            Err(_) => panic!("no sharded model published for venue `{venue}`"),
        }
    }

    /// The current sharded model for `venue`, or `None` if nothing sharded
    /// was published under that name.
    pub fn sharded_model(&self, venue: &str) -> Option<Arc<ShardedVenueModel>> {
        let slots = self.sharded.read().expect("registry lock poisoned");
        slots
            .binary_search_by(|(name, _)| name.as_str().cmp(venue))
            .ok()
            .map(|i| Arc::clone(&slots[i].1))
    }

    /// The current model for `venue`, or `None` if nothing was published.
    /// The returned `Arc` stays valid (and immutable) across any number of
    /// concurrent publishes — it just stops being current.
    pub fn model(&self, venue: &str) -> Option<Arc<VenueModel>> {
        let slots = self.models.read().expect("registry lock poisoned");
        slots
            .binary_search_by(|(name, _)| name.as_str().cmp(venue))
            .ok()
            .map(|i| Arc::clone(&slots[i].1))
    }

    /// The highest generation published so far (0 = none).
    pub fn generation(&self) -> u64 {
        self.generations.load(Ordering::Relaxed)
    }

    /// Venue names currently served, in sorted order.
    pub fn venues(&self) -> Vec<String> {
        let slots = self.models.read().expect("registry lock poisoned");
        slots.iter().map(|(name, _)| name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radiomap_core::prelude::EstimatorKind;
    use rm_geometry::Point;
    use rm_radiomap::{DenseRadioMap, MaskMatrix};
    use rm_tensor::{Precision, SnapshotDtype};

    fn snapshot(venue: &str, x: f64) -> VenueSnapshot {
        VenueSnapshot {
            venue: venue.into(),
            map: DenseRadioMap::new(vec![vec![-50.0]], vec![Point::new(x, 0.0)], 1),
            mask: MaskMatrix::all_observed(1, 1),
            estimator: EstimatorKind::Knn,
            knn_k: 1,
            seed: 0,
            precision: Precision::F64,
            snapshot_dtype: SnapshotDtype::Native,
            tensors: Vec::new(),
        }
    }

    #[test]
    fn publish_and_lookup_by_venue() {
        let registry = ModelRegistry::new();
        assert_eq!(registry.generation(), 0);
        assert!(registry.model("a").is_none());
        assert!(registry.publish(snapshot("b", 1.0), 1).is_none());
        assert!(registry.publish(snapshot("a", 2.0), 1).is_none());
        assert_eq!(registry.venues(), ["a", "b"]);
        assert_eq!(registry.model("a").unwrap().generation(), 2);
        assert_eq!(registry.model("b").unwrap().generation(), 1);
        assert_eq!(registry.generation(), 2);
    }

    #[test]
    fn republish_swaps_and_returns_the_retired_model() {
        let registry = ModelRegistry::new();
        registry.publish(snapshot("v", 1.0), 1);
        let held = registry.model("v").unwrap();
        let retired = registry.publish(snapshot("v", 9.0), 1).unwrap();
        assert_eq!(retired.generation(), 1);
        // The held Arc still answers from generation 1 — immutable, not torn.
        assert_eq!(held.generation(), 1);
        assert_eq!(held.estimate(&[-50.0]).unwrap().x, 1.0);
        // The current model is the new generation.
        let current = registry.model("v").unwrap();
        assert_eq!(current.generation(), 2);
        assert_eq!(current.estimate(&[-50.0]).unwrap().x, 9.0);
    }

    #[test]
    fn retired_models_are_freed_when_the_last_reader_drops() {
        let registry = ModelRegistry::new();
        registry.publish(snapshot("v", 1.0), 1);
        let weak = Arc::downgrade(&registry.model("v").unwrap());
        assert!(weak.upgrade().is_some());
        let retired = registry.publish(snapshot("v", 2.0), 1).unwrap();
        assert!(weak.upgrade().is_some(), "retired model still held");
        drop(retired);
        assert!(
            weak.upgrade().is_none(),
            "retired generation must be freed once unreferenced"
        );
    }
}
