//! The sharded-serving suite: sharded pipeline export → sharded container →
//! registry → routed query engine, proving the per-shard serving contracts.
//!
//! 1. **Sharded ≡ whole-venue** — for the KNN-family estimators, a sharded
//!    model answers every query bit-identically to the whole-venue model
//!    over the same records (cross-shard re-rank), and a shard count of 1
//!    reproduces the unsharded artifact byte for byte.
//! 2. **Incremental republish** — ingesting a survey log dirties exactly
//!    the shards it touches; republishing them swaps only those shards'
//!    `Arc`s and generations while the clean shards are carried over
//!    pointer-identically, and the incremental snapshots equal a full
//!    recompute bitwise.
//! 3. **Determinism** — a fixed query log through the sharded engine is
//!    bit-identical at any thread count.

use std::sync::Arc;

use radiomap_core::prelude::*;
use radiomap_core::{LiveVenue, PipelineConfig};
use rm_radiomap::MNAR_FILL_VALUE;
use rm_serve::{
    decode_sharded, encode, encode_sharded, load_sharded_artifact, save_sharded_artifact,
    ModelRegistry, QueryEngine, ShardedQueryEngine,
};

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

const NUM_PATHS: usize = 4;
const RECORDS_PER_PATH: usize = 5;
const NUM_APS: usize = 8;

/// A venue surveyed along `NUM_PATHS` spatially separated paths: path `p`
/// lives around `x = 50 p` and hears APs `2p` and `2p + 1` (the rest are
/// missing → MAR → filled with the −100 floor). Every record carries its RP,
/// so the MAR-only + linear-interpolation pipeline is seed-free and
/// record-local — a per-shard imputation produces exactly the whole-venue
/// imputation restricted to the shard's members, which is what lets the
/// sharded-vs-whole comparisons below assert bitwise equality.
fn multi_path_map() -> RadioMap {
    let mut records = Vec::new();
    for path in 0..NUM_PATHS {
        for i in 0..RECORDS_PER_PATH {
            let values: Vec<Option<f64>> = (0..NUM_APS)
                .map(|ap| {
                    if ap / 2 == path {
                        Some(-45.0 - i as f64 - ap as f64 * 3.0)
                    } else {
                        None
                    }
                })
                .collect();
            let rp = Point::new(path as f64 * 50.0 + i as f64 * 2.0, path as f64 * 10.0);
            records.push(RadioMapRecord::new(
                Fingerprint::new(values),
                Some(rp),
                i as f64,
                path,
            ));
        }
    }
    RadioMap::new(records, NUM_APS)
}

/// A seed-free pipeline (see [`multi_path_map`]) with `knn_k` large enough
/// that every quantized scan window covers its entire map — the standing
/// assumption under which the cross-shard re-rank is exact holds trivially,
/// so every equality below is bitwise, not approximate.
fn seedfree_config(estimator: EstimatorKind, shards: usize) -> PipelineConfig {
    PipelineConfig {
        differentiator: DifferentiatorKind::MarOnly,
        imputer: ImputerKind::LinearInterpolation,
        estimator,
        knn_k: 12,
        threads: 1,
        shards: Some(shards),
        ..PipelineConfig::default()
    }
}

/// Query log: every record's dense fingerprint plus jittered variants, so
/// the estimators face exact hits, near misses and cross-shard blends.
fn query_log(map: &RadioMap) -> Vec<Vec<f64>> {
    let mut log = Vec::new();
    for pass in 0..6 {
        for (i, record) in map.records().iter().enumerate() {
            let jitter = (pass * 17 + i) as f64 * 0.23;
            log.push(
                record
                    .fingerprint
                    .to_dense(MNAR_FILL_VALUE)
                    .iter()
                    .map(|&v| v + jitter)
                    .collect(),
            );
        }
    }
    log
}

// ---------------------------------------------------------------------------
// 1. Sharded ≡ whole-venue
// ---------------------------------------------------------------------------

/// For both KNN-family estimators, the sharded engine (serving a container
/// that went through the sharded codec) answers every query bit-identically
/// to the whole-venue engine over the same records.
#[test]
fn sharded_serving_answers_match_whole_venue_serving_bitwise() {
    let map = multi_path_map();
    let topology = MultiPolygon::empty();
    for estimator in [EstimatorKind::Knn, EstimatorKind::Wknn] {
        let whole = ImputationPipeline::new(seedfree_config(estimator, 1))
            .export_snapshot("venue", &map, &topology);
        let sharded = ImputationPipeline::new(seedfree_config(estimator, NUM_PATHS))
            .export_sharded_snapshot("venue", &map, &topology);
        assert_eq!(sharded.num_shards(), NUM_PATHS);
        for shard in 0..NUM_PATHS {
            assert!(
                !sharded.shards.members_of(shard).is_empty(),
                "every shard must hold records"
            );
        }

        // The sharded model is published from bytes that round-tripped the
        // container codec, so the on-disk format is on the serving path.
        let reloaded = decode_sharded(&encode_sharded(&sharded)).expect("container decodes");
        let registry = ModelRegistry::new();
        registry.publish(whole, 1);
        registry.publish_sharded(reloaded, 1);

        let log = query_log(&map);
        let whole_responses = QueryEngine::new(&registry, "venue", 1).run_log(&log);
        let sharded_responses = ShardedQueryEngine::new(&registry, "venue", 1).run_log(&log);
        assert_eq!(whole_responses.len(), sharded_responses.len());
        for (whole_response, sharded_response) in whole_responses.iter().zip(&sharded_responses) {
            assert_eq!(whole_response.index, sharded_response.index);
            assert!(sharded_response.shard < NUM_PATHS);
            let a = whole_response.position.expect("dense maps answer");
            let b = sharded_response.position.expect("dense maps answer");
            assert_eq!(
                (a.x.to_bits(), a.y.to_bits()),
                (b.x.to_bits(), b.y.to_bits()),
                "{} query {} diverged between sharded and whole-venue serving",
                estimator.name(),
                whole_response.index
            );
        }
    }
}

/// Routing sends a query heard only on one shard's APs to that shard — the
/// response is attributable to the shard whose survey covers the query.
#[test]
fn queries_route_to_the_shard_covering_their_aps() {
    let map = multi_path_map();
    let topology = MultiPolygon::empty();
    let sharded = ImputationPipeline::new(seedfree_config(EstimatorKind::Knn, NUM_PATHS))
        .export_sharded_snapshot("venue", &map, &topology);
    let registry = ModelRegistry::new();
    registry.publish_sharded(sharded, 1);
    let model = registry.sharded_model("venue").expect("published");

    for path in 0..NUM_PATHS {
        // A query hearing exactly path `p`'s APs routes to the shard that
        // holds path `p` (the shard covering those APs).
        let mut fingerprint = vec![MNAR_FILL_VALUE; NUM_APS];
        fingerprint[2 * path] = -50.0;
        fingerprint[2 * path + 1] = -55.0;
        let routed = model.route(&fingerprint);
        let expected = model
            .shards()
            .shard_of_path(path)
            .expect("surveyed path is registered");
        assert_eq!(routed, expected, "path {path} query misrouted");
    }
}

/// A one-shard container reproduces the unsharded artifact byte for byte,
/// and the container codec round-trips through the filesystem.
#[test]
fn a_single_shard_container_reproduces_the_unsharded_artifact_bitwise() {
    let map = multi_path_map();
    let topology = MultiPolygon::empty();
    let whole = ImputationPipeline::new(seedfree_config(EstimatorKind::Wknn, 1))
        .export_snapshot("venue", &map, &topology);
    let sharded = ImputationPipeline::new(seedfree_config(EstimatorKind::Wknn, 1))
        .export_sharded_snapshot("venue", &map, &topology);
    assert_eq!(sharded.num_shards(), 1);
    assert_eq!(
        encode(&sharded.snapshots[0]),
        encode(&whole),
        "shard count 1 must reproduce the unsharded snapshot bitwise"
    );

    let dir = std::env::temp_dir().join(format!("rm-serve-sharded-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("venue.rmvs");
    save_sharded_artifact(&path, &sharded).unwrap();
    let loaded = load_sharded_artifact(&path).unwrap();
    assert_eq!(encode_sharded(&loaded), encode_sharded(&sharded));
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// 2. Incremental republish
// ---------------------------------------------------------------------------

/// The live-venue flow end to end: build → publish_sharded → ingest a log
/// touching one shard → republish exactly the dirty shard. The clean
/// shards' models must be carried over pointer-identically with their
/// generations untouched; the dirty shard gets a fresh model and
/// generation; the retired shard model is returned to the publisher; and
/// the incremental snapshots equal a full recompute bitwise.
#[test]
fn incremental_republish_swaps_only_the_dirty_shard() {
    let map = multi_path_map();
    let mut live = LiveVenue::build(
        "live",
        map,
        MultiPolygon::empty(),
        seedfree_config(EstimatorKind::Knn, NUM_PATHS),
    );
    assert_eq!(live.shards().num_shards(), NUM_PATHS);

    let registry = ModelRegistry::new();
    registry.publish_sharded(live.sharded_snapshot(), 1);
    let before = registry.sharded_model("live").expect("published");
    let generations_before = before.shard_generations();

    // A fresh survey pass on a new path spatially inside one existing
    // shard's region: routed by nearest centroid, it dirties exactly that
    // shard.
    let new_rp = Point::new(105.0, 21.0);
    let log: Vec<RadioMapRecord> = (0..3)
        .map(|i| {
            let values: Vec<Option<f64>> = (0..NUM_APS)
                .map(|ap| {
                    if ap / 2 == 2 {
                        Some(-40.0 - i as f64 - ap as f64)
                    } else {
                        None
                    }
                })
                .collect();
            RadioMapRecord::new(Fingerprint::new(values), Some(new_rp), i as f64, 99)
        })
        .collect();
    let dirty = live.ingest(&log);
    assert_eq!(dirty.len(), 1, "the log touches one shard's region");
    let dirty_shard = dirty[0];

    // Incremental ≡ full: every live snapshot (recomputed or carried) is
    // bitwise what a full rebuild from the current map would produce.
    for (incremental, full) in live.snapshots().iter().zip(live.recompute_all()) {
        assert_eq!(encode(incremental), encode(&full));
    }

    let retired = registry.publish_shard(
        "live",
        dirty_shard,
        live.snapshots()[dirty_shard].clone(),
        live.shards(),
        1,
    );
    assert!(
        Arc::ptr_eq(&retired, &before.models()[dirty_shard]),
        "the retired model is the dirty shard's previous model"
    );

    let after = registry.sharded_model("live").expect("still published");
    for shard in 0..NUM_PATHS {
        if shard == dirty_shard {
            assert!(
                !Arc::ptr_eq(&before.models()[shard], &after.models()[shard]),
                "dirty shard must be a fresh model"
            );
            assert!(
                after.models()[shard].generation() > generations_before[shard],
                "dirty shard must carry a fresh generation"
            );
        } else {
            assert!(
                Arc::ptr_eq(&before.models()[shard], &after.models()[shard]),
                "clean shard {shard} must be carried over pointer-identically"
            );
            assert_eq!(after.shard_generations()[shard], generations_before[shard]);
        }
    }
    assert_eq!(after.generation(), registry.generation());

    // The republished shard actually serves the ingested survey: with the
    // new record's exact fingerprint and k = 1 the answer is its RP.
    let probe = log[0].fingerprint.to_dense(MNAR_FILL_VALUE);
    let nearest = after.models()[dirty_shard]
        .snapshot()
        .map
        .fingerprints()
        .iter()
        .any(|f| {
            f.iter()
                .zip(&probe)
                .all(|(a, b)| a.to_bits() == b.to_bits())
        });
    assert!(nearest, "ingested record must be in the republished shard");
    let answer = ShardedQueryEngine::new(&registry, "live", 1)
        .run_log(&[probe])
        .pop()
        .expect("one response");
    assert_eq!(answer.shard, dirty_shard, "probe routes to the dirty shard");
    assert_eq!(
        answer.generation,
        after.models()[dirty_shard].generation(),
        "response attributes to the republished generation"
    );
}

// ---------------------------------------------------------------------------
// 3. Determinism
// ---------------------------------------------------------------------------

/// A fixed query log through the sharded engine is bit-identical at any
/// thread count — routing, re-rank and generation attribution included.
#[test]
fn a_sharded_query_log_is_bit_identical_at_any_thread_count() {
    let map = multi_path_map();
    let topology = MultiPolygon::empty();
    let sharded = ImputationPipeline::new(seedfree_config(EstimatorKind::Wknn, NUM_PATHS))
        .export_sharded_snapshot("det", &map, &topology);
    let registry = ModelRegistry::new();
    registry.publish_sharded(sharded, 1);
    let log = query_log(&map);

    let reference = ShardedQueryEngine::new(&registry, "det", 1).run_log(&log);
    for threads in [2, 8, rm_runtime::default_threads(), 0] {
        let responses = ShardedQueryEngine::new(&registry, "det", threads).run_log(&log);
        assert_eq!(responses.len(), reference.len());
        for (a, b) in reference.iter().zip(&responses) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.shard, b.shard);
            assert_eq!(a.generation, b.generation);
            let (pa, pb) = (a.position.unwrap(), b.position.unwrap());
            assert_eq!(
                (pa.x.to_bits(), pa.y.to_bits()),
                (pb.x.to_bits(), pb.y.to_bits()),
                "query {} differs between threads=1 and threads={threads}",
                a.index
            );
        }
    }
}
