//! The end-to-end serving suite: offline pipeline → artifact → registry →
//! batched query engine, proving the three rm-serve contracts.
//!
//! 1. **Artifact fidelity** — any `VenueSnapshot`, including real pipeline
//!    exports at every precision × snapshot-dtype combination, round-trips
//!    through the on-disk format bitwise (property-tested over arbitrary
//!    bit patterns: NaNs, −0.0, infinities).
//! 2. **Serving ≡ offline** — a model loaded from a persisted artifact
//!    answers every query bit-identically to the offline
//!    `evaluate_estimator` path, and a fixed query log is bit-identical at
//!    any thread count.
//! 3. **Hot reload under load** — concurrent publishes never tear a model:
//!    every response is attributable to exactly one generation, no query is
//!    dropped or duplicated, and retired generations are freed.

use proptest::prelude::*;
use radiomap_core::prelude::*;
use radiomap_core::{PipelineConfig, VenueSnapshot};
use rm_positioning::{average_positioning_error, evaluate_estimator_threads};
use rm_serve::{decode, encode, ModelRegistry, QueryEngine, VenueModel, MAX_MICRO_BATCH};
use rm_tensor::{Bf16Matrix, Matrix, NamedTensor};
use std::sync::{Arc, Weak};

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// A hand-built sparse survey on one path: deterministic missing pattern,
/// RPs every third record — enough structure for every imputer to train on.
fn survey_map(num_records: usize, num_aps: usize) -> RadioMap {
    let mut records = Vec::new();
    for i in 0..num_records {
        let values: Vec<Option<f64>> = (0..num_aps)
            .map(|ap| {
                if (i + ap) % 4 == 0 {
                    None
                } else {
                    Some(-50.0 - (i as f64) - (ap as f64) * 3.0)
                }
            })
            .collect();
        let rp = if i % 3 == 0 {
            Some(Point::new(i as f64 * 2.0, 1.0))
        } else {
            None
        };
        records.push(RadioMapRecord::new(
            Fingerprint::new(values),
            rp,
            i as f64 * 2.0,
            0,
        ));
    }
    RadioMap::new(records, num_aps)
}

fn pipeline(
    imputer: ImputerKind,
    estimator: EstimatorKind,
    precision: Precision,
    snapshot_dtype: SnapshotDtype,
) -> ImputationPipeline {
    ImputationPipeline::new(PipelineConfig {
        differentiator: DifferentiatorKind::MarOnly,
        imputer,
        estimator,
        epochs: Some(2),
        threads: 1,
        precision,
        snapshot_dtype,
        ..PipelineConfig::default()
    })
}

fn bits_eq_snapshots(a: &VenueSnapshot, b: &VenueSnapshot) -> bool {
    // The codec is canonical (one encoding per snapshot), so byte equality
    // of re-encodings is exactly bitwise equality of snapshots.
    encode(a) == encode(b)
}

// ---------------------------------------------------------------------------
// 1. Artifact fidelity
// ---------------------------------------------------------------------------

/// Real pipeline exports round-trip bitwise at every precision ×
/// snapshot-dtype combination, trained-tensor payloads included.
#[test]
fn pipeline_exports_round_trip_bitwise_across_dtype_combos() {
    let map = survey_map(18, 5);
    let topology = MultiPolygon::empty();
    for (precision, snapshot_dtype) in [
        (Precision::F64, SnapshotDtype::Native),
        (Precision::F32, SnapshotDtype::Native),
        (Precision::F32, SnapshotDtype::Bf16),
    ] {
        let snapshot = pipeline(
            ImputerKind::Brits,
            EstimatorKind::Knn,
            precision,
            snapshot_dtype,
        )
        .export_snapshot("e2e", &map, &topology);
        assert_eq!(
            snapshot.tensors.len(),
            24,
            "BRITS exports 24 weight tensors"
        );
        let bytes = encode(&snapshot);
        let decoded = decode(&bytes).expect("pipeline export decodes");
        assert!(
            bits_eq_snapshots(&snapshot, &decoded),
            "{precision:?}/{snapshot_dtype:?} export did not round-trip bitwise"
        );
        for (a, b) in snapshot.tensors.iter().zip(&decoded.tensors) {
            assert!(a.bits_eq(b), "tensor {} changed bits", a.name);
        }
    }
}

/// bf16 artifacts carry their trained weights at 2 bytes/element vs 8 for
/// f64 — the tensor payload is exactly 4× smaller, and the whole artifact
/// shrinks accordingly.
#[test]
fn bf16_artifacts_are_four_times_smaller_in_tensor_payload() {
    let map = survey_map(18, 5);
    let topology = MultiPolygon::empty();
    let f64_snapshot = pipeline(
        ImputerKind::Brits,
        EstimatorKind::Knn,
        Precision::F64,
        SnapshotDtype::Native,
    )
    .export_snapshot("e2e", &map, &topology);
    let bf16_snapshot = pipeline(
        ImputerKind::Brits,
        EstimatorKind::Knn,
        Precision::F32,
        SnapshotDtype::Bf16,
    )
    .export_snapshot("e2e", &map, &topology);

    let payload =
        |s: &VenueSnapshot| -> usize { s.tensors.iter().map(|t| t.payload.payload_bytes()).sum() };
    let (f64_bytes, bf16_bytes) = (payload(&f64_snapshot), payload(&bf16_snapshot));
    assert!(f64_bytes > 0);
    assert_eq!(
        f64_bytes,
        4 * bf16_bytes,
        "same shapes at 8 vs 2 bytes per element"
    );
    assert!(
        encode(&bf16_snapshot).len() < encode(&f64_snapshot).len(),
        "the artifact as a whole must shrink too"
    );
}

/// Builds an arbitrary snapshot from one seed via `derive_seed` draws. All
/// floats come straight from raw u64/u32/u16 bits, so the generated payloads
/// cover NaN patterns, ±0.0, infinities and subnormals — the artifact
/// contract is about bits, not values.
fn build_snapshot(seed: u64) -> VenueSnapshot {
    let mut counter = 0u64;
    let mut draw = move || {
        counter += 1;
        rm_runtime::derive_seed(seed, counter)
    };

    let venue: String = (0..1 + draw() % 12)
        .map(|_| char::from(b'a' + (draw() % 26) as u8))
        .collect();
    let num_aps = 1 + (draw() % 3) as usize;
    let rows = 1 + (draw() % 4) as usize;
    let fingerprints: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..num_aps).map(|_| f64::from_bits(draw())).collect())
        .collect();
    let locations: Vec<Point> = (0..rows)
        .map(|_| Point::new(f64::from_bits(draw()), f64::from_bits(draw())))
        .collect();
    let mut mask = MaskMatrix::all_observed(rows, num_aps);
    for r in 0..rows {
        for c in 0..num_aps {
            mask.set(r, c, EntryKind::from_i8((draw() % 3) as i8 - 1));
        }
    }
    let tensors: Vec<NamedTensor> = (0..draw() % 3)
        .map(|i| {
            let (t_rows, t_cols) = (1 + (draw() % 3) as usize, 1 + (draw() % 3) as usize);
            let len = t_rows * t_cols;
            match draw() % 3 {
                0 => NamedTensor::new(
                    format!("t{i}.f64"),
                    Matrix::from_vec(
                        t_rows,
                        t_cols,
                        (0..len).map(|_| f64::from_bits(draw())).collect(),
                    ),
                ),
                1 => NamedTensor::new(
                    format!("t{i}.f32"),
                    Matrix::from_vec(
                        t_rows,
                        t_cols,
                        (0..len).map(|_| f32::from_bits(draw() as u32)).collect(),
                    ),
                ),
                _ => NamedTensor::new(
                    format!("t{i}.bf16"),
                    Bf16Matrix::from_bits(
                        t_rows,
                        t_cols,
                        (0..len).map(|_| draw() as u16).collect(),
                    ),
                ),
            }
        })
        .collect();
    VenueSnapshot {
        venue,
        map: DenseRadioMap::new(fingerprints, locations, num_aps),
        mask,
        estimator: match draw() % 3 {
            0 => EstimatorKind::Knn,
            1 => EstimatorKind::Wknn,
            _ => EstimatorKind::RandomForest,
        },
        knn_k: 1 + (draw() % 5) as usize,
        seed: draw(),
        precision: if draw() % 2 == 0 {
            Precision::F64
        } else {
            Precision::F32
        },
        snapshot_dtype: if draw() % 2 == 0 {
            SnapshotDtype::Native
        } else {
            SnapshotDtype::Bf16
        },
        tensors,
    }
}

fn arb_snapshot() -> impl Strategy<Value = VenueSnapshot> {
    any::<u64>().prop_map(build_snapshot)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any snapshot — arbitrary float bits, any estimator/precision/dtype
    /// tag, any mask — survives encode → decode → encode with identical
    /// bytes and bitwise-identical tensors.
    #[test]
    fn any_snapshot_round_trips_bitwise(snapshot in arb_snapshot()) {
        let bytes = encode(&snapshot);
        let decoded = decode(&bytes).expect("every encoding decodes");
        prop_assert_eq!(&encode(&decoded), &bytes);
        prop_assert_eq!(decoded.tensors.len(), snapshot.tensors.len());
        for (a, b) in snapshot.tensors.iter().zip(&decoded.tensors) {
            prop_assert!(a.bits_eq(b));
        }
    }

    /// Corrupting any single byte of an artifact makes it fail decoding with
    /// a typed error — never a panic, never a silently-wrong snapshot.
    #[test]
    fn single_byte_corruption_never_panics(
        snapshot in arb_snapshot(),
        position_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = encode(&snapshot);
        let position = position_seed % bytes.len();
        bytes[position] ^= flip;
        match decode(&bytes) {
            // Flips inside a float payload (or a venue-name byte) keep the
            // artifact structurally valid only if the checksum catches them —
            // which it must, since we flipped after checksumming.
            Err(_) => {}
            Ok(reread) => {
                // The only way a flip decodes is if it produced a different
                // valid artifact — impossible without fixing up the checksum.
                prop_assert!(false, "corrupt artifact decoded: {:?}", reread.venue);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Serving ≡ offline
// ---------------------------------------------------------------------------

/// Queries for the serving-vs-offline comparisons: the map's own
/// fingerprints plus perturbed variants (so KNN faces both exact hits and
/// interpolation), each with its record's RP as ground truth.
fn query_log(snapshot: &VenueSnapshot) -> Vec<TestQuery> {
    let mut queries = Vec::new();
    for pass in 0..12 {
        for (i, (fingerprint, location)) in snapshot
            .map
            .fingerprints()
            .iter()
            .zip(snapshot.map.locations())
            .enumerate()
        {
            let jitter = (pass * 31 + i) as f64 * 0.17;
            queries.push(TestQuery {
                fingerprint: fingerprint.iter().map(|&v| v + jitter).collect(),
                location: *location,
            });
        }
    }
    queries
}

/// A model loaded from persisted bytes answers every query bit-identically
/// to the offline `evaluate_estimator` path over the same snapshot — both
/// per query and in the aggregated APE metric.
#[test]
fn serving_matches_the_offline_estimator_query_for_query() {
    let map = survey_map(24, 6);
    let topology = MultiPolygon::empty();
    for estimator_kind in [
        EstimatorKind::Knn,
        EstimatorKind::Wknn,
        EstimatorKind::RandomForest,
    ] {
        let snapshot = pipeline(
            ImputerKind::Mice,
            estimator_kind,
            Precision::F64,
            SnapshotDtype::Native,
        )
        .export_snapshot("offline-parity", &map, &topology);
        let queries = query_log(&snapshot);

        // Offline path: estimator built directly from the in-memory snapshot.
        let offline = snapshot
            .estimator
            .build_threads(snapshot.map.clone(), snapshot.knn_k, 1);
        let offline_ape = evaluate_estimator_threads(&*offline, &queries, 1);

        // Serving path: artifact bytes → registry → batched engine.
        let reloaded = decode(&encode(&snapshot)).expect("artifact decodes");
        let registry = ModelRegistry::new();
        registry.publish(reloaded, 1);
        let mut engine = QueryEngine::new(&registry, "offline-parity", 1);
        let log: Vec<Vec<f64>> = queries.iter().map(|q| q.fingerprint.clone()).collect();
        let responses = engine.run_log(&log);

        assert_eq!(responses.len(), queries.len());
        let mut answered = Vec::new();
        let mut truths = Vec::new();
        for (response, query) in responses.iter().zip(&queries) {
            let served = response.position.expect("dense maps answer every query");
            let offline_estimate = offline
                .estimate(&query.fingerprint)
                .expect("offline answers every query");
            assert_eq!(
                (served.x.to_bits(), served.y.to_bits()),
                (offline_estimate.x.to_bits(), offline_estimate.y.to_bits()),
                "{} query diverged between serving and offline",
                estimator_kind.name()
            );
            answered.push(served);
            truths.push(query.location);
        }
        let served_ape = average_positioning_error(&answered, &truths);
        assert_eq!(
            served_ape.map(f64::to_bits),
            offline_ape.map(f64::to_bits),
            "{} APE diverged between serving and offline",
            estimator_kind.name()
        );
    }
}

/// A fixed query log yields bit-identical responses at any fan-out width —
/// serving inherits the determinism contract from `rm_runtime::par_map`.
#[test]
fn a_fixed_query_log_is_bit_identical_at_any_thread_count() {
    let map = survey_map(24, 6);
    let topology = MultiPolygon::empty();
    let snapshot = pipeline(
        ImputerKind::LinearInterpolation,
        EstimatorKind::Wknn,
        Precision::F64,
        SnapshotDtype::Native,
    )
    .export_snapshot("det", &map, &topology);
    let log: Vec<Vec<f64>> = query_log(&snapshot)
        .into_iter()
        .map(|q| q.fingerprint)
        .collect();
    assert!(log.len() > MAX_MICRO_BATCH, "log must span several batches");

    let registry = ModelRegistry::new();
    registry.publish(snapshot, 1);
    let reference = QueryEngine::new(&registry, "det", 1).run_log(&log);
    for threads in [2, 8, rm_runtime::default_threads(), 0] {
        let responses = QueryEngine::new(&registry, "det", threads).run_log(&log);
        assert_eq!(responses.len(), reference.len());
        for (a, b) in reference.iter().zip(&responses) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.generation, b.generation);
            let (pa, pb) = (a.position.unwrap(), b.position.unwrap());
            assert_eq!(
                (pa.x.to_bits(), pa.y.to_bits()),
                (pb.x.to_bits(), pb.y.to_bits()),
                "query {} differs between threads=1 and threads={threads}",
                a.index
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Hot reload under load
// ---------------------------------------------------------------------------

/// A one-RP snapshot whose answer encodes its generation: the model for
/// generation `g` places its only reference point at `x = g`, so any query
/// answered by generation `g` must return exactly `Point::new(g, 0.0)` —
/// response attribution is checkable bit for bit.
fn generation_snapshot(generation: u64) -> VenueSnapshot {
    VenueSnapshot {
        venue: "hot".into(),
        map: DenseRadioMap::new(
            vec![vec![-50.0]],
            vec![Point::new(generation as f64, 0.0)],
            1,
        ),
        mask: MaskMatrix::all_observed(1, 1),
        estimator: EstimatorKind::Knn,
        knn_k: 1,
        seed: 0,
        precision: Precision::F64,
        snapshot_dtype: SnapshotDtype::Native,
        tensors: Vec::new(),
    }
}

/// Hot reload under live query load: one publisher swaps models while query
/// clients replay logs through batching engines. Every response must be
/// attributable to exactly one published generation (its position encodes
/// the generation that answered), no query may be dropped or duplicated,
/// and every retired generation must be freed once its last reader drops.
#[test]
fn hot_reload_under_load_never_tears_drops_or_leaks() {
    const SWAPS: u64 = 40;
    const QUERY_CLIENTS: usize = 6;
    const QUERIES_PER_CLIENT: usize = 512;

    let registry = ModelRegistry::new();
    registry.publish(generation_snapshot(1), 1);

    enum ClientResult {
        Publisher(Vec<Weak<VenueModel>>),
        Queries(Vec<rm_serve::QueryResponse>),
    }

    let clients: Vec<usize> = (0..=QUERY_CLIENTS).collect();
    let results = rm_runtime::par_map(clients.len(), &clients, |_, &client| {
        if client == 0 {
            // The publisher: swap in SWAPS fresh generations, keeping only
            // Weak handles to the retired models.
            let mut retired_weaks = Vec::new();
            for g in 2..=(SWAPS + 1) {
                let retired = registry
                    .publish(generation_snapshot(g), 1)
                    .expect("every publish after the first retires a model");
                retired_weaks.push(Arc::downgrade(&retired));
                drop(retired);
            }
            ClientResult::Publisher(retired_weaks)
        } else {
            // A query client: replay a fixed log in micro-batches while the
            // publisher races. Small batches maximise generation churn.
            let mut engine =
                QueryEngine::with_max_batch(&registry, "hot", 1, 1 + client % MAX_MICRO_BATCH);
            let mut responses = Vec::with_capacity(QUERIES_PER_CLIENT);
            for i in 0..QUERIES_PER_CLIENT {
                engine.submit(vec![-50.0]);
                // Drain only occasionally so auto-flush at capacity does the
                // batching in between.
                if i % 37 == 36 {
                    responses.extend(engine.drain());
                }
            }
            responses.extend(engine.drain());
            ClientResult::Queries(responses)
        }
    });

    assert_eq!(registry.generation(), SWAPS + 1);
    let mut retired_weaks = Vec::new();
    for (client, result) in results.into_iter().enumerate() {
        match result {
            ClientResult::Publisher(weaks) => retired_weaks = weaks,
            ClientResult::Queries(responses) => {
                // Conservation: exactly one response per query, in order.
                assert_eq!(responses.len(), QUERIES_PER_CLIENT, "client {client}");
                let mut last_generation = 0;
                for (i, response) in responses.iter().enumerate() {
                    assert_eq!(response.index, i as u64, "client {client} reordered");
                    // Attribution: the answer's x-coordinate must equal the
                    // generation the response claims — a torn model would
                    // break this equality.
                    let position = response.position.expect("1-NN answers");
                    assert_eq!(
                        position.x.to_bits(),
                        (response.generation as f64).to_bits(),
                        "client {client} query {i}: response not attributable \
                         to its generation"
                    );
                    assert_eq!(position.y.to_bits(), 0.0f64.to_bits());
                    assert!(
                        (1..=SWAPS + 1).contains(&response.generation),
                        "unknown generation {}",
                        response.generation
                    );
                    // Generations are observed monotonically: a batch never
                    // travels back in time.
                    assert!(
                        response.generation >= last_generation,
                        "client {client} saw generation {} after {}",
                        response.generation,
                        last_generation
                    );
                    last_generation = response.generation;
                }
            }
        }
    }

    // Memory release: with every engine and retired Arc dropped, no retired
    // generation is reachable any more — only the live model survives.
    assert_eq!(retired_weaks.len(), SWAPS as usize);
    for (i, weak) in retired_weaks.iter().enumerate() {
        assert!(
            weak.upgrade().is_none(),
            "retired generation {} still reachable",
            i + 1
        );
    }
    assert_eq!(registry.model("hot").unwrap().generation(), SWAPS + 1);
}
