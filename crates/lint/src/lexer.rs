//! A minimal hand-rolled Rust lexer, just deep enough for rule matching.
//!
//! The rules in [`crate::rules`] match *token sequences*, so the lexer's one
//! real job is to make sure banned tokens inside string literals and comments
//! can never trip a rule: `"std::env::var"` in a test fixture string or a doc
//! comment mentioning `HashMap` must lex to a literal/comment, not to the
//! identifier tokens the rules look for. Everything else is deliberately
//! simple: single-character punctuation (rules match `::` as two `:` tokens),
//! no keyword table (`unsafe` is just an identifier token), no spans beyond
//! `line:col`.
//!
//! Comments are *kept*, separately from the token stream, because two rules
//! read them: `unsafe-needs-safety-comment` looks for `SAFETY` markers near
//! `unsafe` tokens, and the suppression layer parses `rm-lint: allow(...)`
//! annotations out of comment text. Block comments attribute their text to
//! every line they span so a multi-line `/* SAFETY: ... */` works the same as
//! a run of `//` lines.

/// What a token is; rules only ever distinguish identifiers from punctuation
/// (literals and lifetimes exist so their *contents* can never be mistaken
/// for code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `HashMap`, `matmul`, ...).
    Ident,
    /// A single punctuation character (`:`, `.`, `(`, ...).
    Punct,
    /// A string/char/number literal (contents discarded).
    Literal,
    /// A lifetime (`'a`); kept distinct so `'static` is not an `Ident`.
    Lifetime,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// The token text for `Ident`/`Punct` (empty for literals/lifetimes —
    /// no rule reads their contents).
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// The comments observed on one source line, one segment per comment (a line
/// carrying `/* a */ code // b` records two segments). Line-comment segments
/// keep their `//`/`///`/`//!` prefix so the annotation parser can tell plain
/// comments from doc comments.
#[derive(Debug, Clone, Default)]
pub struct LineComments {
    pub segments: Vec<String>,
}

/// The output of lexing one file: the code tokens plus per-line comment text
/// (index 0 = line 1).
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<LineComments>,
}

impl Lexed {
    /// The comment segments on a 1-based line (empty slice if none — also
    /// for the out-of-range line 0, which lookback windows may produce).
    pub fn comments_on(&self, line: u32) -> &[String] {
        let Some(idx) = (line as usize).checked_sub(1) else {
            return &[];
        };
        self.comments
            .get(idx)
            .map(|c| c.segments.as_slice())
            .unwrap_or(&[])
    }

    /// Whether any comment on a 1-based line contains `needle`.
    pub fn comment_contains(&self, line: u32, needle: &str) -> bool {
        self.comments_on(line).iter().any(|s| s.contains(needle))
    }
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    /// Consumes one byte, tracking line/col. Multi-byte UTF-8 continuation
    /// bytes do not advance the column (close enough for diagnostics).
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes one file. Never fails: unterminated strings/comments simply consume
/// the rest of the file (the compiler is the authority on well-formedness;
/// the linter only needs to never mis-tokenize valid code).
pub fn lex(src: &str) -> Lexed {
    let mut s = Scanner::new(src);
    let mut out = Lexed::default();
    let total_lines = src.lines().count().max(1);
    out.comments.resize_with(total_lines, Default::default);

    let record_comment = |comments: &mut Vec<LineComments>, line: u32, text: &str| {
        let idx = line as usize - 1;
        if idx >= comments.len() {
            comments.resize_with(idx + 1, Default::default);
        }
        comments[idx].segments.push(text.to_string());
    };

    while let Some(b) = s.peek() {
        let (line, col) = (s.line, s.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                s.bump();
            }
            b'/' if s.peek_at(1) == Some(b'/') => {
                // Line comment (including `///` and `//!` doc comments).
                let start = s.pos;
                while let Some(c) = s.peek() {
                    if c == b'\n' {
                        break;
                    }
                    s.bump();
                }
                let text = std::str::from_utf8(&s.src[start..s.pos]).unwrap_or("");
                record_comment(&mut out.comments, line, text);
            }
            b'/' if s.peek_at(1) == Some(b'*') => {
                // Block comment, possibly nested; text is attributed per line.
                s.bump();
                s.bump();
                let mut depth = 1usize;
                let mut seg_start = s.pos;
                let mut seg_line = s.line;
                while depth > 0 {
                    match (s.peek(), s.peek_at(1)) {
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            s.bump();
                            s.bump();
                        }
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            s.bump();
                            s.bump();
                        }
                        (Some(b'\n'), _) => {
                            let text = std::str::from_utf8(&s.src[seg_start..s.pos]).unwrap_or("");
                            record_comment(&mut out.comments, seg_line, text);
                            s.bump();
                            seg_start = s.pos;
                            seg_line = s.line;
                        }
                        (Some(_), _) => {
                            s.bump();
                        }
                        (None, _) => break,
                    }
                }
                let text = std::str::from_utf8(&s.src[seg_start..s.pos]).unwrap_or("");
                let text = text.strip_suffix("*/").unwrap_or(text);
                if !text.trim().is_empty() {
                    record_comment(&mut out.comments, seg_line, text);
                }
            }
            b'"' => {
                s.bump();
                consume_string_body(&mut s);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                    col,
                });
            }
            b'r' | b'b' if is_raw_or_byte_string(&s) => {
                consume_prefixed_string(&mut s);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                    col,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`): after the
                // quote, an identifier not followed by a closing quote is a
                // lifetime.
                let is_lifetime = match (s.peek_at(1), s.peek_at(2)) {
                    (Some(c), Some(q)) if is_ident_start(c) && c != b'\\' => q != b'\'',
                    (Some(c), None) if is_ident_start(c) => true,
                    _ => false,
                };
                s.bump();
                if is_lifetime {
                    while let Some(c) = s.peek() {
                        if !is_ident_continue(c) {
                            break;
                        }
                        s.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: String::new(),
                        line,
                        col,
                    });
                } else {
                    // Char literal: consume until the closing quote,
                    // honouring escapes.
                    while let Some(c) = s.bump() {
                        match c {
                            b'\\' => {
                                s.bump();
                            }
                            b'\'' => break,
                            _ => {}
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::new(),
                        line,
                        col,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                // Number literal: digits plus any trailing ident chars or
                // dots (`1_000`, `0xFF`, `1.5e-3`, `3.0f64`).
                while let Some(c) = s.peek() {
                    if is_ident_continue(c) || c == b'.' {
                        // A dot only belongs to the number if a digit
                        // follows (so `1.max(2)` keeps its method call).
                        if c == b'.' && !matches!(s.peek_at(1), Some(d) if d.is_ascii_digit()) {
                            break;
                        }
                        s.bump();
                    } else if (c == b'+' || c == b'-')
                        && matches!(s.src.get(s.pos - 1), Some(b'e') | Some(b'E'))
                    {
                        s.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                    col,
                });
            }
            c if is_ident_start(c) => {
                let start = s.pos;
                while let Some(c) = s.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    s.bump();
                }
                let text = std::str::from_utf8(&s.src[start..s.pos])
                    .unwrap_or("")
                    .to_string();
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            c => {
                s.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (c as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// After an opening `"`, consumes the body and closing quote with `\` escapes.
fn consume_string_body(s: &mut Scanner) {
    while let Some(c) = s.bump() {
        match c {
            b'\\' => {
                s.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Whether the scanner sits on a raw/byte string prefix: `r"`, `r#`, `b"`,
/// `br"`, `br#`, `b'`. A plain identifier starting with `r`/`b` (e.g.
/// `result`) is not.
fn is_raw_or_byte_string(s: &Scanner) -> bool {
    let p1 = s.peek_at(1);
    match s.peek() {
        Some(b'r') => matches!(p1, Some(b'"') | Some(b'#')) && raw_hashes_then_quote(s, 1),
        Some(b'b') => match p1 {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => raw_hashes_then_quote(s, 2),
            _ => false,
        },
        _ => false,
    }
}

/// From `offset` (just past the `r`), checks `#*"` follows — distinguishes
/// `r#"raw"#` and `r#keyword` (raw identifiers, which are *not* strings).
fn raw_hashes_then_quote(s: &Scanner, offset: usize) -> bool {
    let mut i = offset;
    while s.peek_at(i) == Some(b'#') {
        i += 1;
    }
    s.peek_at(i) == Some(b'"')
}

/// Consumes `r"..."`, `r#"..."#`, `b"..."`, `br##"..."##`, or `b'c'` from the
/// prefix character onward.
fn consume_prefixed_string(s: &mut Scanner) {
    let mut raw = false;
    // Consume the `r` / `b` / `br` prefix.
    while matches!(s.peek(), Some(b'r') | Some(b'b')) {
        raw |= s.peek() == Some(b'r');
        s.bump();
    }
    if s.peek() == Some(b'\'') {
        // Byte char literal `b'x'`.
        s.bump();
        while let Some(c) = s.bump() {
            match c {
                b'\\' => {
                    s.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
        return;
    }
    let mut hashes = 0usize;
    while s.peek() == Some(b'#') {
        hashes += 1;
        s.bump();
    }
    if s.peek() != Some(b'"') {
        return;
    }
    s.bump();
    if raw {
        // Raw string: ends at `"` followed by `hashes` `#`s; no escapes.
        'outer: while let Some(c) = s.bump() {
            if c == b'"' {
                for i in 0..hashes {
                    if s.peek_at(i) != Some(b'#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    s.bump();
                }
                break;
            }
        }
    } else {
        consume_string_body(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // std::env::var in a comment
            let a = "std::env::var(\"HOME\")";
            let b = r#"HashMap::new() "quoted" inside raw"#;
            /* unsafe { thread::spawn } */
            let c = 'x';
        "##;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|i| i == "env" || i == "HashMap" || i == "spawn" || i == "unsafe"));
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn comments_are_recorded_per_line() {
        let src = "let x = 1; // SAFETY: fine\n/* spans\nSAFETY too */\nlet y = 2;\n";
        let lexed = lex(src);
        assert!(lexed.comment_contains(1, "SAFETY"));
        assert!(lexed.comment_contains(3, "SAFETY too"));
        assert!(lexed.comments_on(4).is_empty());
        // A line with two comments keeps them as separate segments.
        let lexed = lex("/* a */ let z = 3; // rm-lint: hot-path\n");
        assert_eq!(lexed.comments_on(1).len(), 2);
        assert!(lexed.comments_on(1)[1].starts_with("//"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { x }";
        let lexed = lex(src);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            3
        );
        // `'a'` by contrast is one literal.
        let lexed = lex("let c = 'a';");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn raw_identifiers_are_not_strings() {
        // `r#type` is a raw identifier, not the start of a raw string.
        let ids = idents("let r#type = 1; let ok = r#type;");
        assert!(ids.iter().any(|i| i == "type"));
        assert!(ids.iter().any(|i| i == "ok"));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("ab\n  cd");
        assert_eq!(lexed.tokens[0].line, 1);
        assert_eq!(lexed.tokens[0].col, 1);
        assert_eq!(lexed.tokens[1].line, 2);
        assert_eq!(lexed.tokens[1].col, 3);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let ids = idents("/* outer /* inner */ still comment */ let x = 1;");
        assert_eq!(ids, vec!["let", "x"]);
    }

    #[test]
    fn numbers_with_suffixes_lex_as_literals() {
        let lexed = lex("let x = 1_000u64 + 0xFFu8 + 1.5e-3f64; x.max(2)");
        let ids: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(ids.contains(&"max"));
        assert!(!ids.contains(&"u64"));
        assert!(!ids.contains(&"f64"));
    }
}
