//! `rm-lint` — the workspace's determinism & concurrency static-analysis
//! pass.
//!
//! The repo's core contract — bit-identical pipeline output at any thread
//! count, batch size, or pool mode — is enforced dynamically by the
//! determinism suite; this crate enforces it *statically*, at review time,
//! before a stray `HashMap` iteration or raw `std::env::var` read turns into
//! a flaky determinism failure. It is dependency-free by construction: a
//! small hand-rolled lexer ([`lexer`]) strips strings and comments so rule
//! patterns can never match inside them, and a rule engine ([`rules`])
//! matches named invariants over the token stream.
//!
//! Three ways to run it:
//!
//! * `cargo run -p rm-lint -- check` — lint the workspace, print
//!   `file:line:col rule: message` diagnostics, exit nonzero on findings;
//! * the `workspace_clean` integration test asserts a clean tree inside
//!   `cargo test`;
//! * the `rm-lint` CI job runs the same check on every push.
//!
//! Suppressions are explicit and must carry a justification:
//!
//! ```text
//! // rm-lint: allow(no-raw-env-read): this IS the cached accessor for RM_FOO
//! ```
//!
//! The annotation covers its own line and the line directly below it. A
//! per-crate policy table ([`rules::PATH_POLICIES`]) exempts whole crates
//! whose purpose exempts them (the bench harness from the wall-clock rule,
//! the runtime from the spawn rule), with the reason on record. Files under
//! `vendor/` are outside the determinism contract and are not walked.

pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use rules::{lint_source, Diagnostic, Rule, ALL_RULES, PATH_POLICIES};

/// Recursively collects every `.rs` file under `root`, skipping
/// [`rules::SKIP_DIR_NAMES`] (vendor, target, VCS/CI state). The list is
/// sorted by path so diagnostics come out in a stable order.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if !rules::SKIP_DIR_NAMES.contains(&name) {
                    stack.push(path);
                }
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every workspace `.rs` file under `root` and returns all diagnostics,
/// sorted by (file, line, col). Unreadable files become diagnostics rather
/// than errors, so one bad file cannot hide the rest of the report.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diagnostics = Vec::new();
    for path in workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        match std::fs::read_to_string(&path) {
            Ok(src) => diagnostics.extend(lint_source(&rel, &src)),
            Err(err) => diagnostics.push(Diagnostic {
                file: rel,
                line: 1,
                col: 1,
                rule: "io-error".to_string(),
                message: format!("could not read file: {err}"),
            }),
        }
    }
    diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    Ok(diagnostics)
}

/// The workspace root when running under cargo (`crates/lint` → two levels
/// up), else the current directory.
#[allow(clippy::disallowed_methods)] // audited env read; see the rm-lint allow inside
pub fn default_root() -> PathBuf {
    // rm-lint: allow(no-raw-env-read): CARGO_MANIFEST_DIR is cargo's location handshake, not a determinism knob
    if let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let manifest = PathBuf::from(manifest_dir);
        if let Some(root) = manifest.parent().and_then(Path::parent) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_root_is_the_workspace_root() {
        let root = default_root();
        assert!(
            root.join("Cargo.toml").exists(),
            "expected workspace root, got {}",
            root.display()
        );
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn workspace_walk_skips_vendor_and_target() {
        let files = workspace_files(&default_root()).expect("walk workspace");
        assert!(!files.is_empty());
        for file in &files {
            let s = file.to_string_lossy();
            assert!(!s.contains("/vendor/"), "walked into vendor: {s}");
            assert!(!s.contains("/target/"), "walked into target: {s}");
        }
        // The walk must cover every member crate, not just this one.
        assert!(files
            .iter()
            .any(|f| f.to_string_lossy().contains("crates/runtime/src/pool.rs")));
    }
}
