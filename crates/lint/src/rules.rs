//! The rule engine: named workspace invariants matched over the token stream
//! of [`crate::lexer`], plus the suppression layer (`rm-lint: allow(...)`)
//! and the per-crate configuration table.
//!
//! Every rule guards one facet of the repo's core contract — bit-identical
//! pipeline output at any thread count, batch size, or pool mode — or the
//! safety discipline of the code that makes the parallelism sound:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `unsafe-needs-safety-comment` | every `unsafe` site carries a `// SAFETY:` argument |
//! | `no-raw-env-read` | env knobs resolve once per process through cached accessors |
//! | `no-thread-spawn-outside-runtime` | all parallelism flows through `rm-runtime` |
//! | `no-unordered-iteration` | no `HashMap`/`HashSet` in deterministic crates |
//! | `no-wallclock-in-deterministic-path` | no `Instant::now`/`SystemTime::now` outside timing code |
//! | `no-entropy-rng` | all randomness is seed-derived (`derive_seed`), never OS entropy |
//! | `prefer-matmul-into` | hot-path modules reuse output buffers instead of allocating `matmul` |
//!
//! Suppressions are explicit and must justify themselves:
//! `// rm-lint: allow(rule-name): why this site is sound`. An annotation with
//! no justification, or naming an unknown rule, is itself a diagnostic — the
//! suppression layer cannot silently rot.

use crate::lexer::{Lexed, Token, TokenKind};

/// The named rules, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    UnsafeNeedsSafetyComment,
    NoRawEnvRead,
    NoThreadSpawnOutsideRuntime,
    NoUnorderedIteration,
    NoWallclockInDeterministicPath,
    NoEntropyRng,
    PreferMatmulInto,
}

/// All rules, for the registry listing and the config table.
pub const ALL_RULES: &[Rule] = &[
    Rule::UnsafeNeedsSafetyComment,
    Rule::NoRawEnvRead,
    Rule::NoThreadSpawnOutsideRuntime,
    Rule::NoUnorderedIteration,
    Rule::NoWallclockInDeterministicPath,
    Rule::NoEntropyRng,
    Rule::PreferMatmulInto,
];

impl Rule {
    /// The kebab-case name used in diagnostics and `allow(...)` annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsafeNeedsSafetyComment => "unsafe-needs-safety-comment",
            Rule::NoRawEnvRead => "no-raw-env-read",
            Rule::NoThreadSpawnOutsideRuntime => "no-thread-spawn-outside-runtime",
            Rule::NoUnorderedIteration => "no-unordered-iteration",
            Rule::NoWallclockInDeterministicPath => "no-wallclock-in-deterministic-path",
            Rule::NoEntropyRng => "no-entropy-rng",
            Rule::PreferMatmulInto => "prefer-matmul-into",
        }
    }

    /// Parses an `allow(...)` rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// One-line rationale, shown by `rm-lint rules`.
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::UnsafeNeedsSafetyComment => {
                "every `unsafe` block/impl/fn must be argued sound by a nearby `// SAFETY:` comment"
            }
            Rule::NoRawEnvRead => {
                "env knobs must resolve once per process through cached accessors; a raw \
                 `env::var` read can disagree with the cached value mid-run"
            }
            Rule::NoThreadSpawnOutsideRuntime => {
                "all parallelism must flow through rm-runtime's deterministic primitives; a stray \
                 spawn escapes the ordering and nesting contract"
            }
            Rule::NoUnorderedIteration => {
                "HashMap/HashSet iteration order varies between processes; deterministic crates \
                 must use ordered structures or justify membership-only use"
            }
            Rule::NoWallclockInDeterministicPath => {
                "wall-clock reads in a deterministic path invite time-dependent branches; timing \
                 belongs to the bench harness and explicitly justified telemetry"
            }
            Rule::NoEntropyRng => {
                "all randomness must derive from the seed (`derive_seed`); OS entropy breaks \
                 reproducibility by construction"
            }
            Rule::PreferMatmulInto => {
                "hot-path modules should write into reusable buffers (`matmul_into`) instead of \
                 allocating a fresh output per call"
            }
        }
    }
}

/// One finding, printed as `file:line:col rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// The rule name, or `lint-annotation` for malformed suppressions.
    pub rule: String,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{} {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Per-crate configuration: path prefixes (relative to the workspace root,
/// `/`-separated) where specific rules do not apply, with the reason on
/// record. Inline `rm-lint: allow` annotations handle single sites; this
/// table handles whole crates whose *purpose* exempts them.
pub struct PathPolicy {
    pub prefix: &'static str,
    pub skip: &'static [Rule],
    pub why: &'static str,
}

pub const PATH_POLICIES: &[PathPolicy] = &[
    PathPolicy {
        prefix: "crates/runtime/",
        skip: &[Rule::NoThreadSpawnOutsideRuntime],
        why: "rm-runtime is the sanctioned spawn site: every thread in the process is created \
              (and flagged) here",
    },
    PathPolicy {
        prefix: "crates/bench/",
        skip: &[Rule::NoWallclockInDeterministicPath],
        why: "the experiment harness measures wall-clock by design (stage timings, Table VII); \
              timings are reported, never branched on",
    },
];

/// Directory names never descended into by the workspace walker. `vendor`
/// holds third-party shims that are outside the repo's determinism contract;
/// `target`/`.git` are build/VCS state.
pub const SKIP_DIR_NAMES: &[&str] = &["vendor", "target", ".git", ".github"];

/// Rules additionally skipped for files under a `benches/` directory:
/// criterion benches time things — that is their job.
const BENCH_DIR_SKIP: &[Rule] = &[Rule::NoWallclockInDeterministicPath];

/// Returns the rules that apply to a workspace-relative path.
fn rules_for(path: &str) -> Vec<Rule> {
    let mut rules: Vec<Rule> = ALL_RULES.to_vec();
    for policy in PATH_POLICIES {
        if path.starts_with(policy.prefix) {
            rules.retain(|r| !policy.skip.contains(r));
        }
    }
    if path.split('/').any(|seg| seg == "benches") {
        rules.retain(|r| !BENCH_DIR_SKIP.contains(r));
    }
    rules
}

/// A parsed `rm-lint:` annotation.
#[derive(Debug)]
enum Annotation {
    /// `rm-lint: allow(rule): justification` — suppresses `rule` on the
    /// annotation's own line and the line immediately below (so it can sit
    /// on its own line above the code it excuses).
    Allow { rule: Rule, line: u32 },
    /// `rm-lint: hot-path` — marks the whole file as a hot-loop module for
    /// [`Rule::PreferMatmulInto`].
    HotPath,
    /// A malformed annotation (unknown rule, missing justification): always
    /// a diagnostic, never suppressible.
    Malformed { line: u32, message: String },
}

/// Extracts every `rm-lint:` annotation from a file's comments.
///
/// Only a plain `//` line comment *starting* with `rm-lint:` is an
/// annotation. Doc comments (`///`, `//!`) and block comments never are, so
/// documentation can show the syntax verbatim without tripping the parser,
/// and prose that merely mentions rm-lint mid-sentence is ignored.
fn parse_annotations(lexed: &Lexed) -> Vec<Annotation> {
    let mut out = Vec::new();
    for (idx, comments) in lexed.comments.iter().enumerate() {
        let line = idx as u32 + 1;
        for segment in &comments.segments {
            let Some(content) = plain_comment_content(segment) else {
                continue;
            };
            let Some(body) = content.trim_start().strip_prefix("rm-lint:") else {
                continue;
            };
            let body = body.trim_start();
            if body.starts_with("hot-path") {
                out.push(Annotation::HotPath);
            } else if let Some(after) = body.strip_prefix("allow(") {
                let Some(close) = after.find(')') else {
                    out.push(Annotation::Malformed {
                        line,
                        message: "unclosed `allow(` annotation".to_string(),
                    });
                    continue;
                };
                let name = after[..close].trim();
                let tail = after[close + 1..].trim_start();
                let Some(rule) = Rule::from_name(name) else {
                    out.push(Annotation::Malformed {
                        line,
                        message: format!("unknown rule `{name}` in allow annotation"),
                    });
                    continue;
                };
                // The justification is mandatory: `): why...`.
                let justified = tail
                    .strip_prefix(':')
                    .map(|j| !j.trim().is_empty())
                    .unwrap_or(false);
                if !justified {
                    out.push(Annotation::Malformed {
                        line,
                        message: format!(
                            "allow({name}) has no justification — write \
                             `rm-lint: allow({name}): <why this site is sound>`"
                        ),
                    });
                    continue;
                }
                out.push(Annotation::Allow { rule, line });
            } else {
                out.push(Annotation::Malformed {
                    line,
                    message: "unrecognized rm-lint annotation (expected `allow(rule): why` \
                              or `hot-path`)"
                        .to_string(),
                });
            }
        }
    }
    out
}

/// The content of a plain `//` comment segment (`None` for doc comments and
/// block comments).
fn plain_comment_content(segment: &str) -> Option<&str> {
    let rest = segment.strip_prefix("//")?;
    if rest.starts_with('/') || rest.starts_with('!') {
        return None;
    }
    Some(rest)
}

/// Lints one file's source text. `path` must be workspace-relative with `/`
/// separators — the config table and diagnostics both key on it.
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let lexed = crate::lexer::lex(src);
    let annotations = parse_annotations(&lexed);

    let mut hot_path = false;
    let mut allows: Vec<(Rule, u32)> = Vec::new();
    let mut diagnostics = Vec::new();
    for annotation in &annotations {
        match annotation {
            Annotation::HotPath => hot_path = true,
            Annotation::Allow { rule, line } => allows.push((*rule, *line)),
            Annotation::Malformed { line, message } => diagnostics.push(Diagnostic {
                file: path.to_string(),
                line: *line,
                col: 1,
                rule: "lint-annotation".to_string(),
                message: message.clone(),
            }),
        }
    }

    let rules = rules_for(path);
    let mut findings = Vec::new();
    for rule in &rules {
        run_rule(*rule, &lexed, hot_path, &mut findings);
    }

    // Apply suppressions: an allow covers its own line and the next line.
    findings.retain(|(rule, token, _)| {
        !allows
            .iter()
            .any(|(r, line)| r == rule && (token.line == *line || token.line == *line + 1))
    });

    diagnostics.extend(
        findings
            .into_iter()
            .map(|(rule, token, message)| Diagnostic {
                file: path.to_string(),
                line: token.line,
                col: token.col,
                rule: rule.name().to_string(),
                message,
            }),
    );
    diagnostics.sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    diagnostics
}

type Finding = (Rule, Token, String);

fn run_rule(rule: Rule, lexed: &Lexed, hot_path: bool, out: &mut Vec<Finding>) {
    match rule {
        Rule::UnsafeNeedsSafetyComment => unsafe_needs_safety(lexed, out),
        Rule::NoRawEnvRead => {
            for pat in [
                &["env", ":", ":", "var"][..],
                &["env", ":", ":", "var_os"][..],
            ] {
                match_sequence(
                    lexed,
                    pat,
                    |token| {
                        (
                            Rule::NoRawEnvRead,
                            token,
                            "raw environment read — route this knob through a once-per-process \
                         cached accessor (see `rm_runtime::resolve_threads` / \
                         `rm_imputers::brits::default_epochs` for the pattern)"
                                .to_string(),
                        )
                    },
                    out,
                );
            }
        }
        Rule::NoThreadSpawnOutsideRuntime => {
            for pat in [
                &["thread", ":", ":", "spawn"][..],
                &["thread", ":", ":", "Builder"][..],
                &["thread", ":", ":", "scope"][..],
            ] {
                match_sequence(
                    lexed,
                    pat,
                    |token| {
                        (
                            Rule::NoThreadSpawnOutsideRuntime,
                            token,
                            "thread creation outside rm-runtime — fan work out through \
                         `rm_runtime::par_map`/`par_chunks` so it obeys the determinism \
                         contract (ordering, nesting, seed derivation)"
                                .to_string(),
                        )
                    },
                    out,
                );
            }
        }
        Rule::NoUnorderedIteration => {
            for token in lexed.tokens.iter() {
                if token.kind == TokenKind::Ident
                    && (token.text == "HashMap" || token.text == "HashSet")
                {
                    out.push((
                        Rule::NoUnorderedIteration,
                        token.clone(),
                        format!(
                            "{} in a deterministic crate — iteration order varies between \
                             processes; use BTreeMap/BTreeSet/Vec, or justify a \
                             membership-only use with an allow annotation",
                            token.text
                        ),
                    ));
                }
            }
        }
        Rule::NoWallclockInDeterministicPath => {
            for pat in [
                &["Instant", ":", ":", "now"][..],
                &["SystemTime", ":", ":", "now"][..],
                &["SystemTime", ":", ":", "UNIX_EPOCH"][..],
            ] {
                match_sequence(
                    lexed,
                    pat,
                    |token| {
                        (
                            Rule::NoWallclockInDeterministicPath,
                            token,
                            "wall-clock read in a deterministic path — timing belongs to the \
                         bench harness; telemetry that never influences results needs an \
                         allow annotation saying so"
                                .to_string(),
                        )
                    },
                    out,
                );
            }
        }
        Rule::NoEntropyRng => {
            for token in lexed.tokens.iter() {
                if token.kind == TokenKind::Ident
                    && matches!(token.text.as_str(), "from_entropy" | "thread_rng" | "OsRng")
                {
                    out.push((
                        Rule::NoEntropyRng,
                        token.clone(),
                        format!(
                            "`{}` draws OS entropy — derive every stream from the run seed \
                             via `rm_runtime::derive_seed` + `StdRng::seed_from_u64`",
                            token.text
                        ),
                    ));
                }
            }
        }
        Rule::PreferMatmulInto => {
            if !hot_path {
                return;
            }
            match_sequence(
                lexed,
                &[".", "matmul", "("],
                |token| {
                    (
                        Rule::PreferMatmulInto,
                        token,
                        "allocating `matmul` in a hot-path module — use `matmul_into` with a \
                     reused buffer, or justify the allocation with an allow annotation"
                            .to_string(),
                    )
                },
                out,
            );
        }
    }
}

/// How many lines above an `unsafe` token a `SAFETY` comment may sit and
/// still count as covering it (the comment usually spans several lines and
/// may be separated from the token by an attribute like
/// `#[allow(unsafe_code)]`).
const SAFETY_LOOKBACK_LINES: u32 = 6;

fn unsafe_needs_safety(lexed: &Lexed, out: &mut Vec<Finding>) {
    for token in lexed.tokens.iter() {
        if token.kind != TokenKind::Ident || token.text != "unsafe" {
            continue;
        }
        let covered = (token.line.saturating_sub(SAFETY_LOOKBACK_LINES)..=token.line)
            .any(|line| lexed.comment_contains(line, "SAFETY"));
        if !covered {
            out.push((
                Rule::UnsafeNeedsSafetyComment,
                token.clone(),
                format!(
                    "`unsafe` without a `// SAFETY:` comment within {SAFETY_LOOKBACK_LINES} \
                     lines above — state the invariant that makes this site sound"
                ),
            ));
        }
    }
}

/// Matches a token-text sequence (all tokens must be `Ident` or `Punct` with
/// exactly the given text) and reports at the first token of each match.
fn match_sequence(
    lexed: &Lexed,
    pattern: &[&str],
    make: impl Fn(Token) -> Finding,
    out: &mut Vec<Finding>,
) {
    let tokens = &lexed.tokens;
    if tokens.len() < pattern.len() {
        return;
    }
    'outer: for start in 0..=tokens.len() - pattern.len() {
        for (tok, want) in tokens[start..].iter().zip(pattern.iter()) {
            if tok.kind == TokenKind::Literal || tok.kind == TokenKind::Lifetime {
                continue 'outer;
            }
            if tok.text != *want {
                continue 'outer;
            }
        }
        out.push(make(tokens[start].clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for rule in ALL_RULES {
            assert_eq!(Rule::from_name(rule.name()), Some(*rule));
        }
        assert_eq!(Rule::from_name("no-such-rule"), None);
    }

    #[test]
    fn path_policies_skip_rules() {
        assert!(
            !rules_for("crates/runtime/src/pool.rs").contains(&Rule::NoThreadSpawnOutsideRuntime)
        );
        assert!(rules_for("crates/runtime/src/pool.rs").contains(&Rule::NoRawEnvRead));
        assert!(
            !rules_for("crates/bench/src/lib.rs").contains(&Rule::NoWallclockInDeterministicPath)
        );
        assert!(!rules_for("crates/imputers/benches/bench_imputers.rs")
            .contains(&Rule::NoWallclockInDeterministicPath));
        assert!(rules_for("crates/core/src/pipeline.rs")
            .contains(&Rule::NoWallclockInDeterministicPath));
    }
}
