//! The `rm-lint` CLI.
//!
//! ```text
//! cargo run -p rm-lint -- check [ROOT]   # lint the workspace (default: repo root)
//! cargo run -p rm-lint -- rules          # list the rules and their rationale
//! ```
//!
//! `check` prints one `file:line:col rule: message` line per finding and
//! exits 1 if there were any (0 on a clean tree, 2 on usage/IO errors) — the
//! same contract the CI job and the `workspace_clean` integration test rely
//! on.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: rm-lint <check [ROOT] | rules>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            if args.len() > 2 {
                return usage();
            }
            let root = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(rm_lint::default_root);
            let diagnostics = match rm_lint::lint_workspace(&root) {
                Ok(diagnostics) => diagnostics,
                Err(err) => {
                    eprintln!("rm-lint: cannot walk {}: {err}", root.display());
                    return ExitCode::from(2);
                }
            };
            for diagnostic in &diagnostics {
                println!("{diagnostic}");
            }
            if diagnostics.is_empty() {
                println!("rm-lint: workspace clean ({})", root.display());
                ExitCode::SUCCESS
            } else {
                println!(
                    "rm-lint: {} finding(s) — fix them or add a justified \
                     `rm-lint: allow(rule): why` annotation",
                    diagnostics.len()
                );
                ExitCode::FAILURE
            }
        }
        Some("rules") => {
            println!("rm-lint rules (suppress with `rm-lint: allow(rule): why`):\n");
            for rule in rm_lint::ALL_RULES {
                println!("  {:<36} {}", rule.name(), rule.rationale());
            }
            println!("\nper-crate policies:");
            for policy in rm_lint::PATH_POLICIES {
                let skipped: Vec<&str> = policy.skip.iter().map(|r| r.name()).collect();
                println!(
                    "  {:<20} skips {}: {}",
                    policy.prefix,
                    skipped.join(", "),
                    policy.why
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
