//! Fixture coverage for every rule: a snippet that must trip it, a near-miss
//! that must not (banned tokens inside strings/comments, suppressed sites,
//! exempted paths), and the suppression machinery itself.
//!
//! Fixtures are inline source strings run through [`rm_lint::lint_source`]
//! under a synthetic deterministic-crate path (`crates/fixture/src/lib.rs`)
//! unless the test is specifically about the per-crate policy table.

use rm_lint::lint_source;

/// Lints a fixture under a path where every rule applies.
fn lint(src: &str) -> Vec<rm_lint::Diagnostic> {
    lint_source("crates/fixture/src/lib.rs", src)
}

/// The rule names tripped by a fixture, in reporting order.
fn tripped(src: &str) -> Vec<String> {
    lint(src).into_iter().map(|d| d.rule).collect()
}

#[track_caller]
fn assert_trips(src: &str, rule: &str) {
    let rules = tripped(src);
    assert!(
        rules.iter().any(|r| r == rule),
        "expected {rule} to trip, got {rules:?} for:\n{src}"
    );
}

#[track_caller]
fn assert_clean(src: &str) {
    let diagnostics = lint(src);
    assert!(
        diagnostics.is_empty(),
        "expected no findings, got {diagnostics:?} for:\n{src}"
    );
}

// ---------------------------------------------------------------- unsafe

#[test]
fn unsafe_without_safety_comment_trips() {
    assert_trips(
        "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        "unsafe-needs-safety-comment",
    );
}

#[test]
fn unsafe_with_safety_comment_is_clean() {
    assert_clean(
        "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n",
    );
}

#[test]
fn safety_comment_covers_across_attribute_lines() {
    // The comment may be separated from the token by an attribute, as at the
    // real sites in rm-runtime.
    assert_clean(
        "// SAFETY: distinct participants touch distinct buckets.\n#[allow(unsafe_code)]\nunsafe impl Send for T {}\n",
    );
}

#[test]
fn the_word_unsafe_in_a_string_or_comment_is_not_a_site() {
    assert_clean("// this code is unsafe in spirit only\nlet x = \"unsafe { }\";\n");
}

#[test]
fn safety_comment_too_far_above_does_not_cover() {
    let src = format!(
        "// SAFETY: stale argument.\n{}unsafe fn g() {{}}\n",
        "let filler = 0;\n".repeat(7)
    );
    assert_trips(&src, "unsafe-needs-safety-comment");
}

#[test]
fn intrinsics_block_without_safety_comment_trips() {
    // The shape of an AVX2 kernel (rm-tensor simd.rs, rm-positioning
    // quant.rs) with the mandatory SAFETY comment left off the inner
    // intrinsics block: the declaration is covered, the block is not.
    assert_trips(
        concat!(
            "#[target_feature(enable = \"avx2\")]\n",
            "#[allow(unsafe_code)]\n",
            "// SAFETY: the `unsafe fn` contract is AVX2 availability.\n",
            "pub(crate) unsafe fn axpy(x: &[f64], y: &mut [f64]) {\n",
            "    debug_assert_eq!(x.len(), y.len());\n",
            "    let n = x.len().min(y.len());\n",
            "    let xp = x.as_ptr();\n",
            "    let yp = y.as_mut_ptr();\n",
            "    let mut i = 0usize;\n",
            "    let stride = 4usize;\n",
            "    let tail = n % stride;\n",
            "    unsafe { core::ptr::read(xp.add(i)) };\n",
            "}\n",
        ),
        "unsafe-needs-safety-comment",
    );
}

#[test]
fn intrinsics_kernel_with_both_safety_comments_is_clean() {
    // The real kernel shape: one SAFETY comment covering the `unsafe fn`
    // declaration (below the attributes, within the rule's window) and one
    // covering the inner intrinsics block.
    assert_clean(concat!(
        "#[target_feature(enable = \"avx2\")]\n",
        "#[allow(unsafe_code)]\n",
        "// SAFETY: the `unsafe fn` contract is AVX2 availability, checked\n",
        "// by the dispatcher before any call.\n",
        "pub(crate) unsafe fn axpy(x: &[f64], y: &mut [f64]) {\n",
        "    let xp = x.as_ptr();\n",
        "    // SAFETY: every offset is within the slice bounds; unaligned\n",
        "    // loads carry no alignment precondition.\n",
        "    unsafe { core::ptr::read(xp) };\n",
        "}\n",
    ));
}

// ---------------------------------------------------------------- env reads

#[test]
fn raw_env_read_trips() {
    assert_trips(
        "fn f() -> Option<String> { std::env::var(\"RM_SEED\").ok() }\n",
        "no-raw-env-read",
    );
    assert_trips(
        "fn f() { let _ = env::var_os(\"RM_POOL\"); }\n",
        "no-raw-env-read",
    );
}

#[test]
fn env_var_in_string_or_comment_is_clean() {
    assert_clean(
        "// std::env::var(\"RM_SEED\") would be wrong here\nlet msg = \"std::env::var\";\n",
    );
}

#[test]
fn env_read_with_justified_allow_is_clean() {
    assert_clean(
        "fn accessor() -> Option<String> {\n    // rm-lint: allow(no-raw-env-read): this IS the cached accessor for RM_FOO\n    std::env::var(\"RM_FOO\").ok()\n}\n",
    );
}

// ---------------------------------------------------------------- spawns

#[test]
fn thread_spawn_trips_outside_runtime() {
    assert_trips(
        "fn f() { std::thread::spawn(|| {}); }\n",
        "no-thread-spawn-outside-runtime",
    );
    assert_trips(
        "fn f() { std::thread::scope(|s| { let _ = s; }); }\n",
        "no-thread-spawn-outside-runtime",
    );
    assert_trips(
        "fn f() { let _ = std::thread::Builder::new(); }\n",
        "no-thread-spawn-outside-runtime",
    );
}

#[test]
fn thread_spawn_inside_runtime_crate_is_policy_exempt() {
    let diagnostics = lint_source(
        "crates/runtime/src/pool.rs",
        "fn f() { std::thread::spawn(|| {}); }\n",
    );
    assert!(diagnostics.is_empty(), "got {diagnostics:?}");
}

#[test]
fn yield_now_and_available_parallelism_are_not_spawns() {
    assert_clean(
        "fn f() { std::thread::yield_now(); let _ = std::thread::available_parallelism(); }\n",
    );
}

// ---------------------------------------------------------------- unordered

#[test]
fn hashmap_and_hashset_trip() {
    assert_trips("use std::collections::HashMap;\n", "no-unordered-iteration");
    assert_trips(
        "fn f() { let s: std::collections::HashSet<u32> = Default::default(); let _ = s; }\n",
        "no-unordered-iteration",
    );
}

#[test]
fn btree_collections_are_clean() {
    assert_clean("use std::collections::{BTreeMap, BTreeSet};\n");
}

#[test]
fn hashmap_in_doc_comment_is_clean() {
    assert_clean("/// Unlike a `HashMap`, iteration order here is stable.\nfn f() {}\n");
}

/// The shard-set near-miss from the live-venue pipeline: accumulating dirty
/// shard ids in a `HashSet` would make the recompute fan-out (and hence any
/// per-shard RNG stream consumption order) scheduling-dependent, so it must
/// trip; the sorted-`Vec` + `binary_search` idiom the ingest path actually
/// uses is clean.
#[test]
fn unordered_dirty_shard_set_trips_and_the_sorted_vec_idiom_is_clean() {
    assert_trips(
        concat!(
            "fn dirty_shards(assignments: &[usize]) -> Vec<usize> {\n",
            "    let mut dirty: std::collections::HashSet<usize> = Default::default();\n",
            "    for &shard in assignments {\n",
            "        dirty.insert(shard);\n",
            "    }\n",
            "    dirty.into_iter().collect()\n",
            "}\n",
        ),
        "no-unordered-iteration",
    );
    assert_clean(concat!(
        "fn dirty_shards(assignments: &[usize]) -> Vec<usize> {\n",
        "    let mut dirty: Vec<usize> = Vec::new();\n",
        "    for &shard in assignments {\n",
        "        if let Err(i) = dirty.binary_search(&shard) {\n",
        "            dirty.insert(i, shard);\n",
        "        }\n",
        "    }\n",
        "    dirty\n",
        "}\n",
    ));
}

// ---------------------------------------------------------------- wallclock

#[test]
fn instant_now_trips_in_deterministic_path() {
    assert_trips(
        "fn f() { let _t = std::time::Instant::now(); }\n",
        "no-wallclock-in-deterministic-path",
    );
    assert_trips(
        "fn f() { let _t = std::time::SystemTime::now(); }\n",
        "no-wallclock-in-deterministic-path",
    );
}

#[test]
fn instant_now_in_bench_crate_and_benches_dir_is_policy_exempt() {
    for path in [
        "crates/bench/src/bin/exp_table7_time_cost.rs",
        "crates/imputers/benches/bench_imputers.rs",
    ] {
        let diagnostics = lint_source(path, "fn f() { let _t = std::time::Instant::now(); }\n");
        assert!(diagnostics.is_empty(), "{path}: got {diagnostics:?}");
    }
}

#[test]
fn duration_and_instant_type_mentions_are_clean() {
    // Only the clock *reads* are banned; passing an Instant around is not.
    assert_clean(
        "use std::time::{Duration, Instant};\nfn f(t: Instant, d: Duration) -> Instant { t + d }\n",
    );
}

// ---------------------------------------------------------------- entropy

#[test]
fn entropy_rng_constructors_trip() {
    assert_trips(
        "fn f() { let _rng = StdRng::from_entropy(); }\n",
        "no-entropy-rng",
    );
    assert_trips(
        "fn f() { let _rng = rand::thread_rng(); }\n",
        "no-entropy-rng",
    );
    assert_trips("use rand::rngs::OsRng;\n", "no-entropy-rng");
}

#[test]
fn seeded_rng_is_clean() {
    assert_clean("fn f(seed: u64) {\n    let _rng = StdRng::seed_from_u64(seed);\n}\n");
}

// ---------------------------------------------------------------- matmul

#[test]
fn allocating_matmul_trips_only_in_hot_path_modules() {
    let hot = "// rm-lint: hot-path\nfn f(a: &Matrix, b: &Matrix) -> Matrix { a.matmul(b) }\n";
    assert_trips(hot, "prefer-matmul-into");
    // Same code without the marker: the rule does not apply.
    assert_clean("fn f(a: &Matrix, b: &Matrix) -> Matrix { a.matmul(b) }\n");
}

#[test]
fn matmul_into_and_definitions_are_clean_in_hot_path() {
    assert_clean(
        "// rm-lint: hot-path\nfn f(a: &Matrix, b: &Matrix, out: &mut Matrix) {\n    a.matmul_into(b, out);\n}\nimpl Matrix {\n    pub fn matmul(&self, rhs: &Matrix) -> Matrix { self.clone() }\n}\n",
    );
}

#[test]
fn workspace_matmul_and_ufcs_graph_matmul_are_clean_in_hot_path() {
    // The arena-era sanctioned spellings: `matmul_ws` checks its output out
    // of a caller-owned workspace, and UFCS `Var::matmul` is the live-graph
    // op (which must allocate a node). Neither is the banned allocating
    // kernel call.
    assert_clean(
        "// rm-lint: hot-path\nfn f(a: &Matrix, b: &Matrix, ws: &mut Workspace) -> Matrix {\n    a.matmul_ws(b, ws)\n}\nfn g(x: &Var, w: &Var) -> Var {\n    Var::matmul(w, x)\n}\n",
    );
}

#[test]
fn allocating_matmul_still_trips_beside_workspace_variants() {
    // A stray `.matmul(` is caught even when the surrounding code uses the
    // workspace API correctly.
    assert_trips(
        "// rm-lint: hot-path\nfn f(a: &Matrix, b: &Matrix, ws: &mut Workspace) -> Matrix {\n    let _scratch = a.matmul_ws(b, ws);\n    a.matmul(b)\n}\n",
        "prefer-matmul-into",
    );
}

// ------------------------------------------------------------ suppressions

#[test]
fn allow_covers_its_own_line_and_the_next() {
    assert_clean(
        "fn f() { let _ = std::env::var(\"X\"); } // rm-lint: allow(no-raw-env-read): fixture same-line\n",
    );
    assert_clean(
        "// rm-lint: allow(no-raw-env-read): fixture line-above\nfn f() { let _ = std::env::var(\"X\"); }\n",
    );
}

#[test]
fn allow_does_not_cover_two_lines_below() {
    let src = "// rm-lint: allow(no-raw-env-read): too far away\nfn f() {\n    let _ = std::env::var(\"X\");\n}\n";
    assert_trips(src, "no-raw-env-read");
}

#[test]
fn allow_without_justification_is_a_diagnostic_and_does_not_suppress() {
    let src = "// rm-lint: allow(no-raw-env-read)\nfn f() { let _ = std::env::var(\"X\"); }\n";
    let rules = tripped(src);
    assert!(
        rules.iter().any(|r| r == "lint-annotation"),
        "got {rules:?}"
    );
    assert!(
        rules.iter().any(|r| r == "no-raw-env-read"),
        "got {rules:?}"
    );
}

#[test]
fn allow_naming_unknown_rule_is_a_diagnostic() {
    let rules = tripped("// rm-lint: allow(no-such-rule): whatever\nfn f() {}\n");
    assert_eq!(rules, vec!["lint-annotation"]);
}

#[test]
fn allow_only_suppresses_its_named_rule() {
    // The allow names the wrong rule: the env read must still be reported.
    let src = "// rm-lint: allow(no-entropy-rng): wrong rule named\nfn f() { let _ = std::env::var(\"X\"); }\n";
    assert_trips(src, "no-raw-env-read");
}

#[test]
fn annotations_in_doc_comments_and_strings_are_inert() {
    // Documentation may show the syntax verbatim without creating (or
    // breaking) a suppression.
    assert_clean("/// Suppress with `rm-lint: allow(no-raw-env-read): why`.\nfn f() {}\n");
    assert_clean("fn f() { let _doc = \"rm-lint: allow(bogus)\"; }\n");
}

#[test]
fn diagnostics_carry_position_and_format() {
    let diagnostics = lint("fn f() {\n    let _ = std::env::var(\"X\");\n}\n");
    assert_eq!(diagnostics.len(), 1);
    let d = &diagnostics[0];
    assert_eq!((d.line, d.rule.as_str()), (2, "no-raw-env-read"));
    let rendered = d.to_string();
    assert!(
        rendered.starts_with("crates/fixture/src/lib.rs:2:"),
        "bad rendering: {rendered}"
    );
    assert!(
        rendered.contains(" no-raw-env-read: "),
        "bad rendering: {rendered}"
    );
}
