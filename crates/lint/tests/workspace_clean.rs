//! The workspace-clean assertion: `cargo test` fails if any crate violates a
//! determinism/concurrency invariant without a justified suppression — the
//! same check `cargo run -p rm-lint -- check` and the CI job perform.

#[test]
fn workspace_has_no_lint_findings() {
    let root = rm_lint::default_root();
    let diagnostics = rm_lint::lint_workspace(&root).expect("walk the workspace");
    assert!(
        diagnostics.is_empty(),
        "rm-lint found {} violation(s) — fix them or add a justified \
         `rm-lint: allow(rule): why` annotation:\n{}",
        diagnostics.len(),
        diagnostics
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_walk_covers_every_member_crate() {
    // Guards against the walker silently losing a directory: every workspace
    // member named in the root manifest must contribute at least one file.
    let root = rm_lint::default_root();
    let manifest = std::fs::read_to_string(root.join("Cargo.toml")).expect("read root manifest");
    let files = rm_lint::workspace_files(&root).expect("walk the workspace");
    let file_strs: Vec<String> = files
        .iter()
        .map(|f| f.to_string_lossy().replace('\\', "/"))
        .collect();
    for line in manifest.lines() {
        let line = line.trim().trim_matches(|c| c == '"' || c == ',');
        if let Some(member) = line.strip_prefix("crates/") {
            assert!(
                file_strs
                    .iter()
                    .any(|f| f.contains(&format!("crates/{member}/"))),
                "workspace member crates/{member} contributed no files to the lint walk"
            );
        }
    }
}
