//! Online location estimation and accuracy metrics (Section II-A and V-A).
//!
//! Given an imputed (dense) radio map, the online phase estimates a device's
//! location from its observed fingerprint. Three estimators from the paper are
//! provided:
//!
//! * [`Knn`] — mean of the `k` nearest fingerprints' reference points,
//! * [`Wknn`] — inverse-distance-weighted mean (the paper's best performer),
//! * [`RandomForest`] — a bagged CART regression forest.
//!
//! The [`metrics`] module implements APE, MAE and the RP Euclidean-distance
//! error used by the evaluation figures, and [`evaluate_estimator`] runs the
//! standard train/test protocol.

pub mod forest;
pub mod knn;
pub mod metrics;
pub mod quant;

pub use forest::{ForestConfig, RandomForest};
pub use knn::{knn_estimate, merge_candidates, wknn_estimate, Knn, KnnCandidate, Wknn};
pub use metrics::{
    average_positioning_error, error_percentile, mean_absolute_error, mean_rp_distance,
    root_mean_square_error,
};
pub use quant::{QuantizedFingerprints, RERANK_MARGIN};

use rm_geometry::Point;
use rm_radiomap::DenseRadioMap;

/// A fingerprint-based location estimator built over an imputed radio map.
///
/// Estimation is read-only (`&self`) and estimators hold plain data, so the
/// trait requires `Send + Sync`: a single estimator is shared by all workers
/// of the parallel query fan-out in [`evaluate_estimator_threads`], and a
/// serving process moves whole models (estimator included) between threads
/// when hot-swapping its `Arc`-held registry (`rm-serve`).
pub trait LocationEstimator: Send + Sync {
    /// Estimates the location of a device reporting `fingerprint` (a dense
    /// RSSI vector over the same AP set as the radio map). Returns `None` when
    /// the estimator has no usable training data.
    fn estimate(&self, fingerprint: &[f64]) -> Option<Point>;

    /// Human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}

/// Which location-estimation algorithm to use; mirrors the three columns of
/// Table VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Plain K-nearest neighbours.
    Knn,
    /// Weighted K-nearest neighbours.
    Wknn,
    /// Random-forest regression.
    RandomForest,
}

impl EstimatorKind {
    /// All estimator kinds, in the order of Table VI.
    pub fn all() -> [EstimatorKind; 3] {
        [
            EstimatorKind::Knn,
            EstimatorKind::Wknn,
            EstimatorKind::RandomForest,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EstimatorKind::Knn => "KNN",
            EstimatorKind::Wknn => "WKNN",
            EstimatorKind::RandomForest => "RF",
        }
    }

    /// Builds the estimator of this kind over `map`. `k` is the neighbour
    /// count for the KNN variants (the forest ignores it). Forest training
    /// fans out at the default thread width; use [`EstimatorKind::build_threads`]
    /// to bound it.
    pub fn build(self, map: DenseRadioMap, k: usize) -> Box<dyn LocationEstimator> {
        self.build_threads(map, k, 0)
    }

    /// [`EstimatorKind::build`] with an explicit thread count for the
    /// training-time fan-out (`0` = auto, `1` = serial; only the forest
    /// trains). The built estimator is bit-identical at any value.
    pub fn build_threads(
        self,
        map: DenseRadioMap,
        k: usize,
        threads: usize,
    ) -> Box<dyn LocationEstimator> {
        match self {
            EstimatorKind::Knn => Box::new(Knn::new(map, k)),
            EstimatorKind::Wknn => Box::new(Wknn::new(map, k)),
            EstimatorKind::RandomForest => Box::new(RandomForest::train(
                &map,
                &ForestConfig {
                    threads,
                    ..ForestConfig::default()
                },
            )),
        }
    }
}

/// One online test query: the device's fingerprint and its ground-truth
/// location.
#[derive(Debug, Clone, PartialEq)]
pub struct TestQuery {
    /// Dense fingerprint of the query.
    pub fingerprint: Vec<f64>,
    /// Ground-truth location.
    pub location: Point,
}

/// Minimum number of queries before [`evaluate_estimator_threads`] fans out;
/// below this the spawn overhead outweighs the per-query work.
const PARALLEL_QUERY_THRESHOLD: usize = 32;

/// Runs an estimator over a set of test queries and returns the average
/// positioning error in metres, evaluating the queries in parallel with the
/// default thread count (`RM_THREADS` override, else available parallelism).
/// Queries the estimator declines (returns `None`) are skipped; returns
/// `None` if no query could be answered.
pub fn evaluate_estimator(estimator: &dyn LocationEstimator, queries: &[TestQuery]) -> Option<f64> {
    evaluate_estimator_threads(estimator, queries, 0)
}

/// [`evaluate_estimator`] with an explicit thread count (`0` = auto, `1` =
/// serial). Each query is estimated independently and the per-query results
/// are collected in input order before the APE reduction, so the returned
/// error is bit-identical at any thread count.
pub fn evaluate_estimator_threads(
    estimator: &dyn LocationEstimator,
    queries: &[TestQuery],
    threads: usize,
) -> Option<f64> {
    let threads = if queries.len() < PARALLEL_QUERY_THRESHOLD {
        1
    } else {
        threads
    };
    let estimates =
        rm_runtime::par_map(threads, queries, |_, q| estimator.estimate(&q.fingerprint));
    let mut answered = Vec::new();
    let mut truths = Vec::new();
    for (estimate, q) in estimates.into_iter().zip(queries.iter()) {
        if let Some(est) = estimate {
            answered.push(est);
            truths.push(q.location);
        }
    }
    average_positioning_error(&answered, &truths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> DenseRadioMap {
        DenseRadioMap::new(
            vec![vec![-50.0, -90.0], vec![-90.0, -50.0], vec![-70.0, -70.0]],
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(5.0, 5.0),
            ],
            2,
        )
    }

    #[test]
    fn estimator_kind_builds_all_three() {
        for kind in EstimatorKind::all() {
            let estimator = kind.build(map(), 2);
            assert_eq!(estimator.name(), kind.name());
            assert!(estimator.estimate(&[-55.0, -85.0]).is_some());
        }
    }

    #[test]
    fn evaluate_estimator_computes_ape() {
        let estimator = EstimatorKind::Knn.build(map(), 1);
        let queries = vec![
            TestQuery {
                fingerprint: vec![-50.0, -90.0],
                location: Point::new(0.0, 0.0),
            },
            TestQuery {
                fingerprint: vec![-90.0, -50.0],
                location: Point::new(10.0, 2.0),
            },
        ];
        // First query exact (error 0), second off by 2 m vertically.
        let ape = evaluate_estimator(estimator.as_ref(), &queries).unwrap();
        assert!((ape - 1.0).abs() < 1e-9);
    }

    #[test]
    fn evaluate_estimator_with_no_queries_is_none() {
        let estimator = EstimatorKind::Wknn.build(map(), 3);
        assert_eq!(evaluate_estimator(estimator.as_ref(), &[]), None);
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_serial() {
        let estimator = EstimatorKind::Wknn.build(map(), 2);
        // Enough queries to clear PARALLEL_QUERY_THRESHOLD.
        let queries: Vec<TestQuery> = (0..100)
            .map(|i| TestQuery {
                fingerprint: vec![-50.0 - (i % 37) as f64, -90.0 + (i % 23) as f64],
                location: Point::new(i as f64 * 0.1, (i % 7) as f64),
            })
            .collect();
        let serial = evaluate_estimator_threads(estimator.as_ref(), &queries, 1).unwrap();
        for threads in [2, 4, 0] {
            let parallel =
                evaluate_estimator_threads(estimator.as_ref(), &queries, threads).unwrap();
            assert_eq!(serial.to_bits(), parallel.to_bits());
        }
    }
}
