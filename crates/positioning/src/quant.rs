//! Int8-quantized fingerprint distances for KNN candidate ranking.
//!
//! A serving-scale radio map is distance-bound: every online query scans all
//! stored fingerprints. This module shrinks that scan 8× in memory traffic
//! by quantizing the dense map once — a per-map affine int8 code
//! (`value ≈ min + (code + 128) · scale`, 255 levels over the map's RSSI
//! range) — and ranking candidates with an i32-accumulating squared-distance
//! kernel over the codes. The affine offset cancels in differences, so the
//! quantized squared distance is `(‖â − b̂‖₂ / scale)²` of the dequantized
//! vectors: a faithful, monotone-up-to-ε proxy for the f64 distance.
//!
//! Ranking is approximate, estimates are not: the estimators select a
//! slightly widened candidate window by quantized distance and then re-rank
//! those candidates with the **exact f64** Euclidean distance, so the final
//! neighbour distances (and the KNN/WKNN weights computed from them) carry
//! no quantization error. The quality guarantee is proptest-checked in
//! `tests/proptest_positioning.rs`: every returned neighbour's exact
//! distance is within [`QuantizedFingerprints::distance_slack`] of the true
//! k-th smallest.
//!
//! Unlike the float kernels in `rm_tensor::simd`, both int8 kernel variants
//! are exact integer arithmetic, so the AVX2 path is **bit-identical** to
//! the scalar path by construction — `RM_SIMD=0` (the same knob as the float
//! kernels) still forces the scalar reference, making the equivalence
//! checkable.

// rm-lint: hot-path

use rm_radiomap::DenseRadioMap;

/// Quantized squared distances overflow i32 only past this many APs
/// (`i32::MAX / 255² ≈ 33 025`); real venues have tens to hundreds.
const MAX_QUANTIZED_APS: usize = 32_768;

/// How many candidates beyond `k` the quantized ranking hands to the exact
/// f64 re-rank. Quantization can swap near-tied neighbours across the cut;
/// widening the window by a few slots lets the exact re-rank restore the
/// true order at the boundary for all but adversarially dense ties, at the
/// cost of a handful of extra f64 distance evaluations per query.
pub const RERANK_MARGIN: usize = 8;

/// A dense radio map's fingerprints in per-map affine int8 codes, plus the
/// parameters needed to quantize queries against the same grid.
#[derive(Debug, Clone)]
pub struct QuantizedFingerprints {
    /// Row-major codes, `len × num_aps`.
    codes: Vec<i8>,
    num_aps: usize,
    len: usize,
    /// Smallest RSSI in the map (code −128).
    min: f64,
    /// Dequantization step; strictly positive even for constant maps.
    scale: f64,
}

impl QuantizedFingerprints {
    /// Quantizes every fingerprint of `map` onto a 255-level affine grid
    /// spanning the map's own value range.
    ///
    /// # Panics
    /// If the map has more than 32 768 APs (the i32 accumulator bound) or a
    /// non-finite fingerprint value.
    pub fn from_map(map: &DenseRadioMap) -> Self {
        let num_aps = map.num_aps();
        assert!(
            num_aps <= MAX_QUANTIZED_APS,
            "int8 distance accumulator supports at most {MAX_QUANTIZED_APS} APs, got {num_aps}"
        );
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for row in map.fingerprints() {
            for &v in row {
                assert!(v.is_finite(), "cannot quantize non-finite RSSI {v}");
                min = min.min(v);
                max = max.max(v);
            }
        }
        if !min.is_finite() {
            // Empty map: any grid works, nothing will be scanned.
            (min, max) = (0.0, 0.0);
        }
        // 255 levels over the range; a degenerate (constant) map keeps a
        // positive scale so dequantization stays well-defined.
        let scale = if max > min { (max - min) / 255.0 } else { 1.0 };
        let mut codes = Vec::with_capacity(map.len() * num_aps);
        for row in map.fingerprints() {
            for &v in row {
                codes.push(Self::encode(v, min, scale));
            }
        }
        Self {
            codes,
            num_aps,
            len: map.len(),
            min,
            scale,
        }
    }

    /// One value onto the grid: round to the nearest level, clamp to the
    /// representable range (map values never clamp by construction; query
    /// values outside the map's range do).
    fn encode(v: f64, min: f64, scale: f64) -> i8 {
        let level = ((v - min) / scale).round().clamp(0.0, 255.0);
        (level as i16 - 128) as i8
    }

    /// Quantizes an online query fingerprint onto the map's grid.
    pub fn encode_query(&self, fingerprint: &[f64]) -> Vec<i8> {
        fingerprint
            .iter()
            .map(|&v| Self::encode(v, self.min, self.scale))
            .collect()
    }

    /// Resident bytes of the quantized codes (the f64 fingerprints they
    /// stand in for during ranking take 8× this).
    pub fn resident_bytes(&self) -> usize {
        self.codes.len() * std::mem::size_of::<i8>()
    }

    /// Number of fingerprints.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no fingerprints are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The quantized squared distance of the query against every stored
    /// fingerprint, in record order. Integer arithmetic end to end, so the
    /// result is bit-identical regardless of which kernel variant runs.
    #[allow(unsafe_code)] // dispatch into the runtime-detected AVX2 kernel
    pub fn squared_distances(&self, query: &[i8]) -> Vec<i32> {
        assert_eq!(query.len(), self.num_aps, "query arity mismatch");
        let mut out = Vec::with_capacity(self.len);
        #[cfg(target_arch = "x86_64")]
        {
            if rm_tensor::simd_enabled() && avx2_available() {
                // SAFETY: AVX2 availability was just checked at runtime,
                // which is the `unsafe fn`'s only contract.
                unsafe { squared_distances_avx2(&self.codes, query, self.num_aps, &mut out) };
                return out;
            }
        }
        squared_distances_scalar(&self.codes, query, self.num_aps, &mut out);
        out
    }

    /// Exact distance of one dequantized value from its source: at most half
    /// a grid step per element (for in-range values).
    fn per_element_error(&self) -> f64 {
        self.scale / 2.0
    }

    /// Bound on how much a neighbour returned by quantized ranking + exact
    /// re-rank can exceed the true k-th smallest Euclidean distance, for
    /// queries within the map's value range: each of the two vectors
    /// dequantizes within `(scale/2)·√num_aps` of its source (ℓ₂ from the
    /// per-element ℓ∞ bound), the ranking metric is the dequantized
    /// distance, and the selection argument pays that gap twice.
    pub fn distance_slack(&self) -> f64 {
        2.0 * 2.0 * self.per_element_error() * (self.num_aps as f64).sqrt()
    }
}

/// Runtime AVX2 support, detected once per process (same pattern as
/// `rm_tensor::simd`).
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| is_x86_feature_detected!("avx2"))
}

/// Scalar reference: i32-accumulated squared differences, one row at a time.
/// This is the semantics both kernel variants must produce bit-for-bit.
fn squared_distances_scalar(codes: &[i8], query: &[i8], num_aps: usize, out: &mut Vec<i32>) {
    for row in codes.chunks_exact(num_aps.max(1)) {
        let mut acc = 0i32;
        for (&a, &b) in row.iter().zip(query.iter()) {
            let d = i32::from(a) - i32::from(b);
            acc += d * d;
        }
        out.push(acc);
    }
}

/// AVX2 kernel: 16 codes per iteration, widened i8→i16, differenced, and
/// pair-summed into 8 i32 lanes by `_mm256_madd_epi16`. Every step is exact
/// integer arithmetic (|diff| ≤ 255, so diff² ≤ 65 025 and a lane holds at
/// most `2 · 65 025` per madd; the row total is asserted ≤ i32::MAX via the
/// AP-count bound at quantization time) — bit-identical to the scalar
/// reference by construction.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
// SAFETY: the `unsafe fn` contract is AVX2 availability (checked by the
// caller); every pointer below is derived from the row/query slices and
// offset strictly within their bounds.
unsafe fn squared_distances_avx2(codes: &[i8], query: &[i8], num_aps: usize, out: &mut Vec<i32>) {
    use std::arch::x86_64::{
        _mm256_add_epi32, _mm256_castsi256_si128, _mm256_cvtepi8_epi16, _mm256_extracti128_si256,
        _mm256_madd_epi16, _mm256_setzero_si256, _mm256_sub_epi16, _mm_add_epi32,
        _mm_cvtsi128_si32, _mm_loadu_si128, _mm_shuffle_epi32,
    };
    let n = num_aps;
    let qp = query.as_ptr();
    for row in codes.chunks_exact(n.max(1)) {
        let rp = row.as_ptr();
        // SAFETY: all offsets are < n ≤ both the row and query lengths;
        // unaligned loads are used throughout, so no alignment precondition.
        let acc = unsafe {
            let mut acc = _mm256_setzero_si256();
            let mut i = 0usize;
            while i + 16 <= n {
                let a = _mm256_cvtepi8_epi16(_mm_loadu_si128(rp.add(i).cast()));
                let b = _mm256_cvtepi8_epi16(_mm_loadu_si128(qp.add(i).cast()));
                let d = _mm256_sub_epi16(a, b);
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d, d));
                i += 16;
            }
            // Horizontal sum of the 8 i32 lanes, then the scalar tail.
            let lo = _mm256_castsi256_si128(acc);
            let hi = _mm256_extracti128_si256(acc, 1);
            let s = _mm_add_epi32(lo, hi);
            let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
            let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
            let mut total = _mm_cvtsi128_si32(s);
            while i < n {
                let d = i32::from(*rp.add(i)) - i32::from(*qp.add(i));
                total += d * d;
                i += 1;
            }
            total
        };
        out.push(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_geometry::Point;

    fn map(rows: Vec<Vec<f64>>) -> DenseRadioMap {
        let n = rows.first().map(Vec::len).unwrap_or(0);
        let locations = (0..rows.len()).map(|i| Point::new(i as f64, 0.0)).collect();
        DenseRadioMap::new(rows, locations, n)
    }

    #[test]
    fn codes_dequantize_within_half_a_step() {
        let m = map(vec![vec![-50.0, -73.5, -90.0], vec![-61.2, -88.8, -55.1]]);
        let q = QuantizedFingerprints::from_map(&m);
        for (row, codes) in m.fingerprints().iter().zip(q.codes.chunks_exact(3)) {
            for (&v, &c) in row.iter().zip(codes.iter()) {
                let dequant = q.min + (f64::from(c) + 128.0) * q.scale;
                assert!(
                    (dequant - v).abs() <= q.per_element_error() + 1e-12,
                    "{v} dequantized to {dequant}"
                );
            }
        }
        assert_eq!(q.resident_bytes(), 6);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn query_values_outside_the_map_range_clamp() {
        let m = map(vec![vec![-50.0, -90.0]]);
        let q = QuantizedFingerprints::from_map(&m);
        let codes = q.encode_query(&[-30.0, -120.0]);
        assert_eq!(codes, vec![127, -128]);
    }

    #[test]
    fn constant_map_has_positive_scale_and_zero_distances() {
        let m = map(vec![vec![-70.0, -70.0], vec![-70.0, -70.0]]);
        let q = QuantizedFingerprints::from_map(&m);
        assert!(q.scale > 0.0);
        let query = q.encode_query(&[-70.0, -70.0]);
        assert_eq!(q.squared_distances(&query), vec![0, 0]);
    }

    #[test]
    fn empty_map_scans_to_nothing() {
        let q = QuantizedFingerprints::from_map(&map(vec![]));
        assert!(q.is_empty());
        assert_eq!(q.squared_distances(&[]).len(), 0);
    }

    /// The dispatched kernel (AVX2 on capable hosts unless `RM_SIMD=0`) must
    /// agree with the scalar reference exactly — integers carry no rounding,
    /// so this is equality, not epsilon. Row lengths straddle the 16-lane
    /// vector width to cover both the vector body and the scalar tail.
    #[test]
    fn dispatched_kernel_matches_scalar_reference_exactly() {
        for num_aps in [1usize, 3, 15, 16, 17, 31, 32, 47] {
            let rows: Vec<Vec<f64>> = (0..5)
                .map(|r| {
                    (0..num_aps)
                        .map(|a| -40.0 - ((r * 31 + a * 17) % 60) as f64)
                        .collect()
                })
                .collect();
            let m = map(rows);
            let q = QuantizedFingerprints::from_map(&m);
            let query: Vec<f64> = (0..num_aps)
                .map(|a| -45.0 - ((a * 13) % 55) as f64)
                .collect();
            let encoded = q.encode_query(&query);
            let dispatched = q.squared_distances(&encoded);
            let mut reference = Vec::new();
            squared_distances_scalar(&q.codes, &encoded, q.num_aps, &mut reference);
            assert_eq!(dispatched, reference, "kernel mismatch at {num_aps} APs");
        }
    }
}
