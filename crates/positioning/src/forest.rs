//! Random-forest regression for location estimation.
//!
//! The paper's third online location-estimation algorithm (`RF`) trains a
//! random-forest regressor on the imputed radio map, with fingerprints as
//! features and reference points as (2D) regression targets. This module
//! implements CART regression trees with bagging and random feature subsets.

use std::cmp::Ordering;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rm_geometry::Point;
use rm_radiomap::DenseRadioMap;

use crate::LocationEstimator;

/// Configuration of the random forest.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub num_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum number of samples required to split a node.
    pub min_samples_split: usize,
    /// Number of candidate features examined per split; `None` uses √D.
    pub features_per_split: Option<usize>,
    /// RNG seed. Each tree trains on its own RNG stream derived as
    /// `rm_runtime::derive_seed(seed, tree_index)`, so the forest is a pure
    /// function of `(map, config)` — independent of `threads`.
    pub seed: u64,
    /// Worker threads for tree training (`0` = auto via `RM_THREADS`/
    /// available parallelism, `1` = serial). Trees are collected in index
    /// order and each consumes only its own derived RNG stream, so the
    /// trained forest is **bit-identical at any value** — parallelism is
    /// purely a wall-clock knob.
    pub threads: usize,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            num_trees: 20,
            max_depth: 12,
            min_samples_split: 4,
            features_per_split: None,
            seed: 17,
            threads: 0,
        }
    }
}

/// A node of a regression tree.
enum Node {
    Leaf {
        prediction: Point,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, fingerprint: &[f64]) -> Point {
        match self {
            Node::Leaf { prediction } => *prediction,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if fingerprint[*feature] <= *threshold {
                    left.predict(fingerprint)
                } else {
                    right.predict(fingerprint)
                }
            }
        }
    }

    /// Number of split levels along the deepest path (a single leaf is depth 0).
    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

/// A random forest of 2D regression trees predicting `(x, y)` locations from
/// dense fingerprints.
pub struct RandomForest {
    trees: Vec<Node>,
    num_features: usize,
}

impl RandomForest {
    /// Trains the forest on an imputed radio map, fanning the trees out
    /// [`ForestConfig::threads`]-wide over the persistent `rm_runtime` pool.
    ///
    /// Tree `t` seeds its own `StdRng` from
    /// `rm_runtime::derive_seed(config.seed, t)` and draws its bootstrap
    /// sample and split candidates from that stream alone; the trained trees
    /// are collected in index order. Training is therefore bit-identical at
    /// any thread count (and to serial execution) — asserted by the
    /// workspace determinism suite.
    pub fn train(map: &DenseRadioMap, config: &ForestConfig) -> Self {
        let n = map.len();
        let num_features = map.num_aps();
        if n == 0 {
            return Self {
                trees: Vec::new(),
                num_features,
            };
        }
        let features_per_split = config
            .features_per_split
            .unwrap_or_else(|| ((num_features as f64).sqrt().ceil() as usize).max(1));
        let trees = rm_runtime::par_indices(config.threads, config.num_trees, |t| {
            let mut rng = StdRng::seed_from_u64(rm_runtime::derive_seed(config.seed, t as u64));
            // Bootstrap sample.
            let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            build_tree(map, &indices, 0, config, features_per_split, &mut rng)
        });
        Self {
            trees,
            num_features,
        }
    }

    /// Number of trained trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Maximum depth over all trees (useful for tests).
    pub fn max_depth(&self) -> usize {
        self.trees.iter().map(Node::depth).max().unwrap_or(0)
    }
}

impl LocationEstimator for RandomForest {
    fn estimate(&self, fingerprint: &[f64]) -> Option<Point> {
        if self.trees.is_empty() || fingerprint.len() != self.num_features {
            return None;
        }
        let sum = self
            .trees
            .iter()
            .fold(Point::origin(), |acc, t| acc + t.predict(fingerprint));
        Some(sum / self.trees.len() as f64)
    }

    fn name(&self) -> &'static str {
        "RF"
    }
}

/// Mean location of a set of samples.
fn mean_location(map: &DenseRadioMap, indices: &[usize]) -> Point {
    if indices.is_empty() {
        return Point::origin();
    }
    let sum = indices
        .iter()
        .fold(Point::origin(), |acc, &i| acc + map.locations()[i]);
    sum / indices.len() as f64
}

/// Sum of squared distances of the samples' locations to their mean — the
/// variance criterion minimised by the splits.
fn location_sse(map: &DenseRadioMap, indices: &[usize]) -> f64 {
    let mean = mean_location(map, indices);
    indices
        .iter()
        .map(|&i| map.locations()[i].distance_squared(mean))
        .sum()
}

fn build_tree(
    map: &DenseRadioMap,
    indices: &[usize],
    depth: usize,
    config: &ForestConfig,
    features_per_split: usize,
    rng: &mut StdRng,
) -> Node {
    if depth >= config.max_depth
        || indices.len() < config.min_samples_split
        || location_sse(map, indices) < 1e-9
    {
        return Node::Leaf {
            prediction: mean_location(map, indices),
        };
    }

    let num_features = map.num_aps();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
    for _ in 0..features_per_split {
        let feature = rng.gen_range(0..num_features);
        // Candidate thresholds: a few random midpoints between observed values.
        let mut values: Vec<f64> = indices
            .iter()
            .map(|&i| map.fingerprints()[i][feature])
            .collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        for _ in 0..3 {
            let pos = rng.gen_range(0..values.len() - 1);
            let threshold = (values[pos] + values[pos + 1]) / 2.0;
            let (left, right): (Vec<usize>, Vec<usize>) = indices
                .iter()
                .partition(|&&i| map.fingerprints()[i][feature] <= threshold);
            if left.is_empty() || right.is_empty() {
                continue;
            }
            let score = location_sse(map, &left) + location_sse(map, &right);
            if best.map(|(_, _, s)| score < s).unwrap_or(true) {
                best = Some((feature, threshold, score));
            }
        }
    }

    let Some((feature, threshold, _)) = best else {
        return Node::Leaf {
            prediction: mean_location(map, indices),
        };
    };
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
        .iter()
        .partition(|&&i| map.fingerprints()[i][feature] <= threshold);
    if left_idx.is_empty() || right_idx.is_empty() {
        return Node::Leaf {
            prediction: mean_location(map, indices),
        };
    }
    Node::Split {
        feature,
        threshold,
        left: Box::new(build_tree(
            map,
            &left_idx,
            depth + 1,
            config,
            features_per_split,
            rng,
        )),
        right: Box::new(build_tree(
            map,
            &right_idx,
            depth + 1,
            config,
            features_per_split,
            rng,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic map where the first feature linearly encodes x and the
    /// second encodes y — easily learnable by a regression forest.
    fn learnable_map(n: usize) -> DenseRadioMap {
        let mut fingerprints = Vec::new();
        let mut locations = Vec::new();
        for i in 0..n {
            let x = (i % 10) as f64;
            let y = (i / 10) as f64;
            fingerprints.push(vec![-50.0 - x * 4.0, -50.0 - y * 4.0, -75.0]);
            locations.push(Point::new(x, y));
        }
        DenseRadioMap::new(fingerprints, locations, 3)
    }

    #[test]
    fn forest_learns_a_linear_mapping() {
        let map = learnable_map(100);
        let forest = RandomForest::train(&map, &ForestConfig::default());
        assert_eq!(forest.num_trees(), 20);
        let mut total_error = 0.0;
        for i in 0..100 {
            let (f, loc) = map.entry(i);
            let est = forest.estimate(f).unwrap();
            total_error += est.distance(loc);
        }
        let mean_error = total_error / 100.0;
        assert!(
            mean_error < 2.0,
            "mean training error {mean_error} too high"
        );
    }

    #[test]
    fn forest_respects_max_depth() {
        let map = learnable_map(60);
        let config = ForestConfig {
            max_depth: 3,
            ..ForestConfig::default()
        };
        let forest = RandomForest::train(&map, &config);
        assert!(forest.max_depth() <= 3);
    }

    #[test]
    fn forest_on_empty_map_returns_none() {
        let empty = DenseRadioMap::new(vec![], vec![], 3);
        let forest = RandomForest::train(&empty, &ForestConfig::default());
        assert!(forest.estimate(&[-60.0, -60.0, -60.0]).is_none());
    }

    #[test]
    fn forest_rejects_wrong_feature_count() {
        let map = learnable_map(30);
        let forest = RandomForest::train(&map, &ForestConfig::default());
        assert!(forest.estimate(&[-60.0]).is_none());
        assert_eq!(forest.name(), "RF");
    }

    #[test]
    fn forest_is_deterministic_per_seed() {
        let map = learnable_map(50);
        let a = RandomForest::train(&map, &ForestConfig::default());
        let b = RandomForest::train(&map, &ForestConfig::default());
        let q = vec![-58.0, -62.0, -75.0];
        assert_eq!(a.estimate(&q), b.estimate(&q));
    }

    #[test]
    fn forest_training_is_bit_identical_across_thread_counts() {
        let map = learnable_map(60);
        let train = |threads| {
            RandomForest::train(
                &map,
                &ForestConfig {
                    threads,
                    ..ForestConfig::default()
                },
            )
        };
        let serial = train(1);
        let queries: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![-50.0 - i as f64, -60.0 - i as f64 * 0.5, -75.0])
            .collect();
        for threads in [2, 4, 0] {
            let parallel = train(threads);
            assert_eq!(parallel.num_trees(), serial.num_trees());
            for q in &queries {
                let a = serial.estimate(q).unwrap();
                let b = parallel.estimate(q).unwrap();
                assert_eq!(a.x.to_bits(), b.x.to_bits());
                assert_eq!(a.y.to_bits(), b.y.to_bits());
            }
        }
    }

    #[test]
    fn single_sample_map_predicts_that_location() {
        let map = DenseRadioMap::new(vec![vec![-50.0, -60.0]], vec![Point::new(3.0, 4.0)], 2);
        let forest = RandomForest::train(&map, &ForestConfig::default());
        let est = forest.estimate(&[-50.0, -60.0]).unwrap();
        assert_eq!(est, Point::new(3.0, 4.0));
    }
}
