//! KNN and weighted-KNN location estimation.

use std::cmp::Ordering;

use rm_geometry::Point;
use rm_radiomap::DenseRadioMap;

use crate::LocationEstimator;

/// K-nearest-neighbour location estimation: the estimated location is the mean
/// of the reference points of the `k` radio-map fingerprints closest (in
/// Euclidean RSSI space) to the online fingerprint.
#[derive(Debug, Clone)]
pub struct Knn {
    map: DenseRadioMap,
    k: usize,
}

impl Knn {
    /// Builds a KNN estimator over an imputed radio map. The paper uses
    /// `k = 3` for both KNN and WKNN-style estimators.
    pub fn new(map: DenseRadioMap, k: usize) -> Self {
        Self { map, k: k.max(1) }
    }

    /// The `k` nearest entries as `(distance, location)` pairs, sorted by
    /// increasing distance.
    fn nearest(&self, fingerprint: &[f64]) -> Vec<(f64, Point)> {
        let mut scored: Vec<(f64, Point)> = self
            .map
            .fingerprints()
            .iter()
            .zip(self.map.locations().iter())
            .map(|(f, &loc)| (euclidean(fingerprint, f), loc))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(Ordering::Equal));
        scored.truncate(self.k);
        scored
    }
}

impl LocationEstimator for Knn {
    fn estimate(&self, fingerprint: &[f64]) -> Option<Point> {
        let nearest = self.nearest(fingerprint);
        if nearest.is_empty() {
            return None;
        }
        let sum = nearest.iter().fold(Point::origin(), |acc, &(_, p)| acc + p);
        Some(sum / nearest.len() as f64)
    }

    fn name(&self) -> &'static str {
        "KNN"
    }
}

/// Weighted KNN: like [`Knn`] but the neighbours' reference points are averaged
/// with weights inversely proportional to their fingerprint distance.
#[derive(Debug, Clone)]
pub struct Wknn {
    knn: Knn,
}

impl Wknn {
    /// Builds a WKNN estimator over an imputed radio map.
    pub fn new(map: DenseRadioMap, k: usize) -> Self {
        Self {
            knn: Knn::new(map, k),
        }
    }
}

impl LocationEstimator for Wknn {
    fn estimate(&self, fingerprint: &[f64]) -> Option<Point> {
        let nearest = self.knn.nearest(fingerprint);
        if nearest.is_empty() {
            return None;
        }
        let mut weight_sum = 0.0;
        let mut acc = Point::origin();
        for &(d, p) in &nearest {
            let w = 1.0 / (d + 1e-6);
            weight_sum += w;
            acc = acc + p * w;
        }
        Some(acc / weight_sum)
    }

    fn name(&self) -> &'static str {
        "WKNN"
    }
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three fingerprints at distinct locations; fingerprints are orthogonal so
    /// the nearest neighbour is unambiguous.
    fn map() -> DenseRadioMap {
        DenseRadioMap::new(
            vec![
                vec![-50.0, -90.0, -90.0],
                vec![-90.0, -50.0, -90.0],
                vec![-90.0, -90.0, -50.0],
            ],
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(0.0, 10.0),
            ],
            3,
        )
    }

    #[test]
    fn knn_with_k1_returns_exact_match_location() {
        let knn = Knn::new(map(), 1);
        let est = knn.estimate(&[-50.0, -90.0, -90.0]).unwrap();
        assert_eq!(est, Point::new(0.0, 0.0));
        assert_eq!(knn.name(), "KNN");
    }

    #[test]
    fn knn_with_k3_returns_mean_of_all() {
        let knn = Knn::new(map(), 3);
        let est = knn.estimate(&[-70.0, -70.0, -70.0]).unwrap();
        assert!((est.x - 10.0 / 3.0).abs() < 1e-9);
        assert!((est.y - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn wknn_weights_towards_the_closest_fingerprint() {
        let wknn = Wknn::new(map(), 3);
        // A query close to fingerprint 0 but not identical.
        let est = wknn.estimate(&[-52.0, -88.0, -90.0]).unwrap();
        // The estimate must be pulled towards (0,0) compared to the unweighted mean.
        assert!(est.x < 10.0 / 3.0);
        assert!(est.y < 10.0 / 3.0);
        assert_eq!(wknn.name(), "WKNN");
    }

    #[test]
    fn wknn_exact_match_dominates() {
        let wknn = Wknn::new(map(), 3);
        let est = wknn.estimate(&[-90.0, -50.0, -90.0]).unwrap();
        assert!(est.distance(Point::new(10.0, 0.0)) < 0.1);
    }

    #[test]
    fn k_larger_than_map_uses_all_entries() {
        let knn = Knn::new(map(), 100);
        assert!(knn.estimate(&[-60.0, -60.0, -60.0]).is_some());
    }

    #[test]
    fn empty_map_returns_none() {
        let empty = DenseRadioMap::new(vec![], vec![], 3);
        assert!(Knn::new(empty.clone(), 3)
            .estimate(&[-50.0, -50.0, -50.0])
            .is_none());
        assert!(Wknn::new(empty, 3)
            .estimate(&[-50.0, -50.0, -50.0])
            .is_none());
    }
}
