//! KNN and weighted-KNN location estimation.
//!
//! Candidate ranking runs on the int8-quantized fingerprints
//! ([`QuantizedFingerprints`]) — an 8×-smaller scan with exact integer
//! arithmetic — and the top `k + RERANK_MARGIN` candidates are re-ranked
//! with the exact f64 Euclidean distance, so the neighbour distances the
//! estimators consume carry no quantization error.

// rm-lint: hot-path

use std::cmp::Ordering;

use rm_geometry::Point;
use rm_radiomap::DenseRadioMap;

use crate::quant::{QuantizedFingerprints, RERANK_MARGIN};
use crate::LocationEstimator;

/// One ranked KNN candidate: the exact f64 fingerprint distance, the record's
/// index within the ranking map, and its reference point. The index space is
/// the caller's map — shard-local for a per-shard scan; the sharded serving
/// layer rewrites it to the global record index before merging shards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnCandidate {
    /// Exact f64 Euclidean distance between query and record fingerprint.
    pub distance: f64,
    /// Record index within the map the candidate was ranked against.
    pub index: u32,
    /// The record's reference point.
    pub location: Point,
}

/// Merges candidate lists from independent scans (e.g. one per spatial shard,
/// with indices rewritten to the global record space) into the overall top-`k`,
/// replicating the whole-map scan's order exactly: ascending exact distance,
/// ties broken by ascending index. Because each per-shard list holds that
/// shard's true top-`k`, the merged list equals the whole-map top-`k` — the
/// cross-shard re-rank that makes sharded serving answer like whole-venue
/// serving.
pub fn merge_candidates(k: usize, mut candidates: Vec<KnnCandidate>) -> Vec<KnnCandidate> {
    candidates.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(Ordering::Equal)
            .then(a.index.cmp(&b.index))
    });
    candidates.truncate(k.max(1));
    candidates
}

/// Folds ranked neighbours into the unweighted KNN estimate (mean of the
/// reference points, in rank order). Extracted so the sharded serving path
/// applies bit-identical arithmetic to merged cross-shard candidates.
pub fn knn_estimate(neighbours: &[KnnCandidate]) -> Option<Point> {
    if neighbours.is_empty() {
        return None;
    }
    let sum = neighbours
        .iter()
        .fold(Point::origin(), |acc, c| acc + c.location);
    Some(sum / neighbours.len() as f64)
}

/// Folds ranked neighbours into the inverse-distance-weighted WKNN estimate,
/// in rank order (see [`knn_estimate`] for why this is a free function).
pub fn wknn_estimate(neighbours: &[KnnCandidate]) -> Option<Point> {
    if neighbours.is_empty() {
        return None;
    }
    let mut weight_sum = 0.0;
    let mut acc = Point::origin();
    for c in neighbours {
        let w = 1.0 / (c.distance + 1e-6);
        weight_sum += w;
        acc = acc + c.location * w;
    }
    Some(acc / weight_sum)
}

/// K-nearest-neighbour location estimation: the estimated location is the mean
/// of the reference points of the `k` radio-map fingerprints closest (in
/// Euclidean RSSI space) to the online fingerprint.
#[derive(Debug, Clone)]
pub struct Knn {
    map: DenseRadioMap,
    quantized: QuantizedFingerprints,
    k: usize,
}

impl Knn {
    /// Builds a KNN estimator over an imputed radio map, quantizing its
    /// fingerprints once for the int8 ranking scan. The paper uses `k = 3`
    /// for both KNN and WKNN-style estimators.
    pub fn new(map: DenseRadioMap, k: usize) -> Self {
        let quantized = QuantizedFingerprints::from_map(&map);
        Self {
            map,
            quantized,
            k: k.max(1),
        }
    }

    /// The neighbour count `k` this estimator ranks with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The `k` nearest entries as ranked [`KnnCandidate`]s, sorted by
    /// increasing exact f64 distance (ties broken by record index, like the
    /// full scan's stable sort).
    ///
    /// Ranking is two-phase: the int8 kernel scores every record, the
    /// `k + RERANK_MARGIN` best quantized candidates are selected, and those
    /// are re-ranked exactly. Both phases break ties by record index and the
    /// int8 kernel is bit-identical across its variants, so the result is a
    /// pure function of `(map, fingerprint, k)`. Public so the sharded
    /// serving layer can merge per-shard candidates into a venue-wide
    /// top-`k` ([`merge_candidates`]).
    pub fn candidates(&self, fingerprint: &[f64]) -> Vec<KnnCandidate> {
        let n = self.map.len();
        if n == 0 {
            return Vec::new();
        }
        let window = (self.k + RERANK_MARGIN).min(n);
        let query = self.quantized.encode_query(fingerprint);
        let mut scored: Vec<(i32, u32)> = self
            .quantized
            .squared_distances(&query)
            .into_iter()
            .zip(0u32..)
            .collect();
        if window < n {
            scored.select_nth_unstable(window - 1);
            scored.truncate(window);
        }
        let mut exact: Vec<(f64, u32)> = scored
            .into_iter()
            .map(|(_, i)| {
                (
                    euclidean(fingerprint, &self.map.fingerprints()[i as usize]),
                    i,
                )
            })
            .collect();
        exact.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        exact.truncate(self.k);
        exact
            .into_iter()
            .map(|(distance, i)| KnnCandidate {
                distance,
                index: i,
                location: self.map.locations()[i as usize],
            })
            .collect()
    }
}

impl LocationEstimator for Knn {
    fn estimate(&self, fingerprint: &[f64]) -> Option<Point> {
        knn_estimate(&self.candidates(fingerprint))
    }

    fn name(&self) -> &'static str {
        "KNN"
    }
}

/// Weighted KNN: like [`Knn`] but the neighbours' reference points are averaged
/// with weights inversely proportional to their fingerprint distance.
#[derive(Debug, Clone)]
pub struct Wknn {
    knn: Knn,
}

impl Wknn {
    /// Builds a WKNN estimator over an imputed radio map.
    pub fn new(map: DenseRadioMap, k: usize) -> Self {
        Self {
            knn: Knn::new(map, k),
        }
    }

    /// The underlying ranking core (candidate generation is identical to
    /// [`Knn`]; only the fold differs).
    pub fn inner(&self) -> &Knn {
        &self.knn
    }
}

impl LocationEstimator for Wknn {
    fn estimate(&self, fingerprint: &[f64]) -> Option<Point> {
        wknn_estimate(&self.knn.candidates(fingerprint))
    }

    fn name(&self) -> &'static str {
        "WKNN"
    }
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three fingerprints at distinct locations; fingerprints are orthogonal so
    /// the nearest neighbour is unambiguous.
    fn map() -> DenseRadioMap {
        DenseRadioMap::new(
            vec![
                vec![-50.0, -90.0, -90.0],
                vec![-90.0, -50.0, -90.0],
                vec![-90.0, -90.0, -50.0],
            ],
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(0.0, 10.0),
            ],
            3,
        )
    }

    #[test]
    fn knn_with_k1_returns_exact_match_location() {
        let knn = Knn::new(map(), 1);
        let est = knn.estimate(&[-50.0, -90.0, -90.0]).unwrap();
        assert_eq!(est, Point::new(0.0, 0.0));
        assert_eq!(knn.name(), "KNN");
    }

    #[test]
    fn knn_with_k3_returns_mean_of_all() {
        let knn = Knn::new(map(), 3);
        let est = knn.estimate(&[-70.0, -70.0, -70.0]).unwrap();
        assert!((est.x - 10.0 / 3.0).abs() < 1e-9);
        assert!((est.y - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn wknn_weights_towards_the_closest_fingerprint() {
        let wknn = Wknn::new(map(), 3);
        // A query close to fingerprint 0 but not identical.
        let est = wknn.estimate(&[-52.0, -88.0, -90.0]).unwrap();
        // The estimate must be pulled towards (0,0) compared to the unweighted mean.
        assert!(est.x < 10.0 / 3.0);
        assert!(est.y < 10.0 / 3.0);
        assert_eq!(wknn.name(), "WKNN");
    }

    #[test]
    fn wknn_exact_match_dominates() {
        let wknn = Wknn::new(map(), 3);
        let est = wknn.estimate(&[-90.0, -50.0, -90.0]).unwrap();
        assert!(est.distance(Point::new(10.0, 0.0)) < 0.1);
    }

    #[test]
    fn k_larger_than_map_uses_all_entries() {
        let knn = Knn::new(map(), 100);
        assert!(knn.estimate(&[-60.0, -60.0, -60.0]).is_some());
    }

    /// Splitting a map into two halves, taking per-half candidates with
    /// rewritten indices, and merging reproduces the whole-map ranking and
    /// both folds bitwise — the contract sharded serving relies on.
    #[test]
    fn merged_per_shard_candidates_equal_the_whole_map_scan() {
        let fingerprints: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![-50.0 - 3.0 * i as f64, -90.0 + 2.0 * i as f64, -70.0])
            .collect();
        let locations: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 2.0)).collect();
        let whole = Knn::new(
            DenseRadioMap::new(fingerprints.clone(), locations.clone(), 3),
            3,
        );
        // Interleaved "shards": evens and odds.
        let part = |parity: usize| -> (Knn, Vec<u32>) {
            let idx: Vec<usize> = (0..10).filter(|i| i % 2 == parity).collect();
            let knn = Knn::new(
                DenseRadioMap::new(
                    idx.iter().map(|&i| fingerprints[i].clone()).collect(),
                    idx.iter().map(|&i| locations[i]).collect(),
                    3,
                ),
                3,
            );
            (knn, idx.into_iter().map(|i| i as u32).collect())
        };
        let query = [-58.0, -85.0, -70.0];
        let mut pooled = Vec::new();
        for parity in 0..2 {
            let (knn, globals) = part(parity);
            pooled.extend(knn.candidates(&query).into_iter().map(|c| KnnCandidate {
                index: globals[c.index as usize],
                ..c
            }));
        }
        let merged = merge_candidates(3, pooled);
        let reference = whole.candidates(&query);
        assert_eq!(merged, reference);
        let ke = knn_estimate(&merged).unwrap();
        let we = wknn_estimate(&merged).unwrap();
        let kr = whole.estimate(&query).unwrap();
        assert_eq!(
            (ke.x.to_bits(), ke.y.to_bits()),
            (kr.x.to_bits(), kr.y.to_bits())
        );
        let wknn = Wknn::new(
            DenseRadioMap::new(fingerprints.clone(), locations.clone(), 3),
            3,
        );
        let wr = wknn.estimate(&query).unwrap();
        assert_eq!(
            (we.x.to_bits(), we.y.to_bits()),
            (wr.x.to_bits(), wr.y.to_bits())
        );
        assert_eq!(wknn.inner().k(), 3);
    }

    #[test]
    fn empty_map_returns_none() {
        let empty = DenseRadioMap::new(vec![], vec![], 3);
        assert!(Knn::new(empty.clone(), 3)
            .estimate(&[-50.0, -50.0, -50.0])
            .is_none());
        assert!(Wknn::new(empty, 3)
            .estimate(&[-50.0, -50.0, -50.0])
            .is_none());
    }
}
