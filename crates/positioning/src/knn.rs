//! KNN and weighted-KNN location estimation.
//!
//! Candidate ranking runs on the int8-quantized fingerprints
//! ([`QuantizedFingerprints`]) — an 8×-smaller scan with exact integer
//! arithmetic — and the top `k + RERANK_MARGIN` candidates are re-ranked
//! with the exact f64 Euclidean distance, so the neighbour distances the
//! estimators consume carry no quantization error.

// rm-lint: hot-path

use std::cmp::Ordering;

use rm_geometry::Point;
use rm_radiomap::DenseRadioMap;

use crate::quant::{QuantizedFingerprints, RERANK_MARGIN};
use crate::LocationEstimator;

/// K-nearest-neighbour location estimation: the estimated location is the mean
/// of the reference points of the `k` radio-map fingerprints closest (in
/// Euclidean RSSI space) to the online fingerprint.
#[derive(Debug, Clone)]
pub struct Knn {
    map: DenseRadioMap,
    quantized: QuantizedFingerprints,
    k: usize,
}

impl Knn {
    /// Builds a KNN estimator over an imputed radio map, quantizing its
    /// fingerprints once for the int8 ranking scan. The paper uses `k = 3`
    /// for both KNN and WKNN-style estimators.
    pub fn new(map: DenseRadioMap, k: usize) -> Self {
        let quantized = QuantizedFingerprints::from_map(&map);
        Self {
            map,
            quantized,
            k: k.max(1),
        }
    }

    /// The `k` nearest entries as `(distance, location)` pairs, sorted by
    /// increasing exact f64 distance (ties broken by record index, like the
    /// full scan's stable sort).
    ///
    /// Ranking is two-phase: the int8 kernel scores every record, the
    /// `k + RERANK_MARGIN` best quantized candidates are selected, and those
    /// are re-ranked exactly. Both phases break ties by record index and the
    /// int8 kernel is bit-identical across its variants, so the result is a
    /// pure function of `(map, fingerprint, k)`.
    fn nearest(&self, fingerprint: &[f64]) -> Vec<(f64, Point)> {
        let n = self.map.len();
        if n == 0 {
            return Vec::new();
        }
        let window = (self.k + RERANK_MARGIN).min(n);
        let query = self.quantized.encode_query(fingerprint);
        let mut scored: Vec<(i32, u32)> = self
            .quantized
            .squared_distances(&query)
            .into_iter()
            .zip(0u32..)
            .collect();
        if window < n {
            scored.select_nth_unstable(window - 1);
            scored.truncate(window);
        }
        let mut exact: Vec<(f64, u32)> = scored
            .into_iter()
            .map(|(_, i)| {
                (
                    euclidean(fingerprint, &self.map.fingerprints()[i as usize]),
                    i,
                )
            })
            .collect();
        exact.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        exact.truncate(self.k);
        exact
            .into_iter()
            .map(|(d, i)| (d, self.map.locations()[i as usize]))
            .collect()
    }
}

impl LocationEstimator for Knn {
    fn estimate(&self, fingerprint: &[f64]) -> Option<Point> {
        let nearest = self.nearest(fingerprint);
        if nearest.is_empty() {
            return None;
        }
        let sum = nearest.iter().fold(Point::origin(), |acc, &(_, p)| acc + p);
        Some(sum / nearest.len() as f64)
    }

    fn name(&self) -> &'static str {
        "KNN"
    }
}

/// Weighted KNN: like [`Knn`] but the neighbours' reference points are averaged
/// with weights inversely proportional to their fingerprint distance.
#[derive(Debug, Clone)]
pub struct Wknn {
    knn: Knn,
}

impl Wknn {
    /// Builds a WKNN estimator over an imputed radio map.
    pub fn new(map: DenseRadioMap, k: usize) -> Self {
        Self {
            knn: Knn::new(map, k),
        }
    }
}

impl LocationEstimator for Wknn {
    fn estimate(&self, fingerprint: &[f64]) -> Option<Point> {
        let nearest = self.knn.nearest(fingerprint);
        if nearest.is_empty() {
            return None;
        }
        let mut weight_sum = 0.0;
        let mut acc = Point::origin();
        for &(d, p) in &nearest {
            let w = 1.0 / (d + 1e-6);
            weight_sum += w;
            acc = acc + p * w;
        }
        Some(acc / weight_sum)
    }

    fn name(&self) -> &'static str {
        "WKNN"
    }
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three fingerprints at distinct locations; fingerprints are orthogonal so
    /// the nearest neighbour is unambiguous.
    fn map() -> DenseRadioMap {
        DenseRadioMap::new(
            vec![
                vec![-50.0, -90.0, -90.0],
                vec![-90.0, -50.0, -90.0],
                vec![-90.0, -90.0, -50.0],
            ],
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(0.0, 10.0),
            ],
            3,
        )
    }

    #[test]
    fn knn_with_k1_returns_exact_match_location() {
        let knn = Knn::new(map(), 1);
        let est = knn.estimate(&[-50.0, -90.0, -90.0]).unwrap();
        assert_eq!(est, Point::new(0.0, 0.0));
        assert_eq!(knn.name(), "KNN");
    }

    #[test]
    fn knn_with_k3_returns_mean_of_all() {
        let knn = Knn::new(map(), 3);
        let est = knn.estimate(&[-70.0, -70.0, -70.0]).unwrap();
        assert!((est.x - 10.0 / 3.0).abs() < 1e-9);
        assert!((est.y - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn wknn_weights_towards_the_closest_fingerprint() {
        let wknn = Wknn::new(map(), 3);
        // A query close to fingerprint 0 but not identical.
        let est = wknn.estimate(&[-52.0, -88.0, -90.0]).unwrap();
        // The estimate must be pulled towards (0,0) compared to the unweighted mean.
        assert!(est.x < 10.0 / 3.0);
        assert!(est.y < 10.0 / 3.0);
        assert_eq!(wknn.name(), "WKNN");
    }

    #[test]
    fn wknn_exact_match_dominates() {
        let wknn = Wknn::new(map(), 3);
        let est = wknn.estimate(&[-90.0, -50.0, -90.0]).unwrap();
        assert!(est.distance(Point::new(10.0, 0.0)) < 0.1);
    }

    #[test]
    fn k_larger_than_map_uses_all_entries() {
        let knn = Knn::new(map(), 100);
        assert!(knn.estimate(&[-60.0, -60.0, -60.0]).is_some());
    }

    #[test]
    fn empty_map_returns_none() {
        let empty = DenseRadioMap::new(vec![], vec![], 3);
        assert!(Knn::new(empty.clone(), 3)
            .estimate(&[-50.0, -50.0, -50.0])
            .is_none());
        assert!(Wknn::new(empty, 3)
            .estimate(&[-50.0, -50.0, -50.0])
            .is_none());
    }
}
