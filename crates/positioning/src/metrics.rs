//! Accuracy metrics used throughout the evaluation.

use std::cmp::Ordering;

use rm_geometry::Point;

/// Average positioning error (APE): the mean Euclidean distance between
/// estimated and ground-truth locations, in metres. Returns `None` for an
/// empty input.
pub fn average_positioning_error(estimates: &[Point], ground_truth: &[Point]) -> Option<f64> {
    if estimates.is_empty() || estimates.len() != ground_truth.len() {
        return None;
    }
    let total: f64 = estimates
        .iter()
        .zip(ground_truth.iter())
        .map(|(e, g)| e.distance(*g))
        .sum();
    Some(total / estimates.len() as f64)
}

/// Mean absolute error between imputed and ground-truth RSSI values, in dBm.
/// Used for Fig. 14 (removal ratio β vs MAE). Returns `None` for an empty
/// input.
pub fn mean_absolute_error(imputed: &[f64], ground_truth: &[f64]) -> Option<f64> {
    if imputed.is_empty() || imputed.len() != ground_truth.len() {
        return None;
    }
    let total: f64 = imputed
        .iter()
        .zip(ground_truth.iter())
        .map(|(a, b)| (a - b).abs())
        .sum();
    Some(total / imputed.len() as f64)
}

/// Mean Euclidean distance between imputed and ground-truth reference points,
/// in metres. Used for Fig. 15 (removal ratio β vs RP error). Returns `None`
/// for an empty input.
pub fn mean_rp_distance(imputed: &[Point], ground_truth: &[Point]) -> Option<f64> {
    average_positioning_error(imputed, ground_truth)
}

/// Root-mean-square error between imputed and ground-truth RSSI values.
pub fn root_mean_square_error(imputed: &[f64], ground_truth: &[f64]) -> Option<f64> {
    if imputed.is_empty() || imputed.len() != ground_truth.len() {
        return None;
    }
    let total: f64 = imputed
        .iter()
        .zip(ground_truth.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    Some((total / imputed.len() as f64).sqrt())
}

/// The p-th percentile (0–100) of positioning errors; useful to report tail
/// accuracy alongside APE. Returns `None` for empty input.
pub fn error_percentile(estimates: &[Point], ground_truth: &[Point], p: f64) -> Option<f64> {
    if estimates.is_empty() || estimates.len() != ground_truth.len() {
        return None;
    }
    let mut errors: Vec<f64> = estimates
        .iter()
        .zip(ground_truth.iter())
        .map(|(e, g)| e.distance(*g))
        .collect();
    errors.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
    let rank = (p.clamp(0.0, 100.0) / 100.0 * (errors.len() - 1) as f64).round() as usize;
    Some(errors[rank])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ape_of_exact_estimates_is_zero() {
        let pts = vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)];
        assert_eq!(average_positioning_error(&pts, &pts), Some(0.0));
    }

    #[test]
    fn ape_averages_distances() {
        let est = vec![Point::new(0.0, 0.0), Point::new(0.0, 0.0)];
        let gt = vec![Point::new(3.0, 4.0), Point::new(0.0, 0.0)];
        assert_eq!(average_positioning_error(&est, &gt), Some(2.5));
    }

    #[test]
    fn ape_rejects_mismatched_or_empty_inputs() {
        assert_eq!(average_positioning_error(&[], &[]), None);
        assert_eq!(average_positioning_error(&[Point::origin()], &[]), None);
    }

    #[test]
    fn mae_and_rmse() {
        let imputed = vec![-70.0, -80.0, -60.0];
        let truth = vec![-72.0, -78.0, -60.0];
        assert!((mean_absolute_error(&imputed, &truth).unwrap() - 4.0 / 3.0).abs() < 1e-12);
        let rmse = root_mean_square_error(&imputed, &truth).unwrap();
        assert!((rmse - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_absolute_error(&[], &[]), None);
        assert_eq!(root_mean_square_error(&[1.0], &[]), None);
    }

    #[test]
    fn percentile_bounds() {
        let est = vec![
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(10.0, 0.0),
        ];
        let gt = vec![Point::origin(); 3];
        assert_eq!(error_percentile(&est, &gt, 0.0), Some(1.0));
        assert_eq!(error_percentile(&est, &gt, 100.0), Some(10.0));
        assert_eq!(error_percentile(&est, &gt, 50.0), Some(2.0));
        assert_eq!(error_percentile(&[], &[], 50.0), None);
    }

    #[test]
    fn mean_rp_distance_matches_ape() {
        let a = vec![Point::new(0.0, 0.0)];
        let b = vec![Point::new(0.0, 5.0)];
        assert_eq!(mean_rp_distance(&a, &b), Some(5.0));
    }
}
