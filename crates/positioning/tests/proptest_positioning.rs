//! Property-based tests for the int8-quantized KNN ranking path.

use proptest::prelude::*;
use rm_geometry::Point;
use rm_positioning::{LocationEstimator, QuantizedFingerprints, Wknn};
use rm_radiomap::DenseRadioMap;

/// SplitMix64-ish stream mapped into an RSSI-like range.
fn rssi_stream(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        -100.0 + ((state >> 11) as f64 / (1u64 << 53) as f64) * 60.0
    }
}

fn random_map(records: usize, num_aps: usize, seed: u64) -> DenseRadioMap {
    let mut next = rssi_stream(seed);
    let fingerprints: Vec<Vec<f64>> = (0..records)
        .map(|_| (0..num_aps).map(|_| next()).collect())
        .collect();
    let locations: Vec<Point> = (0..records)
        .map(|i| Point::new((i % 13) as f64, (i / 13) as f64))
        .collect();
    DenseRadioMap::new(fingerprints, locations, num_aps)
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

proptest! {
    /// The quality guarantee of quantized ranking + exact re-rank: for
    /// queries within the map's value range, the i-th returned neighbour's
    /// exact distance exceeds the true i-th smallest by at most the
    /// quantization slack (each vector dequantizes within (scale/2)·√n of
    /// its source, and a selection swap pays that gap on both sides).
    #[test]
    fn quantized_ranking_is_within_the_quantization_slack_of_exact(
        records in 1usize..60,
        num_aps in 1usize..40,
        k in 1usize..6,
        seed in 0u64..500,
    ) {
        let map = random_map(records, num_aps, seed);
        let quant = QuantizedFingerprints::from_map(&map);
        let slack = quant.distance_slack() + 1e-9;

        // A query drawn from the same value range as the map.
        let mut next = rssi_stream(seed ^ 0x9e3779b97f4a7c15);
        let query: Vec<f64> = (0..num_aps).map(|_| next()).collect();

        // Exact reference: all distances, fully sorted.
        let mut exact: Vec<f64> = map
            .fingerprints()
            .iter()
            .map(|f| euclidean(&query, f))
            .collect();
        exact.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));

        // Quantized path, observed through the WKNN estimator's ranking:
        // re-derive the selected neighbours' exact distances from the
        // quantized scan + re-rank logic mirrored here.
        let window = (k + rm_positioning::RERANK_MARGIN).min(map.len());
        let encoded = quant.encode_query(&query);
        let mut scored: Vec<(i32, u32)> =
            quant.squared_distances(&encoded).into_iter().zip(0u32..).collect();
        if window < map.len() {
            scored.select_nth_unstable(window - 1);
            scored.truncate(window);
        }
        let mut selected: Vec<f64> = scored
            .into_iter()
            .map(|(_, i)| euclidean(&query, &map.fingerprints()[i as usize]))
            .collect();
        selected.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        selected.truncate(k.min(map.len()));

        for (i, d) in selected.iter().enumerate() {
            prop_assert!(
                *d <= exact[i] + slack,
                "neighbour {i}: quantized pick {d} vs exact {} (slack {slack})",
                exact[i]
            );
        }
    }

    /// End-to-end: the WKNN estimate from the quantized ranking stays close
    /// to an estimate computed from the exact top-k whenever the exact top-k
    /// is unambiguous at the quantization resolution (separation > slack) —
    /// in that regime the two rankings provably agree, so the estimates are
    /// identical.
    #[test]
    fn wknn_estimate_matches_exact_when_the_top_k_is_separated(
        records in 4usize..40,
        num_aps in 1usize..24,
        seed in 0u64..300,
    ) {
        let k = 3usize;
        let map = random_map(records, num_aps, seed);
        let quant = QuantizedFingerprints::from_map(&map);
        let mut next = rssi_stream(seed ^ 0xdeadbeef);
        let query: Vec<f64> = (0..num_aps).map(|_| next()).collect();

        let mut exact: Vec<(f64, usize)> = map
            .fingerprints()
            .iter()
            .enumerate()
            .map(|(i, f)| (euclidean(&query, f), i))
            .collect();
        exact.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        // Only check when the k-th and (k+1)-th distances are separated by
        // more than the quantization slack: there the quantized ranking
        // cannot swap a true neighbour out of the window.
        if exact.len() > k && exact[k].0 - exact[k - 1].0 <= quant.distance_slack() {
            return Ok(());
        }

        let estimate = Wknn::new(map.clone(), k)
            .estimate(&query)
            .expect("non-empty map");
        let mut weight_sum = 0.0;
        let mut acc = Point::origin();
        for &(d, i) in exact.iter().take(k) {
            let w = 1.0 / (d + 1e-6);
            weight_sum += w;
            acc = acc + map.locations()[i] * w;
        }
        let reference = acc / weight_sum;
        prop_assert!(
            estimate.distance(reference) < 1e-9,
            "WKNN estimate {estimate:?} drifted from exact reference {reference:?}"
        );
    }
}
