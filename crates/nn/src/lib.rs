//! Neural-network building blocks on top of [`rm_tensor`].
//!
//! Provides the layers, cells, losses and optimizers shared by the neural
//! imputation models in the workspace:
//!
//! * [`Linear`] — fully-connected layer,
//! * [`LstmCell`] / [`SimpleRecurrentCell`] — recurrent cells,
//! * [`Mlp`] — feed-forward network (used by BiSIM's attention alignment),
//! * [`Adam`] / [`Sgd`] — optimizers,
//! * masked losses in [`loss`] for reconstruction-based training on sparse
//!   radio maps.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use rm_nn::{loss, Adam, Linear, Optimizer};
//! use rm_tensor::{Matrix, Var};
//!
//! // Learn y = 2x with a single linear unit. `Linear` defaults to
//! // `Linear<f64>`; every layer is generic over `rm_tensor::Scalar`.
//! let mut rng = StdRng::seed_from_u64(42);
//! let layer: Linear = Linear::new(1, 1, &mut rng);
//! let mut opt = Adam::new(layer.parameters(), 0.05);
//! for _ in 0..300 {
//!     opt.zero_grad();
//!     let x = Var::constant(Matrix::from_vec(1, 1, vec![1.5]));
//!     let target = Matrix::from_vec(1, 1, vec![3.0]);
//!     let l = loss::mse(&layer.forward(&x), &target);
//!     l.backward();
//!     opt.step();
//! }
//! let y = layer.forward(&Var::constant(Matrix::from_vec(1, 1, vec![1.5])));
//! assert!((y.scalar_value() - 3.0).abs() < 0.05);
//! ```

pub mod linear;
pub mod loss;
pub mod lstm;
pub mod mlp;
pub mod optim;

pub use linear::{Linear, LinearWeights, LinearWeightsBf16};
pub use lstm::{
    LstmCell, LstmCellWeights, LstmCellWeightsBf16, LstmState, LstmStateMatrix, SimpleRecurrentCell,
};
pub use mlp::{Activation, Mlp, MlpWeights, MlpWeightsBf16};
pub use optim::{Adam, GradientBatch, Optimizer, Sgd};
