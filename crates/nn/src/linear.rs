//! Fully-connected (linear) layers, generic over the [`Scalar`] precision.

// rm-lint: hot-path
// Every per-step forward of the recurrent imputers funnels through these
// layers. Products go through `matmul_into` — into pooled graph-node buffers
// on the training path, into caller-owned `Workspace` scratch on the
// snapshot-inference path — so steady state allocates nothing.

use rand::Rng;
use rm_tensor::{Bf16Matrix, Matrix, Scalar, Var, Workspace};

/// A linear layer computing `y = W x + b` for column-vector (or
/// column-batched) inputs. `T` defaults to `f64`, the training precision.
#[derive(Clone)]
pub struct Linear<T: Scalar = f64> {
    weight: Var<T>,
    bias: Var<T>,
    in_features: usize,
    out_features: usize,
}

impl<T: Scalar> Linear<T> {
    /// Creates a linear layer with Xavier-initialised weights and zero bias.
    ///
    /// The RNG stream is consumed in `f64` regardless of `T` (see
    /// [`Matrix::random_uniform`]), so an `f32` layer is the rounding of the
    /// `f64` layer initialised from the same seed.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        Self {
            weight: Var::parameter(Matrix::xavier(out_features, in_features, rng)),
            bias: Var::parameter(Matrix::zeros(out_features, 1)),
            in_features,
            out_features,
        }
    }

    /// Builds a layer from explicit weight and bias matrices (useful in tests).
    ///
    /// # Panics
    /// Panics if `bias` is not a column vector matching `weight`'s row count.
    pub fn from_parts(weight: Matrix<T>, bias: Matrix<T>) -> Self {
        assert_eq!(bias.cols(), 1, "bias must be a column vector");
        assert_eq!(weight.rows(), bias.rows(), "weight/bias row mismatch");
        let (out_features, in_features) = weight.shape();
        Self {
            weight: Var::parameter(weight),
            bias: Var::parameter(bias),
            in_features,
            out_features,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Applies the layer to a `(in_features, batch)` input.
    pub fn forward(&self, x: &Var<T>) -> Var<T> {
        debug_assert_eq!(
            x.shape().0,
            self.in_features,
            "Linear input has {} rows, expected {}",
            x.shape().0,
            self.in_features
        );
        // `Var::matmul` computes the product through the blocked kernel into
        // a pooled buffer, so the graph forward is allocation-free in steady
        // state (see `rm_tensor::workspace`).
        Var::matmul(&self.weight, x).add_broadcast_col(&self.bias)
    }

    /// The trainable parameters of this layer.
    pub fn parameters(&self) -> Vec<Var<T>> {
        vec![self.weight.clone(), self.bias.clone()]
    }

    /// The weight matrix variable.
    pub fn weight(&self) -> &Var<T> {
        &self.weight
    }

    /// The bias vector variable.
    pub fn bias(&self) -> &Var<T> {
        &self.bias
    }

    /// Copies the current parameter values into a graph-free
    /// [`LinearWeights`] for inference on worker threads.
    pub fn snapshot(&self) -> LinearWeights<T> {
        LinearWeights {
            weight: self.weight.value(),
            bias: self.bias.value(),
        }
    }
}

/// A graph-free snapshot of a [`Linear`] layer: plain matrices, so it is
/// `Send + Sync` and can be shared across the deterministic thread pool
/// (unlike [`Var`], whose nodes are `Rc`-shared).
///
/// The forward pass performs the same operations in the same order as
/// [`Linear::forward`], so inference through a snapshot is bit-identical to
/// inference through the autodiff graph at the same precision.
#[derive(Debug, Clone)]
pub struct LinearWeights<T: Scalar = f64> {
    weight: Matrix<T>,
    bias: Matrix<T>,
}

impl<T: Scalar> LinearWeights<T> {
    /// Rounds the snapshot to another precision — the one-time weight
    /// rounding of the f32 inference path.
    pub fn cast<U: Scalar>(&self) -> LinearWeights<U> {
        LinearWeights {
            weight: self.weight.cast(),
            bias: self.bias.cast(),
        }
    }

    /// Rebuilds a trainable [`Linear`] layer from this snapshot (fresh
    /// parameter leaves holding copies of the snapshotted matrices).
    ///
    /// This is the inverse of [`Linear::snapshot`] and the rebuild half of
    /// mini-batch training: a worker thread reconstructs the layer from the
    /// `Send + Sync` snapshot, runs forward/backward on its private graph
    /// replica, and ships the extracted gradients back as plain matrices.
    /// The rebuilt layer performs the same operations on the same values as
    /// the original, so its gradients are bit-identical to gradients
    /// computed on the original graph.
    pub fn to_linear(&self) -> Linear<T> {
        Linear::from_parts(self.weight.clone(), self.bias.clone())
    }

    /// Applies `W x + b` to a `(in_features, batch)` input, writing the
    /// result into `out` (resized on shape mismatch) without allocating when
    /// the shape already matches: the matmul lands in `out` and the bias is
    /// added in place.
    pub fn forward_into(&self, x: &Matrix<T>, out: &mut Matrix<T>) {
        if out.shape() != (self.weight.rows(), x.cols()) {
            *out = Matrix::zeros(self.weight.rows(), x.cols());
        }
        self.weight.matmul_into(x, out);
        let cols = out.cols();
        for (r, row_chunk) in out.data_mut().chunks_mut(cols).enumerate() {
            let b = self.bias.get(r, 0);
            for v in row_chunk {
                *v += b;
            }
        }
    }

    /// Applies `W x + b` to a `(in_features, batch)` input (bitwise equal to
    /// [`LinearWeights::forward_into`] on a fresh output, which is what it
    /// delegates to).
    pub fn forward(&self, x: &Matrix<T>) -> Matrix<T> {
        let mut out = Matrix::zeros(self.weight.rows(), x.cols());
        self.forward_into(x, &mut out);
        out
    }

    /// [`LinearWeights::forward`] into a matrix checked out of `ws` — the
    /// workspace-backed variant for snapshot-inference loops that return
    /// their activations to the workspace each step. Bitwise identical to
    /// `forward` (reuse is capacity-only).
    pub fn forward_ws(&self, x: &Matrix<T>, ws: &mut Workspace<T>) -> Matrix<T> {
        let mut out = ws.take(self.weight.rows(), x.cols());
        self.forward_into(x, &mut out);
        out
    }

    /// Bytes this snapshot keeps resident (weight + bias payloads at the
    /// compute precision `T`).
    pub fn resident_bytes(&self) -> usize {
        (self.weight.data().len() + self.bias.data().len()) * std::mem::size_of::<T>()
    }

    /// Returns the snapshot's matrices to `ws` for capacity reuse — the
    /// give-back half of a per-task [`LinearWeightsBf16::decode_ws`] cycle.
    pub fn recycle(self, ws: &mut Workspace<T>) {
        ws.give(self.weight);
        ws.give(self.bias);
    }

    /// The `(out_features, in_features)` weight matrix — read access for
    /// snapshot export (the serving artifact persists these exact bits).
    pub fn weight(&self) -> &Matrix<T> {
        &self.weight
    }

    /// The `(out_features, 1)` bias column.
    pub fn bias(&self) -> &Matrix<T> {
        &self.bias
    }

    /// Rebuilds a snapshot from its raw matrices (the deserialization
    /// inverse of [`LinearWeights::weight`]/[`LinearWeights::bias`]): the
    /// loaded layer holds exactly the given bits, so persisted snapshots
    /// round-trip bitwise.
    ///
    /// # Panics
    /// Panics if `bias` is not an `(out_features, 1)` column matching
    /// `weight`.
    pub fn from_parts(weight: Matrix<T>, bias: Matrix<T>) -> Self {
        assert_eq!(
            (bias.rows(), bias.cols()),
            (weight.rows(), 1),
            "bias shape does not match weight"
        );
        Self { weight, bias }
    }
}

/// A [`LinearWeights<f32>`] snapshot stored as truncated bfloat16 — half the
/// resident bytes, decoded back into pooled `f32` scratch per inference task
/// (`RM_SNAPSHOT_DTYPE=bf16`). Storage-only: compute still runs the `f32`
/// kernels, so accuracy is epsilon-bounded rather than bit-compatible (see
/// [`rm_tensor::half`] for the contract).
#[derive(Debug, Clone)]
pub struct LinearWeightsBf16 {
    weight: Bf16Matrix,
    bias: Bf16Matrix,
}

impl LinearWeightsBf16 {
    /// Encodes an `f32` snapshot by truncating every weight to bfloat16.
    pub fn from_weights(w: &LinearWeights<f32>) -> Self {
        Self {
            weight: Bf16Matrix::from_matrix(&w.weight),
            bias: Bf16Matrix::from_matrix(&w.bias),
        }
    }

    /// Decodes into an `f32` snapshot whose matrices are checked out of
    /// `ws`; pair with [`LinearWeights::recycle`] to return them.
    pub fn decode_ws(&self, ws: &mut Workspace<f32>) -> LinearWeights<f32> {
        LinearWeights {
            weight: self.weight.decode_ws(ws),
            bias: self.bias.decode_ws(ws),
        }
    }

    /// Bytes this snapshot keeps resident (2 per weight).
    pub fn resident_bytes(&self) -> usize {
        self.weight.resident_bytes() + self.bias.resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual_computation() {
        let w = Matrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.5]);
        let b = Matrix::column(&[0.5, -0.5]);
        let layer = Linear::from_parts(w, b);
        let x = Var::constant(Matrix::column(&[1.0, 2.0, 3.0]));
        let y = layer.forward(&x).value();
        // Row 0: 1*1 + 0*2 + -1*3 + 0.5 = -1.5; Row 1: 2 + 2 + 1.5 - 0.5 = 5.0
        assert!((y.get(0, 0) + 1.5).abs() < 1e-12);
        assert!((y.get(1, 0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn forward_broadcasts_bias_over_batch() {
        let w = Matrix::identity(2);
        let b = Matrix::column(&[1.0, 2.0]);
        let layer = Linear::from_parts(w, b);
        let x = Var::constant(Matrix::from_vec(2, 3, vec![0.0; 6]));
        let y = layer.forward(&x).value();
        for c in 0..3 {
            assert_eq!(y.get(0, c), 1.0);
            assert_eq!(y.get(1, c), 2.0);
        }
    }

    #[test]
    fn parameters_receive_gradients() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer: Linear = Linear::new(3, 2, &mut rng);
        let x = Var::constant(Matrix::column(&[1.0, -1.0, 2.0]));
        let loss = layer.forward(&x).square().sum();
        loss.backward();
        let params = layer.parameters();
        assert_eq!(params.len(), 2);
        assert!(params.iter().any(|p| p.grad().frobenius_norm() > 0.0));
    }

    #[test]
    fn new_has_expected_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer: Linear = Linear::new(5, 7, &mut rng);
        assert_eq!(layer.in_features(), 5);
        assert_eq!(layer.out_features(), 7);
        assert_eq!(layer.weight().shape(), (7, 5));
        assert_eq!(layer.bias().shape(), (7, 1));
    }

    #[test]
    #[should_panic(expected = "bias must be a column vector")]
    fn from_parts_rejects_bad_bias() {
        let _ = Linear::from_parts(Matrix::<f64>::zeros(2, 2), Matrix::<f64>::zeros(2, 2));
    }

    #[test]
    fn snapshot_forward_matches_graph_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(9);
        let layer: Linear = Linear::new(4, 3, &mut rng);
        let weights = layer.snapshot();
        let x = Matrix::random_uniform(4, 2, 1.0, &mut rng);
        let graph = layer.forward(&Var::constant(x.clone())).value();
        let snap = weights.forward(&x);
        // Pre-filled buffer of the right shape: must be overwritten in place.
        let mut out = Matrix::filled(3, 2, 777.0);
        weights.forward_into(&x, &mut out);
        for ((a, b), c) in graph
            .data()
            .iter()
            .zip(snap.data().iter())
            .zip(out.data().iter())
        {
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(b.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn workspace_forward_matches_plain_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(33);
        let layer: Linear = Linear::new(4, 3, &mut rng);
        let weights = layer.snapshot();
        let x = Matrix::random_uniform(4, 2, 1.0, &mut rng);
        let plain = weights.forward(&x);
        let mut ws = Workspace::new();
        // Park a poisoned scratch matrix so the checkout must reinitialise.
        ws.give(Matrix::filled(3, 2, f64::NAN));
        let pooled = weights.forward_ws(&x, &mut ws);
        assert!(plain.bits_eq(&pooled));
        ws.give(pooled);
        assert!(plain.bits_eq(&weights.forward_ws(&x, &mut ws)));
    }

    /// The snapshot → rebuild round-trip must preserve the training
    /// trajectory: gradients computed on the rebuilt layer are bit-identical
    /// to gradients computed on the original graph (the property the batched
    /// trainers rely on to ship backward passes to worker threads).
    #[test]
    fn rebuilt_layer_gradients_match_original_bitwise() {
        let mut rng = StdRng::seed_from_u64(21);
        let original: Linear = Linear::new(4, 3, &mut rng);
        let rebuilt = original.snapshot().to_linear();
        let x = Matrix::random_uniform(4, 1, 1.0, &mut rng);
        let grads = |layer: &Linear| -> Vec<Matrix<f64>> {
            let loss = layer.forward(&Var::constant(x.clone())).square().sum();
            loss.backward();
            layer.parameters().iter().map(|p| p.grad()).collect()
        };
        for (a, b) in grads(&original).iter().zip(grads(&rebuilt).iter()) {
            assert!(a.bits_eq(b), "rebuilt-layer gradient drifted");
        }
    }

    #[test]
    fn f32_snapshot_forward_matches_f32_graph_forward_bitwise() {
        // Graph-vs-snapshot parity at the second precision: the rounded f32
        // weights must produce the same bits whether evaluated through a
        // `Var<f32>` graph or through the graph-free snapshot.
        let mut rng = StdRng::seed_from_u64(10);
        let layer64: Linear = Linear::new(5, 4, &mut rng);
        let weights32 = layer64.snapshot().cast::<f32>();
        let layer32 = Linear::from_parts(
            layer64.weight().value().cast::<f32>(),
            layer64.bias().value().cast::<f32>(),
        );
        let x64 = Matrix::<f64>::random_uniform(5, 1, 1.0, &mut rng);
        let x32: Matrix<f32> = x64.cast();
        let graph = layer32.forward(&Var::constant(x32.clone())).value();
        assert!(graph.bits_eq(&weights32.forward(&x32)));
    }

    #[test]
    fn bf16_snapshot_halves_resident_bytes_and_forward_stays_epsilon_close() {
        let mut rng = StdRng::seed_from_u64(12);
        let layer: Linear = Linear::new(6, 4, &mut rng);
        let w32 = layer.snapshot().cast::<f32>();
        let packed = LinearWeightsBf16::from_weights(&w32);
        assert_eq!(packed.resident_bytes() * 2, w32.resident_bytes());

        let mut ws = Workspace::new();
        // Poison the pool: decode must fully overwrite its scratch.
        ws.give(Matrix::filled(4, 6, f32::NAN));
        let decoded = packed.decode_ws(&mut ws);
        let x: Matrix<f32> = Matrix::<f64>::random_uniform(6, 2, 1.0, &mut rng).cast();
        let exact = w32.forward(&x);
        let approx = decoded.forward(&x);
        // Each output accumulates 6 products of O(1) values whose weights
        // carry ≤ 2^-7 relative truncation error.
        assert!(exact.approx_eq(&approx, 6.0 * 4.0 / 128.0));
        decoded.recycle(&mut ws);
        // A second decode reuses the recycled buffers and must agree bitwise.
        assert!(approx.bits_eq(&packed.decode_ws(&mut ws).forward(&x)));
    }

    #[test]
    fn cast_roundtrip_through_f32_loses_only_rounding() {
        let mut rng = StdRng::seed_from_u64(11);
        let layer: Linear = Linear::new(3, 3, &mut rng);
        let w64 = layer.snapshot();
        let back = w64.cast::<f32>().cast::<f64>();
        let x = Matrix::<f64>::random_uniform(3, 1, 1.0, &mut rng);
        // f64 -> f32 -> f64 weights agree with the originals to f32 epsilon.
        assert!(back.forward(&x).approx_eq(&w64.forward(&x), 1e-5));
    }
}
