//! Recurrent cells: a full LSTM cell and a simple gated recurrent cell,
//! generic over the [`Scalar`] precision.
//!
//! The gate activations — both in the autodiff graph ([`LstmCell::step`])
//! and in the graph-free snapshot ([`LstmCellWeights::step`]) — are the
//! *same* [`Scalar::sigmoid`] / [`Scalar::tanh`] definitions, so the two
//! forward passes are bit-identical at the same precision by construction
//! (there used to be a second, hand-inlined sigmoid here; see the parity
//! tests below).

// rm-lint: hot-path
// The per-step recurrence of every imputer runs through this cell; products
// reach `matmul_into` through the Linear layers, and `step_ws` keeps
// snapshot inference allocation-free with a caller-owned workspace.

use rand::Rng;
use rm_tensor::{Matrix, Scalar, Var, Workspace};

use crate::Linear;

/// The hidden state carried between recurrent steps: the hidden vector `h`
/// and the LSTM cell state `c`.
#[derive(Clone)]
pub struct LstmState<T: Scalar = f64> {
    /// Hidden vector, shape `(hidden_size, 1)`.
    pub h: Var<T>,
    /// Cell state, shape `(hidden_size, 1)`.
    pub c: Var<T>,
}

impl<T: Scalar> LstmState<T> {
    /// A zero-initialised state.
    pub fn zeros(hidden_size: usize) -> Self {
        Self {
            h: Var::constant(Matrix::zeros(hidden_size, 1)),
            c: Var::constant(Matrix::zeros(hidden_size, 1)),
        }
    }

    /// A state with the given hidden vector and zero cell state.
    pub fn from_hidden(h: Var<T>) -> Self {
        let (rows, _) = h.shape();
        Self {
            h,
            c: Var::constant(Matrix::zeros(rows, 1)),
        }
    }
}

/// A standard LSTM cell with input, forget, output and candidate gates.
///
/// The BiSIM encoder and decoder units (Section IV-C of the paper) pass their
/// complemented feature vectors through this cell; the time-decay factor is
/// applied to the incoming hidden state *before* the cell, so the cell itself
/// stays a textbook LSTM.
#[derive(Clone)]
pub struct LstmCell<T: Scalar = f64> {
    input_gate: Linear<T>,
    forget_gate: Linear<T>,
    output_gate: Linear<T>,
    candidate: Linear<T>,
    input_size: usize,
    hidden_size: usize,
}

impl<T: Scalar> LstmCell<T> {
    /// Creates an LSTM cell for inputs of size `input_size` and hidden state
    /// of size `hidden_size`.
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut impl Rng) -> Self {
        let concat = input_size + hidden_size;
        Self {
            input_gate: Linear::new(concat, hidden_size, rng),
            forget_gate: Linear::new(concat, hidden_size, rng),
            output_gate: Linear::new(concat, hidden_size, rng),
            candidate: Linear::new(concat, hidden_size, rng),
            input_size,
            hidden_size,
        }
    }

    /// Input feature size.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden state size.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Performs one recurrent step.
    ///
    /// `input` has shape `(input_size, 1)`; the returned state carries the new
    /// hidden and cell vectors.
    pub fn step(&self, input: &Var<T>, state: &LstmState<T>) -> LstmState<T> {
        debug_assert_eq!(input.shape().0, self.input_size, "LSTM input size mismatch");
        let concat = Var::concat_rows(&[input.clone(), state.h.clone()]);
        let i = self.input_gate.forward(&concat).sigmoid();
        let f = self.forget_gate.forward(&concat).sigmoid();
        let o = self.output_gate.forward(&concat).sigmoid();
        let g = self.candidate.forward(&concat).tanh();
        let c = f.hadamard(&state.c).add(&i.hadamard(&g));
        let h = o.hadamard(&c.tanh());
        LstmState { h, c }
    }

    /// All trainable parameters of the cell.
    pub fn parameters(&self) -> Vec<Var<T>> {
        let mut params = self.input_gate.parameters();
        params.extend(self.forget_gate.parameters());
        params.extend(self.output_gate.parameters());
        params.extend(self.candidate.parameters());
        params
    }

    /// Copies the current gate parameters into a graph-free
    /// [`LstmCellWeights`] for inference on worker threads.
    pub fn snapshot(&self) -> LstmCellWeights<T> {
        LstmCellWeights {
            input_gate: self.input_gate.snapshot(),
            forget_gate: self.forget_gate.snapshot(),
            output_gate: self.output_gate.snapshot(),
            candidate: self.candidate.snapshot(),
            input_size: self.input_size,
            hidden_size: self.hidden_size,
        }
    }
}

/// The matrix-valued hidden state used by [`LstmCellWeights`] inference.
#[derive(Debug, Clone)]
pub struct LstmStateMatrix<T: Scalar = f64> {
    /// Hidden vector, shape `(hidden_size, 1)`.
    pub h: Matrix<T>,
    /// Cell state, shape `(hidden_size, 1)`.
    pub c: Matrix<T>,
}

impl<T: Scalar> LstmStateMatrix<T> {
    /// A zero-initialised state.
    pub fn zeros(hidden_size: usize) -> Self {
        Self {
            h: Matrix::zeros(hidden_size, 1),
            c: Matrix::zeros(hidden_size, 1),
        }
    }
}

/// A graph-free snapshot of an [`LstmCell`]: plain matrices, so it is
/// `Send + Sync` and shareable across the deterministic thread pool.
///
/// [`LstmCellWeights::step`] mirrors [`LstmCell::step`] operation for
/// operation (same concatenation, same gate order, same shared
/// [`Scalar::sigmoid`]/[`Scalar::tanh`] activations), so inference through a
/// snapshot is bit-identical to running the autodiff graph forward at the
/// same precision.
#[derive(Debug, Clone)]
pub struct LstmCellWeights<T: Scalar = f64> {
    input_gate: crate::linear::LinearWeights<T>,
    forget_gate: crate::linear::LinearWeights<T>,
    output_gate: crate::linear::LinearWeights<T>,
    candidate: crate::linear::LinearWeights<T>,
    input_size: usize,
    hidden_size: usize,
}

impl<T: Scalar> LstmCellWeights<T> {
    /// Input feature size.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden state size.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Rounds the snapshot to another precision.
    pub fn cast<U: Scalar>(&self) -> LstmCellWeights<U> {
        LstmCellWeights {
            input_gate: self.input_gate.cast(),
            forget_gate: self.forget_gate.cast(),
            output_gate: self.output_gate.cast(),
            candidate: self.candidate.cast(),
            input_size: self.input_size,
            hidden_size: self.hidden_size,
        }
    }

    /// Rebuilds a trainable [`LstmCell`] from this snapshot (the inverse of
    /// [`LstmCell::snapshot`]; see [`crate::LinearWeights::to_linear`] for
    /// the role this plays in mini-batch training).
    pub fn to_cell(&self) -> LstmCell<T> {
        LstmCell {
            input_gate: self.input_gate.to_linear(),
            forget_gate: self.forget_gate.to_linear(),
            output_gate: self.output_gate.to_linear(),
            candidate: self.candidate.to_linear(),
            input_size: self.input_size,
            hidden_size: self.hidden_size,
        }
    }

    /// Performs one recurrent step on plain matrices.
    pub fn step(&self, input: &Matrix<T>, state: &LstmStateMatrix<T>) -> LstmStateMatrix<T> {
        debug_assert_eq!(input.rows(), self.input_size, "LSTM input size mismatch");
        let concat = input.vstack(&state.h);
        let i = self.input_gate.forward(&concat).map(Scalar::sigmoid);
        let f = self.forget_gate.forward(&concat).map(Scalar::sigmoid);
        let o = self.output_gate.forward(&concat).map(Scalar::sigmoid);
        let g = self.candidate.forward(&concat).map(Scalar::tanh);
        let c = &f.hadamard(&state.c) + &i.hadamard(&g);
        let h = o.hadamard(&c.map(Scalar::tanh));
        LstmStateMatrix { h, c }
    }

    /// [`LstmCellWeights::step`] with every intermediate drawn from `ws` —
    /// the workspace-backed variant for snapshot-inference loops. Bitwise
    /// identical to `step`: the same scalar operations in the same order,
    /// with capacity-only buffer reuse. The caller owns the returned state
    /// and typically gives the previous step's state back to `ws`.
    pub fn step_ws(
        &self,
        input: &Matrix<T>,
        state: &LstmStateMatrix<T>,
        ws: &mut Workspace<T>,
    ) -> LstmStateMatrix<T> {
        debug_assert_eq!(input.rows(), self.input_size, "LSTM input size mismatch");
        let cols = input.cols();
        // `input.vstack(&state.h)` written into workspace scratch.
        let mut concat = ws.take(input.rows() + state.h.rows(), cols);
        let split = input.data().len();
        concat.data_mut()[..split].copy_from_slice(input.data());
        concat.data_mut()[split..].copy_from_slice(state.h.data());
        let mut i = self.input_gate.forward_ws(&concat, ws);
        let mut f = self.forget_gate.forward_ws(&concat, ws);
        let mut o = self.output_gate.forward_ws(&concat, ws);
        let mut g = self.candidate.forward_ws(&concat, ws);
        for v in i.data_mut() {
            *v = v.sigmoid();
        }
        for v in f.data_mut() {
            *v = v.sigmoid();
        }
        for v in o.data_mut() {
            *v = v.sigmoid();
        }
        for v in g.data_mut() {
            *v = v.tanh();
        }
        // c = f ∘ c_prev + i ∘ g, h = o ∘ tanh(c) — element-for-element the
        // products and the sum of the hadamard/add/map chain in `step`.
        let mut c = ws.take(state.c.rows(), cols);
        for (j, cv) in c.data_mut().iter_mut().enumerate() {
            *cv = f.data()[j] * state.c.data()[j] + i.data()[j] * g.data()[j];
        }
        let mut h = ws.take(state.c.rows(), cols);
        for (j, hv) in h.data_mut().iter_mut().enumerate() {
            *hv = o.data()[j] * c.data()[j].tanh();
        }
        ws.give(concat);
        ws.give(i);
        ws.give(f);
        ws.give(o);
        ws.give(g);
        LstmStateMatrix { h, c }
    }

    /// Bytes this snapshot keeps resident (the four gate layers at `T`).
    pub fn resident_bytes(&self) -> usize {
        self.input_gate.resident_bytes()
            + self.forget_gate.resident_bytes()
            + self.output_gate.resident_bytes()
            + self.candidate.resident_bytes()
    }

    /// Returns the snapshot's matrices to `ws` for capacity reuse — the
    /// give-back half of a per-task [`LstmCellWeightsBf16::decode_ws`]
    /// cycle.
    pub fn recycle(self, ws: &mut Workspace<T>) {
        self.input_gate.recycle(ws);
        self.forget_gate.recycle(ws);
        self.output_gate.recycle(ws);
        self.candidate.recycle(ws);
    }

    /// The four gate snapshots in step order `(input, forget, output,
    /// candidate)` — read access for snapshot export.
    pub fn gates(&self) -> [&crate::linear::LinearWeights<T>; 4] {
        [
            &self.input_gate,
            &self.forget_gate,
            &self.output_gate,
            &self.candidate,
        ]
    }

    /// Rebuilds a snapshot from its four gate layers (in
    /// [`LstmCellWeights::gates`] order). The cell's sizes are recovered
    /// from the gate shapes: each gate maps `input_size + hidden_size`
    /// concatenated features to `hidden_size` outputs.
    ///
    /// # Panics
    /// Panics if the gate shapes disagree, or imply a non-positive input
    /// size.
    pub fn from_gates(
        input_gate: crate::linear::LinearWeights<T>,
        forget_gate: crate::linear::LinearWeights<T>,
        output_gate: crate::linear::LinearWeights<T>,
        candidate: crate::linear::LinearWeights<T>,
    ) -> Self {
        let hidden_size = input_gate.weight().rows();
        let concat = input_gate.weight().cols();
        for gate in [&forget_gate, &output_gate, &candidate] {
            assert_eq!(
                gate.weight().shape(),
                (hidden_size, concat),
                "LSTM gate shapes disagree"
            );
        }
        assert!(concat > hidden_size, "LSTM gate implies empty input");
        Self {
            input_gate,
            forget_gate,
            output_gate,
            candidate,
            input_size: concat - hidden_size,
            hidden_size,
        }
    }
}

/// An [`LstmCellWeights<f32>`] snapshot stored as truncated bfloat16 — half
/// the resident bytes, decoded back into pooled `f32` scratch per inference
/// task (`RM_SNAPSHOT_DTYPE=bf16`). Storage-only; see [`rm_tensor::half`]
/// for the epsilon contract.
#[derive(Debug, Clone)]
pub struct LstmCellWeightsBf16 {
    input_gate: crate::linear::LinearWeightsBf16,
    forget_gate: crate::linear::LinearWeightsBf16,
    output_gate: crate::linear::LinearWeightsBf16,
    candidate: crate::linear::LinearWeightsBf16,
    input_size: usize,
    hidden_size: usize,
}

impl LstmCellWeightsBf16 {
    /// Encodes an `f32` snapshot by truncating every weight to bfloat16.
    pub fn from_weights(w: &LstmCellWeights<f32>) -> Self {
        Self {
            input_gate: crate::linear::LinearWeightsBf16::from_weights(&w.input_gate),
            forget_gate: crate::linear::LinearWeightsBf16::from_weights(&w.forget_gate),
            output_gate: crate::linear::LinearWeightsBf16::from_weights(&w.output_gate),
            candidate: crate::linear::LinearWeightsBf16::from_weights(&w.candidate),
            input_size: w.input_size,
            hidden_size: w.hidden_size,
        }
    }

    /// Decodes into an `f32` snapshot whose matrices are checked out of
    /// `ws`; pair with [`LstmCellWeights::recycle`] to return them.
    pub fn decode_ws(&self, ws: &mut Workspace<f32>) -> LstmCellWeights<f32> {
        LstmCellWeights {
            input_gate: self.input_gate.decode_ws(ws),
            forget_gate: self.forget_gate.decode_ws(ws),
            output_gate: self.output_gate.decode_ws(ws),
            candidate: self.candidate.decode_ws(ws),
            input_size: self.input_size,
            hidden_size: self.hidden_size,
        }
    }

    /// Bytes this snapshot keeps resident (2 per weight).
    pub fn resident_bytes(&self) -> usize {
        self.input_gate.resident_bytes()
            + self.forget_gate.resident_bytes()
            + self.output_gate.resident_bytes()
            + self.candidate.resident_bytes()
    }
}

/// A lightweight sigmoid-gated recurrent cell:
/// `h' = tanh(W_h h + U_x x + b)` followed by a sigmoid update gate.
///
/// BRITS-style baselines use this cheaper cell; BiSIM uses [`LstmCell`].
#[derive(Clone)]
pub struct SimpleRecurrentCell<T: Scalar = f64> {
    hidden_map: Linear<T>,
    input_map: Linear<T>,
    input_size: usize,
    hidden_size: usize,
}

impl<T: Scalar> SimpleRecurrentCell<T> {
    /// Creates a simple recurrent cell.
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut impl Rng) -> Self {
        Self {
            hidden_map: Linear::new(hidden_size, hidden_size, rng),
            input_map: Linear::new(input_size, hidden_size, rng),
            input_size,
            hidden_size,
        }
    }

    /// Input feature size.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden state size.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// One recurrent step: `h' = tanh(W_h h + W_x x + b)`.
    pub fn step(&self, input: &Var<T>, hidden: &Var<T>) -> Var<T> {
        debug_assert_eq!(input.shape().0, self.input_size);
        debug_assert_eq!(hidden.shape().0, self.hidden_size);
        self.hidden_map
            .forward(hidden)
            .add(&self.input_map.forward(input))
            .tanh()
    }

    /// All trainable parameters of the cell.
    pub fn parameters(&self) -> Vec<Var<T>> {
        let mut params = self.hidden_map.parameters();
        params.extend(self.input_map.parameters());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lstm_step_produces_bounded_hidden_state() {
        let mut rng = StdRng::seed_from_u64(3);
        let cell: LstmCell = LstmCell::new(4, 8, &mut rng);
        let mut state = LstmState::zeros(8);
        for t in 0..10 {
            let input = Var::constant(Matrix::filled(4, 1, (t as f64).sin()));
            state = cell.step(&input, &state);
            let h = state.h.value();
            assert_eq!(h.shape(), (8, 1));
            assert!(
                h.data().iter().all(|v| v.abs() <= 1.0 + 1e-9),
                "tanh-bounded"
            );
            assert!(h.is_finite());
        }
    }

    #[test]
    fn lstm_parameters_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let cell: LstmCell = LstmCell::new(3, 5, &mut rng);
        // 4 gates, each with weight + bias.
        assert_eq!(cell.parameters().len(), 8);
        assert_eq!(cell.input_size(), 3);
        assert_eq!(cell.hidden_size(), 5);
    }

    #[test]
    fn lstm_gradients_flow_to_all_gates() {
        let mut rng = StdRng::seed_from_u64(5);
        let cell: LstmCell = LstmCell::new(2, 3, &mut rng);
        let state = LstmState::zeros(3);
        let input = Var::constant(Matrix::column(&[1.0, -1.0]));
        let next = cell.step(&input, &state);
        let loss = next.h.square().sum();
        loss.backward();
        let with_grad = cell
            .parameters()
            .iter()
            .filter(|p| p.grad().frobenius_norm() > 0.0)
            .count();
        // The forget gate's gradient can be zero because c_0 = 0, but the other
        // three gates (6 parameter tensors) must receive gradient.
        assert!(
            with_grad >= 6,
            "only {with_grad} parameters received gradient"
        );
    }

    #[test]
    fn lstm_state_from_hidden_has_zero_cell() {
        let h = Var::constant(Matrix::column(&[0.1, 0.2]));
        let s = LstmState::from_hidden(h);
        assert_eq!(s.c.value().sum(), 0.0);
        assert_eq!(s.c.shape(), (2, 1));
    }

    #[test]
    fn simple_cell_step_and_params() {
        let mut rng = StdRng::seed_from_u64(6);
        let cell: SimpleRecurrentCell = SimpleRecurrentCell::new(4, 6, &mut rng);
        let h0 = Var::constant(Matrix::zeros(6, 1));
        let x = Var::constant(Matrix::column(&[1.0, 2.0, 3.0, 4.0]));
        let h1 = cell.step(&x, &h0);
        assert_eq!(h1.shape(), (6, 1));
        assert!(h1.value().data().iter().all(|v| v.abs() <= 1.0));
        assert_eq!(cell.parameters().len(), 4);
    }

    #[test]
    fn bf16_cell_snapshot_halves_bytes_and_steps_stay_epsilon_close() {
        let mut rng = StdRng::seed_from_u64(17);
        let cell: LstmCell = LstmCell::new(3, 5, &mut rng);
        let w32 = cell.snapshot().cast::<f32>();
        let packed = LstmCellWeightsBf16::from_weights(&w32);
        assert_eq!(packed.resident_bytes() * 2, w32.resident_bytes());

        let mut ws = Workspace::new();
        let decoded = packed.decode_ws(&mut ws);
        let mut exact_state = LstmStateMatrix::zeros(5);
        let mut approx_state = LstmStateMatrix::zeros(5);
        for t in 0..4 {
            let x: Matrix<f32> = Matrix::from_fn(3, 1, |r, _| 0.3 * (t as f32) - 0.1 * r as f32);
            exact_state = w32.step(&x, &exact_state);
            approx_state = decoded.step(&x, &approx_state);
        }
        // Gate outputs are squashed into [-1, 1], so a loose absolute bound
        // on the 2^-7-truncated weights is enough to pin the decode path.
        for (a, b) in exact_state
            .h
            .data()
            .iter()
            .chain(exact_state.c.data())
            .zip(approx_state.h.data().iter().chain(approx_state.c.data()))
        {
            assert!((a - b).abs() < 0.15, "bf16 LSTM drifted: {a} vs {b}");
        }
        decoded.recycle(&mut ws);
    }

    #[test]
    fn snapshot_inference_is_bit_identical_to_graph_inference() {
        let mut rng = StdRng::seed_from_u64(8);
        let cell: LstmCell = LstmCell::new(3, 5, &mut rng);
        let weights = cell.snapshot();
        let mut graph_state = LstmState::zeros(5);
        let mut matrix_state = LstmStateMatrix::zeros(5);
        for t in 0..6 {
            let x = Matrix::filled(3, 1, (t as f64 * 0.7).cos());
            graph_state = cell.step(&Var::constant(x.clone()), &graph_state);
            matrix_state = weights.step(&x, &matrix_state);
            assert!(graph_state.h.value().bits_eq(&matrix_state.h));
        }
        assert_eq!(weights.input_size(), 3);
        assert_eq!(weights.hidden_size(), 5);
    }

    /// Graph-vs-snapshot parity after the activation dedup, at f32: an
    /// `LstmCell<f32>` built from the rounded weights and the
    /// `LstmCellWeights<f32>` cast of the f64 snapshot walk through the same
    /// [`Scalar::sigmoid`]/[`Scalar::tanh`] and must agree bitwise.
    #[test]
    fn f32_snapshot_inference_is_bit_identical_to_f32_graph_inference() {
        let mut rng = StdRng::seed_from_u64(12);
        let cell64: LstmCell = LstmCell::new(3, 5, &mut rng);
        let weights32 = cell64.snapshot().cast::<f32>();
        // An f32 cell seeded identically: Linear::new consumes the RNG in f64
        // and rounds, so re-running the constructor reproduces the cast.
        let mut rng2 = StdRng::seed_from_u64(12);
        let cell32: LstmCell<f32> = LstmCell::new(3, 5, &mut rng2);
        let mut graph_state: LstmState<f32> = LstmState::zeros(5);
        let mut matrix_state: LstmStateMatrix<f32> = LstmStateMatrix::zeros(5);
        for t in 0..6 {
            let x: Matrix<f32> = Matrix::filled(3, 1, ((t as f64 * 0.7).cos()) as f32);
            graph_state = cell32.step(&Var::constant(x.clone()), &graph_state);
            matrix_state = weights32.step(&x, &matrix_state);
            assert!(graph_state.h.value().bits_eq(&matrix_state.h));
        }
    }

    #[test]
    fn workspace_step_is_bit_identical_to_plain_step() {
        let mut rng = StdRng::seed_from_u64(14);
        let cell: LstmCell = LstmCell::new(3, 5, &mut rng);
        let weights = cell.snapshot();
        let mut plain_state = LstmStateMatrix::zeros(5);
        let mut ws_state = LstmStateMatrix::zeros(5);
        let mut ws = Workspace::new();
        // Poison the workspace so checkouts must reinitialise their buffers.
        ws.give(Matrix::filled(8, 1, f64::NAN));
        for t in 0..6 {
            let x = Matrix::filled(3, 1, (t as f64 * 0.9).sin());
            plain_state = weights.step(&x, &plain_state);
            let next = weights.step_ws(&x, &ws_state, &mut ws);
            ws.give(ws_state.h);
            ws.give(ws_state.c);
            ws_state = next;
            assert!(plain_state.h.bits_eq(&ws_state.h));
            assert!(plain_state.c.bits_eq(&ws_state.c));
        }
    }

    #[test]
    fn identical_inputs_give_identical_outputs() {
        let mut rng = StdRng::seed_from_u64(7);
        let cell: LstmCell = LstmCell::new(2, 4, &mut rng);
        let state = LstmState::zeros(4);
        let input = Var::constant(Matrix::column(&[0.3, -0.7]));
        let a = cell.step(&input, &state).h.value();
        let b = cell.step(&input, &state).h.value();
        assert!(a.approx_eq(&b, 0.0));
    }
}
