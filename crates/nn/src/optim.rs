//! Gradient-descent optimizers, generic over the [`Scalar`] precision.
//!
//! Training in this workspace runs at the default `f64` (the
//! determinism-contract precision); the generic instantiation exists so the
//! optimizer math monomorphises alongside `Var<f32>` graphs.
//!
//! # Mini-batch gradient accumulation
//!
//! The optimizer contract is split in two: gradients can be *accumulated*
//! into a [`GradientBatch`] (an ordered sum over per-example gradients,
//! independent of which thread produced each term) and then *applied* as one
//! [`Optimizer::step`] via [`Optimizer::apply_batch`]. A batch holding a
//! single example's gradient reproduces the plain
//! `zero_grad → backward → step` trajectory bitwise: summing one gradient
//! into a zeroed buffer and re-depositing it into the (zeroed) parameter
//! gradients is exactly the accumulation `backward` itself performs.

use rm_tensor::{Matrix, Scalar, Var};

/// A first-order optimizer over a fixed set of parameters.
pub trait Optimizer<T: Scalar = f64> {
    /// Applies one update step using the gradients currently accumulated in
    /// the parameters.
    fn step(&mut self);

    /// Clears the accumulated gradients of all managed parameters.
    fn zero_grad(&self);

    /// The parameters managed by this optimizer.
    fn parameters(&self) -> &[Var<T>];

    /// Applies one update step from an externally accumulated gradient
    /// batch: the parameters' gradient buffers are zeroed, the batch sums
    /// are deposited into them, and a single [`Optimizer::step`] runs.
    ///
    /// # Panics
    /// Panics if the batch was not built for this optimizer's parameter
    /// list (length or shape mismatch).
    fn apply_batch(&mut self, batch: &GradientBatch<T>) {
        batch.load_into(self.parameters());
        self.step();
    }
}

/// An ordered accumulator for mini-batch gradients, matching one optimizer's
/// parameter list tensor for tensor.
///
/// Per-example gradients — typically extracted from detached graph replicas
/// evaluated on worker threads — are summed with [`GradientBatch::accumulate`]
/// **in the order the calls are made**. Callers that fan the per-example
/// backward passes out in parallel must therefore accumulate the results in
/// example-index order (e.g. from an order-preserving `par_map`), which makes
/// the summed gradient — and thus the whole training trajectory — bitwise
/// independent of which worker produced each term.
pub struct GradientBatch<T: Scalar = f64> {
    grads: Vec<Matrix<T>>,
    examples: usize,
}

impl<T: Scalar> GradientBatch<T> {
    /// Creates a zeroed batch shaped like `params` (one gradient buffer per
    /// parameter tensor, in the same order).
    pub fn zeros_like(params: &[Var<T>]) -> Self {
        Self {
            grads: params
                .iter()
                .map(|p| {
                    let (r, c) = p.shape();
                    Matrix::zeros(r, c)
                })
                .collect(),
            examples: 0,
        }
    }

    /// Adds one example's per-parameter gradients into the running sums.
    ///
    /// # Panics
    /// Panics if `grads` does not match the batch's parameter list (length
    /// or shape).
    pub fn accumulate(&mut self, grads: &[Matrix<T>]) {
        assert_eq!(
            self.grads.len(),
            grads.len(),
            "gradient batch holds {} tensors, example provided {}",
            self.grads.len(),
            grads.len()
        );
        for (sum, g) in self.grads.iter_mut().zip(grads.iter()) {
            sum.axpy(T::ONE, g);
        }
        self.examples += 1;
    }

    /// Number of examples accumulated so far.
    pub fn examples(&self) -> usize {
        self.examples
    }

    /// The per-parameter gradient sums accumulated so far.
    pub fn sums(&self) -> &[Matrix<T>] {
        &self.grads
    }

    /// Zeroes `params`' gradient buffers and deposits the accumulated sums
    /// into them (the load half of [`Optimizer::apply_batch`]).
    ///
    /// # Panics
    /// Panics if `params` does not match the batch (length or shape).
    pub fn load_into(&self, params: &[Var<T>]) {
        assert_eq!(
            self.grads.len(),
            params.len(),
            "gradient batch holds {} tensors, optimizer manages {}",
            self.grads.len(),
            params.len()
        );
        for (p, sum) in params.iter().zip(self.grads.iter()) {
            p.zero_grad();
            p.add_grad(sum);
        }
    }
}

/// Plain stochastic gradient descent with optional gradient clipping.
pub struct Sgd<T: Scalar = f64> {
    params: Vec<Var<T>>,
    learning_rate: T,
    clip: Option<T>,
}

impl<T: Scalar> Sgd<T> {
    /// Creates an SGD optimizer.
    pub fn new(params: Vec<Var<T>>, learning_rate: T) -> Self {
        Self {
            params,
            learning_rate,
            clip: None,
        }
    }

    /// Enables element-wise gradient clipping to `[-clip, clip]`.
    pub fn with_clip(mut self, clip: T) -> Self {
        self.clip = Some(clip);
        self
    }
}

impl<T: Scalar> Optimizer<T> for Sgd<T> {
    fn step(&mut self) {
        let lr = self.learning_rate;
        let clip = self.clip;
        for p in &self.params {
            p.update_value(|value, grad| {
                for (v, g) in value.data_mut().iter_mut().zip(grad.data().iter()) {
                    let g = match clip {
                        Some(c) => g.clamp(-c, c),
                        None => *g,
                    };
                    *v -= lr * g;
                }
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn parameters(&self) -> &[Var<T>] {
        &self.params
    }
}

/// The Adam optimizer (Kingma & Ba), as used to train BiSIM and the neural
/// baselines in the paper (learning rate 0.001).
pub struct Adam<T: Scalar = f64> {
    params: Vec<Var<T>>,
    learning_rate: T,
    beta1: T,
    beta2: T,
    epsilon: T,
    clip: Option<T>,
    step_count: u64,
    first_moment: Vec<Matrix<T>>,
    second_moment: Vec<Matrix<T>>,
}

impl<T: Scalar> Adam<T> {
    /// Creates an Adam optimizer with the standard hyper-parameters
    /// (`beta1 = 0.9`, `beta2 = 0.999`, `epsilon = 1e-8`).
    pub fn new(params: Vec<Var<T>>, learning_rate: T) -> Self {
        let first_moment = params
            .iter()
            .map(|p| {
                let (r, c) = p.shape();
                Matrix::zeros(r, c)
            })
            .collect();
        let second_moment = params
            .iter()
            .map(|p| {
                let (r, c) = p.shape();
                Matrix::zeros(r, c)
            })
            .collect();
        Self {
            params,
            learning_rate,
            beta1: T::from_f64(0.9),
            beta2: T::from_f64(0.999),
            epsilon: T::from_f64(1e-8),
            clip: None,
            step_count: 0,
            first_moment,
            second_moment,
        }
    }

    /// Enables element-wise gradient clipping to `[-clip, clip]`.
    pub fn with_clip(mut self, clip: T) -> Self {
        self.clip = Some(clip);
        self
    }

    /// Number of update steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step_count
    }
}

impl<T: Scalar> Optimizer<T> for Adam<T> {
    fn step(&mut self) {
        self.step_count += 1;
        let t = T::from_f64(self.step_count as f64);
        let bias1 = T::ONE - self.beta1.powf(t);
        let bias2 = T::ONE - self.beta2.powf(t);
        for (i, p) in self.params.iter().enumerate() {
            let m = &mut self.first_moment[i];
            let v = &mut self.second_moment[i];
            let (beta1, beta2, eps, lr, clip) = (
                self.beta1,
                self.beta2,
                self.epsilon,
                self.learning_rate,
                self.clip,
            );
            p.update_value(|value, grad| {
                for idx in 0..value.data().len() {
                    let mut g = grad.data()[idx];
                    if let Some(c) = clip {
                        g = g.clamp(-c, c);
                    }
                    let m_i = beta1 * m.data()[idx] + (T::ONE - beta1) * g;
                    let v_i = beta2 * v.data()[idx] + (T::ONE - beta2) * g * g;
                    m.data_mut()[idx] = m_i;
                    v.data_mut()[idx] = v_i;
                    let m_hat = m_i / bias1;
                    let v_hat = v_i / bias2;
                    value.data_mut()[idx] -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn parameters(&self) -> &[Var<T>] {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimises (w - 3)^2 and checks convergence.
    fn optimise_quadratic(mut opt: impl Optimizer, steps: usize) -> f64 {
        for _ in 0..steps {
            let w = opt.parameters()[0].clone();
            opt.zero_grad();
            let loss = w.add_const(-3.0).square().sum();
            loss.backward();
            opt.step();
        }
        opt.parameters()[0].value().get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = Var::parameter(Matrix::from_vec(1, 1, vec![0.0]));
        let final_w = optimise_quadratic(Sgd::new(vec![w], 0.1), 200);
        assert!((final_w - 3.0).abs() < 1e-3, "w = {final_w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = Var::parameter(Matrix::from_vec(1, 1, vec![0.0]));
        let final_w = optimise_quadratic(Adam::new(vec![w], 0.1), 500);
        assert!((final_w - 3.0).abs() < 1e-2, "w = {final_w}");
    }

    #[test]
    fn adam_converges_at_f32_too() {
        let w: Var<f32> = Var::parameter(Matrix::from_vec(1, 1, vec![0.0f32]));
        let mut opt = Adam::new(vec![w.clone()], 0.1f32);
        for _ in 0..500 {
            opt.zero_grad();
            let loss = w.add_const(-3.0f32).square().sum();
            loss.backward();
            opt.step();
        }
        let final_w = w.value().get(0, 0);
        assert!((final_w - 3.0).abs() < 1e-2, "w = {final_w}");
    }

    #[test]
    fn adam_tracks_step_count_and_zeroes_grads() {
        let w = Var::parameter(Matrix::from_vec(1, 1, vec![1.0]));
        let mut adam = Adam::new(vec![w.clone()], 0.01);
        let loss = w.square().sum();
        loss.backward();
        assert!(w.grad().get(0, 0) != 0.0);
        adam.step();
        assert_eq!(adam.steps_taken(), 1);
        adam.zero_grad();
        assert_eq!(w.grad().get(0, 0), 0.0);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let w = Var::parameter(Matrix::from_vec(1, 1, vec![0.0]));
        let mut opt = Sgd::new(vec![w.clone()], 1.0).with_clip(0.5);
        opt.zero_grad();
        // Gradient of 1000 * w at w=0 is 1000, clipped to 0.5.
        let big = w.scale(1000.0).sum();
        big.backward();
        opt.step();
        assert!((w.value().get(0, 0) + 0.5).abs() < 1e-12);
    }

    /// A single-example batch must reproduce the plain
    /// `zero_grad → backward → step` trajectory bitwise — the contract the
    /// batched trainers rely on for `batch_size = 1`.
    #[test]
    fn single_example_batch_matches_direct_step_bitwise() {
        let run = |batched: bool| -> Vec<u64> {
            let w = Var::parameter(Matrix::from_vec(2, 1, vec![0.3, -1.7]));
            let mut opt = Adam::new(vec![w.clone()], 0.05).with_clip(5.0);
            for step in 0..20 {
                let target = 1.0 + step as f64 * 0.1;
                if batched {
                    // Compute the gradient on a detached replica of the graph.
                    let replica = Var::parameter(w.value());
                    let loss = replica.add_const(-target).square().sum();
                    loss.backward();
                    let mut batch = GradientBatch::zeros_like(opt.parameters());
                    batch.accumulate(&[replica.grad()]);
                    assert_eq!(batch.examples(), 1);
                    opt.apply_batch(&batch);
                } else {
                    opt.zero_grad();
                    let loss = w.add_const(-target).square().sum();
                    loss.backward();
                    opt.step();
                }
            }
            w.value().data().iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(run(true), run(false));
    }

    /// Accumulating N per-example gradients and applying once equals one
    /// step over the manually summed gradient.
    #[test]
    fn batch_accumulation_sums_in_order() {
        let w = Var::parameter(Matrix::from_vec(1, 1, vec![2.0]));
        let mut opt = Sgd::new(vec![w.clone()], 0.1);
        let mut batch = GradientBatch::zeros_like(opt.parameters());
        for g in [0.25, -1.5, 3.0] {
            batch.accumulate(&[Matrix::from_vec(1, 1, vec![g])]);
        }
        assert_eq!(batch.examples(), 3);
        assert_eq!(batch.sums()[0].get(0, 0), 0.25 - 1.5 + 3.0);
        opt.apply_batch(&batch);
        assert!((w.value().get(0, 0) - (2.0 - 0.1 * 1.75)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gradient batch holds")]
    fn batch_rejects_mismatched_example() {
        let w = Var::parameter(Matrix::from_vec(1, 1, vec![0.0]));
        let mut batch = GradientBatch::zeros_like(&[w]);
        batch.accumulate(&[]);
    }

    #[test]
    fn multi_parameter_update_touches_all() {
        let a = Var::parameter(Matrix::from_vec(1, 1, vec![1.0]));
        let b = Var::parameter(Matrix::from_vec(1, 1, vec![2.0]));
        let mut opt = Adam::new(vec![a.clone(), b.clone()], 0.05);
        for _ in 0..50 {
            opt.zero_grad();
            let loss = a.square().add(&b.square()).sum();
            loss.backward();
            opt.step();
        }
        assert!(a.value().get(0, 0).abs() < 1.0);
        assert!(b.value().get(0, 0).abs() < 2.0);
    }
}
