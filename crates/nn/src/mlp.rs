//! Multilayer perceptrons.

// rm-lint: hot-path
// BiSIM's attention alignment MLP runs once per (reference point, access
// point) pair per step; products reach `matmul_into` through the Linear
// layers, and `forward_ws` keeps snapshot inference allocation-free.

use rand::Rng;
use rm_tensor::{Matrix, Scalar, Var, Workspace};

use crate::{Linear, LinearWeights};

/// Activation function applied between MLP layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Rectified linear unit.
    Relu,
    /// No activation (identity).
    Identity,
}

impl Activation {
    /// Applies the activation to a variable at any precision.
    pub fn apply<T: Scalar>(self, x: &Var<T>) -> Var<T> {
        match self {
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => x.sigmoid(),
            Activation::Relu => x.relu(),
            Activation::Identity => x.clone(),
        }
    }

    /// Applies the activation to a plain matrix in place — the graph-free
    /// counterpart of [`Activation::apply`], using the same [`Scalar`]
    /// definitions element for element, so snapshot inference stays
    /// bit-identical to the graph forward.
    pub fn apply_in_place<T: Scalar>(self, m: &mut Matrix<T>) {
        match self {
            Activation::Tanh => {
                for v in m.data_mut() {
                    *v = v.tanh();
                }
            }
            Activation::Sigmoid => {
                for v in m.data_mut() {
                    *v = v.sigmoid();
                }
            }
            Activation::Relu => {
                for v in m.data_mut() {
                    *v = v.relu();
                }
            }
            Activation::Identity => {}
        }
    }
}

/// A feed-forward network of [`Linear`] layers with a hidden activation and an
/// optional output activation.
///
/// BiSIM's attention alignment function (`e_ji = MLP(s_{j-1}, h''_i)`, Eq. 10)
/// is an instance with a single hidden layer and a scalar output.
#[derive(Clone)]
pub struct Mlp<T: Scalar = f64> {
    layers: Vec<Linear<T>>,
    hidden_activation: Activation,
    output_activation: Activation,
}

impl<T: Scalar> Mlp<T> {
    /// Creates an MLP with the given layer sizes, e.g. `&[8, 16, 1]` for a
    /// network mapping 8 inputs through one 16-unit hidden layer to 1 output.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given.
    pub fn new(
        sizes: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            sizes.len() >= 2,
            "an MLP needs at least input and output sizes"
        );
        let layers = sizes
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Self {
            layers,
            hidden_activation,
            output_activation,
        }
    }

    /// Input feature size.
    pub fn in_features(&self) -> usize {
        self.layers.first().map(Linear::in_features).unwrap_or(0)
    }

    /// Output feature size.
    pub fn out_features(&self) -> usize {
        self.layers.last().map(Linear::out_features).unwrap_or(0)
    }

    /// Applies the network to a `(in_features, batch)` input.
    pub fn forward(&self, x: &Var<T>) -> Var<T> {
        let last = self.layers.len() - 1;
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            h = if i == last {
                self.output_activation.apply(&h)
            } else {
                self.hidden_activation.apply(&h)
            };
        }
        h
    }

    /// All trainable parameters.
    pub fn parameters(&self) -> Vec<Var<T>> {
        self.layers.iter().flat_map(Linear::parameters).collect()
    }

    /// Copies the current layer parameters into a graph-free [`MlpWeights`]
    /// snapshot (`Send + Sync`, for worker-side graph rebuilds).
    pub fn snapshot(&self) -> MlpWeights<T> {
        MlpWeights {
            layers: self.layers.iter().map(Linear::snapshot).collect(),
            hidden_activation: self.hidden_activation,
            output_activation: self.output_activation,
        }
    }
}

/// A graph-free snapshot of an [`Mlp`]: plain matrices plus the activation
/// choices, so it is `Send + Sync` and can cross the deterministic thread
/// pool (unlike [`Var`], whose nodes are `Rc`-shared).
#[derive(Debug, Clone)]
pub struct MlpWeights<T: Scalar = f64> {
    layers: Vec<LinearWeights<T>>,
    hidden_activation: Activation,
    output_activation: Activation,
}

impl<T: Scalar> MlpWeights<T> {
    /// Assembles a snapshot from per-layer weights — the import constructor
    /// for weights decoded from a persisted artifact (the inverse of
    /// [`MlpWeights::layers`], as [`LinearWeights::from_parts`]
    /// (crate::LinearWeights::from_parts) is for one layer).
    ///
    /// # Panics
    /// Panics if `layers` is empty or consecutive layer shapes disagree.
    pub fn from_layers(
        layers: Vec<LinearWeights<T>>,
        hidden_activation: Activation,
        output_activation: Activation,
    ) -> Self {
        assert!(!layers.is_empty(), "an MLP needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].weight().rows(),
                pair[1].weight().cols(),
                "consecutive MLP layer shapes disagree"
            );
        }
        Self {
            layers,
            hidden_activation,
            output_activation,
        }
    }

    /// The per-layer weight snapshots, input to output.
    pub fn layers(&self) -> &[LinearWeights<T>] {
        &self.layers
    }

    /// Rounds the snapshot to another precision.
    pub fn cast<U: Scalar>(&self) -> MlpWeights<U> {
        MlpWeights {
            layers: self.layers.iter().map(LinearWeights::cast).collect(),
            hidden_activation: self.hidden_activation,
            output_activation: self.output_activation,
        }
    }

    /// Rebuilds a trainable [`Mlp`] from this snapshot (the inverse of
    /// [`Mlp::snapshot`]; see [`LinearWeights::to_linear`] for the role this
    /// plays in mini-batch training).
    pub fn to_mlp(&self) -> Mlp<T> {
        Mlp {
            layers: self.layers.iter().map(LinearWeights::to_linear).collect(),
            hidden_activation: self.hidden_activation,
            output_activation: self.output_activation,
        }
    }

    /// Applies the network to a `(in_features, batch)` input on plain
    /// matrices — the same layers and activations in the same order as
    /// [`Mlp::forward`], so the output is bit-identical to the graph forward
    /// at the same precision.
    pub fn forward(&self, x: &Matrix<T>) -> Matrix<T> {
        let last = self.layers.len() - 1;
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut out = layer.forward(&h);
            let act = if i == last {
                self.output_activation
            } else {
                self.hidden_activation
            };
            act.apply_in_place(&mut out);
            h = out;
        }
        h
    }

    /// [`MlpWeights::forward`] with every intermediate drawn from `ws` — the
    /// workspace-backed variant for snapshot-inference loops. Bitwise
    /// identical to `forward` (reuse is capacity-only).
    pub fn forward_ws(&self, x: &Matrix<T>, ws: &mut Workspace<T>) -> Matrix<T> {
        let last = self.layers.len() - 1;
        let mut h: Option<Matrix<T>> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut out = layer.forward_ws(h.as_ref().unwrap_or(x), ws);
            let act = if i == last {
                self.output_activation
            } else {
                self.hidden_activation
            };
            act.apply_in_place(&mut out);
            if let Some(prev) = h.replace(out) {
                ws.give(prev);
            }
        }
        h.expect("an MLP always has at least one layer")
    }

    /// Bytes this snapshot keeps resident (all layers at `T`).
    pub fn resident_bytes(&self) -> usize {
        self.layers.iter().map(LinearWeights::resident_bytes).sum()
    }

    /// Returns the snapshot's matrices to `ws` for capacity reuse — the
    /// give-back half of a per-task [`MlpWeightsBf16::decode_ws`] cycle.
    pub fn recycle(self, ws: &mut Workspace<T>) {
        for layer in self.layers {
            layer.recycle(ws);
        }
    }
}

/// An [`MlpWeights<f32>`] snapshot stored as truncated bfloat16 — half the
/// resident bytes, decoded back into pooled `f32` scratch per inference task
/// (`RM_SNAPSHOT_DTYPE=bf16`). Storage-only; see [`rm_tensor::half`] for the
/// epsilon contract.
#[derive(Debug, Clone)]
pub struct MlpWeightsBf16 {
    layers: Vec<crate::linear::LinearWeightsBf16>,
    hidden_activation: Activation,
    output_activation: Activation,
}

impl MlpWeightsBf16 {
    /// Encodes an `f32` snapshot by truncating every weight to bfloat16.
    pub fn from_weights(w: &MlpWeights<f32>) -> Self {
        Self {
            layers: w
                .layers
                .iter()
                .map(crate::linear::LinearWeightsBf16::from_weights)
                .collect(),
            hidden_activation: w.hidden_activation,
            output_activation: w.output_activation,
        }
    }

    /// Decodes into an `f32` snapshot whose matrices are checked out of
    /// `ws`; pair with [`MlpWeights::recycle`] to return them.
    pub fn decode_ws(&self, ws: &mut Workspace<f32>) -> MlpWeights<f32> {
        MlpWeights {
            layers: self.layers.iter().map(|l| l.decode_ws(ws)).collect(),
            hidden_activation: self.hidden_activation,
            output_activation: self.output_activation,
        }
    }

    /// Bytes this snapshot keeps resident (2 per weight).
    pub fn resident_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(crate::linear::LinearWeightsBf16::resident_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rm_tensor::Matrix;

    #[test]
    fn mlp_shapes_and_parameter_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&[4, 8, 3], Activation::Tanh, Activation::Identity, &mut rng);
        assert_eq!(mlp.in_features(), 4);
        assert_eq!(mlp.out_features(), 3);
        // 2 layers x (weight + bias)
        assert_eq!(mlp.parameters().len(), 4);
        let x = Var::constant(Matrix::column(&[1.0, 2.0, 3.0, 4.0]));
        assert_eq!(mlp.forward(&x).shape(), (3, 1));
    }

    #[test]
    fn sigmoid_output_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Sigmoid, &mut rng);
        let x = Var::constant(Matrix::column(&[100.0, -100.0]));
        let y = mlp.forward(&x).scalar_value();
        assert!((0.0..=1.0).contains(&y));
    }

    #[test]
    fn gradients_reach_first_layer() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&[3, 5, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let x = Var::constant(Matrix::column(&[0.5, -0.5, 1.0]));
        let loss = mlp.forward(&x).square().sum();
        loss.backward();
        let first_layer_grad = mlp.parameters()[0].grad();
        assert!(first_layer_grad.frobenius_norm() > 0.0);
    }

    #[test]
    fn activation_apply_matches_var_ops() {
        let x = Var::constant(Matrix::column(&[-1.0, 0.0, 2.0]));
        assert!(Activation::Identity
            .apply(&x)
            .value()
            .approx_eq(&x.value(), 0.0));
        assert!(Activation::Relu
            .apply(&x)
            .value()
            .approx_eq(&Matrix::column(&[0.0, 0.0, 2.0]), 0.0));
        let s = Activation::Sigmoid.apply(&x).value();
        assert!((s.get(1, 0) - 0.5).abs() < 1e-12);
    }

    /// Snapshot → rebuild round-trip: the rebuilt MLP forwards and
    /// back-propagates bit-identically to the original.
    #[test]
    fn rebuilt_mlp_matches_original_bitwise() {
        let mut rng = StdRng::seed_from_u64(5);
        let original = Mlp::new(&[3, 6, 2], Activation::Tanh, Activation::Sigmoid, &mut rng);
        let rebuilt = original.snapshot().to_mlp();
        let x = Matrix::column(&[0.4, -1.1, 0.9]);
        let run = |mlp: &Mlp| -> (Matrix<f64>, Vec<Matrix<f64>>) {
            let out = mlp.forward(&Var::constant(x.clone()));
            out.square().sum().backward();
            let grads = mlp.parameters().iter().map(|p| p.grad()).collect();
            (out.value(), grads)
        };
        let (out_a, grads_a) = run(&original);
        let (out_b, grads_b) = run(&rebuilt);
        assert!(out_a.bits_eq(&out_b));
        for (a, b) in grads_a.iter().zip(grads_b.iter()) {
            assert!(a.bits_eq(b), "rebuilt-MLP gradient drifted");
        }
    }

    #[test]
    fn snapshot_forward_and_workspace_forward_match_graph_bitwise() {
        let mut rng = StdRng::seed_from_u64(6);
        let mlp = Mlp::new(&[3, 6, 2], Activation::Tanh, Activation::Sigmoid, &mut rng);
        let weights = mlp.snapshot();
        let x = Matrix::column(&[0.4, -1.1, 0.9]);
        let graph = mlp.forward(&Var::constant(x.clone())).value();
        let snap = weights.forward(&x);
        assert!(graph.bits_eq(&snap));
        let mut ws = Workspace::new();
        // Poison the workspace so checkouts must reinitialise their buffers.
        ws.give(Matrix::filled(6, 1, f64::NAN));
        let pooled = weights.forward_ws(&x, &mut ws);
        assert!(graph.bits_eq(&pooled));
        ws.give(pooled);
        assert!(graph.bits_eq(&weights.forward_ws(&x, &mut ws)));
    }

    #[test]
    fn bf16_mlp_snapshot_halves_bytes_and_forward_stays_epsilon_close() {
        let mut rng = StdRng::seed_from_u64(7);
        let mlp: Mlp = Mlp::new(&[3, 6, 2], Activation::Tanh, Activation::Sigmoid, &mut rng);
        let w32 = mlp.snapshot().cast::<f32>();
        let packed = MlpWeightsBf16::from_weights(&w32);
        assert_eq!(packed.resident_bytes() * 2, w32.resident_bytes());

        let mut ws = Workspace::new();
        let decoded = packed.decode_ws(&mut ws);
        let x: Matrix<f32> = Matrix::column(&[0.4f64, -1.1, 0.9]).cast();
        let exact = w32.forward(&x);
        let approx = decoded.forward(&x);
        // Sigmoid outputs live in [0, 1]; the 2^-7 weight truncation passes
        // through two squashing layers, so a loose absolute bound suffices.
        assert!(exact.approx_eq(&approx, 0.05));
        decoded.recycle(&mut ws);
        assert!(approx.bits_eq(&packed.decode_ws(&mut ws).forward(&x)));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_rejects_single_size() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: Mlp = Mlp::new(&[4], Activation::Tanh, Activation::Identity, &mut rng);
    }
}
