//! Loss functions, generic over the [`Scalar`] precision.
//!
//! The radio-map imputation models never observe ground truth for the values
//! they impute; instead they are trained on *reconstruction* error over the
//! observed entries only (Section IV-D of the paper). Every loss here is
//! therefore masked: entries whose mask is 0 contribute nothing to the loss
//! and receive no gradient.

use rm_tensor::{Matrix, Scalar, Var};

/// Masked mean-squared error:
/// `MSE(mask ⊙ prediction, mask ⊙ target)`.
///
/// This is the `L(a, a′, mask)` function of the paper's loss definition. The
/// average is taken over *all* entries (matching an MSE over the masked
/// matrices), so fully-masked inputs simply produce a zero loss.
pub fn masked_mse<T: Scalar>(prediction: &Var<T>, target: &Matrix<T>, mask: &Matrix<T>) -> Var<T> {
    let target_var = Var::constant(target.hadamard(mask));
    prediction.mask(mask).sub(&target_var).square().mean()
}

/// Masked mean-squared error between two variables (both receive gradients).
/// Used for the cross-consistency term between forward and backward
/// imputations in BiSIM.
pub fn masked_mse_between<T: Scalar>(a: &Var<T>, b: &Var<T>, mask: &Matrix<T>) -> Var<T> {
    a.mask(mask).sub(&b.mask(mask)).square().mean()
}

/// Plain (unmasked) mean-squared error against a constant target.
pub fn mse<T: Scalar>(prediction: &Var<T>, target: &Matrix<T>) -> Var<T> {
    let ones = Matrix::ones(target.rows(), target.cols());
    masked_mse(prediction, target, &ones)
}

/// Numerically-stable binary cross-entropy between a predicted probability (a
/// 1×1 variable squashed through a sigmoid upstream) and a 0/1 label. Used by
/// the SSGAN baseline's discriminator.
pub fn binary_cross_entropy<T: Scalar>(probability: &Var<T>, label: f64) -> Var<T> {
    // Clamp through `p*(1-2e)+e` to keep log arguments strictly positive
    // without breaking differentiation.
    let eps = 1e-7;
    let p = probability
        .scale(T::from_f64(1.0 - 2.0 * eps))
        .add_const(T::from_f64(eps));
    // BCE = -(y*ln(p) + (1-y)*ln(1-p)); for labels in {0,1} only one term
    // survives.
    if label >= 0.5 {
        neg_log(&p)
    } else {
        neg_log(&p.scale(-T::ONE).add_const(T::ONE))
    }
}

/// `-ln(x)` for a 1×1 variable, built from existing ops via the identity
/// `d(-ln x)/dx = -1/x`. Implemented as a first-order surrogate around the
/// current value: f(x) ≈ -ln(c) - (x - c)/c has the value and first
/// derivative of the true function at x = c, and because a fresh graph is
/// built every training step the surrogate is re-centred continuously, so
/// gradient descent follows the true BCE landscape.
fn neg_log<T: Scalar>(x: &Var<T>) -> Var<T> {
    let current = x.scalar_value().max(T::from_f64(1e-12));
    let value_term = -current.ln() + T::ONE;
    x.scale(-T::ONE / current).add_const(value_term)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_mse_ignores_masked_entries() {
        let pred = Var::parameter(Matrix::column(&[1.0, 100.0, 3.0]));
        let target = Matrix::column(&[1.0, 0.0, 3.0]);
        let mask = Matrix::column(&[1.0, 0.0, 1.0]);
        let loss = masked_mse(&pred, &target, &mask);
        assert!(loss.scalar_value().abs() < 1e-12);
        loss.backward();
        // The masked entry receives no gradient.
        assert_eq!(pred.grad().get(1, 0), 0.0);
    }

    #[test]
    fn masked_mse_penalises_observed_errors() {
        let pred = Var::parameter(Matrix::column(&[2.0, 5.0]));
        let target = Matrix::column(&[0.0, 5.0]);
        let mask = Matrix::ones(2, 1);
        let loss = masked_mse(&pred, &target, &mask);
        // ((2-0)^2 + 0) / 2 = 2
        assert!((loss.scalar_value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mse_equals_masked_mse_with_full_mask() {
        let pred = Var::parameter(Matrix::column(&[1.0, 2.0, 3.0]));
        let target = Matrix::column(&[0.5, 2.5, 2.0]);
        let a = mse(&pred, &target).scalar_value();
        let b = masked_mse(&pred, &target, &Matrix::ones(3, 1)).scalar_value();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn masked_mse_between_is_symmetric_and_zero_on_equal() {
        let a = Var::parameter(Matrix::column(&[1.0, 2.0]));
        let b = Var::parameter(Matrix::column(&[1.0, 2.0]));
        let mask = Matrix::ones(2, 1);
        assert!(masked_mse_between(&a, &b, &mask).scalar_value().abs() < 1e-12);

        let c = Var::parameter(Matrix::column(&[3.0, 2.0]));
        let ab = masked_mse_between(&a, &c, &mask).scalar_value();
        let ba = masked_mse_between(&c, &a, &mask).scalar_value();
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.0);
    }

    #[test]
    fn masked_mse_works_at_f32() {
        let pred: Var<f32> = Var::parameter(Matrix::column(&[2.0f32, 5.0]));
        let target = Matrix::column(&[0.0f32, 5.0]);
        let mask = Matrix::ones(2, 1);
        let loss = masked_mse(&pred, &target, &mask);
        assert!((loss.scalar_value() - 2.0).abs() < 1e-6);
        loss.backward();
        assert!(pred.grad().is_finite());
    }

    #[test]
    fn bce_decreases_towards_correct_label() {
        // For label 1, higher probability must give lower loss.
        let lo = Var::constant(Matrix::from_vec(1, 1, vec![0.2]));
        let hi = Var::constant(Matrix::from_vec(1, 1, vec![0.9]));
        assert!(
            binary_cross_entropy(&hi, 1.0).scalar_value()
                < binary_cross_entropy(&lo, 1.0).scalar_value()
        );
        // For label 0, lower probability must give lower loss.
        assert!(
            binary_cross_entropy(&lo, 0.0).scalar_value()
                < binary_cross_entropy(&hi, 0.0).scalar_value()
        );
    }

    #[test]
    fn bce_gradient_pushes_probability_toward_label() {
        let logit = Var::parameter(Matrix::from_vec(1, 1, vec![0.0]));
        let p = logit.sigmoid();
        let loss = binary_cross_entropy(&p, 1.0);
        loss.backward();
        // Increasing the logit must decrease the loss, so the gradient is negative.
        assert!(logit.grad().get(0, 0) < 0.0);

        logit.zero_grad();
        let p = logit.sigmoid();
        let loss = binary_cross_entropy(&p, 0.0);
        loss.backward();
        assert!(logit.grad().get(0, 0) > 0.0);
    }
}
