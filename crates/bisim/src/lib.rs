//! BiSIM — the Bi-directional Sequence-to-Sequence Imputation Model
//! (Section IV of the paper).
//!
//! BiSIM jointly imputes MAR RSSIs (the source/fingerprint sequence) and
//! missing reference points (the target/RP sequence) for each survey path.
//! The encoder consumes the fingerprint sequence with a time-lag decay
//! mechanism; the decoder reconstructs the RP sequence with a
//! sparsity-friendly attention over the encoder latents; both directions of
//! each sequence are processed and averaged. Training minimises the
//! reconstruction error on observed values plus a forward/backward
//! cross-consistency term (Section IV-D).
//!
//! The [`Bisim`] type implements the same [`Imputer`] trait as the baselines
//! in `rm-imputers`, so the experiment harness can swap imputers freely.

pub mod model;

pub use model::{
    AttentionMode, BisimDirection, BisimDirectionWeights, BisimDirectionWeightsBf16,
    BisimMatrixPass, BisimPass, TimeLagMode,
};

use rand::rngs::StdRng;
use rand::SeedableRng;
use rm_geometry::Point;
use rm_imputers::brits::{default_batch_size, default_epochs};
use rm_imputers::{build_sequences, ImputedRadioMap, Imputer, Normalization, PathSequence};
use rm_nn::{loss, Adam};
use rm_radiomap::{EntryKind, MaskMatrix, RadioMap, MNAR_FILL_VALUE};
use rm_tensor::{Matrix, NamedTensor, Precision, Scalar, SnapshotDtype, Var, Workspace};

/// Configuration of the BiSIM imputer.
#[derive(Debug, Clone)]
pub struct BisimConfig {
    /// Latent vector length of the encoder/decoder units (64 in the paper).
    pub hidden_size: usize,
    /// Number of training epochs (500 in the paper; reduced by default for the
    /// CPU-only reproduction, override with `RM_EPOCHS`).
    pub epochs: usize,
    /// Adam learning rate (0.001 in the paper; slightly higher here because
    /// the training sets are smaller).
    pub learning_rate: f64,
    /// Sequence length `T` (5 in the paper).
    pub sequence_length: usize,
    /// Attention variant (Fig. 17 ablation).
    pub attention: AttentionMode,
    /// Time-lag variant (Fig. 18 ablation).
    pub time_lag: TimeLagMode,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the training-batch fan-outs (`0` = auto). Results
    /// are bit-identical at any thread count.
    pub threads: usize,
    /// Mini-batch size of the training loop (see
    /// [`rm_imputers::BritsConfig::batch_size`] for the determinism
    /// contract). The default of 1 reproduces the classic per-sequence-pair
    /// trajectory bitwise.
    pub batch_size: usize,
    /// Precision of the inference pass. Training always runs at `f64`;
    /// [`Precision::F32`] rounds the trained snapshots to f32 once and runs
    /// every sequence pair through the f32 kernels. [`Precision::F64`] —
    /// the default — is bit-identical to the pre-precision-axis pipeline
    /// (the snapshot pass mirrors the graph pass operation for operation).
    /// Either setting is bit-identical across thread counts.
    pub precision: Precision,
    /// Resident storage format of the trained snapshots during inference
    /// (see [`rm_imputers::BritsConfig::snapshot_dtype`] for the contract;
    /// only meaningful with [`Precision::F32`]).
    pub snapshot_dtype: SnapshotDtype,
}

impl Default for BisimConfig {
    fn default() -> Self {
        Self {
            hidden_size: 32,
            epochs: default_epochs(),
            learning_rate: 0.01,
            sequence_length: 5,
            attention: AttentionMode::SparsityFriendly,
            time_lag: TimeLagMode::Encoder,
            seed: 71,
            threads: 0,
            batch_size: default_batch_size(),
            precision: Precision::F64,
            snapshot_dtype: SnapshotDtype::Native,
        }
    }
}

/// The BiSIM imputer.
#[derive(Default)]
pub struct Bisim {
    /// Training configuration.
    pub config: BisimConfig,
}

impl Bisim {
    /// Creates a BiSIM imputer with the given configuration.
    pub fn new(config: BisimConfig) -> Self {
        Self { config }
    }

    /// The overall loss of Section IV-D for one sequence pair:
    /// `L_forward + L_backward + L_cross`, each a masked MSE over observed
    /// fingerprints and RPs.
    fn sequence_loss(
        seq: &PathSequence,
        rev: &PathSequence,
        forward: &BisimPass,
        backward: &BisimPass,
    ) -> Var {
        let len = seq.len();
        let mut total = Var::scalar(0.0);
        for t in 0..len {
            let rt = len - 1 - t;
            let fp_target = Matrix::column(&seq.fingerprints[t]);
            let fp_mask = Matrix::column(&seq.fingerprint_masks[t]);
            let rp_target = Matrix::column(&[seq.rps[t].0, seq.rps[t].1]);
            let rp_mask = Matrix::column(&[seq.rp_masks[t], seq.rp_masks[t]]);

            // Forward reconstruction.
            total = total.add(&loss::masked_mse(
                &forward.fingerprint_estimates[t],
                &fp_target,
                &fp_mask,
            ));
            total = total.add(&loss::masked_mse(
                &forward.rp_estimates[t],
                &rp_target,
                &rp_mask,
            ));
            // Backward reconstruction (the reversed sequence's step rt is record t).
            let fp_target_b = Matrix::column(&rev.fingerprints[rt]);
            let fp_mask_b = Matrix::column(&rev.fingerprint_masks[rt]);
            let rp_target_b = Matrix::column(&[rev.rps[rt].0, rev.rps[rt].1]);
            let rp_mask_b = Matrix::column(&[rev.rp_masks[rt], rev.rp_masks[rt]]);
            total = total.add(&loss::masked_mse(
                &backward.fingerprint_estimates[rt],
                &fp_target_b,
                &fp_mask_b,
            ));
            total = total.add(&loss::masked_mse(
                &backward.rp_estimates[rt],
                &rp_target_b,
                &rp_mask_b,
            ));
            // Cross consistency between the two directions at the same record.
            total = total.add(&loss::masked_mse_between(
                &forward.fingerprint_estimates[t],
                &backward.fingerprint_estimates[rt],
                &fp_mask,
            ));
            total = total.add(&loss::masked_mse_between(
                &forward.rp_estimates[t],
                &backward.rp_estimates[rt],
                &rp_mask,
            ));
        }
        total.scale(1.0 / len.max(1) as f64)
    }
}

/// Differentiates the Section IV-D loss of one `(sequence, reversed)` pair
/// and returns the per-parameter gradients in optimizer order
/// (forward-direction parameters, then backward-direction). The models'
/// gradient buffers must be zero on entry: freshly rebuilt replicas
/// ([`BisimDirectionWeights::to_model`]) start zeroed, and the live-graph
/// fast path zeroes explicitly.
fn pair_gradients(
    forward: &BisimDirection,
    backward: &BisimDirection,
    seq: &PathSequence,
    rev: &PathSequence,
) -> Vec<Matrix<f64>> {
    let fwd = forward.run(seq);
    let bwd = backward.run(rev);
    let loss = Bisim::sequence_loss(seq, rev, &fwd, &bwd);
    loss.backward();
    let mut params = forward.parameters();
    params.extend(backward.parameters());
    let grads = params.iter().map(|p| p.grad()).collect();
    // The gradients are out; return the pair's graph — both passes, the
    // loss chain and every intermediate — to the per-worker node arena so
    // the next pair rebuilds on recycled storage. The parameter leaves are
    // still held by the models and are skipped by the recycler.
    drop(params);
    Var::recycle_all(
        fwd.into_vars()
            .chain(bwd.into_vars())
            .chain(std::iter::once(loss)),
    );
    grads
}

/// The per-record updates one `(sequence, reversed)` pair contributes to the
/// imputed radio map: `(record, ap, rssi)` triples for MAR fingerprints and
/// `(record, point)` pairs for initially-missing reference points.
type PairUpdates = (Vec<(usize, usize, f64)>, Vec<(usize, Point)>);

/// Runs every `(sequence, reversed)` pair through the shared graph-free
/// snapshots on the pool and averages the two directions (Eq. 13) at MAR
/// fingerprints and missing RPs. Denormalisation happens after widening back
/// to `f64`; at `T = f64` the arithmetic is bitwise identical to the classic
/// serial live-graph loop. Each task only reads the shared snapshots, so the
/// fan-out is order-preserving and bit-identical at any thread count.
#[allow(clippy::too_many_arguments)]
fn infer_pairs<T: Scalar>(
    forward: &BisimDirectionWeights<T>,
    backward: &BisimDirectionWeights<T>,
    pairs: &[(&PathSequence, &PathSequence)],
    mask: &MaskMatrix,
    norm: &Normalization,
    num_aps: usize,
    missing_rp: &[bool],
    threads: usize,
) -> Vec<PairUpdates> {
    rm_runtime::par_map(threads, pairs, |_, &(seq, rev)| {
        // Per-task scratch: the matrix buffers come from the worker's
        // thread-local pool, so steady-state inference allocates nothing.
        let mut ws = Workspace::new();
        updates_for_pair(
            forward, backward, seq, rev, mask, norm, num_aps, missing_rp, &mut ws,
        )
    })
}

/// One `(sequence, reversed)` pair of the inference fan-out. Shared by the
/// native-dtype fan-out ([`infer_pairs`]) and the bf16 fan-out
/// ([`infer_pairs_bf16`]).
#[allow(clippy::too_many_arguments)]
fn updates_for_pair<T: Scalar>(
    forward: &BisimDirectionWeights<T>,
    backward: &BisimDirectionWeights<T>,
    seq: &PathSequence,
    rev: &PathSequence,
    mask: &MaskMatrix,
    norm: &Normalization,
    num_aps: usize,
    missing_rp: &[bool],
    ws: &mut Workspace<T>,
) -> PairUpdates {
    let fwd = forward.run(seq, ws);
    let bwd = backward.run(rev, ws);
    let two = T::from_f64(2.0);
    let mut rssi_updates: Vec<(usize, usize, f64)> = Vec::new();
    let mut rp_updates: Vec<(usize, Point)> = Vec::new();
    for (t, &record) in seq.record_indices.iter().enumerate() {
        let rt = seq.len() - 1 - t;
        let f = &fwd.fingerprint_complements[t];
        let b = &bwd.fingerprint_complements[rt];
        for ap in 0..num_aps {
            if mask.get(record, ap) == EntryKind::Mar {
                let avg = (f.get(ap, 0) + b.get(ap, 0)) / two;
                rssi_updates.push((record, ap, norm.denormalize_rssi(avg.to_f64())));
            }
        }
        if missing_rp[record] {
            let lf = &fwd.rp_complements[t];
            let lb = &bwd.rp_complements[rt];
            let x = ((lf.get(0, 0) + lb.get(0, 0)) / two).to_f64();
            let y = ((lf.get(1, 0) + lb.get(1, 0)) / two).to_f64();
            rp_updates.push((record, norm.denormalize_point(x, y)));
        }
    }
    (rssi_updates, rp_updates)
}

/// The bf16-resident variant of [`infer_pairs`]: each task decodes the shared
/// bfloat16 snapshots into its own pooled f32 scratch, runs the same f32
/// inference, and recycles the decoded matrices. Decoding is pure and
/// per-task, so the fan-out stays bit-identical at any thread count.
#[allow(clippy::too_many_arguments)]
fn infer_pairs_bf16(
    forward: &BisimDirectionWeightsBf16,
    backward: &BisimDirectionWeightsBf16,
    pairs: &[(&PathSequence, &PathSequence)],
    mask: &MaskMatrix,
    norm: &Normalization,
    num_aps: usize,
    missing_rp: &[bool],
    threads: usize,
) -> Vec<PairUpdates> {
    rm_runtime::par_map(threads, pairs, |_, &(seq, rev)| {
        let mut ws = Workspace::new();
        let fwd = forward.decode_ws(&mut ws);
        let bwd = backward.decode_ws(&mut ws);
        let updates = updates_for_pair(
            &fwd, &bwd, seq, rev, mask, norm, num_aps, missing_rp, &mut ws,
        );
        fwd.recycle(&mut ws);
        bwd.recycle(&mut ws);
        updates
    })
}

impl Bisim {
    /// The pass-through baseline BiSIM starts from: MNAR-filled dense
    /// fingerprints and the records' own RPs (BiSIM imputes the missing ones
    /// itself, unlike the interpolating baselines).
    fn passthrough(map: &RadioMap) -> (Vec<Vec<f64>>, Vec<Option<rm_geometry::Point>>) {
        (
            map.records()
                .iter()
                .map(|r| r.fingerprint.to_dense(MNAR_FILL_VALUE))
                .collect(),
            map.records().iter().map(|r| r.rp).collect(),
        )
    }

    /// Draws one freshly initialised direction from `rng`.
    fn new_direction(&self, num_aps: usize, rng: &mut StdRng) -> BisimDirection {
        BisimDirection::new(
            num_aps,
            self.config.hidden_size,
            self.config.attention,
            self.config.time_lag,
            rng,
        )
    }

    /// Trains the two live directions jointly for `epochs` epochs (Section
    /// IV-D), in deterministic mini-batches. Fixed-boundary chunks of
    /// sequence pairs; within a chunk each pair differentiates its own graph
    /// replica (rebuilt from a `Send + Sync` snapshot) on the worker pool,
    /// and the gradients reduce in sequence-index order — bitwise
    /// thread-count independent. Single-pair chunks (the `batch_size = 1`
    /// default) differentiate the live graphs directly, reproducing the
    /// classic serial trajectory bitwise.
    fn train_pair(
        &self,
        forward_model: &BisimDirection,
        backward_model: &BisimDirection,
        sequences: &[PathSequence],
        reversed: &[PathSequence],
        epochs: usize,
    ) {
        let mut params = forward_model.parameters();
        params.extend(backward_model.parameters());
        let mut optimizer = Adam::new(params, self.config.learning_rate).with_clip(5.0);
        let threads = self.config.threads;
        rm_imputers::brits::train_in_batches(
            &mut optimizer,
            epochs,
            sequences.len(),
            self.config.batch_size,
            |chunk| {
                if let [i] = *chunk {
                    for p in forward_model
                        .parameters()
                        .iter()
                        .chain(&backward_model.parameters())
                    {
                        p.zero_grad();
                    }
                    vec![pair_gradients(
                        forward_model,
                        backward_model,
                        &sequences[i],
                        &reversed[i],
                    )]
                } else {
                    let fw = forward_model.snapshot();
                    let bw = backward_model.snapshot();
                    rm_runtime::par_map(threads, chunk, |_, &i| {
                        pair_gradients(&fw.to_model(), &bw.to_model(), &sequences[i], &reversed[i])
                    })
                }
            },
        );
    }

    /// The imputation tail (Eq. 13): average the two directions at MARs and
    /// missing RPs, optionally exporting the trained snapshot as named
    /// tensors first. The weights are rounded once to f32 (and optionally
    /// truncated to bf16) when the config asks — the export happens at that
    /// same resident dtype — and every `(sequence, reversed)` pair fans out
    /// over the pool. The f64 snapshot pass mirrors the graph pass operation
    /// for operation, so this is bit-identical to the old serial live-graph
    /// inference (pinned by the serial-trajectory test below). Each task
    /// writes values for its own records; RP updates are merged in pair
    /// order, first writer wins, matching the serial `is_none` check.
    #[allow(clippy::too_many_arguments)]
    fn infer_and_export(
        &self,
        forward_weights: &BisimDirectionWeights,
        backward_weights: &BisimDirectionWeights,
        sequences: &[PathSequence],
        reversed: &[PathSequence],
        map: &RadioMap,
        mask: &MaskMatrix,
        norm: &Normalization,
        export_snapshot: bool,
    ) -> (ImputedRadioMap, Vec<NamedTensor>) {
        let num_aps = map.num_aps();
        let (mut fingerprints, mut locations) = Self::passthrough(map);
        let mut tensors = Vec::new();
        if export_snapshot {
            for (prefix, weights) in [
                ("bisim.forward", forward_weights),
                ("bisim.backward", backward_weights),
            ] {
                weights.export(
                    prefix,
                    self.config.precision,
                    self.config.snapshot_dtype,
                    &mut tensors,
                );
            }
        }
        let pairs: Vec<(&PathSequence, &PathSequence)> =
            sequences.iter().zip(reversed.iter()).collect();
        let missing_rp: Vec<bool> = locations.iter().map(Option::is_none).collect();
        let threads = self.config.threads;
        let results = match (self.config.precision, self.config.snapshot_dtype) {
            (Precision::F64, _) => infer_pairs(
                forward_weights,
                backward_weights,
                &pairs,
                mask,
                norm,
                num_aps,
                &missing_rp,
                threads,
            ),
            (Precision::F32, SnapshotDtype::Native) => infer_pairs(
                &forward_weights.cast::<f32>(),
                &backward_weights.cast::<f32>(),
                &pairs,
                mask,
                norm,
                num_aps,
                &missing_rp,
                threads,
            ),
            (Precision::F32, SnapshotDtype::Bf16) => infer_pairs_bf16(
                &BisimDirectionWeightsBf16::from_weights(&forward_weights.cast::<f32>()),
                &BisimDirectionWeightsBf16::from_weights(&backward_weights.cast::<f32>()),
                &pairs,
                mask,
                norm,
                num_aps,
                &missing_rp,
                threads,
            ),
        };
        for (rssi_updates, rp_updates) in results {
            for (record, ap, value) in rssi_updates {
                fingerprints[record][ap] = value;
            }
            for (record, point) in rp_updates {
                if locations[record].is_none() {
                    locations[record] = Some(point);
                }
            }
        }
        (
            ImputedRadioMap {
                fingerprints,
                locations,
            },
            tensors,
        )
    }

    /// Cold path: train both directions from scratch, then impute (and
    /// optionally export the snapshot).
    fn impute_inner(
        &self,
        map: &RadioMap,
        mask: &MaskMatrix,
        export_snapshot: bool,
    ) -> (ImputedRadioMap, Vec<NamedTensor>) {
        let num_aps = map.num_aps();
        let norm = Normalization::from_map(map);
        let sequences = build_sequences(map, mask, self.config.sequence_length, &norm);
        if sequences.is_empty() || num_aps == 0 {
            let (fingerprints, locations) = Self::passthrough(map);
            return (
                ImputedRadioMap {
                    fingerprints,
                    locations,
                },
                Vec::new(),
            );
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let forward_model = self.new_direction(num_aps, &mut rng);
        let backward_model = self.new_direction(num_aps, &mut rng);
        let reversed: Vec<PathSequence> = sequences.iter().map(|s| s.reversed(&norm)).collect();
        self.train_pair(
            &forward_model,
            &backward_model,
            &sequences,
            &reversed,
            self.config.epochs,
        );
        self.infer_and_export(
            &forward_model.snapshot(),
            &backward_model.snapshot(),
            &sequences,
            &reversed,
            map,
            mask,
            &norm,
            export_snapshot,
        )
    }

    /// Decodes both directions from a `bisim.{forward, backward}.*` snapshot,
    /// or `None` when either is missing or shaped for a different map.
    fn import_directions(
        &self,
        warm: &[NamedTensor],
        num_aps: usize,
    ) -> Option<(BisimDirectionWeights, BisimDirectionWeights)> {
        let forward = BisimDirectionWeights::import(
            "bisim.forward",
            warm,
            num_aps,
            self.config.attention,
            self.config.time_lag,
        )?;
        let backward = BisimDirectionWeights::import(
            "bisim.backward",
            warm,
            num_aps,
            self.config.attention,
            self.config.time_lag,
        )?;
        Some((forward, backward))
    }

    /// Warm path: `None` sends the caller back to cold training. With
    /// `fine_tune_epochs = 0` the imported weights impute directly —
    /// bit-identical to the exporting run on an unchanged map (the import
    /// widens losslessly and inference re-applies the identical one-time
    /// rounding). Otherwise the weights resume mini-batch training with a
    /// fresh optimizer before imputing.
    fn impute_warm_inner(
        &self,
        map: &RadioMap,
        mask: &MaskMatrix,
        warm: &[NamedTensor],
        fine_tune_epochs: usize,
    ) -> Option<(ImputedRadioMap, Vec<NamedTensor>)> {
        let num_aps = map.num_aps();
        let norm = Normalization::from_map(map);
        let sequences = build_sequences(map, mask, self.config.sequence_length, &norm);
        if sequences.is_empty() || num_aps == 0 {
            return None;
        }
        let (forward_weights, backward_weights) = self.import_directions(warm, num_aps)?;
        let reversed: Vec<PathSequence> = sequences.iter().map(|s| s.reversed(&norm)).collect();
        if fine_tune_epochs == 0 {
            return Some(self.infer_and_export(
                &forward_weights,
                &backward_weights,
                &sequences,
                &reversed,
                map,
                mask,
                &norm,
                true,
            ));
        }
        let forward_model = forward_weights.to_model();
        let backward_model = backward_weights.to_model();
        self.train_pair(
            &forward_model,
            &backward_model,
            &sequences,
            &reversed,
            fine_tune_epochs,
        );
        Some(self.infer_and_export(
            &forward_model.snapshot(),
            &backward_model.snapshot(),
            &sequences,
            &reversed,
            map,
            mask,
            &norm,
            true,
        ))
    }
}

impl Imputer for Bisim {
    fn impute(&self, map: &RadioMap, mask: &MaskMatrix) -> ImputedRadioMap {
        self.impute_inner(map, mask, false).0
    }

    fn impute_with_snapshot(
        &self,
        map: &RadioMap,
        mask: &MaskMatrix,
    ) -> (ImputedRadioMap, Vec<NamedTensor>) {
        self.impute_inner(map, mask, true)
    }

    fn impute_warm(
        &self,
        map: &RadioMap,
        mask: &MaskMatrix,
        warm: &[NamedTensor],
        fine_tune_epochs: usize,
    ) -> (ImputedRadioMap, Vec<NamedTensor>) {
        match self.impute_warm_inner(map, mask, warm, fine_tune_epochs) {
            Some(out) => out,
            None => self.impute_with_snapshot(map, mask),
        }
    }

    fn name(&self) -> &'static str {
        "BiSIM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_geometry::Point;
    use rm_nn::Optimizer;
    use rm_radiomap::{Fingerprint, RadioMapRecord};

    /// A survey path with smooth RSSIs and RPs; one MAR RSSI and one missing RP.
    fn smooth_map() -> (RadioMap, MaskMatrix) {
        let mut records = Vec::new();
        for i in 0..12 {
            let v = -55.0 - i as f64 * 2.0;
            let rssi0 = if i == 6 { None } else { Some(v) };
            let rp = if i == 4 {
                None
            } else {
                Some(Point::new(i as f64 * 2.0, 3.0))
            };
            records.push(RadioMapRecord::new(
                Fingerprint::new(vec![rssi0, Some(-70.0)]),
                rp,
                i as f64 * 2.0,
                0,
            ));
        }
        let map = RadioMap::new(records, 2);
        let mut mask = MaskMatrix::all_observed(12, 2);
        mask.set(6, 0, EntryKind::Mar);
        (map, mask)
    }

    fn quick_config() -> BisimConfig {
        BisimConfig {
            hidden_size: 16,
            epochs: 40,
            learning_rate: 0.02,
            sequence_length: 6,
            ..BisimConfig::default()
        }
    }

    #[test]
    fn bisim_imputes_mar_rssi_plausibly() {
        let (map, mask) = smooth_map();
        let out = Bisim::new(quick_config()).impute(&map, &mask);
        let imputed = out.rssi(6, 0);
        // Neighbouring values are -65 and -69; the imputation must be far from
        // the -100 floor.
        assert!(
            (-85.0..=-45.0).contains(&imputed),
            "imputed RSSI {imputed} is implausible"
        );
        // Observed entries and RPs are untouched.
        assert_eq!(out.rssi(0, 0), -55.0);
        assert_eq!(out.locations[0], Some(Point::new(0.0, 3.0)));
        assert_eq!(Bisim::default().name(), "BiSIM");
    }

    #[test]
    fn bisim_imputes_missing_rp_inside_the_venue() {
        let (map, mask) = smooth_map();
        let out = Bisim::new(quick_config()).impute(&map, &mask);
        let p = out.locations[4].expect("RP must be imputed");
        // The true position is (8, 3); require the imputation to land within
        // the venue extent and reasonably close.
        assert!(p.is_finite());
        assert!(
            p.distance(Point::new(8.0, 3.0)) < 12.0,
            "imputed RP {p:?} too far from ground truth"
        );
    }

    /// `batch_size = 1` (the default) reproduces the pre-batching serial
    /// trajectory bitwise: the reference below is the literal classic loop
    /// (`zero_grad → backward → step` per sequence pair on the live graph),
    /// followed by the same averaging inference pass.
    #[test]
    fn batch_size_one_reproduces_the_serial_trajectory() {
        let (map, mask) = smooth_map();
        let config = BisimConfig {
            epochs: 6,
            batch_size: 1,
            ..quick_config()
        };
        let batched = Bisim::new(config.clone()).impute(&map, &mask);

        let num_aps = 2;
        let norm = Normalization::from_map(&map);
        let sequences = build_sequences(&map, &mask, config.sequence_length, &norm);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let forward_model = BisimDirection::new(
            num_aps,
            config.hidden_size,
            config.attention,
            config.time_lag,
            &mut rng,
        );
        let backward_model = BisimDirection::new(
            num_aps,
            config.hidden_size,
            config.attention,
            config.time_lag,
            &mut rng,
        );
        let mut params = forward_model.parameters();
        params.extend(backward_model.parameters());
        let mut optimizer = Adam::new(params, config.learning_rate).with_clip(5.0);
        let reversed: Vec<PathSequence> = sequences.iter().map(|s| s.reversed(&norm)).collect();
        for _ in 0..config.epochs {
            for (seq, rev) in sequences.iter().zip(reversed.iter()) {
                optimizer.zero_grad();
                let fwd = forward_model.run(seq);
                let bwd = backward_model.run(rev);
                Bisim::sequence_loss(seq, rev, &fwd, &bwd).backward();
                optimizer.step();
            }
        }
        for (seq, rev) in sequences.iter().zip(reversed.iter()) {
            let fwd = forward_model.run(seq);
            let bwd = backward_model.run(rev);
            for (t, &record) in seq.record_indices.iter().enumerate() {
                let rt = seq.len() - 1 - t;
                let f = fwd.fingerprint_complements[t].value();
                let b = bwd.fingerprint_complements[rt].value();
                for ap in 0..num_aps {
                    if mask.get(record, ap) == EntryKind::Mar {
                        let avg = (f.get(ap, 0) + b.get(ap, 0)) / 2.0;
                        assert_eq!(
                            batched.rssi(record, ap).to_bits(),
                            norm.denormalize_rssi(avg).to_bits(),
                            "batch_size = 1 diverged from the serial reference at ({record}, {ap})"
                        );
                    }
                }
            }
        }
    }

    /// A fixed `batch_size > 1` yields a bitwise-identical BiSIM model at
    /// any thread count.
    #[test]
    fn batched_training_is_bit_identical_across_thread_counts() {
        let (map, mask) = smooth_map();
        let run = |threads: usize| {
            Bisim::new(BisimConfig {
                epochs: 4,
                batch_size: 2,
                threads,
                ..quick_config()
            })
            .impute(&map, &mask)
        };
        let serial = run(1);
        for threads in [2, 4] {
            let parallel = run(threads);
            for (a, b) in serial
                .fingerprints
                .iter()
                .flatten()
                .zip(parallel.fingerprints.iter().flatten())
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "batched BiSIM differs at {threads} threads"
                );
            }
            for (la, lb) in serial.locations.iter().zip(parallel.locations.iter()) {
                match (la, lb) {
                    (Some(pa), Some(pb)) => {
                        assert_eq!(pa.x.to_bits(), pb.x.to_bits());
                        assert_eq!(pa.y.to_bits(), pb.y.to_bits());
                    }
                    (None, None) => {}
                    _ => panic!("imputed-RP presence differs at {threads} threads"),
                }
            }
        }
    }

    /// The reduced-precision inference paths (f32 snapshots, and bf16-resident
    /// snapshots decoded to f32) track the f64 result within a small epsilon,
    /// and each stays bit-identical across thread counts.
    #[test]
    fn reduced_precision_inference_tracks_f64() {
        let (map, mask) = smooth_map();
        let run = |precision, snapshot_dtype, threads| {
            Bisim::new(BisimConfig {
                epochs: 6,
                precision,
                snapshot_dtype,
                threads,
                ..quick_config()
            })
            .impute(&map, &mask)
        };
        let base = run(Precision::F64, SnapshotDtype::Native, 1);
        for (precision, dtype, tol) in [
            (Precision::F32, SnapshotDtype::Native, 0.5),
            (Precision::F32, SnapshotDtype::Bf16, 2.0),
        ] {
            let out = run(precision, dtype, 1);
            let delta = (out.rssi(6, 0) - base.rssi(6, 0)).abs();
            assert!(
                delta < tol,
                "{precision:?}/{dtype} imputed RSSI drifted {delta} dBm from f64"
            );
            let pa = base.locations[4].expect("f64 RP must be imputed");
            let pb = out.locations[4].expect("reduced-precision RP must be imputed");
            assert!(
                pa.distance(pb) < tol,
                "{precision:?}/{dtype} imputed RP drifted {} m from f64",
                pa.distance(pb)
            );
            let repeat = run(precision, dtype, 3);
            assert_eq!(
                out.rssi(6, 0).to_bits(),
                repeat.rssi(6, 0).to_bits(),
                "{precision:?}/{dtype} inference differs across thread counts"
            );
            let pr = repeat.locations[4].expect("repeat RP must be imputed");
            assert_eq!(pb.x.to_bits(), pr.x.to_bits());
            assert_eq!(pb.y.to_bits(), pr.y.to_bits());
        }
    }

    /// `impute_warm` with `fine_tune_epochs = 0` on the unchanged map is a
    /// pure inference replay of the exporting run — bit-identical outputs
    /// and a bit-identical re-exported snapshot — at every storage dtype.
    #[test]
    fn warm_replay_reproduces_the_exporting_run_bitwise() {
        let (map, mask) = smooth_map();
        for (precision, snapshot_dtype) in [
            (Precision::F64, SnapshotDtype::Native),
            (Precision::F32, SnapshotDtype::Native),
            (Precision::F32, SnapshotDtype::Bf16),
        ] {
            let imputer = Bisim::new(BisimConfig {
                epochs: 4,
                precision,
                snapshot_dtype,
                ..quick_config()
            });
            let (cold, tensors) = imputer.impute_with_snapshot(&map, &mask);
            // 30 tensors per direction: encoder 12, decoder 12, attention 6.
            assert_eq!(tensors.len(), 60);
            assert!(tensors
                .iter()
                .any(|t| t.name == "bisim.forward.encoder.estimate.weight"));
            assert!(tensors
                .iter()
                .any(|t| t.name == "bisim.backward.attention.align.1.bias"));

            let (warm, re_exported) = imputer.impute_warm(&map, &mask, &tensors, 0);
            for (a, b) in cold
                .fingerprints
                .iter()
                .flatten()
                .zip(warm.fingerprints.iter().flatten())
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "warm replay diverged at {precision:?}/{snapshot_dtype}"
                );
            }
            for (la, lb) in cold.locations.iter().zip(warm.locations.iter()) {
                let (pa, pb) = (la.expect("cold RP"), lb.expect("warm RP"));
                assert_eq!(pa.x.to_bits(), pb.x.to_bits());
                assert_eq!(pa.y.to_bits(), pb.y.to_bits());
            }
            assert_eq!(re_exported.len(), tensors.len());
            for (a, b) in tensors.iter().zip(re_exported.iter()) {
                assert!(a.bits_eq(b), "{} drifted through the replay", a.name);
            }
        }
    }

    /// Fine-tuning moves both directions' weights and still produces a sane
    /// imputation plus a fresh full snapshot.
    #[test]
    fn warm_fine_tune_updates_both_directions() {
        let (map, mask) = smooth_map();
        let imputer = Bisim::new(BisimConfig {
            epochs: 3,
            ..quick_config()
        });
        let (_, tensors) = imputer.impute_with_snapshot(&map, &mask);
        let (out, re_exported) = imputer.impute_warm(&map, &mask, &tensors, 2);
        assert_eq!(re_exported.len(), 60);
        // Two extra epochs from a 3-epoch checkpoint need not land in the
        // converged band yet — just keep the value sane.
        assert!(out.rssi(6, 0).is_finite());
        for prefix in ["bisim.forward", "bisim.backward"] {
            let moved = tensors
                .iter()
                .zip(re_exported.iter())
                .filter(|(a, _)| a.name.starts_with(prefix))
                .any(|(a, b)| !a.bits_eq(b));
            assert!(moved, "fine-tuning left {prefix} untouched");
        }
    }

    /// An empty, foreign, or wrongly-shaped snapshot falls back to cold
    /// training — bit-identical to `impute_with_snapshot` from scratch.
    #[test]
    fn warm_with_unusable_snapshot_falls_back_to_cold_training() {
        let (map, mask) = smooth_map();
        let imputer = Bisim::new(BisimConfig {
            epochs: 3,
            ..quick_config()
        });
        let (cold, _) = imputer.impute_with_snapshot(&map, &mask);
        let foreign = vec![rm_tensor::NamedTensor::new(
            "bisim.forward.encoder.estimate.weight",
            Matrix::<f64>::filled(3, 7, 0.5),
        )];
        for warm in [&Vec::new(), &foreign] {
            let (out, tensors) = imputer.impute_warm(&map, &mask, warm, 0);
            assert_eq!(tensors.len(), 60);
            for (a, b) in cold
                .fingerprints
                .iter()
                .flatten()
                .zip(out.fingerprints.iter().flatten())
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn bisim_handles_empty_map() {
        let out =
            Bisim::new(quick_config()).impute(&RadioMap::empty(2), &MaskMatrix::all_observed(0, 2));
        assert!(out.is_empty());
    }

    #[test]
    fn ablation_variants_produce_valid_outputs() {
        let (map, mask) = smooth_map();
        for (attention, time_lag) in [
            (AttentionMode::Standard, TimeLagMode::Encoder),
            (AttentionMode::None, TimeLagMode::None),
            (AttentionMode::SparsityFriendly, TimeLagMode::Both),
        ] {
            let config = BisimConfig {
                epochs: 5,
                attention,
                time_lag,
                ..quick_config()
            };
            let out = Bisim::new(config).impute(&map, &mask);
            assert!(out.fingerprints.iter().flatten().all(|v| v.is_finite()));
            assert!(out
                .locations
                .iter()
                .all(|l| l.map(|p| p.is_finite()).unwrap_or(false)));
        }
    }
}
