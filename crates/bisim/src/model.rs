//! The internals of BiSIM (Section IV-C): encoder units, decoder units and the
//! sparsity-friendly attention unit, assembled into one directional
//! sequence-to-sequence pass.

use rand::rngs::StdRng;
use rm_imputers::PathSequence;
use rm_nn::{
    Activation, Linear, LinearWeights, LinearWeightsBf16, LstmCell, LstmCellWeights,
    LstmCellWeightsBf16, LstmState, LstmStateMatrix, Mlp, MlpWeights, MlpWeightsBf16,
};
use rm_tensor::{Matrix, NamedTensor, Precision, Scalar, SnapshotDtype, Var, Workspace};

/// Which attention mechanism the decoder uses (the Fig. 17 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttentionMode {
    /// The paper's sparsity-friendly adaptation of Bahdanau attention: only
    /// the observed part of each encoder latent vector participates.
    SparsityFriendly,
    /// Plain Bahdanau attention (no masking of the latent vectors).
    Standard,
    /// No attention: the context vector is all zeros.
    None,
}

/// Where the time-lag decay mechanism is applied (the Fig. 18 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeLagMode {
    /// Time lag in the encoder only — the paper's final design.
    Encoder,
    /// Time lag in the decoder only.
    Decoder,
    /// Time lag in both encoder and decoder.
    Both,
    /// No time-lag mechanism.
    None,
}

/// The per-step outputs of one directional pass through BiSIM.
pub struct BisimPass {
    /// Predicted fingerprints `f′_i` (used by the loss).
    pub fingerprint_estimates: Vec<Var>,
    /// Complemented fingerprints `f^c_i` (the imputations).
    pub fingerprint_complements: Vec<Var>,
    /// Predicted RP vectors `l′_j` (used by the loss).
    pub rp_estimates: Vec<Var>,
    /// Complemented RP vectors `l^c_j` (the imputations).
    pub rp_complements: Vec<Var>,
}

impl BisimPass {
    /// Consumes the pass into its output handles — the roots to hand to
    /// [`Var::recycle_all`] once the pass's values and gradients are no
    /// longer needed, returning the graph to the per-worker node arena.
    pub fn into_vars(self) -> impl Iterator<Item = Var> {
        self.fingerprint_estimates
            .into_iter()
            .chain(self.fingerprint_complements)
            .chain(self.rp_estimates)
            .chain(self.rp_complements)
    }
}

/// One directional BiSIM model: an encoder stack over the fingerprint
/// sequence, a decoder stack over the RP sequence, and an attention unit
/// connecting them.
pub struct BisimDirection {
    // Encoder unit parameters (Eq. 2–5).
    encoder_estimate: Linear,
    encoder_decay: Linear,
    encoder_cell: LstmCell,
    // Decoder unit parameters (Eq. 6–8).
    decoder_estimate: Linear,
    decoder_decay: Linear,
    decoder_cell: LstmCell,
    // Attention unit parameters (Eq. 9–12).
    attention_transform: Linear,
    attention_align: Mlp,
    hidden_size: usize,
    num_aps: usize,
    attention: AttentionMode,
    time_lag: TimeLagMode,
}

impl BisimDirection {
    /// Creates one directional model.
    pub fn new(
        num_aps: usize,
        hidden_size: usize,
        attention: AttentionMode,
        time_lag: TimeLagMode,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            encoder_estimate: Linear::new(hidden_size, num_aps, rng),
            encoder_decay: Linear::new(num_aps, hidden_size, rng),
            encoder_cell: LstmCell::new(num_aps * 2, hidden_size, rng),
            decoder_estimate: Linear::new(hidden_size, 2, rng),
            decoder_decay: Linear::new(2, hidden_size, rng),
            decoder_cell: LstmCell::new(2 + num_aps, hidden_size, rng),
            attention_transform: Linear::new(hidden_size, num_aps, rng),
            attention_align: Mlp::new(
                &[hidden_size + num_aps, hidden_size, 1],
                Activation::Tanh,
                Activation::Identity,
                rng,
            ),
            hidden_size,
            num_aps,
            attention,
            time_lag,
        }
    }

    /// All trainable parameters of this direction.
    pub fn parameters(&self) -> Vec<Var> {
        let mut params = self.encoder_estimate.parameters();
        params.extend(self.encoder_decay.parameters());
        params.extend(self.encoder_cell.parameters());
        params.extend(self.decoder_estimate.parameters());
        params.extend(self.decoder_decay.parameters());
        params.extend(self.decoder_cell.parameters());
        params.extend(self.attention_transform.parameters());
        params.extend(self.attention_align.parameters());
        params
    }

    /// Runs the encoder–decoder over one prepared sequence.
    pub fn run(&self, seq: &PathSequence) -> BisimPass {
        let len = seq.len();
        let mut fingerprint_estimates = Vec::with_capacity(len);
        let mut fingerprint_complements = Vec::with_capacity(len);
        let mut encoder_latents = Vec::with_capacity(len);
        let mut encoder_masks = Vec::with_capacity(len);

        // ---------------- Encoder stack (Eq. 2–5) ----------------
        let mut state = LstmState::zeros(self.hidden_size);
        for t in 0..len {
            let fingerprint = Var::constant(Matrix::column(&seq.fingerprints[t]));
            let mask = Matrix::column(&seq.fingerprint_masks[t]);
            let inverse_mask = mask.map(|m| 1.0 - m);

            // Eq. 2: estimate from the previous latent vector.
            let estimate = self.encoder_estimate.forward(&state.h);
            // Eq. 3: complement observed values with the estimate.
            let complement = fingerprint.mask(&mask).add(&estimate.mask(&inverse_mask));
            // Eq. 4: temporal decay factor from the time-lag vector.
            let decayed_h = if matches!(self.time_lag, TimeLagMode::Encoder | TimeLagMode::Both) {
                let lag = Var::constant(Matrix::column(&seq.time_lags[t]));
                let gamma = self.encoder_decay.forward(&lag).relu().scale(-1.0).exp();
                state.h.hadamard(&gamma)
            } else {
                state.h.clone()
            };
            // Eq. 5: LSTM over the complemented fingerprint concatenated with the mask.
            let input = Var::concat_rows(&[complement.clone(), Var::constant(mask.clone())]);
            state = self.encoder_cell.step(
                &input,
                &LstmState {
                    h: decayed_h,
                    c: state.c.clone(),
                },
            );

            fingerprint_estimates.push(estimate);
            fingerprint_complements.push(complement);
            encoder_latents.push(state.h.clone());
            encoder_masks.push(mask);
        }

        // Pre-compute the (possibly masked) transformed latents h''_i (Eq. 9).
        let transformed: Vec<Var> = encoder_latents
            .iter()
            .zip(encoder_masks.iter())
            .map(|(h, m)| {
                let h_prime = self.attention_transform.forward(h);
                match self.attention {
                    AttentionMode::SparsityFriendly => h_prime.mask(m),
                    _ => h_prime,
                }
            })
            .collect();

        // ---------------- Decoder stack with attention (Eq. 6–12) ----------------
        // s_0 = h_T: the decoder starts from the final encoder latent vector.
        let mut decoder_state = LstmState::from_hidden(
            encoder_latents
                .last()
                .cloned()
                .unwrap_or_else(|| Var::constant(Matrix::zeros(self.hidden_size, 1))),
        );
        let rp_lags = rp_time_lags(seq);
        let mut rp_estimates = Vec::with_capacity(len);
        let mut rp_complements = Vec::with_capacity(len);
        for j in 0..len {
            let rp = Var::constant(Matrix::column(&[seq.rps[j].0, seq.rps[j].1]));
            let rp_mask = Matrix::column(&[seq.rp_masks[j], seq.rp_masks[j]]);
            let inverse_mask = rp_mask.map(|m| 1.0 - m);

            // Eq. 6: estimate the RP from the previous decoder latent vector.
            let estimate = self.decoder_estimate.forward(&decoder_state.h);
            // Eq. 7: complement.
            let complement = rp.mask(&rp_mask).add(&estimate.mask(&inverse_mask));
            // Attention (Eq. 10–12): context vector from the encoder latents.
            let context = self.context_vector(&decoder_state.h, &transformed);
            // Optional decoder-side time decay (ablation only).
            let decoder_h = if matches!(self.time_lag, TimeLagMode::Decoder | TimeLagMode::Both) {
                let lag = Var::constant(Matrix::column(&rp_lags[j]));
                let gamma = self.decoder_decay.forward(&lag).relu().scale(-1.0).exp();
                decoder_state.h.hadamard(&gamma)
            } else {
                decoder_state.h.clone()
            };
            // Eq. 8: LSTM over the complemented RP concatenated with the context.
            let input = Var::concat_rows(&[complement.clone(), context]);
            decoder_state = self.decoder_cell.step(
                &input,
                &LstmState {
                    h: decoder_h,
                    c: decoder_state.c.clone(),
                },
            );

            rp_estimates.push(estimate);
            rp_complements.push(complement);
        }

        BisimPass {
            fingerprint_estimates,
            fingerprint_complements,
            rp_estimates,
            rp_complements,
        }
    }

    /// The attention context vector c_j for the current decoder latent vector.
    fn context_vector(&self, decoder_hidden: &Var, transformed: &[Var]) -> Var {
        if matches!(self.attention, AttentionMode::None) || transformed.is_empty() {
            return Var::constant(Matrix::zeros(self.num_aps, 1));
        }
        // Eq. 10: energies from the alignment MLP.
        let energies: Vec<Var> = transformed
            .iter()
            .map(|h| {
                let joint = Var::concat_rows(&[decoder_hidden.clone(), h.clone()]);
                self.attention_align.forward(&joint)
            })
            .collect();
        // Eq. 11: softmax over the energies.
        let weights = Var::concat_rows(&energies).softmax_col();
        // Eq. 12: weighted sum of the transformed latents.
        let mut context = Var::constant(Matrix::zeros(self.num_aps, 1));
        for (i, h) in transformed.iter().enumerate() {
            let weight = weights.mask(&one_hot(transformed.len(), i)).sum();
            context = context.add(&h.mul_scalar_var(&weight));
        }
        context
    }

    /// Copies the current parameters into a graph-free, `Send + Sync`
    /// [`BisimDirectionWeights`] snapshot, for worker-side graph rebuilds
    /// during batched training.
    pub fn snapshot(&self) -> BisimDirectionWeights {
        BisimDirectionWeights {
            encoder_estimate: self.encoder_estimate.snapshot(),
            encoder_decay: self.encoder_decay.snapshot(),
            encoder_cell: self.encoder_cell.snapshot(),
            decoder_estimate: self.decoder_estimate.snapshot(),
            decoder_decay: self.decoder_decay.snapshot(),
            decoder_cell: self.decoder_cell.snapshot(),
            attention_transform: self.attention_transform.snapshot(),
            attention_align: self.attention_align.snapshot(),
            hidden_size: self.hidden_size,
            num_aps: self.num_aps,
            attention: self.attention,
            time_lag: self.time_lag,
        }
    }
}

/// Time-lag vectors for the RP sequence (2-dimensional, driven by the RP
/// masks), used only by the decoder-side ablations. Shared by the graph pass
/// ([`BisimDirection::run`]) and the snapshot pass
/// ([`BisimDirectionWeights::run`]) so the two stay in lockstep.
fn rp_time_lags(seq: &PathSequence) -> Vec<Vec<f64>> {
    let len = seq.len();
    let mut lags = Vec::with_capacity(len);
    for j in 0..len {
        if j == 0 {
            lags.push(vec![0.0, 0.0]);
        } else {
            let dt = (seq.times[j] - seq.times[j - 1]).abs() / 10.0;
            let previous: &Vec<f64> = &lags[j - 1];
            let lag = if seq.rp_masks[j - 1] > 0.5 {
                vec![dt, dt]
            } else {
                vec![previous[0] + dt, previous[1] + dt]
            };
            lags.push(lag);
        }
    }
    lags
}

/// A graph-free snapshot of one [`BisimDirection`]: plain matrices plus the
/// ablation settings, so it is `Send + Sync` and can be shipped to worker
/// threads (unlike [`Var`], whose nodes are `Rc`-shared). Generic over the
/// [`Scalar`] precision: the `f64` snapshot serves batched training and the
/// bit-identical inference fan-out; [`BisimDirectionWeights::cast`] rounds
/// it once for the f32 inference path.
///
/// [`BisimDirectionWeights::to_model`] rebuilds a trainable direction whose
/// forward and backward passes are bit-identical to the original's — the
/// property that lets batched training differentiate per-sequence replicas
/// on the pool and ship only plain gradient matrices back.
/// [`BisimDirectionWeights::run`] mirrors [`BisimDirection::run`] operation
/// for operation, so snapshot inference is bit-identical to the graph
/// forward at the same precision (pinned by the serial-trajectory test in
/// the crate root).
#[derive(Clone)]
pub struct BisimDirectionWeights<T: Scalar = f64> {
    encoder_estimate: LinearWeights<T>,
    encoder_decay: LinearWeights<T>,
    encoder_cell: LstmCellWeights<T>,
    decoder_estimate: LinearWeights<T>,
    decoder_decay: LinearWeights<T>,
    decoder_cell: LstmCellWeights<T>,
    attention_transform: LinearWeights<T>,
    attention_align: MlpWeights<T>,
    hidden_size: usize,
    num_aps: usize,
    attention: AttentionMode,
    time_lag: TimeLagMode,
}

/// The per-step outputs of one matrix-level (graph-free) directional pass:
/// only the complements, which are all inference consumes.
pub struct BisimMatrixPass<T: Scalar = f64> {
    /// Complemented fingerprints `f^c_i`, one `(num_aps, 1)` column per step.
    pub fingerprint_complements: Vec<Matrix<T>>,
    /// Complemented RP vectors `l^c_j`, one `(2, 1)` column per step.
    pub rp_complements: Vec<Matrix<T>>,
}

impl BisimDirectionWeights {
    /// Exports this direction's weights as `{prefix}.*` named tensors at the
    /// dtype the inference path keeps resident (the shared
    /// [`rm_imputers::snapshot::export_linear`] contract: exported bits
    /// equal serving bits in every mode). Names mirror the unit structure:
    /// `encoder.{estimate, decay, cell.*}`, `decoder.{estimate, decay,
    /// cell.*}`, `attention.{transform, align.N}`.
    pub fn export(
        &self,
        prefix: &str,
        precision: Precision,
        snapshot_dtype: SnapshotDtype,
        tensors: &mut Vec<NamedTensor>,
    ) {
        use rm_imputers::snapshot::{export_linear, export_lstm_cell, export_mlp};
        export_linear(
            &format!("{prefix}.encoder.estimate"),
            &self.encoder_estimate,
            precision,
            snapshot_dtype,
            tensors,
        );
        export_linear(
            &format!("{prefix}.encoder.decay"),
            &self.encoder_decay,
            precision,
            snapshot_dtype,
            tensors,
        );
        export_lstm_cell(
            &format!("{prefix}.encoder"),
            &self.encoder_cell,
            precision,
            snapshot_dtype,
            tensors,
        );
        export_linear(
            &format!("{prefix}.decoder.estimate"),
            &self.decoder_estimate,
            precision,
            snapshot_dtype,
            tensors,
        );
        export_linear(
            &format!("{prefix}.decoder.decay"),
            &self.decoder_decay,
            precision,
            snapshot_dtype,
            tensors,
        );
        export_lstm_cell(
            &format!("{prefix}.decoder"),
            &self.decoder_cell,
            precision,
            snapshot_dtype,
            tensors,
        );
        export_linear(
            &format!("{prefix}.attention.transform"),
            &self.attention_transform,
            precision,
            snapshot_dtype,
            tensors,
        );
        export_mlp(
            &format!("{prefix}.attention.align"),
            &self.attention_align,
            precision,
            snapshot_dtype,
            tensors,
        );
    }

    /// Rebuilds one direction's weights from tensors exported by
    /// [`BisimDirectionWeights::export`] under `prefix`, validating every
    /// shape against a `num_aps`-AP map (the ablation settings are part of
    /// the architecture the caller fixes, like the MLP activations).
    /// Returns `None` — the caller then falls back to cold training — when
    /// a tensor is missing or the snapshot was trained for a different map
    /// shape.
    pub fn import(
        prefix: &str,
        tensors: &[NamedTensor],
        num_aps: usize,
        attention: AttentionMode,
        time_lag: TimeLagMode,
    ) -> Option<Self> {
        use rm_imputers::snapshot::{import_linear, import_lstm_cell, import_mlp};
        let encoder = format!("{prefix}.encoder");
        let decoder = format!("{prefix}.decoder");
        let encoder_estimate = import_linear(tensors, &encoder, "estimate")?;
        let encoder_decay = import_linear(tensors, &encoder, "decay")?;
        let encoder_cell = import_lstm_cell(tensors, &encoder)?;
        let decoder_estimate = import_linear(tensors, &decoder, "estimate")?;
        let decoder_decay = import_linear(tensors, &decoder, "decay")?;
        let decoder_cell = import_lstm_cell(tensors, &decoder)?;
        let attention_transform = import_linear(tensors, prefix, "attention.transform")?;
        let attention_align = import_mlp(
            tensors,
            &format!("{prefix}.attention.align"),
            Activation::Tanh,
            Activation::Identity,
        )?;

        // Validate every unit against the architecture of
        // [`BisimDirection::new`] before anything can panic downstream.
        let hidden_size = encoder_estimate.weight().cols();
        let align = attention_align.layers();
        if hidden_size == 0
            || encoder_estimate.weight().shape() != (num_aps, hidden_size)
            || encoder_decay.weight().shape() != (hidden_size, num_aps)
            || encoder_cell.gates()[0].weight().shape() != (hidden_size, num_aps * 2 + hidden_size)
            || decoder_estimate.weight().shape() != (2, hidden_size)
            || decoder_decay.weight().shape() != (hidden_size, 2)
            || decoder_cell.gates()[0].weight().shape() != (hidden_size, 2 + num_aps + hidden_size)
            || attention_transform.weight().shape() != (num_aps, hidden_size)
            || align.first()?.weight().cols() != hidden_size + num_aps
            || align.last()?.weight().rows() != 1
        {
            return None;
        }
        Some(Self {
            encoder_estimate,
            encoder_decay,
            encoder_cell,
            decoder_estimate,
            decoder_decay,
            decoder_cell,
            attention_transform,
            attention_align,
            hidden_size,
            num_aps,
            attention,
            time_lag,
        })
    }

    /// Rebuilds a trainable [`BisimDirection`] from this snapshot (fresh
    /// parameter leaves holding copies of the snapshotted matrices; the
    /// inverse of [`BisimDirection::snapshot`]).
    pub fn to_model(&self) -> BisimDirection {
        BisimDirection {
            encoder_estimate: self.encoder_estimate.to_linear(),
            encoder_decay: self.encoder_decay.to_linear(),
            encoder_cell: self.encoder_cell.to_cell(),
            decoder_estimate: self.decoder_estimate.to_linear(),
            decoder_decay: self.decoder_decay.to_linear(),
            decoder_cell: self.decoder_cell.to_cell(),
            attention_transform: self.attention_transform.to_linear(),
            attention_align: self.attention_align.to_mlp(),
            hidden_size: self.hidden_size,
            num_aps: self.num_aps,
            attention: self.attention,
            time_lag: self.time_lag,
        }
    }
}

impl<T: Scalar> BisimDirectionWeights<T> {
    /// Rounds the snapshot to another precision (the one-time `f64 → f32`
    /// weight rounding of the f32 inference path).
    pub fn cast<U: Scalar>(&self) -> BisimDirectionWeights<U> {
        BisimDirectionWeights {
            encoder_estimate: self.encoder_estimate.cast(),
            encoder_decay: self.encoder_decay.cast(),
            encoder_cell: self.encoder_cell.cast(),
            decoder_estimate: self.decoder_estimate.cast(),
            decoder_decay: self.decoder_decay.cast(),
            decoder_cell: self.decoder_cell.cast(),
            attention_transform: self.attention_transform.cast(),
            attention_align: self.attention_align.cast(),
            hidden_size: self.hidden_size,
            num_aps: self.num_aps,
            attention: self.attention,
            time_lag: self.time_lag,
        }
    }

    /// Bytes the snapshot keeps resident at precision `T`.
    pub fn resident_bytes(&self) -> usize {
        self.encoder_estimate.resident_bytes()
            + self.encoder_decay.resident_bytes()
            + self.encoder_cell.resident_bytes()
            + self.decoder_estimate.resident_bytes()
            + self.decoder_decay.resident_bytes()
            + self.decoder_cell.resident_bytes()
            + self.attention_transform.resident_bytes()
            + self.attention_align.resident_bytes()
    }

    /// Returns the snapshot's matrices to `ws` for capacity reuse — the
    /// give-back half of a per-task [`BisimDirectionWeightsBf16::decode_ws`]
    /// cycle.
    pub fn recycle(self, ws: &mut Workspace<T>) {
        self.encoder_estimate.recycle(ws);
        self.encoder_decay.recycle(ws);
        self.encoder_cell.recycle(ws);
        self.decoder_estimate.recycle(ws);
        self.decoder_decay.recycle(ws);
        self.decoder_cell.recycle(ws);
        self.attention_transform.recycle(ws);
        self.attention_align.recycle(ws);
    }

    /// Runs the encoder–decoder over one prepared sequence on plain matrices
    /// — the graph-free mirror of [`BisimDirection::run`], performing the
    /// same operations in the same order (same complements, same decay
    /// chain, same attention softmax and accumulation order), so at the same
    /// precision the complements are bit-identical to the graph pass's.
    /// Sequence data is stored in `f64` and rounded per step, so the kernels
    /// run entirely in `T`; intermediates cycle through the caller-owned
    /// workspace `ws`.
    pub fn run(&self, seq: &PathSequence, ws: &mut Workspace<T>) -> BisimMatrixPass<T> {
        let len = seq.len();
        let mut fingerprint_complements = Vec::with_capacity(len);
        let mut encoder_latents: Vec<Matrix<T>> = Vec::with_capacity(len);
        let mut encoder_masks = Vec::with_capacity(len);

        // ---------------- Encoder stack (Eq. 2–5) ----------------
        // Seed the state from the workspace (bitwise zeros).
        let mut state = LstmStateMatrix {
            h: ws.take(self.hidden_size, 1),
            c: ws.take(self.hidden_size, 1),
        };
        // Scratch reused across steps.
        let mut estimate_pre = Matrix::zeros(0, 0);
        let mut decay_pre = Matrix::zeros(0, 0);
        for t in 0..len {
            let fingerprint = Matrix::<T>::column_from_f64(&seq.fingerprints[t]);
            let mask = Matrix::<T>::column_from_f64(&seq.fingerprint_masks[t]);
            let inverse_mask = mask.map(|m| T::ONE - m);

            // Eq. 2–3: estimate, then complement observed values with it.
            self.encoder_estimate
                .forward_into(&state.h, &mut estimate_pre);
            let complement = &fingerprint.hadamard(&mask) + &estimate_pre.hadamard(&inverse_mask);
            // Eq. 4: γ = exp(-relu(W_γ δ + b_γ)), matching relu → scale(-1) → exp.
            let decayed_h = if matches!(self.time_lag, TimeLagMode::Encoder | TimeLagMode::Both) {
                let lag = Matrix::<T>::column_from_f64(&seq.time_lags[t]);
                self.encoder_decay.forward_into(&lag, &mut decay_pre);
                let gamma = decay_pre.map(Scalar::relu).scale(-T::ONE).map(Scalar::exp);
                state.h.hadamard(&gamma)
            } else {
                state.h.clone()
            };
            // Eq. 5: LSTM over the complemented fingerprint + mask.
            let input = complement.vstack(&mask);
            let decayed = LstmStateMatrix {
                h: decayed_h,
                c: state.c.clone(),
            };
            let next = self.encoder_cell.step_ws(&input, &decayed, ws);
            ws.give(state.h);
            ws.give(state.c);
            ws.give(decayed.h);
            ws.give(decayed.c);
            ws.give(input);
            state = next;

            fingerprint_complements.push(complement);
            encoder_latents.push(state.h.clone());
            encoder_masks.push(mask);
        }
        ws.give(state.h);
        ws.give(state.c);

        // Pre-compute the (possibly masked) transformed latents h''_i (Eq. 9).
        let transformed: Vec<Matrix<T>> = encoder_latents
            .iter()
            .zip(encoder_masks.iter())
            .map(|(h, m)| {
                let h_prime = self.attention_transform.forward(h);
                match self.attention {
                    AttentionMode::SparsityFriendly => h_prime.hadamard(m),
                    _ => h_prime,
                }
            })
            .collect();

        // -------- Decoder stack with attention (Eq. 6–12) --------
        // s_0 = h_T, with a zero cell state (mirrors `LstmState::from_hidden`).
        let mut decoder_state = LstmStateMatrix {
            h: encoder_latents
                .last()
                .cloned()
                .unwrap_or_else(|| Matrix::zeros(self.hidden_size, 1)),
            c: Matrix::zeros(self.hidden_size, 1),
        };
        let rp_lags = rp_time_lags(seq);
        let mut rp_complements = Vec::with_capacity(len);
        for j in 0..len {
            let rp = Matrix::<T>::column_from_f64(&[seq.rps[j].0, seq.rps[j].1]);
            let rp_mask = Matrix::<T>::column_from_f64(&[seq.rp_masks[j], seq.rp_masks[j]]);
            let inverse_mask = rp_mask.map(|m| T::ONE - m);

            // Eq. 6–7: estimate the RP, then complement.
            self.decoder_estimate
                .forward_into(&decoder_state.h, &mut estimate_pre);
            let complement = &rp.hadamard(&rp_mask) + &estimate_pre.hadamard(&inverse_mask);
            // Attention (Eq. 10–12).
            let context = self.context_vector_matrix(&decoder_state.h, &transformed);
            // Optional decoder-side time decay (ablation only).
            let decoder_h = if matches!(self.time_lag, TimeLagMode::Decoder | TimeLagMode::Both) {
                let lag = Matrix::<T>::column_from_f64(&rp_lags[j]);
                self.decoder_decay.forward_into(&lag, &mut decay_pre);
                let gamma = decay_pre.map(Scalar::relu).scale(-T::ONE).map(Scalar::exp);
                decoder_state.h.hadamard(&gamma)
            } else {
                decoder_state.h.clone()
            };
            // Eq. 8: LSTM over the complemented RP + context.
            let input = complement.vstack(&context);
            let decayed = LstmStateMatrix {
                h: decoder_h,
                c: decoder_state.c.clone(),
            };
            let next = self.decoder_cell.step_ws(&input, &decayed, ws);
            ws.give(decoder_state.h);
            ws.give(decoder_state.c);
            ws.give(decayed.h);
            ws.give(decayed.c);
            ws.give(input);
            decoder_state = next;

            rp_complements.push(complement);
        }
        ws.give(decoder_state.h);
        ws.give(decoder_state.c);

        BisimMatrixPass {
            fingerprint_complements,
            rp_complements,
        }
    }

    /// The attention context vector c_j on plain matrices — the same
    /// energies, the same stabilised softmax (max-shift, exp, normalise) and
    /// the same index-order accumulation as [`BisimDirection::context_vector`],
    /// so the result is bit-identical at the same precision. (The graph
    /// version extracts each weight as `mask(one_hot).sum()`, which is
    /// exactly `weights[i]`: every other term of the sum is `±0.0` and the
    /// softmax weights are non-negative.)
    fn context_vector_matrix(
        &self,
        decoder_hidden: &Matrix<T>,
        transformed: &[Matrix<T>],
    ) -> Matrix<T> {
        if matches!(self.attention, AttentionMode::None) || transformed.is_empty() {
            return Matrix::zeros(self.num_aps, 1);
        }
        // Eq. 10: energies from the alignment MLP.
        let energies: Vec<T> = transformed
            .iter()
            .map(|h| {
                let joint = decoder_hidden.vstack(h);
                self.attention_align.forward(&joint).get(0, 0)
            })
            .collect();
        // Eq. 11: softmax over the energies — the same stabilised forward as
        // `Var::softmax_col`.
        let energy_col = Matrix::from_fn(energies.len(), 1, |r, _| energies[r]);
        let max = energy_col.max().unwrap_or(T::ZERO);
        let exps = energy_col.map(|x| (x - max).exp());
        let total = exps.sum();
        let weights = exps.map(|e| e / total);
        // Eq. 12: weighted sum of the transformed latents, in index order.
        let mut context = Matrix::zeros(self.num_aps, 1);
        for (i, h) in transformed.iter().enumerate() {
            context = &context + &h.scale(weights.get(i, 0));
        }
        context
    }
}

/// A [`BisimDirectionWeights<f32>`] snapshot stored as truncated bfloat16:
/// the `RM_SNAPSHOT_DTYPE=bf16` resident form — half the bytes of the f32
/// snapshot — decoded into pooled f32 scratch once per inference task.
#[derive(Clone)]
pub struct BisimDirectionWeightsBf16 {
    encoder_estimate: LinearWeightsBf16,
    encoder_decay: LinearWeightsBf16,
    encoder_cell: LstmCellWeightsBf16,
    decoder_estimate: LinearWeightsBf16,
    decoder_decay: LinearWeightsBf16,
    decoder_cell: LstmCellWeightsBf16,
    attention_transform: LinearWeightsBf16,
    attention_align: MlpWeightsBf16,
    hidden_size: usize,
    num_aps: usize,
    attention: AttentionMode,
    time_lag: TimeLagMode,
}

impl BisimDirectionWeightsBf16 {
    /// Encodes an f32 snapshot by truncating every weight to bfloat16.
    pub fn from_weights(w: &BisimDirectionWeights<f32>) -> Self {
        Self {
            encoder_estimate: LinearWeightsBf16::from_weights(&w.encoder_estimate),
            encoder_decay: LinearWeightsBf16::from_weights(&w.encoder_decay),
            encoder_cell: LstmCellWeightsBf16::from_weights(&w.encoder_cell),
            decoder_estimate: LinearWeightsBf16::from_weights(&w.decoder_estimate),
            decoder_decay: LinearWeightsBf16::from_weights(&w.decoder_decay),
            decoder_cell: LstmCellWeightsBf16::from_weights(&w.decoder_cell),
            attention_transform: LinearWeightsBf16::from_weights(&w.attention_transform),
            attention_align: MlpWeightsBf16::from_weights(&w.attention_align),
            hidden_size: w.hidden_size,
            num_aps: w.num_aps,
            attention: w.attention,
            time_lag: w.time_lag,
        }
    }

    /// Decodes into an f32 snapshot whose matrices are checked out of `ws`;
    /// pair with [`BisimDirectionWeights::recycle`] to return them.
    pub fn decode_ws(&self, ws: &mut Workspace<f32>) -> BisimDirectionWeights<f32> {
        BisimDirectionWeights {
            encoder_estimate: self.encoder_estimate.decode_ws(ws),
            encoder_decay: self.encoder_decay.decode_ws(ws),
            encoder_cell: self.encoder_cell.decode_ws(ws),
            decoder_estimate: self.decoder_estimate.decode_ws(ws),
            decoder_decay: self.decoder_decay.decode_ws(ws),
            decoder_cell: self.decoder_cell.decode_ws(ws),
            attention_transform: self.attention_transform.decode_ws(ws),
            attention_align: self.attention_align.decode_ws(ws),
            hidden_size: self.hidden_size,
            num_aps: self.num_aps,
            attention: self.attention,
            time_lag: self.time_lag,
        }
    }

    /// Bytes the snapshot keeps resident (2 per weight).
    pub fn resident_bytes(&self) -> usize {
        self.encoder_estimate.resident_bytes()
            + self.encoder_decay.resident_bytes()
            + self.encoder_cell.resident_bytes()
            + self.decoder_estimate.resident_bytes()
            + self.decoder_decay.resident_bytes()
            + self.decoder_cell.resident_bytes()
            + self.attention_transform.resident_bytes()
            + self.attention_align.resident_bytes()
    }
}

/// A column one-hot mask selecting entry `index` out of `len`.
fn one_hot(len: usize, index: usize) -> Matrix {
    Matrix::from_fn(len, 1, |r, _| if r == index { 1.0 } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rm_geometry::Point;
    use rm_imputers::{build_sequences, Normalization};
    use rm_radiomap::{EntryKind, Fingerprint, MaskMatrix, RadioMap, RadioMapRecord};

    fn sequence() -> PathSequence {
        let mk = |values: Vec<Option<f64>>, rp: Option<Point>, t: f64| {
            RadioMapRecord::new(Fingerprint::new(values), rp, t, 0)
        };
        let map = RadioMap::new(
            vec![
                mk(
                    vec![Some(-70.0), Some(-80.0), None],
                    Some(Point::new(0.0, 0.0)),
                    0.0,
                ),
                mk(vec![Some(-71.0), None, None], None, 2.0),
                mk(
                    vec![None, Some(-75.0), Some(-90.0)],
                    Some(Point::new(4.0, 1.0)),
                    4.0,
                ),
                mk(vec![None, None, None], None, 6.0),
            ],
            3,
        );
        let mut mask = MaskMatrix::all_observed(4, 3);
        mask.set(0, 2, EntryKind::Mnar);
        mask.set(1, 1, EntryKind::Mar);
        mask.set(1, 2, EntryKind::Mnar);
        mask.set(2, 0, EntryKind::Mar);
        mask.set(3, 0, EntryKind::Mar);
        mask.set(3, 1, EntryKind::Mar);
        mask.set(3, 2, EntryKind::Mnar);
        let norm = Normalization::from_map(&map);
        build_sequences(&map, &mask, 5, &norm).remove(0)
    }

    fn direction(attention: AttentionMode, time_lag: TimeLagMode) -> BisimDirection {
        let mut rng = StdRng::seed_from_u64(9);
        BisimDirection::new(3, 8, attention, time_lag, &mut rng)
    }

    #[test]
    fn pass_produces_one_output_per_step() {
        let seq = sequence();
        let model = direction(AttentionMode::SparsityFriendly, TimeLagMode::Encoder);
        let pass = model.run(&seq);
        assert_eq!(pass.fingerprint_estimates.len(), 4);
        assert_eq!(pass.fingerprint_complements.len(), 4);
        assert_eq!(pass.rp_estimates.len(), 4);
        assert_eq!(pass.rp_complements.len(), 4);
        assert_eq!(pass.fingerprint_complements[0].shape(), (3, 1));
        assert_eq!(pass.rp_complements[0].shape(), (2, 1));
    }

    #[test]
    fn observed_values_pass_through_the_complement() {
        let seq = sequence();
        let model = direction(AttentionMode::SparsityFriendly, TimeLagMode::Encoder);
        let pass = model.run(&seq);
        // Step 0, AP 0 is observed: the complement must equal the input.
        let c = pass.fingerprint_complements[0].value();
        assert!((c.get(0, 0) - seq.fingerprints[0][0]).abs() < 1e-12);
        // Step 0's RP is observed: complement equals normalised RP.
        let rp = pass.rp_complements[0].value();
        assert!((rp.get(0, 0) - seq.rps[0].0).abs() < 1e-12);
        assert!((rp.get(1, 0) - seq.rps[0].1).abs() < 1e-12);
    }

    #[test]
    fn all_modes_run_and_produce_finite_outputs() {
        let seq = sequence();
        for attention in [
            AttentionMode::SparsityFriendly,
            AttentionMode::Standard,
            AttentionMode::None,
        ] {
            for time_lag in [
                TimeLagMode::Encoder,
                TimeLagMode::Decoder,
                TimeLagMode::Both,
                TimeLagMode::None,
            ] {
                let model = direction(attention, time_lag);
                let pass = model.run(&seq);
                for v in pass
                    .fingerprint_complements
                    .iter()
                    .chain(pass.rp_complements.iter())
                {
                    assert!(
                        v.value().is_finite(),
                        "{attention:?}/{time_lag:?} produced NaN"
                    );
                }
            }
        }
    }

    #[test]
    fn gradients_reach_encoder_and_decoder_parameters() {
        let seq = sequence();
        let model = direction(AttentionMode::SparsityFriendly, TimeLagMode::Encoder);
        let pass = model.run(&seq);
        let mut total = Var::scalar(0.0);
        for est in pass
            .fingerprint_estimates
            .iter()
            .chain(pass.rp_estimates.iter())
        {
            total = total.add(&est.square().sum());
        }
        total.backward();
        let with_grad = model
            .parameters()
            .iter()
            .filter(|p| p.grad().frobenius_norm() > 0.0)
            .count();
        assert!(
            with_grad > model.parameters().len() / 2,
            "only {with_grad} of {} parameters received gradient",
            model.parameters().len()
        );
    }

    /// The graph-free snapshot pass must reproduce the graph pass bit for
    /// bit at f64, across every attention/time-lag ablation — the property
    /// that lets `Bisim::impute` fan inference out over the pool without
    /// perturbing the pre-snapshot pipeline.
    #[test]
    fn snapshot_run_matches_graph_run_bitwise_across_ablations() {
        let seq = sequence();
        for attention in [
            AttentionMode::SparsityFriendly,
            AttentionMode::Standard,
            AttentionMode::None,
        ] {
            for time_lag in [
                TimeLagMode::Encoder,
                TimeLagMode::Decoder,
                TimeLagMode::Both,
                TimeLagMode::None,
            ] {
                let model = direction(attention, time_lag);
                let graph = model.run(&seq);
                let mut ws = Workspace::new();
                // Poison the pool so checkouts must reinitialise.
                ws.give(Matrix::filled(8, 1, f64::NAN));
                let snap = model.snapshot().run(&seq, &mut ws);
                for (g, s) in graph
                    .fingerprint_complements
                    .iter()
                    .zip(snap.fingerprint_complements.iter())
                {
                    assert!(
                        g.value().bits_eq(s),
                        "{attention:?}/{time_lag:?}: fingerprint complement drifted"
                    );
                }
                for (g, s) in graph.rp_complements.iter().zip(snap.rp_complements.iter()) {
                    assert!(
                        g.value().bits_eq(s),
                        "{attention:?}/{time_lag:?}: RP complement drifted"
                    );
                }
            }
        }
    }

    /// bf16 snapshots are half the resident bytes of f32 and their decoded
    /// pass stays epsilon-close to the native f32 pass.
    #[test]
    fn bf16_snapshot_halves_bytes_and_tracks_the_f32_pass() {
        let seq = sequence();
        let model = direction(AttentionMode::SparsityFriendly, TimeLagMode::Encoder);
        let w64 = model.snapshot();
        let w32 = w64.cast::<f32>();
        let packed = BisimDirectionWeightsBf16::from_weights(&w32);
        assert_eq!(packed.resident_bytes() * 2, w32.resident_bytes());
        assert_eq!(packed.resident_bytes() * 4, w64.resident_bytes());

        let mut ws = Workspace::new();
        let exact = w32.run(&seq, &mut ws);
        let decoded = packed.decode_ws(&mut ws);
        let approx = decoded.run(&seq, &mut ws);
        for (a, b) in exact
            .fingerprint_complements
            .iter()
            .chain(exact.rp_complements.iter())
            .zip(
                approx
                    .fingerprint_complements
                    .iter()
                    .chain(approx.rp_complements.iter()),
            )
        {
            // Complements mix raw observations (identical in both) with
            // squashed estimates, so a loose absolute bound pins the path.
            assert!(a.approx_eq(b, 0.2), "bf16 BiSIM pass drifted");
        }
        decoded.recycle(&mut ws);
    }

    #[test]
    fn one_hot_mask_selects_single_entry() {
        let m = one_hot(4, 2);
        assert_eq!(m.get(2, 0), 1.0);
        assert_eq!(m.sum(), 1.0);
    }
}
