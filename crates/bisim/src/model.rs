//! The internals of BiSIM (Section IV-C): encoder units, decoder units and the
//! sparsity-friendly attention unit, assembled into one directional
//! sequence-to-sequence pass.

use rand::rngs::StdRng;
use rm_imputers::PathSequence;
use rm_nn::{
    Activation, Linear, LinearWeights, LstmCell, LstmCellWeights, LstmState, Mlp, MlpWeights,
};
use rm_tensor::{Matrix, Var};

/// Which attention mechanism the decoder uses (the Fig. 17 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttentionMode {
    /// The paper's sparsity-friendly adaptation of Bahdanau attention: only
    /// the observed part of each encoder latent vector participates.
    SparsityFriendly,
    /// Plain Bahdanau attention (no masking of the latent vectors).
    Standard,
    /// No attention: the context vector is all zeros.
    None,
}

/// Where the time-lag decay mechanism is applied (the Fig. 18 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeLagMode {
    /// Time lag in the encoder only — the paper's final design.
    Encoder,
    /// Time lag in the decoder only.
    Decoder,
    /// Time lag in both encoder and decoder.
    Both,
    /// No time-lag mechanism.
    None,
}

/// The per-step outputs of one directional pass through BiSIM.
pub struct BisimPass {
    /// Predicted fingerprints `f′_i` (used by the loss).
    pub fingerprint_estimates: Vec<Var>,
    /// Complemented fingerprints `f^c_i` (the imputations).
    pub fingerprint_complements: Vec<Var>,
    /// Predicted RP vectors `l′_j` (used by the loss).
    pub rp_estimates: Vec<Var>,
    /// Complemented RP vectors `l^c_j` (the imputations).
    pub rp_complements: Vec<Var>,
}

impl BisimPass {
    /// Consumes the pass into its output handles — the roots to hand to
    /// [`Var::recycle_all`] once the pass's values and gradients are no
    /// longer needed, returning the graph to the per-worker node arena.
    pub fn into_vars(self) -> impl Iterator<Item = Var> {
        self.fingerprint_estimates
            .into_iter()
            .chain(self.fingerprint_complements)
            .chain(self.rp_estimates)
            .chain(self.rp_complements)
    }
}

/// One directional BiSIM model: an encoder stack over the fingerprint
/// sequence, a decoder stack over the RP sequence, and an attention unit
/// connecting them.
pub struct BisimDirection {
    // Encoder unit parameters (Eq. 2–5).
    encoder_estimate: Linear,
    encoder_decay: Linear,
    encoder_cell: LstmCell,
    // Decoder unit parameters (Eq. 6–8).
    decoder_estimate: Linear,
    decoder_decay: Linear,
    decoder_cell: LstmCell,
    // Attention unit parameters (Eq. 9–12).
    attention_transform: Linear,
    attention_align: Mlp,
    hidden_size: usize,
    num_aps: usize,
    attention: AttentionMode,
    time_lag: TimeLagMode,
}

impl BisimDirection {
    /// Creates one directional model.
    pub fn new(
        num_aps: usize,
        hidden_size: usize,
        attention: AttentionMode,
        time_lag: TimeLagMode,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            encoder_estimate: Linear::new(hidden_size, num_aps, rng),
            encoder_decay: Linear::new(num_aps, hidden_size, rng),
            encoder_cell: LstmCell::new(num_aps * 2, hidden_size, rng),
            decoder_estimate: Linear::new(hidden_size, 2, rng),
            decoder_decay: Linear::new(2, hidden_size, rng),
            decoder_cell: LstmCell::new(2 + num_aps, hidden_size, rng),
            attention_transform: Linear::new(hidden_size, num_aps, rng),
            attention_align: Mlp::new(
                &[hidden_size + num_aps, hidden_size, 1],
                Activation::Tanh,
                Activation::Identity,
                rng,
            ),
            hidden_size,
            num_aps,
            attention,
            time_lag,
        }
    }

    /// All trainable parameters of this direction.
    pub fn parameters(&self) -> Vec<Var> {
        let mut params = self.encoder_estimate.parameters();
        params.extend(self.encoder_decay.parameters());
        params.extend(self.encoder_cell.parameters());
        params.extend(self.decoder_estimate.parameters());
        params.extend(self.decoder_decay.parameters());
        params.extend(self.decoder_cell.parameters());
        params.extend(self.attention_transform.parameters());
        params.extend(self.attention_align.parameters());
        params
    }

    /// Runs the encoder–decoder over one prepared sequence.
    pub fn run(&self, seq: &PathSequence) -> BisimPass {
        let len = seq.len();
        let mut fingerprint_estimates = Vec::with_capacity(len);
        let mut fingerprint_complements = Vec::with_capacity(len);
        let mut encoder_latents = Vec::with_capacity(len);
        let mut encoder_masks = Vec::with_capacity(len);

        // ---------------- Encoder stack (Eq. 2–5) ----------------
        let mut state = LstmState::zeros(self.hidden_size);
        for t in 0..len {
            let fingerprint = Var::constant(Matrix::column(&seq.fingerprints[t]));
            let mask = Matrix::column(&seq.fingerprint_masks[t]);
            let inverse_mask = mask.map(|m| 1.0 - m);

            // Eq. 2: estimate from the previous latent vector.
            let estimate = self.encoder_estimate.forward(&state.h);
            // Eq. 3: complement observed values with the estimate.
            let complement = fingerprint.mask(&mask).add(&estimate.mask(&inverse_mask));
            // Eq. 4: temporal decay factor from the time-lag vector.
            let decayed_h = if matches!(self.time_lag, TimeLagMode::Encoder | TimeLagMode::Both) {
                let lag = Var::constant(Matrix::column(&seq.time_lags[t]));
                let gamma = self.encoder_decay.forward(&lag).relu().scale(-1.0).exp();
                state.h.hadamard(&gamma)
            } else {
                state.h.clone()
            };
            // Eq. 5: LSTM over the complemented fingerprint concatenated with the mask.
            let input = Var::concat_rows(&[complement.clone(), Var::constant(mask.clone())]);
            state = self.encoder_cell.step(
                &input,
                &LstmState {
                    h: decayed_h,
                    c: state.c.clone(),
                },
            );

            fingerprint_estimates.push(estimate);
            fingerprint_complements.push(complement);
            encoder_latents.push(state.h.clone());
            encoder_masks.push(mask);
        }

        // Pre-compute the (possibly masked) transformed latents h''_i (Eq. 9).
        let transformed: Vec<Var> = encoder_latents
            .iter()
            .zip(encoder_masks.iter())
            .map(|(h, m)| {
                let h_prime = self.attention_transform.forward(h);
                match self.attention {
                    AttentionMode::SparsityFriendly => h_prime.mask(m),
                    _ => h_prime,
                }
            })
            .collect();

        // ---------------- Decoder stack with attention (Eq. 6–12) ----------------
        // s_0 = h_T: the decoder starts from the final encoder latent vector.
        let mut decoder_state = LstmState::from_hidden(
            encoder_latents
                .last()
                .cloned()
                .unwrap_or_else(|| Var::constant(Matrix::zeros(self.hidden_size, 1))),
        );
        let rp_lags = self.rp_time_lags(seq);
        let mut rp_estimates = Vec::with_capacity(len);
        let mut rp_complements = Vec::with_capacity(len);
        for j in 0..len {
            let rp = Var::constant(Matrix::column(&[seq.rps[j].0, seq.rps[j].1]));
            let rp_mask = Matrix::column(&[seq.rp_masks[j], seq.rp_masks[j]]);
            let inverse_mask = rp_mask.map(|m| 1.0 - m);

            // Eq. 6: estimate the RP from the previous decoder latent vector.
            let estimate = self.decoder_estimate.forward(&decoder_state.h);
            // Eq. 7: complement.
            let complement = rp.mask(&rp_mask).add(&estimate.mask(&inverse_mask));
            // Attention (Eq. 10–12): context vector from the encoder latents.
            let context = self.context_vector(&decoder_state.h, &transformed);
            // Optional decoder-side time decay (ablation only).
            let decoder_h = if matches!(self.time_lag, TimeLagMode::Decoder | TimeLagMode::Both) {
                let lag = Var::constant(Matrix::column(&rp_lags[j]));
                let gamma = self.decoder_decay.forward(&lag).relu().scale(-1.0).exp();
                decoder_state.h.hadamard(&gamma)
            } else {
                decoder_state.h.clone()
            };
            // Eq. 8: LSTM over the complemented RP concatenated with the context.
            let input = Var::concat_rows(&[complement.clone(), context]);
            decoder_state = self.decoder_cell.step(
                &input,
                &LstmState {
                    h: decoder_h,
                    c: decoder_state.c.clone(),
                },
            );

            rp_estimates.push(estimate);
            rp_complements.push(complement);
        }

        BisimPass {
            fingerprint_estimates,
            fingerprint_complements,
            rp_estimates,
            rp_complements,
        }
    }

    /// The attention context vector c_j for the current decoder latent vector.
    fn context_vector(&self, decoder_hidden: &Var, transformed: &[Var]) -> Var {
        if matches!(self.attention, AttentionMode::None) || transformed.is_empty() {
            return Var::constant(Matrix::zeros(self.num_aps, 1));
        }
        // Eq. 10: energies from the alignment MLP.
        let energies: Vec<Var> = transformed
            .iter()
            .map(|h| {
                let joint = Var::concat_rows(&[decoder_hidden.clone(), h.clone()]);
                self.attention_align.forward(&joint)
            })
            .collect();
        // Eq. 11: softmax over the energies.
        let weights = Var::concat_rows(&energies).softmax_col();
        // Eq. 12: weighted sum of the transformed latents.
        let mut context = Var::constant(Matrix::zeros(self.num_aps, 1));
        for (i, h) in transformed.iter().enumerate() {
            let weight = weights.mask(&one_hot(transformed.len(), i)).sum();
            context = context.add(&h.mul_scalar_var(&weight));
        }
        context
    }

    /// Copies the current parameters into a graph-free, `Send + Sync`
    /// [`BisimDirectionWeights`] snapshot, for worker-side graph rebuilds
    /// during batched training.
    pub fn snapshot(&self) -> BisimDirectionWeights {
        BisimDirectionWeights {
            encoder_estimate: self.encoder_estimate.snapshot(),
            encoder_decay: self.encoder_decay.snapshot(),
            encoder_cell: self.encoder_cell.snapshot(),
            decoder_estimate: self.decoder_estimate.snapshot(),
            decoder_decay: self.decoder_decay.snapshot(),
            decoder_cell: self.decoder_cell.snapshot(),
            attention_transform: self.attention_transform.snapshot(),
            attention_align: self.attention_align.snapshot(),
            hidden_size: self.hidden_size,
            num_aps: self.num_aps,
            attention: self.attention,
            time_lag: self.time_lag,
        }
    }

    /// Time-lag vectors for the RP sequence (2-dimensional, driven by the RP
    /// masks), used only by the decoder-side ablations.
    fn rp_time_lags(&self, seq: &PathSequence) -> Vec<Vec<f64>> {
        let len = seq.len();
        let mut lags = Vec::with_capacity(len);
        for j in 0..len {
            if j == 0 {
                lags.push(vec![0.0, 0.0]);
            } else {
                let dt = (seq.times[j] - seq.times[j - 1]).abs() / 10.0;
                let previous: &Vec<f64> = &lags[j - 1];
                let lag = if seq.rp_masks[j - 1] > 0.5 {
                    vec![dt, dt]
                } else {
                    vec![previous[0] + dt, previous[1] + dt]
                };
                lags.push(lag);
            }
        }
        lags
    }
}

/// A graph-free snapshot of one [`BisimDirection`]: plain matrices plus the
/// ablation settings, so it is `Send + Sync` and can be shipped to worker
/// threads (unlike [`Var`], whose nodes are `Rc`-shared).
///
/// [`BisimDirectionWeights::to_model`] rebuilds a trainable direction whose
/// forward and backward passes are bit-identical to the original's — the
/// property that lets batched training differentiate per-sequence replicas
/// on the pool and ship only plain gradient matrices back.
#[derive(Clone)]
pub struct BisimDirectionWeights {
    encoder_estimate: LinearWeights,
    encoder_decay: LinearWeights,
    encoder_cell: LstmCellWeights,
    decoder_estimate: LinearWeights,
    decoder_decay: LinearWeights,
    decoder_cell: LstmCellWeights,
    attention_transform: LinearWeights,
    attention_align: MlpWeights,
    hidden_size: usize,
    num_aps: usize,
    attention: AttentionMode,
    time_lag: TimeLagMode,
}

impl BisimDirectionWeights {
    /// Rebuilds a trainable [`BisimDirection`] from this snapshot (fresh
    /// parameter leaves holding copies of the snapshotted matrices; the
    /// inverse of [`BisimDirection::snapshot`]).
    pub fn to_model(&self) -> BisimDirection {
        BisimDirection {
            encoder_estimate: self.encoder_estimate.to_linear(),
            encoder_decay: self.encoder_decay.to_linear(),
            encoder_cell: self.encoder_cell.to_cell(),
            decoder_estimate: self.decoder_estimate.to_linear(),
            decoder_decay: self.decoder_decay.to_linear(),
            decoder_cell: self.decoder_cell.to_cell(),
            attention_transform: self.attention_transform.to_linear(),
            attention_align: self.attention_align.to_mlp(),
            hidden_size: self.hidden_size,
            num_aps: self.num_aps,
            attention: self.attention,
            time_lag: self.time_lag,
        }
    }
}

/// A column one-hot mask selecting entry `index` out of `len`.
fn one_hot(len: usize, index: usize) -> Matrix {
    Matrix::from_fn(len, 1, |r, _| if r == index { 1.0 } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rm_geometry::Point;
    use rm_imputers::{build_sequences, Normalization};
    use rm_radiomap::{EntryKind, Fingerprint, MaskMatrix, RadioMap, RadioMapRecord};

    fn sequence() -> PathSequence {
        let mk = |values: Vec<Option<f64>>, rp: Option<Point>, t: f64| {
            RadioMapRecord::new(Fingerprint::new(values), rp, t, 0)
        };
        let map = RadioMap::new(
            vec![
                mk(
                    vec![Some(-70.0), Some(-80.0), None],
                    Some(Point::new(0.0, 0.0)),
                    0.0,
                ),
                mk(vec![Some(-71.0), None, None], None, 2.0),
                mk(
                    vec![None, Some(-75.0), Some(-90.0)],
                    Some(Point::new(4.0, 1.0)),
                    4.0,
                ),
                mk(vec![None, None, None], None, 6.0),
            ],
            3,
        );
        let mut mask = MaskMatrix::all_observed(4, 3);
        mask.set(0, 2, EntryKind::Mnar);
        mask.set(1, 1, EntryKind::Mar);
        mask.set(1, 2, EntryKind::Mnar);
        mask.set(2, 0, EntryKind::Mar);
        mask.set(3, 0, EntryKind::Mar);
        mask.set(3, 1, EntryKind::Mar);
        mask.set(3, 2, EntryKind::Mnar);
        let norm = Normalization::from_map(&map);
        build_sequences(&map, &mask, 5, &norm).remove(0)
    }

    fn direction(attention: AttentionMode, time_lag: TimeLagMode) -> BisimDirection {
        let mut rng = StdRng::seed_from_u64(9);
        BisimDirection::new(3, 8, attention, time_lag, &mut rng)
    }

    #[test]
    fn pass_produces_one_output_per_step() {
        let seq = sequence();
        let model = direction(AttentionMode::SparsityFriendly, TimeLagMode::Encoder);
        let pass = model.run(&seq);
        assert_eq!(pass.fingerprint_estimates.len(), 4);
        assert_eq!(pass.fingerprint_complements.len(), 4);
        assert_eq!(pass.rp_estimates.len(), 4);
        assert_eq!(pass.rp_complements.len(), 4);
        assert_eq!(pass.fingerprint_complements[0].shape(), (3, 1));
        assert_eq!(pass.rp_complements[0].shape(), (2, 1));
    }

    #[test]
    fn observed_values_pass_through_the_complement() {
        let seq = sequence();
        let model = direction(AttentionMode::SparsityFriendly, TimeLagMode::Encoder);
        let pass = model.run(&seq);
        // Step 0, AP 0 is observed: the complement must equal the input.
        let c = pass.fingerprint_complements[0].value();
        assert!((c.get(0, 0) - seq.fingerprints[0][0]).abs() < 1e-12);
        // Step 0's RP is observed: complement equals normalised RP.
        let rp = pass.rp_complements[0].value();
        assert!((rp.get(0, 0) - seq.rps[0].0).abs() < 1e-12);
        assert!((rp.get(1, 0) - seq.rps[0].1).abs() < 1e-12);
    }

    #[test]
    fn all_modes_run_and_produce_finite_outputs() {
        let seq = sequence();
        for attention in [
            AttentionMode::SparsityFriendly,
            AttentionMode::Standard,
            AttentionMode::None,
        ] {
            for time_lag in [
                TimeLagMode::Encoder,
                TimeLagMode::Decoder,
                TimeLagMode::Both,
                TimeLagMode::None,
            ] {
                let model = direction(attention, time_lag);
                let pass = model.run(&seq);
                for v in pass
                    .fingerprint_complements
                    .iter()
                    .chain(pass.rp_complements.iter())
                {
                    assert!(
                        v.value().is_finite(),
                        "{attention:?}/{time_lag:?} produced NaN"
                    );
                }
            }
        }
    }

    #[test]
    fn gradients_reach_encoder_and_decoder_parameters() {
        let seq = sequence();
        let model = direction(AttentionMode::SparsityFriendly, TimeLagMode::Encoder);
        let pass = model.run(&seq);
        let mut total = Var::scalar(0.0);
        for est in pass
            .fingerprint_estimates
            .iter()
            .chain(pass.rp_estimates.iter())
        {
            total = total.add(&est.square().sum());
        }
        total.backward();
        let with_grad = model
            .parameters()
            .iter()
            .filter(|p| p.grad().frobenius_norm() > 0.0)
            .count();
        assert!(
            with_grad > model.parameters().len() / 2,
            "only {with_grad} of {} parameters received gradient",
            model.parameters().len()
        );
    }

    #[test]
    fn one_hot_mask_selects_single_entry() {
        let m = one_hot(4, 2);
        assert_eq!(m.get(2, 0), 1.0);
        assert_eq!(m.sum(), 1.0);
    }
}
