//! Property-based tests for matrices and autodiff.

use proptest::prelude::*;
use rm_tensor::{Matrix, Var, Workspace};

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn blocked_matmul_matches_naive_reference_on_random_shapes(
        m in 1usize..12,
        k in 1usize..140,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        // `k` crosses the MATMUL_BLOCK panel boundary, exercising both full
        // and ragged panels of the blocked kernel. The two kernels accumulate
        // in the same order, so equality is bitwise, not approximate.
        let mut data = seed;
        let mut next = || {
            // SplitMix64-ish stream, mapped into [-4, 4).
            data = data.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((data >> 11) as f64 / (1u64 << 53) as f64) * 8.0 - 4.0
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        let blocked = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        prop_assert_eq!(blocked.shape(), naive.shape());
        if rm_tensor::fma_enabled() {
            // The opt-in RM_FMA=1 kernels fuse the rounding and explicitly
            // opt out of bit-compat; the contract degrades to epsilon.
            prop_assert!(blocked.approx_eq(&naive, 1e-9));
        } else {
            for (x, y) in blocked.data().iter().zip(naive.data().iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn transposed_kernel_matches_explicit_transpose(a in arb_matrix(4, 6), c in arb_matrix(4, 5)) {
        prop_assert!(a.matmul_at_b(&c).approx_eq(&a.transpose().matmul(&c), 1e-9));
    }

    #[test]
    fn f32_and_f64_kernels_agree_within_epsilon(
        m in 1usize..10,
        k in 1usize..140,
        n in 1usize..10,
        seed in 0u64..1000,
    ) {
        // The f32 kernel is the same monomorphised code as the f64 kernel, so
        // on finite inputs its result must be the f64 result up to f32
        // rounding. Inputs are bounded by 4, so each of the k products is
        // bounded by 16 and the standard accumulated-rounding bound is
        // ~k² · 16 · ε_f32 (input rounding + k ordered additions), padded 2×.
        let mut data = seed;
        let mut next = || {
            data = data.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((data >> 11) as f64 / (1u64 << 53) as f64) * 8.0 - 4.0
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        let a32: Matrix<f32> = a.cast();
        let b32: Matrix<f32> = b.cast();
        let tol = 32.0 * (k as f64) * (k as f64).max(8.0) * f32::EPSILON as f64;

        let c64 = a.matmul(&b);
        let c32 = a32.matmul(&b32);
        prop_assert_eq!(c64.shape(), c32.shape());
        for (x64, x32) in c64.data().iter().zip(c32.data().iter()) {
            prop_assert!(
                (x64 - *x32 as f64).abs() <= tol,
                "matmul f32 {} vs f64 {} (tol {})", x32, x64, tol
            );
        }

        // The transposed gradient kernel obeys the same bound (reduction
        // length is m here, which is ≤ 10 ≪ k, so the matmul tol covers it).
        let g = Matrix::from_fn(m, n, |_, _| next());
        let at64 = a.matmul_at_b(&g);
        let at32 = a32.matmul_at_b(&g.cast::<f32>());
        for (x64, x32) in at64.data().iter().zip(at32.data().iter()) {
            prop_assert!((x64 - *x32 as f64).abs() <= tol);
        }

        // axpy: one multiply-add per entry, so plain f32 epsilon scaled by
        // the value bound is enough.
        let mut y64 = Matrix::from_fn(1, k, |_, _| next());
        let mut y32: Matrix<f32> = y64.cast();
        let x_row = Matrix::from_fn(1, k, |_, _| next());
        y64.axpy(0.5, &x_row);
        y32.axpy(0.5f32, &x_row.cast::<f32>());
        for (v64, v32) in y64.data().iter().zip(y32.data().iter()) {
            prop_assert!((v64 - *v32 as f64).abs() <= 64.0 * f32::EPSILON as f64);
        }
    }

    #[test]
    fn matmul_is_associative(a in arb_matrix(3, 4), b in arb_matrix(4, 2), c in arb_matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-8));
    }

    #[test]
    fn matmul_distributes_over_addition(a in arb_matrix(3, 3), b in arb_matrix(3, 3), c in arb_matrix(3, 3)) {
        let left = a.matmul(&(&b + &c));
        let right = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(left.approx_eq(&right, 1e-8));
    }

    #[test]
    fn transpose_reverses_matmul(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn hadamard_is_commutative(a in arb_matrix(4, 4), b in arb_matrix(4, 4)) {
        prop_assert!(a.hadamard(&b).approx_eq(&b.hadamard(&a), 1e-12));
    }

    #[test]
    fn vstack_then_slice_roundtrips(a in arb_matrix(2, 3), b in arb_matrix(4, 3)) {
        let stacked = a.vstack(&b);
        prop_assert!(stacked.slice_rows(0, 2).approx_eq(&a, 0.0));
        prop_assert!(stacked.slice_rows(2, 4).approx_eq(&b, 0.0));
    }

    #[test]
    fn softmax_is_a_probability_vector(data in prop::collection::vec(-20.0f64..20.0, 1..16)) {
        let x = Var::constant(Matrix::column(&data));
        let y = x.softmax_col().value();
        prop_assert!((y.sum() - 1.0).abs() < 1e-9);
        prop_assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn autodiff_linear_gradient_is_input(w_data in prop::collection::vec(-2.0f64..2.0, 6), x_data in prop::collection::vec(-2.0f64..2.0, 3)) {
        // loss = sum(W x); dL/dW[i][j] = x[j]
        let w = Var::parameter(Matrix::from_vec(2, 3, w_data));
        let x = Var::constant(Matrix::column(&x_data));
        let loss = w.matmul(&x).sum();
        loss.backward();
        let grad = w.grad();
        for i in 0..2 {
            for j in 0..3 {
                prop_assert!((grad.get(i, j) - x_data[j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn workspace_matmul_matches_fresh_allocation_bitwise(
        m in 1usize..10,
        k in 1usize..48,
        n in 1usize..10,
        seed in 0u64..1000,
    ) {
        // The workspace checkout is capacity-only reuse: the recycled buffer
        // is re-zeroed and the same kernel runs over it, so the result must
        // match a freshly allocated matmul bit for bit — including when the
        // checked-out buffer is a differently shaped leftover from an
        // earlier, larger product.
        let mut data = seed;
        let mut next = || {
            data = data.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((data >> 11) as f64 / (1u64 << 53) as f64) * 8.0 - 4.0
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        let fresh = a.matmul(&b);

        let mut ws = Workspace::new();
        // Dirty the pool with a larger product first so the second checkout
        // reuses a buffer that held other values.
        let big_a = Matrix::from_fn(m + 2, k, |_, _| next());
        let scratch = big_a.matmul_ws(&b, &mut ws);
        ws.give(scratch);
        let pooled = a.matmul_ws(&b, &mut ws);

        prop_assert_eq!(fresh.shape(), pooled.shape());
        for (x, y) in fresh.data().iter().zip(pooled.data().iter()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn recycled_graphs_rebuild_bitwise_identical_under_proptest(
        w_data in prop::collection::vec(-2.0f64..2.0, 12),
        x_data in prop::collection::vec(-2.0f64..2.0, 4),
        rounds in 2usize..5,
    ) {
        // Arena parity for the live graph: after recycling a graph, a
        // rebuild of the same computation from pooled nodes and buffers must
        // reproduce every value and gradient bit for bit. With RM_ARENA=0
        // recycling is a no-op and the rebuilds are fresh allocations, so
        // this property pins arena ≡ no-arena as well.
        let w = Var::parameter(Matrix::from_vec(3, 4, w_data));
        let mut reference: Option<(f64, Vec<u64>)> = None;
        for _ in 0..rounds {
            let x = Var::constant(Matrix::column(&x_data));
            let h = w.matmul(&x).tanh();
            let loss = h.square().sum();
            loss.backward();
            let bits: Vec<u64> = w.grad().data().iter().map(|v| v.to_bits()).collect();
            let value = loss.scalar_value();
            match &reference {
                None => reference = Some((value, bits)),
                Some((v0, bits0)) => {
                    prop_assert_eq!(value.to_bits(), v0.to_bits());
                    prop_assert_eq!(&bits, bits0);
                }
            }
            w.zero_grad();
            Var::recycle_all([loss, h, x]);
        }
    }

    #[test]
    fn mask_zeroes_gradient_where_mask_is_zero(x_data in prop::collection::vec(-3.0f64..3.0, 6), mask_bits in prop::collection::vec(prop::bool::ANY, 6)) {
        let x = Var::parameter(Matrix::from_vec(2, 3, x_data));
        let mask = Matrix::from_vec(2, 3, mask_bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect());
        let loss = x.mask(&mask).square().sum();
        loss.backward();
        let grad = x.grad();
        for (i, &bit) in mask_bits.iter().enumerate() {
            let (r, c) = (i / 3, i % 3);
            if !bit {
                prop_assert_eq!(grad.get(r, c), 0.0);
            }
        }
    }
}
