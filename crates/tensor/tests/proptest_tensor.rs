//! Property-based tests for matrices and autodiff.

use proptest::prelude::*;
use rm_tensor::{Matrix, Var};

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn blocked_matmul_matches_naive_reference_on_random_shapes(
        m in 1usize..12,
        k in 1usize..140,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        // `k` crosses the MATMUL_BLOCK panel boundary, exercising both full
        // and ragged panels of the blocked kernel. The two kernels accumulate
        // in the same order, so equality is bitwise, not approximate.
        let mut data = seed;
        let mut next = || {
            // SplitMix64-ish stream, mapped into [-4, 4).
            data = data.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((data >> 11) as f64 / (1u64 << 53) as f64) * 8.0 - 4.0
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        let blocked = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        prop_assert_eq!(blocked.shape(), naive.shape());
        for (x, y) in blocked.data().iter().zip(naive.data().iter()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn transposed_kernel_matches_explicit_transpose(a in arb_matrix(4, 6), c in arb_matrix(4, 5)) {
        prop_assert!(a.matmul_at_b(&c).approx_eq(&a.transpose().matmul(&c), 1e-9));
    }

    #[test]
    fn matmul_is_associative(a in arb_matrix(3, 4), b in arb_matrix(4, 2), c in arb_matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-8));
    }

    #[test]
    fn matmul_distributes_over_addition(a in arb_matrix(3, 3), b in arb_matrix(3, 3), c in arb_matrix(3, 3)) {
        let left = a.matmul(&(&b + &c));
        let right = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(left.approx_eq(&right, 1e-8));
    }

    #[test]
    fn transpose_reverses_matmul(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn hadamard_is_commutative(a in arb_matrix(4, 4), b in arb_matrix(4, 4)) {
        prop_assert!(a.hadamard(&b).approx_eq(&b.hadamard(&a), 1e-12));
    }

    #[test]
    fn vstack_then_slice_roundtrips(a in arb_matrix(2, 3), b in arb_matrix(4, 3)) {
        let stacked = a.vstack(&b);
        prop_assert!(stacked.slice_rows(0, 2).approx_eq(&a, 0.0));
        prop_assert!(stacked.slice_rows(2, 4).approx_eq(&b, 0.0));
    }

    #[test]
    fn softmax_is_a_probability_vector(data in prop::collection::vec(-20.0f64..20.0, 1..16)) {
        let x = Var::constant(Matrix::column(&data));
        let y = x.softmax_col().value();
        prop_assert!((y.sum() - 1.0).abs() < 1e-9);
        prop_assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn autodiff_linear_gradient_is_input(w_data in prop::collection::vec(-2.0f64..2.0, 6), x_data in prop::collection::vec(-2.0f64..2.0, 3)) {
        // loss = sum(W x); dL/dW[i][j] = x[j]
        let w = Var::parameter(Matrix::from_vec(2, 3, w_data));
        let x = Var::constant(Matrix::column(&x_data));
        let loss = w.matmul(&x).sum();
        loss.backward();
        let grad = w.grad();
        for i in 0..2 {
            for j in 0..3 {
                prop_assert!((grad.get(i, j) - x_data[j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn mask_zeroes_gradient_where_mask_is_zero(x_data in prop::collection::vec(-3.0f64..3.0, 6), mask_bits in prop::collection::vec(prop::bool::ANY, 6)) {
        let x = Var::parameter(Matrix::from_vec(2, 3, x_data));
        let mask = Matrix::from_vec(2, 3, mask_bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect());
        let loss = x.mask(&mask).square().sum();
        loss.backward();
        let grad = x.grad();
        for (i, &bit) in mask_bits.iter().enumerate() {
            let (r, c) = (i / 3, i % 3);
            if !bit {
                prop_assert_eq!(grad.get(r, c), 0.0);
            }
        }
    }
}
