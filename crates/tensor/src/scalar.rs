//! The precision axis of the tensor layer.
//!
//! [`Scalar`] is the sealed element trait of [`Matrix`](crate::Matrix) and
//! [`Var`](crate::Var): exactly `f64` and `f32` implement it. It provides the
//! arithmetic, `mul_add` and transcendental hooks (`exp`/`tanh`/`sqrt`/`ln`)
//! that the dense kernels and the `rm-nn` activations need, so every kernel
//! is written once and monomorphised per precision:
//!
//! * `f64` — the default, and the precision of the determinism contract: the
//!   whole pipeline is bit-identical across thread counts *and* across PRs at
//!   this precision.
//! * `f32` — half the memory traffic and twice the SIMD lanes per vector op;
//!   the 4-wide unrolled kernels auto-vectorise to full width. The f32
//!   pipeline is bit-identical across thread counts too (same ordered
//!   reductions), it just rounds differently from f64.
//!
//! The activation helpers ([`Scalar::sigmoid`], [`Scalar::relu`]) live here —
//! as provided trait methods — precisely so the autodiff graph forward pass
//! and the graph-free snapshot forward pass in `rm-nn` share one definition
//! and stay bit-identical to each other.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

mod private {
    /// Seals [`super::Scalar`]: the kernels are only audited (and the
    /// determinism contract only holds) for IEEE-754 binary32/binary64.
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
}

/// Element type of the dense tensor kernels: `f64` (default) or `f32`.
///
/// Methods mirror the inherent `std` float methods of the same name, so
/// generic code reads exactly like concrete `f64` code and monomorphises to
/// the identical instruction sequence at `T = f64`.
pub trait Scalar:
    Copy
    + PartialEq
    + PartialOrd
    + Default
    + fmt::Debug
    + fmt::Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Send
    + Sync
    + 'static
    + private::Sealed
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Lowercase type name (`"f64"` / `"f32"`), for labels and reports.
    const NAME: &'static str;

    /// Converts from `f64`, rounding to the nearest representable value.
    fn from_f64(v: f64) -> Self;
    /// Widens (losslessly for both implementors) to `f64`.
    fn to_f64(self) -> f64;
    /// Fused multiply-add `self * a + b` (single rounding).
    ///
    /// **Never use this inside the ordered kernels** (`matmul_into`,
    /// `matmul_at_b`, `axpy`): fusing changes rounding and would silently
    /// break their documented bit-identity with the naive reference — the
    /// property the determinism suite rests on. The hook exists for the
    /// ROADMAP'd explicit-width SIMD/FMA kernel variants, which will opt out
    /// of bit-compat explicitly.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `e^self`.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Hyperbolic tangent.
    fn tanh(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// `self^exponent`.
    fn powf(self, exponent: Self) -> Self;
    /// IEEE maximum (NaN-ignoring, like `f64::max`).
    fn max(self, other: Self) -> Self;
    /// IEEE minimum (NaN-ignoring, like `f64::min`).
    fn min(self, other: Self) -> Self;
    /// Clamps into `[lo, hi]`.
    fn clamp(self, lo: Self, hi: Self) -> Self;
    /// `true` for neither infinite nor NaN.
    fn is_finite(self) -> bool;
    /// Raw IEEE bits, widened to `u64` — the equality behind
    /// [`Matrix::bits_eq`](crate::Matrix::bits_eq), which the bit-identity
    /// tests use at either precision.
    fn to_bits_u64(self) -> u64;

    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    ///
    /// This is the **single** definition shared by the autodiff graph
    /// ([`Var::sigmoid`](crate::Var::sigmoid)) and the graph-free snapshot
    /// forward passes in `rm-nn`; keeping one formula is what makes snapshot
    /// inference bit-identical to graph inference.
    #[inline]
    fn sigmoid(self) -> Self {
        Self::ONE / (Self::ONE + (-self).exp())
    }

    /// Rectified linear unit `max(x, 0)`, with `f64::max` NaN semantics.
    #[inline]
    fn relu(self) -> Self {
        self.max(Self::ZERO)
    }

    /// Explicit-width AVX2 `y[j] += a * x[j]` row kernel for this precision
    /// (bit-identical to the scalar reference). The dispatch point the
    /// `#[target_feature]` consumer loops in `crate::matrix` inline through;
    /// not part of the stable API.
    ///
    /// # Safety
    /// Only call after runtime AVX2 detection succeeded — i.e. only when
    /// [`crate::simd`]'s resolved kernel is the AVX2 family. (On non-x86_64
    /// targets the hook is a safe scalar delegation and is never dispatched.)
    // SAFETY: declaration only — the contract above binds the implementors.
    #[doc(hidden)]
    #[allow(unsafe_code)]
    unsafe fn axpy_row_avx2(a: Self, x: &[Self], y: &mut [Self]);

    /// AVX2+FMA variant of [`Scalar::axpy_row_avx2`] (`RM_FMA=1` opt-in;
    /// fused rounding, epsilon-checked only, **not** bit-compatible).
    ///
    /// # Safety
    /// Only call after runtime AVX2+FMA detection succeeded.
    // SAFETY: declaration only — the contract above binds the implementors.
    #[doc(hidden)]
    #[allow(unsafe_code)]
    unsafe fn axpy_row_fma(a: Self, x: &[Self], y: &mut [Self]);

    /// Fused four-row AVX2 update `y[j] += Σ_r a[r] * x[r][j]` — the
    /// k-unrolled panel kernel of `matmul_into`, bit-identical to four
    /// sequential [`Scalar::axpy_row_avx2`] calls.
    ///
    /// # Safety
    /// Same contract as [`Scalar::axpy_row_avx2`].
    // SAFETY: declaration only — the contract above binds the implementors.
    #[doc(hidden)]
    #[allow(unsafe_code)]
    unsafe fn axpy_row4_avx2(a: [Self; 4], x: [&[Self]; 4], y: &mut [Self]);

    /// AVX2+FMA variant of [`Scalar::axpy_row4_avx2`] (`RM_FMA=1` opt-in;
    /// epsilon contract).
    ///
    /// # Safety
    /// Same contract as [`Scalar::axpy_row_fma`].
    // SAFETY: declaration only — the contract above binds the implementors.
    #[doc(hidden)]
    #[allow(unsafe_code)]
    unsafe fn axpy_row4_fma(a: [Self; 4], x: [&[Self]; 4], y: &mut [Self]);

    /// Runs `f` with this thread's raw-buffer pool for `Self` elements.
    ///
    /// Internal plumbing of the arena layer (`crate::workspace`): the pools
    /// are declared per implementor so each thread — in particular each
    /// `rm-runtime` pool worker — owns a private arena per precision and no
    /// synchronisation is ever needed. Public only because the sealed trait
    /// is the dispatch point; not part of the stable API.
    #[doc(hidden)]
    fn with_buffer_pool<R, F: FnOnce(&mut crate::workspace::BufferPool<Self>) -> R>(f: F) -> R;

    /// Runs `f` with this thread's autodiff node pool for `Self` graphs.
    ///
    /// Same internal-plumbing caveats as [`Scalar::with_buffer_pool`].
    #[doc(hidden)]
    fn with_node_pool<R, F: FnOnce(&mut crate::autodiff::NodePool<Self>) -> R>(f: F) -> R;
}

macro_rules! impl_scalar {
    ($t:ty, $name:literal, $axpy_avx2:path, $axpy_fma:path, $axpy4_avx2:path, $axpy4_fma:path) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const NAME: &'static str = $name;

            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline]
            fn tanh(self) -> Self {
                <$t>::tanh(self)
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline]
            fn powf(self, exponent: Self) -> Self {
                <$t>::powf(self, exponent)
            }
            #[inline]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline]
            fn clamp(self, lo: Self, hi: Self) -> Self {
                <$t>::clamp(self, lo, hi)
            }
            #[inline]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline]
            fn to_bits_u64(self) -> u64 {
                self.to_bits() as u64
            }

            // SAFETY: thin forwarder — the caller upholds the CPU-feature
            // contract of the trait declaration; the arch kernel itself
            // stays within the slice bounds.
            #[inline(always)]
            #[allow(unsafe_code)]
            unsafe fn axpy_row_avx2(a: Self, x: &[Self], y: &mut [Self]) {
                // SAFETY: forwarded contract, argued at the declaration.
                unsafe { $axpy_avx2(a, x, y) }
            }

            // SAFETY: thin forwarder — the caller upholds the CPU-feature
            // contract of the trait declaration; the arch kernel itself
            // stays within the slice bounds.
            #[inline(always)]
            #[allow(unsafe_code)]
            unsafe fn axpy_row_fma(a: Self, x: &[Self], y: &mut [Self]) {
                // SAFETY: forwarded contract, argued at the declaration.
                unsafe { $axpy_fma(a, x, y) }
            }

            // SAFETY: thin forwarder — the caller upholds the CPU-feature
            // contract of the trait declaration; the arch kernel itself
            // stays within the slice bounds.
            #[inline(always)]
            #[allow(unsafe_code)]
            unsafe fn axpy_row4_avx2(a: [Self; 4], x: [&[Self]; 4], y: &mut [Self]) {
                // SAFETY: forwarded contract, argued at the declaration.
                unsafe { $axpy4_avx2(a, x, y) }
            }

            // SAFETY: thin forwarder — the caller upholds the CPU-feature
            // contract of the trait declaration; the arch kernel itself
            // stays within the slice bounds.
            #[inline(always)]
            #[allow(unsafe_code)]
            unsafe fn axpy_row4_fma(a: [Self; 4], x: [&[Self]; 4], y: &mut [Self]) {
                // SAFETY: forwarded contract, argued at the declaration.
                unsafe { $axpy4_fma(a, x, y) }
            }

            fn with_buffer_pool<R, F: FnOnce(&mut crate::workspace::BufferPool<Self>) -> R>(
                f: F,
            ) -> R {
                std::thread_local! {
                    static POOL: std::cell::RefCell<crate::workspace::BufferPool<$t>> =
                        std::cell::RefCell::new(crate::workspace::BufferPool::default());
                }
                POOL.with(|pool| f(&mut pool.borrow_mut()))
            }

            fn with_node_pool<R, F: FnOnce(&mut crate::autodiff::NodePool<Self>) -> R>(f: F) -> R {
                std::thread_local! {
                    static POOL: std::cell::RefCell<crate::autodiff::NodePool<$t>> =
                        std::cell::RefCell::new(crate::autodiff::NodePool::default());
                }
                POOL.with(|pool| f(&mut pool.borrow_mut()))
            }
        }
    };
}

impl_scalar!(
    f64,
    "f64",
    crate::simd::axpy_row_f64_avx2,
    crate::simd::axpy_row_f64_fma,
    crate::simd::axpy_row4_f64_avx2,
    crate::simd::axpy_row4_f64_fma
);
impl_scalar!(
    f32,
    "f32",
    crate::simd::axpy_row_f32_avx2,
    crate::simd::axpy_row_f32_fma,
    crate::simd::axpy_row4_f32_avx2,
    crate::simd::axpy_row4_f32_fma
);

/// The numeric precision a pipeline stage runs at — the user-facing knob
/// that selects the [`Scalar`] instantiation of the inference kernels.
///
/// Training always runs at `f64` (the autodiff graph and optimizer state are
/// `f64`; that is what the cross-PR determinism contract covers). `F32`
/// switches the *inference* passes of the neural imputers to the f32 kernels:
/// trained weights are rounded once to f32 and every sequence is evaluated
/// with twice the SIMD lanes and half the memory traffic. At either setting
/// the output is bit-identical across thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Double precision end to end (the default; bit-compatible with the
    /// pre-precision-axis pipeline).
    #[default]
    F64,
    /// Single-precision inference kernels, f64 training.
    F32,
}

impl Precision {
    /// Lowercase name (`"f64"` / `"f32"`), for reports and env parsing.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }

    /// Parses `"f32"` / `"f64"` (ASCII case-insensitive); `None` otherwise.
    pub fn parse(s: &str) -> Option<Self> {
        if s.eq_ignore_ascii_case("f32") {
            Some(Precision::F32)
        } else if s.eq_ignore_ascii_case("f64") {
            Some(Precision::F64)
        } else {
            None
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_conversions_roundtrip() {
        assert_eq!(f64::ZERO, 0.0);
        assert_eq!(f32::ONE, 1.0);
        assert_eq!(f64::NAME, "f64");
        assert_eq!(f32::NAME, "f32");
        assert_eq!(f32::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(f64::from_f64(-2.25), -2.25);
        assert_eq!(1.0f64.to_bits_u64(), 1.0f64.to_bits());
        assert_eq!(1.0f32.to_bits_u64(), 1.0f32.to_bits() as u64);
    }

    #[test]
    fn sigmoid_matches_the_inline_formula_at_both_precisions() {
        for x in [-3.0f64, -0.5, 0.0, 0.5, 3.0] {
            let expected = 1.0 / (1.0 + (-x).exp());
            assert_eq!(Scalar::sigmoid(x).to_bits(), expected.to_bits());
            let x32 = x as f32;
            let expected32 = 1.0f32 / (1.0 + (-x32).exp());
            assert_eq!(Scalar::sigmoid(x32).to_bits(), expected32.to_bits());
        }
        assert_eq!(Scalar::sigmoid(0.0f64), 0.5);
    }

    #[test]
    fn relu_follows_ieee_max_semantics() {
        assert_eq!(Scalar::relu(2.5f64), 2.5);
        assert_eq!(Scalar::relu(-2.5f64), 0.0);
        assert_eq!(Scalar::relu(f64::NAN), 0.0); // f64::max(NaN, 0.0) == 0.0
        assert_eq!(Scalar::relu(-1.0f32), 0.0);
    }

    #[test]
    fn precision_parses_and_displays() {
        assert_eq!(Precision::default(), Precision::F64);
        assert_eq!(Precision::parse("f32"), Some(Precision::F32));
        assert_eq!(Precision::parse("F64"), Some(Precision::F64));
        assert_eq!(Precision::parse("half"), None);
        assert_eq!(Precision::F32.to_string(), "f32");
        assert_eq!(Precision::F64.name(), "f64");
    }
}
