//! Dense row-major matrices, generic over the [`Scalar`] precision.
//!
//! The matrix type is intentionally small and self-contained: the neural
//! models in this workspace (BiSIM, BRITS, SSGAN) use hidden sizes of at most
//! a few hundred, so a straightforward row-major `Vec<T>` representation
//! with cache-friendly inner loops is sufficient and keeps the autodiff layer
//! easy to reason about. `T` defaults to `f64` (the determinism-contract
//! precision); `Matrix<f32>` shares every kernel through monomorphisation and
//! gets twice the SIMD lanes out of the 4-wide unrolled inner loops.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use rand::Rng;

use crate::workspace::{self, Workspace};
use crate::Scalar;

/// Panel width of the blocked matmul kernel: [`Matrix::matmul_into`]
/// processes the reduction dimension in panels of this many `rhs` rows so the
/// panel fits in L1/L2 cache. 64 rows × up-to-a-few-hundred columns of `f64`
/// is ≤ ~200 KiB, comfortably within L2 for the hidden sizes this workspace
/// uses (an `f32` panel is half that).
pub const MATMUL_BLOCK: usize = 64;

/// The scalar reference formulation of the `y[j] += a * x[j]` row kernel
/// shared by [`Matrix::matmul_into`], [`Matrix::matmul_at_b`] and
/// [`Matrix::axpy`].
///
/// Those consumers resolve [`crate::simd::kernel`] **once per call** and run
/// their whole loop either against this reference or inside a
/// `#[target_feature]` context where the explicit-width AVX2 kernels of
/// [`crate::simd`] inline (`RM_SIMD=0` forces this reference instead).
/// Because the update is element-wise independent and both paths perform one
/// multiply and one add per element in index order, the SIMD path is
/// **bit-identical** to this function at either precision — the parity
/// proptests below and `crate::simd`'s own tests check exactly that. (The
/// opt-in `RM_FMA=1` variant is the one exception: fused rounding,
/// epsilon-checked only.)
///
/// The loop is manually unrolled
/// 4-wide so the backend reliably auto-vectorises it at both precisions.
/// Each output element is touched exactly once, in index order, with a plain
/// multiply-then-add — so the result is bit-identical to the rolled
/// `for (o, &b) in y.iter_mut().zip(x)` loop at any precision. This is the
/// `RM_SIMD=0` bitwise-checked baseline the AVX2 kernels are compared
/// against.
#[inline]
pub(crate) fn axpy_row_scalar<T: Scalar>(a: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    let mut y_chunks = y.chunks_exact_mut(4);
    let mut x_chunks = x.chunks_exact(4);
    for (yc, xc) in (&mut y_chunks).zip(&mut x_chunks) {
        yc[0] += a * xc[0];
        yc[1] += a * xc[1];
        yc[2] += a * xc[2];
        yc[3] += a * xc[3];
    }
    for (o, &b) in y_chunks
        .into_remainder()
        .iter_mut()
        .zip(x_chunks.remainder())
    {
        *o += a * b;
    }
}

/// A dense row-major matrix of [`Scalar`] values (`f64` by default).
///
/// Backing buffers are checked out of this thread's
/// [`workspace`](crate::workspace) buffer pool and returned to it on drop
/// (capacity-only reuse — every constructor initialises all entries, so
/// values are bitwise independent of where the buffer came from).
/// `RM_ARENA=0` bypasses the pool entirely.
#[derive(PartialEq)]
pub struct Matrix<T: Scalar = f64> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Clone for Matrix<T> {
    fn clone(&self) -> Self {
        let mut data = workspace::take_buffer(self.data.len());
        data.extend_from_slice(&self.data);
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl<T: Scalar> Drop for Matrix<T> {
    fn drop(&mut self) {
        workspace::give_buffer(std::mem::take(&mut self.data));
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl<T: Scalar> Matrix<T> {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, T::ZERO)
    }

    /// Creates a matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, T::ONE)
    }

    /// Creates a matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        let n = rows * cols;
        let mut data = workspace::take_buffer(n);
        data.resize(n, value);
        Self { rows, cols, data }
    }

    /// Reshapes `self` into a zero-filled `rows × cols` matrix in place,
    /// reusing the existing buffer capacity — bitwise identical to assigning
    /// a fresh [`Matrix::zeros`]. This is the reuse primitive behind
    /// [`Workspace::take`](crate::Workspace::take).
    pub fn reset_zeros(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        let len = rows * cols;
        if self.data.capacity() < len {
            // Growing would reallocate through the global allocator; swap the
            // too-small buffer for a pooled one of the right class instead.
            crate::workspace::give_buffer(std::mem::replace(
                &mut self.data,
                crate::workspace::take_buffer(len),
            ));
        }
        self.data.clear();
        self.data.resize(len, T::ZERO);
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = workspace::take_buffer(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a column vector from a slice.
    pub fn column(values: &[T]) -> Self {
        let mut data = workspace::take_buffer(values.len());
        data.extend_from_slice(values);
        Self {
            rows: values.len(),
            cols: 1,
            data,
        }
    }

    /// Creates a column vector from an `f64` slice, rounding each entry to
    /// `T` — the bridge from the `f64` data-preparation layer into an
    /// `f32` inference kernel.
    pub fn column_from_f64(values: &[f64]) -> Self {
        let mut data = workspace::take_buffer(values.len());
        data.extend(values.iter().map(|&v| T::from_f64(v)));
        Self {
            rows: values.len(),
            cols: 1,
            data,
        }
    }

    /// Creates a row vector from a slice.
    pub fn row_vector(values: &[T]) -> Self {
        let mut data = workspace::take_buffer(values.len());
        data.extend_from_slice(values);
        Self {
            rows: 1,
            cols: values.len(),
            data,
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { T::ONE } else { T::ZERO })
    }

    /// Creates a matrix with entries sampled uniformly from `[-limit, limit]`.
    ///
    /// Sampling always consumes the RNG stream in `f64` (one draw per entry,
    /// rounded to `T` afterwards), so an `f32` matrix is the rounding of the
    /// `f64` matrix drawn from the same seed — not a different random draw.
    pub fn random_uniform(rows: usize, cols: usize, limit: f64, rng: &mut impl Rng) -> Self {
        Self::from_fn(rows, cols, |_, _| {
            T::from_f64(rng.gen_range(-limit..=limit))
        })
    }

    /// Xavier/Glorot uniform initialization for a layer mapping `cols` inputs
    /// to `rows` outputs.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        Self::random_uniform(rows, cols, limit, rng)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw row-major data.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Entry accessor with bounds checking in debug builds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Entry mutator with bounds checking in debug builds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r` as a slice.
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<T> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Rounds every entry to another [`Scalar`] precision. `f64 → f32` is the
    /// one-time weight-snapshot rounding of the f32 inference path;
    /// `f32 → f64` is lossless.
    pub fn cast<U: Scalar>(&self) -> Matrix<U> {
        let mut data = workspace::take_buffer(self.data.len());
        data.extend(self.data.iter().map(|&v| U::from_f64(v.to_f64())));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Matrix product `self * rhs`.
    ///
    /// Allocates the output and delegates to the blocked kernel
    /// [`Matrix::matmul_into`]; hot loops that can recycle an output buffer
    /// should call `matmul_into` directly.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, rhs: &Matrix<T>) -> Matrix<T> {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self * rhs` into a matrix checked out of `ws` — the
    /// workspace-backed variant of [`Matrix::matmul`] for snapshot-inference
    /// loops that return the product to the workspace each step. Bitwise
    /// identical to `matmul` (same [`Matrix::matmul_into`] kernel into a
    /// zeroed output).
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul_ws(&self, rhs: &Matrix<T>, ws: &mut Workspace<T>) -> Matrix<T> {
        let mut out = ws.take(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self * rhs` written into an existing output buffer
    /// (which is zeroed first), using a cache-blocked i-k-j kernel.
    ///
    /// The reduction dimension is processed in panels of [`MATMUL_BLOCK`]
    /// rows of `rhs`, so each panel stays cache-hot while the kernel streams
    /// over the rows of `self` and `out`; the inner loop is the
    /// [`crate::simd`]-dispatched row kernel (scalar reference under
    /// `RM_SIMD=0`), contiguous over both `rhs` and `out`. For every output
    /// entry the contributions are accumulated in increasing `k` order —
    /// exactly the order of the naive kernel — so for **finite inputs** the
    /// result is bit-identical to [`Matrix::matmul_naive`] at either
    /// precision. (The kernel skips exact-zero multiplicands; if `rhs`
    /// contains NaN or ±∞ against a zero in `self`, the naive kernel
    /// propagates the NaN while this one does not. The opt-in `RM_FMA=1`
    /// kernels degrade bit-identity to epsilon-closeness.)
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match or `out` has the wrong
    /// shape.
    #[allow(unsafe_code)] // audited dispatch into the target_feature loops below
    pub fn matmul_into(&self, rhs: &Matrix<T>, out: &mut Matrix<T>) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul_into output shape mismatch: got {:?}, need {:?}",
            out.shape(),
            (self.rows, rhs.cols)
        );
        out.data.iter_mut().for_each(|v| *v = T::ZERO);
        if rhs.cols < crate::simd::SIMD_MIN_COLS {
            // Narrow products (column vectors in particular) have no vector
            // body to amortise the arch-kernel dispatch; the bit-identical
            // scalar reference inlines here and is strictly faster.
            return self.matmul_into_body(rhs, out, axpy_row_scalar::<T>);
        }
        match crate::simd::kernel() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kernel::Avx2` is only resolved after runtime AVX2
            // detection succeeded on this CPU.
            crate::simd::Kernel::Avx2 => unsafe { self.matmul_into_avx2(rhs, out) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kernel::Fma` is only resolved after runtime AVX2+FMA
            // detection succeeded on this CPU.
            crate::simd::Kernel::Fma => unsafe { self.matmul_into_fma(rhs, out) },
            _ => self.matmul_into_body(rhs, out, axpy_row_scalar::<T>),
        }
    }

    /// The blocked i-k-j loop of [`Matrix::matmul_into`], generic over the
    /// row kernel so one definition serves the scalar reference and both
    /// `#[target_feature]` instantiations (where the closure inherits the
    /// caller's features and the intrinsics inline).
    #[inline(always)]
    fn matmul_into_body(
        &self,
        rhs: &Matrix<T>,
        out: &mut Matrix<T>,
        axpy: impl Fn(T, &[T], &mut [T]),
    ) {
        let n = rhs.cols;
        for kb in (0..self.cols).step_by(MATMUL_BLOCK) {
            let kend = (kb + MATMUL_BLOCK).min(self.cols);
            for i in 0..self.rows {
                let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for k in kb..kend {
                    let a = a_row[k];
                    if a == T::ZERO {
                        continue;
                    }
                    let rhs_row = &rhs.data[k * n..(k + 1) * n];
                    axpy(a, rhs_row, out_row);
                }
            }
        }
    }

    /// The k-unrolled variant of [`Matrix::matmul_into_body`] the
    /// `#[target_feature]` wrappers run: panels advance four `rhs` rows at a
    /// time through the fused four-row kernel, which loads and stores each
    /// `out` vector once per four reduction steps instead of once per step.
    /// Per-element contributions keep the exact increasing-`k` order (the
    /// fused kernel is bit-identical to four sequential row updates), and
    /// exact zeros are still skipped one row at a time on the fallback arm,
    /// so the bit-compat contract with the scalar reference is untouched.
    #[inline(always)]
    fn matmul_into_body_x4(
        &self,
        rhs: &Matrix<T>,
        out: &mut Matrix<T>,
        axpy: impl Fn(T, &[T], &mut [T]),
        axpy4: impl Fn([T; 4], [&[T]; 4], &mut [T]),
    ) {
        let n = rhs.cols;
        for kb in (0..self.cols).step_by(MATMUL_BLOCK) {
            let kend = (kb + MATMUL_BLOCK).min(self.cols);
            for i in 0..self.rows {
                let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
                let out_row = &mut out.data[i * n..(i + 1) * n];
                let mut k = kb;
                while k + 4 <= kend {
                    let a = [a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]];
                    if a[0] != T::ZERO && a[1] != T::ZERO && a[2] != T::ZERO && a[3] != T::ZERO {
                        let x = [
                            &rhs.data[k * n..(k + 1) * n],
                            &rhs.data[(k + 1) * n..(k + 2) * n],
                            &rhs.data[(k + 2) * n..(k + 3) * n],
                            &rhs.data[(k + 3) * n..(k + 4) * n],
                        ];
                        axpy4(a, x, out_row);
                    } else {
                        for (r, &ar) in a.iter().enumerate() {
                            if ar != T::ZERO {
                                axpy(ar, &rhs.data[(k + r) * n..(k + r + 1) * n], out_row);
                            }
                        }
                    }
                    k += 4;
                }
                for k in k..kend {
                    let a = a_row[k];
                    if a == T::ZERO {
                        continue;
                    }
                    axpy(a, &rhs.data[k * n..(k + 1) * n], out_row);
                }
            }
        }
    }

    /// [`Matrix::matmul_into_body_x4`] compiled in an AVX2 context so the
    /// explicit-width row kernels inline into the blocked loop.
    // SAFETY: `unsafe fn` contract is runtime AVX2 availability, upheld by
    // the `Kernel::Avx2` dispatch arm; the row kernels stay within the
    // equal-length row slices they are handed.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(unsafe_code)]
    unsafe fn matmul_into_avx2(&self, rhs: &Matrix<T>, out: &mut Matrix<T>) {
        // SAFETY: forwards this fn's own AVX2 contract to the row kernels.
        self.matmul_into_body_x4(
            rhs,
            out,
            |a, x, y| unsafe { T::axpy_row_avx2(a, x, y) },
            |a, x, y| unsafe { T::axpy_row4_avx2(a, x, y) },
        );
    }

    /// [`Matrix::matmul_into_body_x4`] compiled in an AVX2+FMA context
    /// (`RM_FMA=1` opt-in; epsilon contract).
    // SAFETY: `unsafe fn` contract is runtime AVX2+FMA availability, upheld
    // by the `Kernel::Fma` dispatch arm; the row kernels stay within the
    // equal-length row slices they are handed.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    #[allow(unsafe_code)]
    unsafe fn matmul_into_fma(&self, rhs: &Matrix<T>, out: &mut Matrix<T>) {
        // SAFETY: forwards this fn's own AVX2+FMA contract to the row kernels.
        self.matmul_into_body_x4(
            rhs,
            out,
            |a, x, y| unsafe { T::axpy_row_fma(a, x, y) },
            |a, x, y| unsafe { T::axpy_row4_fma(a, x, y) },
        );
    }

    /// Reference matrix product: the textbook triple loop, kept as the ground
    /// truth the blocked kernel is property-tested against.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul_naive(&self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += a * rhs.get(k, j);
                }
            }
        }
        out
    }

    /// Computes `selfᵀ * rhs` without materialising the transpose: the kernel
    /// walks both operands row by row and accumulates rank-1 updates, keeping
    /// the inner loop the [`crate::simd`]-dispatched row kernel. This is the
    /// gradient kernel for the right operand of a matmul (`dB = Aᵀ · dC`);
    /// the left-operand gradient (`dA = dC · Bᵀ`) stays on the blocked kernel
    /// with an explicit transpose, which benchmarks faster than a dot-product
    /// kernel because the axpy inner loop vectorises. Like
    /// [`Matrix::matmul_into`] this kernel skips exact-zero multiplicands, so
    /// NaN/±∞ in `rhs` do not propagate through zeros of `self`.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    #[allow(unsafe_code)] // audited dispatch into the target_feature loops below
    pub fn matmul_at_b(&self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_at_b shape mismatch: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        if rhs.cols < crate::simd::SIMD_MIN_COLS {
            // Same narrow-product reasoning as `matmul_into`.
            self.matmul_at_b_body(rhs, &mut out, axpy_row_scalar::<T>);
            return out;
        }
        match crate::simd::kernel() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kernel::Avx2` is only resolved after runtime AVX2
            // detection succeeded on this CPU.
            crate::simd::Kernel::Avx2 => unsafe { self.matmul_at_b_avx2(rhs, &mut out) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kernel::Fma` is only resolved after runtime AVX2+FMA
            // detection succeeded on this CPU.
            crate::simd::Kernel::Fma => unsafe { self.matmul_at_b_fma(rhs, &mut out) },
            _ => self.matmul_at_b_body(rhs, &mut out, axpy_row_scalar::<T>),
        }
        out
    }

    /// The rank-1-update loop of [`Matrix::matmul_at_b`], generic over the
    /// row kernel (same single-definition reasoning as
    /// [`Matrix::matmul_into_body`]).
    #[inline(always)]
    fn matmul_at_b_body(
        &self,
        rhs: &Matrix<T>,
        out: &mut Matrix<T>,
        axpy: impl Fn(T, &[T], &mut [T]),
    ) {
        let n = rhs.cols;
        for k in 0..self.rows {
            let a_row = &self.data[k * self.cols..(k + 1) * self.cols];
            let rhs_row = &rhs.data[k * n..(k + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == T::ZERO {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                axpy(a, rhs_row, out_row);
            }
        }
    }

    /// [`Matrix::matmul_at_b_body`] compiled in an AVX2 context.
    // SAFETY: `unsafe fn` contract is runtime AVX2 availability, upheld by
    // the `Kernel::Avx2` dispatch arm; the row kernel stays within the
    // equal-length row slices it is handed.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(unsafe_code)]
    unsafe fn matmul_at_b_avx2(&self, rhs: &Matrix<T>, out: &mut Matrix<T>) {
        // SAFETY: forwards this fn's own AVX2 contract to the row kernel.
        self.matmul_at_b_body(rhs, out, |a, x, y| unsafe { T::axpy_row_avx2(a, x, y) });
    }

    /// [`Matrix::matmul_at_b_body`] compiled in an AVX2+FMA context
    /// (`RM_FMA=1` opt-in; epsilon contract).
    // SAFETY: `unsafe fn` contract is runtime AVX2+FMA availability, upheld
    // by the `Kernel::Fma` dispatch arm; the row kernel stays within the
    // equal-length row slices it is handed.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    #[allow(unsafe_code)]
    unsafe fn matmul_at_b_fma(&self, rhs: &Matrix<T>, out: &mut Matrix<T>) {
        // SAFETY: forwards this fn's own AVX2+FMA contract to the row kernel.
        self.matmul_at_b_body(rhs, out, |a, x, y| unsafe { T::axpy_row_fma(a, x, y) });
    }

    /// Adds the column vector `col` (shape `(rows, 1)`) to every column of
    /// `self` — the broadcast used by bias additions.
    ///
    /// # Panics
    /// Panics if `col` is not a column vector with matching row count.
    pub fn add_broadcast_col(&self, col: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.rows, col.rows, "broadcast add row mismatch");
        assert_eq!(col.cols, 1, "broadcast operand must be a column vector");
        Matrix::from_fn(self.rows, self.cols, |r, c| self.get(r, c) + col.get(r, 0))
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix<T>) -> Matrix<T> {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Applies `f` to every entry, producing a new matrix.
    pub fn map(&self, f: impl Fn(T) -> T) -> Matrix<T> {
        let mut data = workspace::take_buffer(self.data.len());
        data.extend(self.data.iter().map(|&v| f(v)));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Applies `f` entry-wise to the pair `(self, rhs)`.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn zip_with(&self, rhs: &Matrix<T>, f: impl Fn(T, T) -> T) -> Matrix<T> {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "element-wise op shape mismatch: {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut data = workspace::take_buffer(self.data.len());
        data.extend(
            self.data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b)),
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += alpha * rhs`, through the [`crate::simd`]-dispatched
    /// row kernel ([`axpy_row_scalar`] under `RM_SIMD=0`; bit-identical
    /// either way, except under the opt-in `RM_FMA=1`).
    #[allow(unsafe_code)] // audited dispatch into the detected arch kernels
    pub fn axpy(&mut self, alpha: T, rhs: &Matrix<T>) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        if self.data.len() < crate::simd::SIMD_MIN_COLS {
            // Same narrow-operand reasoning as `matmul_into`.
            return axpy_row_scalar(alpha, &rhs.data, &mut self.data);
        }
        match crate::simd::kernel() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kernel::Avx2` is only resolved after runtime AVX2
            // detection succeeded on this CPU.
            crate::simd::Kernel::Avx2 => unsafe {
                T::axpy_row_avx2(alpha, &rhs.data, &mut self.data)
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kernel::Fma` is only resolved after runtime AVX2+FMA
            // detection succeeded on this CPU.
            crate::simd::Kernel::Fma => unsafe {
                T::axpy_row_fma(alpha, &rhs.data, &mut self.data)
            },
            _ => axpy_row_scalar(alpha, &rhs.data, &mut self.data),
        }
    }

    /// Multiplies every entry by `s`.
    pub fn scale(&self, s: T) -> Matrix<T> {
        self.map(|v| v * s)
    }

    /// Sum of all entries, accumulated in index order.
    pub fn sum(&self) -> T {
        self.data.iter().fold(T::ZERO, |acc, &v| acc + v)
    }

    /// Mean of all entries (0 for an empty matrix).
    pub fn mean(&self) -> T {
        if self.data.is_empty() {
            T::ZERO
        } else {
            self.sum() / T::from_f64(self.data.len() as f64)
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> T {
        self.data.iter().fold(T::ZERO, |acc, &v| acc + v * v).sqrt()
    }

    /// Maximum entry, or `None` when empty.
    pub fn max(&self) -> Option<T> {
        self.data.iter().copied().fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }

    /// Minimum entry, or `None` when empty.
    pub fn min(&self) -> Option<T> {
        self.data.iter().copied().fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.min(v),
            })
        })
    }

    /// Vertically stacks `self` above `other`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = workspace::take_buffer(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Horizontally stacks `self` to the left of `other`.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        Matrix::from_fn(self.rows, self.cols + other.cols, |r, c| {
            if c < self.cols {
                self.get(r, c)
            } else {
                other.get(r, c - self.cols)
            }
        })
    }

    /// Extracts rows `[start, start + count)` into a new matrix.
    pub fn slice_rows(&self, start: usize, count: usize) -> Matrix<T> {
        assert!(start + count <= self.rows, "slice_rows out of range");
        let mut data = workspace::take_buffer(count * self.cols);
        data.extend_from_slice(&self.data[start * self.cols..(start + count) * self.cols]);
        Matrix::from_vec(count, self.cols, data)
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Returns `true` if the two matrices have the same shape and every
    /// entry is **bit-identical** (via [`Scalar::to_bits_u64`]) — the
    /// equality the determinism contract is stated in. Unlike `==` or
    /// [`Matrix::approx_eq`] this distinguishes `-0.0` from `0.0` and is
    /// reflexive on NaN payloads.
    pub fn bits_eq(&self, other: &Matrix<T>) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.to_bits_u64() == b.to_bits_u64())
    }

    /// Returns `true` if the two matrices have the same shape and all entries
    /// differ by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix<T>, tol: T) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    fn index(&self, (r, c): (usize, usize)) -> &T {
        &self.data[r * self.cols + c]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        &mut self.data[r * self.cols + c]
    }
}

impl<T: Scalar> Add for &Matrix<T> {
    type Output = Matrix<T>;
    fn add(self, rhs: &Matrix<T>) -> Matrix<T> {
        self.zip_with(rhs, |a, b| a + b)
    }
}

impl<T: Scalar> Sub for &Matrix<T> {
    type Output = Matrix<T>;
    fn sub(self, rhs: &Matrix<T>) -> Matrix<T> {
        self.zip_with(rhs, |a, b| a - b)
    }
}

impl<T: Scalar> Mul<T> for &Matrix<T> {
    type Output = Matrix<T>;
    fn mul(self, rhs: T) -> Matrix<T> {
        self.scale(rhs)
    }
}

impl<T: Scalar> Neg for &Matrix<T> {
    type Output = Matrix<T>;
    fn neg(self) -> Matrix<T> {
        self.scale(-T::ONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_accessors() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
        assert_eq!(m[(0, 2)], 3.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert!(m.matmul(&i).approx_eq(&m, 1e-12));
        assert!(i.matmul(&m).approx_eq(&m, 1e-12));
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert!(c.approx_eq(
            &Matrix::from_vec(2, 2, vec![58.0, 64.0, 139.0, 154.0]),
            1e-12
        ));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// Bitwise parity at the default configuration; under the opt-in
    /// `RM_FMA=1` the kernels trade bit-compat for fused rounding, so the
    /// same assertion degrades to the documented epsilon contract.
    #[track_caller]
    fn assert_kernel_parity<T: Scalar>(got: &Matrix<T>, want: &Matrix<T>, fma_tol: f64) {
        if crate::simd::fma_enabled() {
            assert!(
                got.approx_eq(want, T::from_f64(fma_tol)),
                "fma drift over tolerance"
            );
        } else {
            assert!(got.bits_eq(want), "kernel not bit-identical to reference");
        }
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_naive() {
        let mut rng = StdRng::seed_from_u64(99);
        // Shapes straddling the block boundary exercise full and ragged panels.
        for (m, k, n) in [(1, 1, 1), (3, 64, 5), (7, 65, 9), (20, 130, 17)] {
            let a = Matrix::<f64>::random_uniform(m, k, 1.0, &mut rng);
            let b = Matrix::<f64>::random_uniform(k, n, 1.0, &mut rng);
            assert_kernel_parity(&a.matmul(&b), &a.matmul_naive(&b), 1e-10);
        }
    }

    #[test]
    fn f32_blocked_matmul_is_bit_identical_to_f32_naive() {
        let mut rng = StdRng::seed_from_u64(42);
        for (m, k, n) in [(1, 1, 1), (3, 64, 5), (7, 65, 9), (20, 130, 17)] {
            let a = Matrix::<f32>::random_uniform(m, k, 1.0, &mut rng);
            let b = Matrix::<f32>::random_uniform(k, n, 1.0, &mut rng);
            assert_kernel_parity(&a.matmul(&b), &a.matmul_naive(&b), 1e-4);
        }
    }

    #[test]
    fn bits_eq_distinguishes_signed_zero_and_shapes() {
        let pos = Matrix::from_vec(1, 1, vec![0.0f64]);
        let neg = Matrix::from_vec(1, 1, vec![-0.0f64]);
        assert!(pos == neg, "PartialEq treats -0.0 == 0.0");
        assert!(!pos.bits_eq(&neg), "bits_eq must not");
        assert!(pos.bits_eq(&pos.clone()));
        assert!(!pos.bits_eq(&Matrix::<f64>::zeros(1, 2)));
    }

    #[test]
    fn matmul_into_reuses_the_output_buffer() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        // Pre-filled garbage must be overwritten, not accumulated into.
        let mut out = Matrix::filled(2, 2, 123.0);
        a.matmul_into(&b, &mut out);
        assert!(out.approx_eq(&a.matmul(&b), 0.0));
    }

    #[test]
    #[should_panic(expected = "matmul_into output shape mismatch")]
    fn matmul_into_rejects_bad_output_shape() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(3, 2);
        let mut out = Matrix::<f64>::zeros(2, 3);
        a.matmul_into(&b, &mut out);
    }

    #[test]
    fn transposed_kernel_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(123);
        let a = Matrix::<f64>::random_uniform(5, 7, 1.0, &mut rng);
        let c = Matrix::<f64>::random_uniform(5, 3, 1.0, &mut rng);
        assert!(a
            .matmul_at_b(&c)
            .approx_eq(&a.transpose().matmul(&c), 1e-12));
    }

    #[test]
    fn add_broadcast_col_adds_to_every_column() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let col = Matrix::column(&[10.0, 20.0]);
        let out = m.add_broadcast_col(&col);
        assert!(out.approx_eq(
            &Matrix::from_vec(2, 3, vec![11.0, 12.0, 13.0, 24.0, 25.0, 26.0]),
            0.0
        ));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Matrix::<f64>::random_uniform(3, 5, 1.0, &mut rng);
        assert!(m.transpose().transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn elementwise_operations() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        assert!((&a + &b).approx_eq(&Matrix::from_vec(2, 2, vec![6.0, 8.0, 10.0, 12.0]), 1e-12));
        assert!((&b - &a).approx_eq(&Matrix::filled(2, 2, 4.0), 1e-12));
        assert!(a
            .hadamard(&b)
            .approx_eq(&Matrix::from_vec(2, 2, vec![5.0, 12.0, 21.0, 32.0]), 1e-12));
        assert!((&a * 2.0).approx_eq(&Matrix::from_vec(2, 2, vec![2.0, 4.0, 6.0, 8.0]), 1e-12));
        assert!((-&a).approx_eq(&a.scale(-1.0), 1e-12));
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.max(), Some(4.0));
        assert_eq!(m.min(), Some(1.0));
        assert!((m.frobenius_norm() - 30.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(Matrix::<f64>::zeros(0, 0).mean(), 0.0);
        assert_eq!(Matrix::<f64>::zeros(0, 0).max(), None);
    }

    #[test]
    fn stacking_and_slicing() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);
        let sliced = v.slice_rows(1, 2);
        assert!(sliced.approx_eq(&b, 1e-12));

        let c = Matrix::column(&[1.0, 2.0]);
        let d = Matrix::column(&[3.0, 4.0]);
        let h = c.hstack(&d);
        assert_eq!(h.shape(), (2, 2));
        assert_eq!(h.get(1, 1), 4.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::ones(2, 2);
        let b = Matrix::filled(2, 2, 3.0);
        a.axpy(2.0, &b);
        assert!(a.approx_eq(&Matrix::filled(2, 2, 7.0), 1e-12));
    }

    #[test]
    fn axpy_matches_rolled_loop_past_the_unroll_boundary() {
        // 11 entries: two full 4-wide chunks plus a 3-entry remainder.
        let mut rng = StdRng::seed_from_u64(17);
        let x = Matrix::<f64>::random_uniform(1, 11, 1.0, &mut rng);
        let y0 = Matrix::<f64>::random_uniform(1, 11, 1.0, &mut rng);
        let mut unrolled = y0.clone();
        unrolled.axpy(0.75, &x);
        let rolled = Matrix::from_vec(
            1,
            11,
            y0.data()
                .iter()
                .zip(x.data().iter())
                .map(|(&y, &xv)| y + 0.75 * xv)
                .collect(),
        );
        assert_kernel_parity(&unrolled, &rolled, 1e-12);
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = Matrix::<f64>::xavier(16, 16, &mut rng);
        let limit = (6.0 / 32.0f64).sqrt();
        assert!(m.data().iter().all(|v| v.abs() <= limit));
        assert!(m.is_finite());
    }

    #[test]
    fn column_and_row_vectors() {
        let c = Matrix::column(&[1.0, 2.0, 3.0]);
        assert_eq!(c.shape(), (3, 1));
        let r = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(r.shape(), (1, 3));
        assert!(c.transpose().approx_eq(&r, 1e-12));
    }

    #[test]
    fn cast_rounds_and_widens() {
        let m = Matrix::from_vec(1, 3, vec![1.0, 0.1, -2.5]);
        let m32: Matrix<f32> = m.cast();
        assert_eq!(m32.get(0, 0), 1.0f32);
        assert_eq!(m32.get(0, 1), 0.1f64 as f32);
        // f32 -> f64 is lossless.
        let back: Matrix<f64> = m32.cast();
        assert_eq!(back.get(0, 2), -2.5);
        assert_eq!(back.get(0, 1), (0.1f64 as f32) as f64);
        // Same-precision cast is the identity.
        assert!(m.cast::<f64>().approx_eq(&m, 0.0));
    }

    #[test]
    fn reset_zeros_is_bitwise_fresh_zeros() {
        let mut m = Matrix::filled(4, 4, f64::NAN);
        m.reset_zeros(3, 5);
        assert!(m.bits_eq(&Matrix::zeros(3, 5)));
        // Growing past the old capacity also stays exact.
        m.reset_zeros(9, 9);
        assert!(m.bits_eq(&Matrix::zeros(9, 9)));
    }

    #[test]
    fn matmul_ws_matches_matmul_bitwise() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut ws = Workspace::new();
        for (m, k, n) in [(1, 1, 1), (3, 64, 5), (7, 65, 9)] {
            let a = Matrix::<f64>::random_uniform(m, k, 1.0, &mut rng);
            let b = Matrix::<f64>::random_uniform(k, n, 1.0, &mut rng);
            let via_ws = a.matmul_ws(&b, &mut ws);
            assert!(via_ws.bits_eq(&a.matmul(&b)));
            ws.give(via_ws);
        }
    }

    #[test]
    fn clone_of_pooled_matrix_is_bitwise_equal() {
        let mut rng = StdRng::seed_from_u64(57);
        let m = Matrix::<f64>::random_uniform(6, 7, 1.0, &mut rng);
        let c = m.clone();
        assert!(c.bits_eq(&m));
        drop(m);
        // The clone owns its buffer: dropping the original and building new
        // matrices over the reclaimed capacity must not disturb it.
        let _noise = Matrix::<f64>::filled(6, 7, f64::NAN);
        assert_eq!(c.shape(), (6, 7));
        assert!(c.is_finite());
    }

    #[test]
    fn column_from_f64_rounds_per_entry() {
        let c = Matrix::<f32>::column_from_f64(&[0.1, 0.2]);
        assert_eq!(c.shape(), (2, 1));
        assert_eq!(c.get(0, 0), 0.1f64 as f32);
        assert_eq!(c.get(1, 0), 0.2f64 as f32);
        let c64 = Matrix::<f64>::column_from_f64(&[0.1]);
        assert_eq!(c64.get(0, 0), 0.1);
    }

    /// Runs every `axpy_row` consumer at one random shape and asserts the
    /// dispatched kernel (AVX2 under the default `RM_SIMD=1`, the scalar
    /// reference under `RM_SIMD=0` or off-x86 hosts) is bit-identical to
    /// formulations that never touch `axpy_row`: `matmul_naive`, explicit
    /// transpose + naive, and the rolled axpy loop. Output buffers are
    /// pre-dirtied through the pool so capacity reuse cannot mask a stale
    /// read. The CI `test-no-simd` leg runs this same property against the
    /// forced scalar path, closing the parity check from both sides.
    fn axpy_consumers_match_reference<T: Scalar>(
        m: usize,
        k: usize,
        n: usize,
        seed: u64,
        fma_tol: f64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Matrix<T> = Matrix::<f64>::random_uniform(m, k, 1.0, &mut rng).cast();
        let b: Matrix<T> = Matrix::<f64>::random_uniform(k, n, 1.0, &mut rng).cast();
        let grad: Matrix<T> = Matrix::<f64>::random_uniform(m, n, 1.0, &mut rng).cast();

        // Dirty the output through the pool: fill with NaN, then overwrite.
        let mut out = Matrix::<T>::filled(m, n, T::from_f64(f64::NAN));
        a.matmul_into(&b, &mut out);
        assert_kernel_parity(&out, &a.matmul_naive(&b), fma_tol);

        let at_b = a.matmul_at_b(&grad);
        assert_kernel_parity(&at_b, &a.transpose().matmul_naive(&grad), fma_tol);

        let alpha = T::from_f64(0.375);
        let x: Matrix<T> = Matrix::<f64>::random_uniform(m, n, 1.0, &mut rng).cast();
        let mut acc = grad.clone();
        acc.axpy(alpha, &x);
        let rolled = Matrix::from_vec(
            m,
            n,
            grad.data()
                .iter()
                .zip(x.data().iter())
                .map(|(&y, &xv)| y + alpha * xv)
                .collect(),
        );
        assert_kernel_parity(&acc, &rolled, fma_tol);
    }

    mod simd_parity {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// SIMD ≡ scalar, bit for bit, at random shapes straddling the
            /// vector width and the matmul block, for both dtypes, with
            /// dirty pooled output buffers.
            #[test]
            fn dispatched_kernels_are_bit_identical_to_references(
                m in 1usize..20,
                k in 1usize..90,
                n in 1usize..20,
                seed in any::<u64>(),
            ) {
                axpy_consumers_match_reference::<f64>(m, k, n, seed, 1e-10);
                axpy_consumers_match_reference::<f32>(m, k, n, seed, 1e-4);
            }
        }
    }
}
