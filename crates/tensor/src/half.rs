//! Sub-f32 *storage*: a software `bf16` snapshot format.
//!
//! `bf16` (bfloat16) is the upper half of an IEEE-754 binary32: 1 sign bit,
//! the same 8 exponent bits as `f32`, and 7 mantissa bits. Encoding is pure
//! bit truncation of the `f32` representation — deterministic, branch-free
//! and exactly invertible on the decode side (`bits << 16`), so a
//! round-tripped value is always the input with its low 16 mantissa bits
//! zeroed. The relative error of one encode is bounded by `2^-7` (one ulp of
//! the 7-bit mantissa).
//!
//! This is a **storage** type, not a compute type: [`Scalar`] stays sealed
//! to `f64`/`f32`, and every kernel still runs at full register width. A
//! [`Bf16Matrix`] is the resident form of a trained snapshot (half the bytes
//! of `f32`, a quarter of `f64`); at inference time it decodes row-blocks
//! into pooled [`Workspace`] `f32` scratch and the existing `f32` kernels
//! take over. Accuracy is therefore epsilon-checked, not bit-compatible —
//! the same contract as the `RM_FMA=1` kernels, and the opposite of the
//! `RM_SIMD` default path.

use std::fmt;

use crate::matrix::Matrix;
use crate::workspace::Workspace;

/// Rows decoded per block when expanding a [`Bf16Matrix`] into `f32`
/// scratch: 64 rows of a few-hundred-column snapshot matrix stay well inside
/// L1/L2, matching the `MATMUL_BLOCK` panel reasoning.
const DECODE_ROW_BLOCK: usize = 64;

/// Encodes an `f32` as bfloat16 bits by truncating the low 16 mantissa bits.
#[inline]
pub fn f32_to_bf16(v: f32) -> u16 {
    (v.to_bits() >> 16) as u16
}

/// Decodes bfloat16 bits back into the exactly-representable `f32`.
#[inline]
pub fn bf16_to_f32(bits: u16) -> f32 {
    f32::from_bits(u32::from(bits) << 16)
}

/// The resident storage format of a trained snapshot — the serving-path
/// memory knob (`RM_SNAPSHOT_DTYPE` in the experiment harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotDtype {
    /// Store snapshots at the compute precision (the default; resident bytes
    /// are `size_of::<T>()` per weight and inference is bit-compatible with
    /// the pre-dtype pipeline).
    #[default]
    Native,
    /// Store snapshots as truncated bfloat16 (`u16`) and decode row-blocks
    /// into pooled `f32` scratch at inference time: half the resident bytes
    /// of an `f32` snapshot, with an epsilon-bounded accuracy cost. Only
    /// meaningful for `f32` inference (`Precision::F32`); the `f64` path
    /// ignores it.
    Bf16,
}

impl SnapshotDtype {
    /// Lowercase name (`"native"` / `"bf16"`), for reports and env parsing.
    pub fn name(self) -> &'static str {
        match self {
            SnapshotDtype::Native => "native",
            SnapshotDtype::Bf16 => "bf16",
        }
    }

    /// Parses `"native"` / `"bf16"` (ASCII case-insensitive); `None`
    /// otherwise.
    pub fn parse(s: &str) -> Option<Self> {
        if s.eq_ignore_ascii_case("native") {
            Some(SnapshotDtype::Native)
        } else if s.eq_ignore_ascii_case("bf16") {
            Some(SnapshotDtype::Bf16)
        } else {
            None
        }
    }
}

impl fmt::Display for SnapshotDtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dense row-major matrix stored as truncated bfloat16 bits — the
/// half-size resident form of an `f32` snapshot matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bf16Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u16>,
}

impl Bf16Matrix {
    /// Encodes an `f32` matrix by truncating every entry to bfloat16.
    pub fn from_matrix(m: &Matrix<f32>) -> Self {
        Self {
            rows: m.rows(),
            cols: m.cols(),
            data: m.data().iter().map(|&v| f32_to_bf16(v)).collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Decoded entry at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        bf16_to_f32(self.data[row * self.cols + col])
    }

    /// Bytes this matrix keeps resident (the `u16` payload).
    pub fn resident_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u16>()
    }

    /// The raw truncated-bfloat16 bits, row-major — the exact payload the
    /// serving artifact serializes, so a persisted bf16 tensor round-trips
    /// bit for bit.
    pub fn bits(&self) -> &[u16] {
        &self.data
    }

    /// Rebuilds a matrix from raw bfloat16 bits (the deserialization inverse
    /// of [`Bf16Matrix::bits`]).
    ///
    /// # Panics
    /// Panics if `bits.len() != rows * cols`.
    pub fn from_bits(rows: usize, cols: usize, bits: Vec<u16>) -> Self {
        assert_eq!(bits.len(), rows * cols, "bf16 payload length mismatch");
        Self {
            rows,
            cols,
            data: bits,
        }
    }

    /// Decodes into `f32` scratch checked out of `ws`, expanding
    /// [`DECODE_ROW_BLOCK`] rows at a time so the working set of one block
    /// stays cache-resident while the kernels stream the previous one.
    pub fn decode_ws(&self, ws: &mut Workspace<f32>) -> Matrix<f32> {
        let mut out = ws.take(self.rows, self.cols);
        let dst = out.data_mut();
        for block_start in (0..self.rows).step_by(DECODE_ROW_BLOCK.max(1)) {
            let start = block_start * self.cols;
            let end = (block_start + DECODE_ROW_BLOCK).min(self.rows) * self.cols;
            for (d, &bits) in dst[start..end].iter_mut().zip(&self.data[start..end]) {
                *d = bf16_to_f32(bits);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf16_round_trip_zeroes_the_low_mantissa_bits() {
        let pi = std::f32::consts::PI;
        for v in [0.0f32, -0.0, 1.0, -1.5, 0.15625, pi, -65504.0, 1e-20, 1e20] {
            let decoded = bf16_to_f32(f32_to_bf16(v));
            assert_eq!(decoded.to_bits(), v.to_bits() & 0xffff_0000);
            // Values already representable in bf16 survive exactly.
            assert_eq!(f32_to_bf16(decoded), f32_to_bf16(v));
        }
        // Powers of two and small integers are exact in bf16.
        assert_eq!(bf16_to_f32(f32_to_bf16(2.0)), 2.0);
        assert_eq!(bf16_to_f32(f32_to_bf16(-0.25)), -0.25);
        assert_eq!(bf16_to_f32(f32_to_bf16(100.0)), 100.0);
    }

    #[test]
    fn truncation_error_is_bounded_by_2_pow_minus_7() {
        for i in 0..4096u32 {
            let v = (i as f32 - 2048.0) * 0.037 + 0.001;
            let err = (bf16_to_f32(f32_to_bf16(v)) - v).abs();
            assert!(
                err <= v.abs() / 128.0,
                "bf16 truncation error {err} exceeds 2^-7 relative at {v}"
            );
        }
    }

    #[test]
    fn matrix_encode_decode_round_trips_through_workspace_scratch() {
        let src = Matrix::<f32>::from_vec(
            130,
            3,
            (0..390).map(|i| (i as f32 - 195.0) * 0.173).collect(),
        );
        let packed = Bf16Matrix::from_matrix(&src);
        assert_eq!((packed.rows(), packed.cols()), (130, 3));
        assert_eq!(packed.resident_bytes(), 390 * 2);

        let mut ws = Workspace::new();
        // Dirty the workspace first: decode must fully overwrite its scratch.
        let dirty = Matrix::<f32>::filled(130, 3, f32::NAN);
        ws.give(dirty);
        let decoded = packed.decode_ws(&mut ws);
        for r in 0..130 {
            for c in 0..3 {
                assert_eq!(decoded.get(r, c).to_bits(), packed.get(r, c).to_bits());
                let err = (decoded.get(r, c) - src.get(r, c)).abs();
                assert!(err <= src.get(r, c).abs() / 128.0 + f32::EPSILON);
            }
        }
    }

    #[test]
    fn snapshot_dtype_parses_and_displays() {
        assert_eq!(SnapshotDtype::default(), SnapshotDtype::Native);
        assert_eq!(SnapshotDtype::parse("bf16"), Some(SnapshotDtype::Bf16));
        assert_eq!(SnapshotDtype::parse("NATIVE"), Some(SnapshotDtype::Native));
        assert_eq!(SnapshotDtype::parse("f16"), None);
        assert_eq!(SnapshotDtype::Bf16.to_string(), "bf16");
        assert_eq!(SnapshotDtype::Native.name(), "native");
    }
}
