//! Explicit-width SIMD kernels: the vector width as a guarantee, not a hope.
//!
//! The blocked kernels of [`Matrix`](crate::Matrix) funnel their inner loop
//! through one primitive — `axpy_row`, the in-place `y[j] += a * x[j]` rank-1
//! row update. Until this module existed, that loop was a 4-wide unrolled
//! scalar loop the backend *usually* auto-vectorises; here it is rewritten
//! with `core::arch::x86_64` AVX2 intrinsics behind runtime feature
//! detection, so the width (4 lanes of `f64`, 8 of `f32`) is guaranteed on
//! any AVX2-capable host and inference latency stops depending on the
//! optimiser's mood.
//!
//! Dispatch is hoisted out of the row loop: each consumer
//! (`matmul_into`/`matmul_at_b`/`axpy`) reads the process-wide [`kernel()`]
//! choice **once per call** and then runs its entire blocked loop inside a
//! `#[target_feature]` context, so the row kernel inlines and no per-row
//! call or detection cost remains. Products narrower than
//! [`SIMD_MIN_COLS`] (an LSTM column vector is `n = 1`) keep the inlined
//! scalar reference outright — bit-identical anyway, and faster when there
//! is no vector body to amortise the dispatch.
//!
//! Two contracts, one per kernel family:
//!
//! * **Bit-compat (default)** — the AVX2 kernels perform exactly one
//!   multiply and one add per element, in index order, on independent
//!   elements. IEEE-754 arithmetic is deterministic per element, so the SIMD
//!   result is **bit-identical** to the scalar reference at both precisions
//!   (`RM_SIMD=0` forces that reference; parity proptests in this module and
//!   the determinism suite check the equivalence).
//! * **Epsilon (opt-in)** — `RM_FMA=1` swaps in fused-multiply-add variants
//!   for the serving path. Fusing drops the intermediate rounding, so FMA
//!   results are *not* bit-compatible with the reference — only
//!   epsilon-close (proptest-bounded below). Never enable it where the
//!   cross-PR bitwise contract matters.
//!
//! `RM_SIMD` / `RM_FMA` are resolved once per process through cached
//! accessors, the same pattern as `RM_POOL`/`RM_ARENA`.

// rm-lint: hot-path

use std::sync::OnceLock;

static SIMD_ENABLED: OnceLock<bool> = OnceLock::new();

/// Whether the explicit-width SIMD kernels are active (default) or disabled
/// via `RM_SIMD=0` (or `off`), which forces the 4-wide unrolled scalar
/// reference path the SIMD kernels are bitwise-checked against. Resolved
/// once per process, like `RM_POOL` and `RM_ARENA`.
#[allow(clippy::disallowed_methods)] // audited env read; see the rm-lint allow inside
pub fn simd_enabled() -> bool {
    *SIMD_ENABLED.get_or_init(|| {
        !matches!(
            // rm-lint: allow(no-raw-env-read): this IS the once-per-process cached accessor for RM_SIMD
            std::env::var("RM_SIMD").as_deref(),
            Ok("0") | Ok("off")
        )
    })
}

static FMA_ENABLED: OnceLock<bool> = OnceLock::new();

/// Whether the fused-multiply-add kernel variants are active (`RM_FMA=1` or
/// `on`; **default off**). FMA fuses the multiply and add into one rounding,
/// so it is faster but *not* bit-compatible with the scalar reference — only
/// epsilon-close. Reserve it for the serving path, where the determinism
/// contract is per-process, not cross-configuration. Resolved once per
/// process.
#[allow(clippy::disallowed_methods)] // audited env read; see the rm-lint allow inside
pub fn fma_enabled() -> bool {
    *FMA_ENABLED.get_or_init(|| {
        matches!(
            // rm-lint: allow(no-raw-env-read): this IS the once-per-process cached accessor for RM_FMA
            std::env::var("RM_FMA").as_deref(),
            Ok("1") | Ok("on")
        )
    })
}

/// Runtime AVX2 support, detected once per process.
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| is_x86_feature_detected!("avx2"))
}

/// Runtime FMA support, detected once per process.
#[cfg(target_arch = "x86_64")]
fn fma_available() -> bool {
    static FMA: OnceLock<bool> = OnceLock::new();
    *FMA.get_or_init(|| is_x86_feature_detected!("fma"))
}

/// Minimum row length for which the consumers dispatch to the arch kernels.
/// Below this there is no vector body to amortise the dispatch (a column
/// vector is a single scalar multiply-add per row), and the 4-wide unrolled
/// scalar reference — which the AVX2 kernels are bit-identical to anyway —
/// inlines into the consumer loop and wins outright. The choice depends only
/// on the operand shape, so it is deterministic.
pub(crate) const SIMD_MIN_COLS: usize = 16;

/// The row-kernel family the process resolved to, read once per consumer
/// call (not once per row). `Avx2`/`Fma` are only ever produced after the
/// matching runtime CPU detection succeeded, which is what makes the
/// `unsafe` dispatch into the `#[target_feature]` consumers sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kernel {
    /// The 4-wide unrolled scalar reference (`RM_SIMD=0`, non-x86_64, or no
    /// AVX2 at runtime).
    Scalar,
    /// Explicit-width AVX2, bit-identical to `Scalar`.
    Avx2,
    /// AVX2 + fused multiply-add (`RM_FMA=1` opt-in), epsilon-checked only.
    Fma,
}

/// The process-wide kernel choice: knobs and CPU detection folded into one
/// cached value, so the hot consumers pay a single atomic load per call.
#[inline]
pub(crate) fn kernel() -> Kernel {
    static KERNEL: OnceLock<Kernel> = OnceLock::new();
    *KERNEL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if simd_enabled() && avx2_available() {
                if fma_enabled() && fma_available() {
                    return Kernel::Fma;
                }
                return Kernel::Avx2;
            }
        }
        Kernel::Scalar
    })
}

/// Name of the `axpy_row` kernel the current process dispatches to:
/// `"avx2+fma"`, `"avx2"` or `"scalar"`. For bench labels and reports.
pub fn simd_kernel_name() -> &'static str {
    match kernel() {
        Kernel::Fma => "avx2+fma",
        Kernel::Avx2 => "avx2",
        Kernel::Scalar => "scalar",
    }
}

/// AVX2 `y[j] += a * x[j]` over `f64` slices, 4 lanes per vector, two
/// vectors per main-loop iteration. Each element sees exactly one
/// `_mm256_mul_pd` and one `_mm256_add_pd` — separate roundings, index
/// order — so the result is bit-identical to the scalar reference.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
#[inline]
// SAFETY: the `unsafe fn` contract is AVX2 availability (checked by the
// dispatcher); every pointer below is derived from the equal-length input
// slices and offset strictly within their bounds.
pub(crate) unsafe fn axpy_row_f64_avx2(a: f64, x: &[f64], y: &mut [f64]) {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
    };
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    // SAFETY: all offsets are < n ≤ both slice lengths; unaligned
    // loads/stores are used throughout, so no alignment precondition.
    unsafe {
        let av = _mm256_set1_pd(a);
        let mut i = 0usize;
        while i + 8 <= n {
            let y0 = _mm256_add_pd(
                _mm256_loadu_pd(yp.add(i)),
                _mm256_mul_pd(av, _mm256_loadu_pd(xp.add(i))),
            );
            let y1 = _mm256_add_pd(
                _mm256_loadu_pd(yp.add(i + 4)),
                _mm256_mul_pd(av, _mm256_loadu_pd(xp.add(i + 4))),
            );
            _mm256_storeu_pd(yp.add(i), y0);
            _mm256_storeu_pd(yp.add(i + 4), y1);
            i += 8;
        }
        if i + 4 <= n {
            let y0 = _mm256_add_pd(
                _mm256_loadu_pd(yp.add(i)),
                _mm256_mul_pd(av, _mm256_loadu_pd(xp.add(i))),
            );
            _mm256_storeu_pd(yp.add(i), y0);
            i += 4;
        }
        while i < n {
            *yp.add(i) += a * *xp.add(i);
            i += 1;
        }
    }
}

/// AVX2+FMA `y[j] = fma(a, x[j], y[j])` over `f64` slices. One fused
/// rounding per element — **not** bit-compatible with the scalar reference;
/// epsilon-checked only (`RM_FMA=1` opt-in).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(unsafe_code)]
#[inline]
// SAFETY: the `unsafe fn` contract is AVX2+FMA availability (checked by the
// dispatcher); every pointer below is derived from the equal-length input
// slices and offset strictly within their bounds.
pub(crate) unsafe fn axpy_row_f64_fma(a: f64, x: &[f64], y: &mut [f64]) {
    use std::arch::x86_64::{_mm256_fmadd_pd, _mm256_loadu_pd, _mm256_set1_pd, _mm256_storeu_pd};
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    // SAFETY: all offsets are < n ≤ both slice lengths; unaligned
    // loads/stores are used throughout, so no alignment precondition.
    unsafe {
        let av = _mm256_set1_pd(a);
        let mut i = 0usize;
        while i + 8 <= n {
            let y0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)));
            let y1 = _mm256_fmadd_pd(
                av,
                _mm256_loadu_pd(xp.add(i + 4)),
                _mm256_loadu_pd(yp.add(i + 4)),
            );
            _mm256_storeu_pd(yp.add(i), y0);
            _mm256_storeu_pd(yp.add(i + 4), y1);
            i += 8;
        }
        if i + 4 <= n {
            let y0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)));
            _mm256_storeu_pd(yp.add(i), y0);
            i += 4;
        }
        while i < n {
            *yp.add(i) = a.mul_add(*xp.add(i), *yp.add(i));
            i += 1;
        }
    }
}

/// AVX2 `y[j] += a * x[j]` over `f32` slices, 8 lanes per vector, two
/// vectors per main-loop iteration. Same bit-compat argument as the `f64`
/// kernel: one multiply, one add, index order, independent elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
#[inline]
// SAFETY: the `unsafe fn` contract is AVX2 availability (checked by the
// dispatcher); every pointer below is derived from the equal-length input
// slices and offset strictly within their bounds.
pub(crate) unsafe fn axpy_row_f32_avx2(a: f32, x: &[f32], y: &mut [f32]) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_storeu_ps,
    };
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    // SAFETY: all offsets are < n ≤ both slice lengths; unaligned
    // loads/stores are used throughout, so no alignment precondition.
    unsafe {
        let av = _mm256_set1_ps(a);
        let mut i = 0usize;
        while i + 16 <= n {
            let y0 = _mm256_add_ps(
                _mm256_loadu_ps(yp.add(i)),
                _mm256_mul_ps(av, _mm256_loadu_ps(xp.add(i))),
            );
            let y1 = _mm256_add_ps(
                _mm256_loadu_ps(yp.add(i + 8)),
                _mm256_mul_ps(av, _mm256_loadu_ps(xp.add(i + 8))),
            );
            _mm256_storeu_ps(yp.add(i), y0);
            _mm256_storeu_ps(yp.add(i + 8), y1);
            i += 16;
        }
        if i + 8 <= n {
            let y0 = _mm256_add_ps(
                _mm256_loadu_ps(yp.add(i)),
                _mm256_mul_ps(av, _mm256_loadu_ps(xp.add(i))),
            );
            _mm256_storeu_ps(yp.add(i), y0);
            i += 8;
        }
        while i < n {
            *yp.add(i) += a * *xp.add(i);
            i += 1;
        }
    }
}

/// AVX2+FMA `y[j] = fma(a, x[j], y[j])` over `f32` slices. Epsilon-checked
/// only, like the `f64` FMA variant.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(unsafe_code)]
#[inline]
// SAFETY: the `unsafe fn` contract is AVX2+FMA availability (checked by the
// dispatcher); every pointer below is derived from the equal-length input
// slices and offset strictly within their bounds.
pub(crate) unsafe fn axpy_row_f32_fma(a: f32, x: &[f32], y: &mut [f32]) {
    use std::arch::x86_64::{_mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_storeu_ps};
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    // SAFETY: all offsets are < n ≤ both slice lengths; unaligned
    // loads/stores are used throughout, so no alignment precondition.
    unsafe {
        let av = _mm256_set1_ps(a);
        let mut i = 0usize;
        while i + 16 <= n {
            let y0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)));
            let y1 = _mm256_fmadd_ps(
                av,
                _mm256_loadu_ps(xp.add(i + 8)),
                _mm256_loadu_ps(yp.add(i + 8)),
            );
            _mm256_storeu_ps(yp.add(i), y0);
            _mm256_storeu_ps(yp.add(i + 8), y1);
            i += 16;
        }
        if i + 8 <= n {
            let y0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)));
            _mm256_storeu_ps(yp.add(i), y0);
            i += 8;
        }
        while i < n {
            *yp.add(i) = a.mul_add(*xp.add(i), *yp.add(i));
            i += 1;
        }
    }
}

/// Generates the fused four-row rank-1 update kernels
/// `y[j] += Σ_r a[r] * x[r][j]`: the k-unrolled panel primitive of
/// `matmul_into`. Each element is evaluated as four sequential multiply-adds
/// in `r` order — exactly the arithmetic of four consecutive single-row
/// updates — so the AVX2 instances stay bit-identical to the scalar
/// reference; the win is that each `y` vector is loaded and stored once per
/// four reduction steps instead of once per step. The FMA instances fuse
/// each step's rounding (`RM_FMA=1` opt-in, epsilon contract).
#[cfg(target_arch = "x86_64")]
macro_rules! axpy_row4_kernels {
    (
        $t:ty, $lanes:expr,
        $set1:ident, $loadu:ident, $storeu:ident, $mul:ident, $add:ident, $fmadd:ident,
        $avx2_name:ident, $fma_name:ident
    ) => {
        /// Fused four-row AVX2 update; bit-identical to four sequential
        /// single-row updates (see the macro doc).
        // SAFETY: the `unsafe fn` contract is AVX2 availability (upheld by
        // the `Kernel::Avx2` dispatch); every pointer is derived from the
        // input slices and offset strictly below `n`, the minimum length.
        #[target_feature(enable = "avx2")]
        #[allow(unsafe_code)]
        #[inline]
        pub(crate) unsafe fn $avx2_name(a: [$t; 4], x: [&[$t]; 4], y: &mut [$t]) {
            use std::arch::x86_64::{$add, $loadu, $mul, $set1, $storeu};
            let n = y
                .len()
                .min(x[0].len())
                .min(x[1].len())
                .min(x[2].len())
                .min(x[3].len());
            let yp = y.as_mut_ptr();
            let xp = [x[0].as_ptr(), x[1].as_ptr(), x[2].as_ptr(), x[3].as_ptr()];
            // SAFETY: all offsets are < n ≤ every slice length; unaligned
            // loads/stores are used throughout, so no alignment precondition.
            unsafe {
                let av = [$set1(a[0]), $set1(a[1]), $set1(a[2]), $set1(a[3])];
                let mut i = 0usize;
                while i + 2 * $lanes <= n {
                    let mut y0 = $loadu(yp.add(i));
                    let mut y1 = $loadu(yp.add(i + $lanes));
                    y0 = $add(y0, $mul(av[0], $loadu(xp[0].add(i))));
                    y1 = $add(y1, $mul(av[0], $loadu(xp[0].add(i + $lanes))));
                    y0 = $add(y0, $mul(av[1], $loadu(xp[1].add(i))));
                    y1 = $add(y1, $mul(av[1], $loadu(xp[1].add(i + $lanes))));
                    y0 = $add(y0, $mul(av[2], $loadu(xp[2].add(i))));
                    y1 = $add(y1, $mul(av[2], $loadu(xp[2].add(i + $lanes))));
                    y0 = $add(y0, $mul(av[3], $loadu(xp[3].add(i))));
                    y1 = $add(y1, $mul(av[3], $loadu(xp[3].add(i + $lanes))));
                    $storeu(yp.add(i), y0);
                    $storeu(yp.add(i + $lanes), y1);
                    i += 2 * $lanes;
                }
                if i + $lanes <= n {
                    let mut y0 = $loadu(yp.add(i));
                    y0 = $add(y0, $mul(av[0], $loadu(xp[0].add(i))));
                    y0 = $add(y0, $mul(av[1], $loadu(xp[1].add(i))));
                    y0 = $add(y0, $mul(av[2], $loadu(xp[2].add(i))));
                    y0 = $add(y0, $mul(av[3], $loadu(xp[3].add(i))));
                    $storeu(yp.add(i), y0);
                    i += $lanes;
                }
                while i < n {
                    let mut v = *yp.add(i);
                    v += a[0] * *xp[0].add(i);
                    v += a[1] * *xp[1].add(i);
                    v += a[2] * *xp[2].add(i);
                    v += a[3] * *xp[3].add(i);
                    *yp.add(i) = v;
                    i += 1;
                }
            }
        }

        /// Fused four-row AVX2+FMA update (`RM_FMA=1` opt-in; one rounding
        /// per step, epsilon contract).
        // SAFETY: the `unsafe fn` contract is AVX2+FMA availability (upheld
        // by the `Kernel::Fma` dispatch); same in-bounds pointer argument as
        // the AVX2 instance.
        #[target_feature(enable = "avx2,fma")]
        #[allow(unsafe_code)]
        #[inline]
        pub(crate) unsafe fn $fma_name(a: [$t; 4], x: [&[$t]; 4], y: &mut [$t]) {
            use std::arch::x86_64::{$fmadd, $loadu, $set1, $storeu};
            let n = y
                .len()
                .min(x[0].len())
                .min(x[1].len())
                .min(x[2].len())
                .min(x[3].len());
            let yp = y.as_mut_ptr();
            let xp = [x[0].as_ptr(), x[1].as_ptr(), x[2].as_ptr(), x[3].as_ptr()];
            // SAFETY: all offsets are < n ≤ every slice length; unaligned
            // loads/stores are used throughout, so no alignment precondition.
            unsafe {
                let av = [$set1(a[0]), $set1(a[1]), $set1(a[2]), $set1(a[3])];
                let mut i = 0usize;
                while i + 2 * $lanes <= n {
                    let mut y0 = $loadu(yp.add(i));
                    let mut y1 = $loadu(yp.add(i + $lanes));
                    y0 = $fmadd(av[0], $loadu(xp[0].add(i)), y0);
                    y1 = $fmadd(av[0], $loadu(xp[0].add(i + $lanes)), y1);
                    y0 = $fmadd(av[1], $loadu(xp[1].add(i)), y0);
                    y1 = $fmadd(av[1], $loadu(xp[1].add(i + $lanes)), y1);
                    y0 = $fmadd(av[2], $loadu(xp[2].add(i)), y0);
                    y1 = $fmadd(av[2], $loadu(xp[2].add(i + $lanes)), y1);
                    y0 = $fmadd(av[3], $loadu(xp[3].add(i)), y0);
                    y1 = $fmadd(av[3], $loadu(xp[3].add(i + $lanes)), y1);
                    $storeu(yp.add(i), y0);
                    $storeu(yp.add(i + $lanes), y1);
                    i += 2 * $lanes;
                }
                if i + $lanes <= n {
                    let mut y0 = $loadu(yp.add(i));
                    y0 = $fmadd(av[0], $loadu(xp[0].add(i)), y0);
                    y0 = $fmadd(av[1], $loadu(xp[1].add(i)), y0);
                    y0 = $fmadd(av[2], $loadu(xp[2].add(i)), y0);
                    y0 = $fmadd(av[3], $loadu(xp[3].add(i)), y0);
                    $storeu(yp.add(i), y0);
                    i += $lanes;
                }
                while i < n {
                    let mut v = *yp.add(i);
                    v = a[0].mul_add(*xp[0].add(i), v);
                    v = a[1].mul_add(*xp[1].add(i), v);
                    v = a[2].mul_add(*xp[2].add(i), v);
                    v = a[3].mul_add(*xp[3].add(i), v);
                    *yp.add(i) = v;
                    i += 1;
                }
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
axpy_row4_kernels!(
    f64,
    4,
    _mm256_set1_pd,
    _mm256_loadu_pd,
    _mm256_storeu_pd,
    _mm256_mul_pd,
    _mm256_add_pd,
    _mm256_fmadd_pd,
    axpy_row4_f64_avx2,
    axpy_row4_f64_fma
);
#[cfg(target_arch = "x86_64")]
axpy_row4_kernels!(
    f32,
    8,
    _mm256_set1_ps,
    _mm256_loadu_ps,
    _mm256_storeu_ps,
    _mm256_mul_ps,
    _mm256_add_ps,
    _mm256_fmadd_ps,
    axpy_row4_f32_avx2,
    axpy_row4_f32_fma
);

/// Non-x86_64 stand-ins for the arch kernels, so the [`Scalar`]
/// (`crate::Scalar`) dispatch hooks link on every target. Off x86_64,
/// [`kernel()`] never resolves past [`Kernel::Scalar`], so these are never
/// reached through dispatch; the bodies just delegate to the scalar
/// reference and the `unsafe` only mirrors the x86_64 signatures.
#[cfg(not(target_arch = "x86_64"))]
macro_rules! scalar_fallback {
    ($name:ident, $t:ty) => {
        // SAFETY: trivially safe body (delegates to the safe scalar
        // reference); `unsafe fn` only to match the x86_64 kernel signature.
        #[allow(unsafe_code)]
        pub(crate) unsafe fn $name(a: $t, x: &[$t], y: &mut [$t]) {
            crate::matrix::axpy_row_scalar(a, x, y)
        }
    };
}

#[cfg(not(target_arch = "x86_64"))]
scalar_fallback!(axpy_row_f64_avx2, f64);
#[cfg(not(target_arch = "x86_64"))]
scalar_fallback!(axpy_row_f64_fma, f64);
#[cfg(not(target_arch = "x86_64"))]
scalar_fallback!(axpy_row_f32_avx2, f32);
#[cfg(not(target_arch = "x86_64"))]
scalar_fallback!(axpy_row_f32_fma, f32);

/// Four-row counterpart of [`scalar_fallback!`]: four sequential scalar row
/// updates, the definitionally bit-identical expansion of the fused kernel.
#[cfg(not(target_arch = "x86_64"))]
macro_rules! scalar_fallback4 {
    ($name:ident, $t:ty) => {
        // SAFETY: trivially safe body (sequential safe scalar updates);
        // `unsafe fn` only to match the x86_64 kernel signature.
        #[allow(unsafe_code)]
        pub(crate) unsafe fn $name(a: [$t; 4], x: [&[$t]; 4], y: &mut [$t]) {
            for (ar, xr) in a.iter().zip(x.iter()) {
                crate::matrix::axpy_row_scalar(*ar, xr, y);
            }
        }
    };
}

#[cfg(not(target_arch = "x86_64"))]
scalar_fallback4!(axpy_row4_f64_avx2, f64);
#[cfg(not(target_arch = "x86_64"))]
scalar_fallback4!(axpy_row4_f64_fma, f64);
#[cfg(not(target_arch = "x86_64"))]
scalar_fallback4!(axpy_row4_f32_avx2, f32);
#[cfg(not(target_arch = "x86_64"))]
scalar_fallback4!(axpy_row4_f32_fma, f32);

#[cfg(test)]
mod tests {
    #![allow(unsafe_code)] // tests call the kernels directly, guarded by the same detection

    use super::*;
    use crate::matrix::axpy_row_scalar;

    /// Deterministic pseudo-random values without consuming an RNG stream:
    /// a splitmix-style hash of the index, mapped into `[-1, 1]`.
    fn val(i: u64) -> f64 {
        let mut z = i
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x243f_6a88_85a3_08d3);
        z ^= z >> 30;
        z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        (z as f64 / u64::MAX as f64) * 2.0 - 1.0
    }

    #[test]
    fn kernel_name_is_consistent_with_the_knobs() {
        let name = simd_kernel_name();
        if !simd_enabled() {
            assert_eq!(name, "scalar");
        } else {
            assert!(["scalar", "avx2", "avx2+fma"].contains(&name));
        }
        // fma_enabled is cached; calling it twice must agree.
        assert_eq!(fma_enabled(), fma_enabled());
    }

    /// The AVX2 kernels are bit-identical to the scalar reference at every
    /// length (vector body, single-vector tail and scalar remainder) and at
    /// both precisions — the contract `matmul_into`/`matmul_at_b`/`axpy`
    /// inherit.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_kernels_are_bit_identical_to_the_scalar_reference() {
        if !avx2_available() {
            return;
        }
        for n in 0..70usize {
            let a64 = val(9_000 + n as u64);
            let x64: Vec<f64> = (0..n).map(|j| val(j as u64)).collect();
            let base64: Vec<f64> = (0..n).map(|j| val(1_000 + j as u64)).collect();
            let mut simd_y = base64.clone();
            let mut scalar_y = base64.clone();
            // SAFETY: avx2_available() was checked at the top of the test.
            unsafe { axpy_row_f64_avx2(a64, &x64, &mut simd_y) };
            axpy_row_scalar(a64, &x64, &mut scalar_y);
            for (s, r) in simd_y.iter().zip(&scalar_y) {
                assert_eq!(s.to_bits(), r.to_bits(), "f64 mismatch at n={n}");
            }

            let a32 = a64 as f32;
            let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
            let base32: Vec<f32> = base64.iter().map(|&v| v as f32).collect();
            let mut simd_y = base32.clone();
            let mut scalar_y = base32;
            // SAFETY: avx2_available() was checked at the top of the test.
            unsafe { axpy_row_f32_avx2(a32, &x32, &mut simd_y) };
            axpy_row_scalar(a32, &x32, &mut scalar_y);
            for (s, r) in simd_y.iter().zip(&scalar_y) {
                assert_eq!(s.to_bits(), r.to_bits(), "f32 mismatch at n={n}");
            }
        }
    }

    /// The FMA variants are epsilon-close to (but, in general, not bitwise
    /// equal to) the non-FMA kernels: fusing removes one rounding per
    /// element, so the difference is bounded by an ulp-scale epsilon.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn fma_kernels_are_epsilon_close_to_the_non_fma_reference() {
        if !avx2_available() || !fma_available() {
            return;
        }
        for n in [1usize, 3, 4, 7, 8, 16, 33, 64, 129] {
            let a64 = val(5_000 + n as u64);
            let x64: Vec<f64> = (0..n).map(|j| val(100 + j as u64)).collect();
            let base64: Vec<f64> = (0..n).map(|j| val(2_000 + j as u64)).collect();
            let mut fma_y = base64.clone();
            let mut ref_y = base64.clone();
            // SAFETY: fma_available() was checked at the top of the test.
            unsafe { axpy_row_f64_fma(a64, &x64, &mut fma_y) };
            axpy_row_scalar(a64, &x64, &mut ref_y);
            for (f, r) in fma_y.iter().zip(&ref_y) {
                assert!((f - r).abs() <= 1e-15, "f64 fma drifted: {f} vs {r}");
            }

            let a32 = a64 as f32;
            let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
            let base32: Vec<f32> = base64.iter().map(|&v| v as f32).collect();
            let mut fma_y = base32.clone();
            let mut ref_y = base32;
            // SAFETY: fma_available() was checked at the top of the test.
            unsafe { axpy_row_f32_fma(a32, &x32, &mut fma_y) };
            axpy_row_scalar(a32, &x32, &mut ref_y);
            for (f, r) in fma_y.iter().zip(&ref_y) {
                assert!((f - r).abs() <= 1e-6, "f32 fma drifted: {f} vs {r}");
            }
        }
    }
}
