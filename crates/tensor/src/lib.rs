//! Dense matrices and reverse-mode automatic differentiation.
//!
//! This crate is the numerical substrate for the neural imputation models in
//! the workspace (BiSIM, BRITS, SSGAN). It deliberately implements only what
//! those models need:
//!
//! * [`Scalar`] — the sealed precision trait (`f64`, `f32`) every kernel is
//!   generic over, and [`Precision`], the runtime knob that selects between
//!   them,
//! * [`Matrix`] — a dense row-major matrix (default `Matrix<f64>`) with the
//!   usual linear-algebra and element-wise operations; the blocked kernels
//!   dispatch to explicit-width AVX2 intrinsics ([`simd`]) when the CPU has
//!   them and fall back to the bitwise-identical scalar reference otherwise
//!   (`RM_SIMD=0` forces the reference; `RM_FMA=1` opts into the
//!   epsilon-only fused variants),
//! * [`SnapshotDtype`] and the [`half`] module — software bf16 (`u16`
//!   truncation of f32) for storing inference snapshots at half the f32
//!   footprint, decoded back to f32 before any arithmetic,
//! * [`Var`] — a node in a dynamically-built reverse-mode autodiff graph
//!   (default `Var<f64>`), supporting matrix products, element-wise
//!   arithmetic, activations, masking, concatenation, column softmax and
//!   scalar reductions,
//! * [`Workspace`] and the per-thread buffer pools behind every [`Matrix`]
//!   constructor — the arena layer ([`workspace`]) that keeps the hot loops
//!   allocation-free; `RM_ARENA=0` restores the fresh-allocation reference
//!   path.
//!
//! # Example
//!
//! ```
//! use rm_tensor::{Matrix, Var};
//!
//! // Fit y = w * x with one gradient step. `Var` defaults to `Var<f64>`;
//! // swap in `Var<f32>` for the single-precision instantiation.
//! let w: Var = Var::parameter(Matrix::from_vec(1, 1, vec![0.0]));
//! let x = Var::constant(Matrix::from_vec(1, 1, vec![2.0]));
//! let y = Var::constant(Matrix::from_vec(1, 1, vec![6.0]));
//!
//! let loss = w.matmul(&x).sub(&y).square().sum();
//! loss.backward();
//!
//! // d/dw (w*2 - 6)^2 = 2*(w*2-6)*2 = -24 at w = 0.
//! assert!((w.grad().get(0, 0) + 24.0).abs() < 1e-9);
//! ```

pub mod autodiff;
pub mod export;
pub mod half;
pub mod matrix;
pub mod scalar;
pub mod simd;
pub mod workspace;

pub use autodiff::Var;
pub use export::{IntoTensorPayload, NamedTensor, TensorPayload};
pub use half::{bf16_to_f32, f32_to_bf16, Bf16Matrix, SnapshotDtype};
pub use matrix::{Matrix, MATMUL_BLOCK};
pub use scalar::{Precision, Scalar};
pub use simd::{fma_enabled, simd_enabled, simd_kernel_name};
pub use workspace::{arena_enabled, buffer_pool_stats, BufferPoolStats, Workspace};
