//! Named-tensor export: the plain-data interchange form of trained weight
//! snapshots.
//!
//! The serving artifact (`rm-serve`) persists trained models as a flat list
//! of [`NamedTensor`]s — one dense matrix per parameter, tagged with a name
//! and a storage dtype — so the on-disk format never has to know the shape
//! of any particular model. The dtype axis mirrors the resident snapshot
//! axis ([`SnapshotDtype`] × [`Precision`](crate::Precision)): a snapshot
//! trained at f64, rounded to f32, or truncated to bfloat16 exports exactly
//! the bits it keeps resident, so a decoded artifact reproduces the serving
//! model bit for bit.

use crate::half::Bf16Matrix;
use crate::matrix::Matrix;

/// The payload of one exported tensor, at its resident storage dtype.
#[derive(Debug, Clone)]
pub enum TensorPayload {
    /// Double-precision payload (8 bytes per element).
    F64(Matrix<f64>),
    /// Single-precision payload (4 bytes per element).
    F32(Matrix<f32>),
    /// Truncated-bfloat16 payload (2 bytes per element).
    Bf16(Bf16Matrix),
}

impl TensorPayload {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            TensorPayload::F64(m) => m.rows(),
            TensorPayload::F32(m) => m.rows(),
            TensorPayload::Bf16(m) => m.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            TensorPayload::F64(m) => m.cols(),
            TensorPayload::F32(m) => m.cols(),
            TensorPayload::Bf16(m) => m.cols(),
        }
    }

    /// Lowercase dtype name (`"f64"` / `"f32"` / `"bf16"`), for reports.
    pub fn dtype_name(&self) -> &'static str {
        match self {
            TensorPayload::F64(_) => "f64",
            TensorPayload::F32(_) => "f32",
            TensorPayload::Bf16(_) => "bf16",
        }
    }

    /// Serialized payload bytes (elements × element width; headers excluded).
    pub fn payload_bytes(&self) -> usize {
        let elements = self.rows() * self.cols();
        match self {
            TensorPayload::F64(_) => elements * 8,
            TensorPayload::F32(_) => elements * 4,
            TensorPayload::Bf16(_) => elements * 2,
        }
    }

    /// Widens the payload to a double-precision matrix — the import
    /// direction of the export axis, used to warm-start training from a
    /// persisted snapshot. Training always runs at f64, so an f32 or bf16
    /// payload widens losslessly (every f32/bf16 value is exactly
    /// representable in f64); the round trip back through a same-dtype
    /// export reproduces the original bits.
    pub fn to_f64_matrix(&self) -> Matrix<f64> {
        match self {
            TensorPayload::F64(m) => m.clone(),
            TensorPayload::F32(m) => {
                Matrix::from_fn(m.rows(), m.cols(), |r, c| f64::from(m.get(r, c)))
            }
            TensorPayload::Bf16(m) => {
                Matrix::from_fn(m.rows(), m.cols(), |r, c| f64::from(m.get(r, c)))
            }
        }
    }

    /// Bitwise equality: same dtype, same shape, same raw bits everywhere.
    /// (IEEE `==` would declare `-0.0 == 0.0` and `NaN != NaN`; the artifact
    /// round-trip contract is about *bits*, not values.)
    pub fn bits_eq(&self, other: &TensorPayload) -> bool {
        match (self, other) {
            (TensorPayload::F64(a), TensorPayload::F64(b)) => {
                a.shape() == b.shape()
                    && a.data()
                        .iter()
                        .zip(b.data())
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (TensorPayload::F32(a), TensorPayload::F32(b)) => {
                a.shape() == b.shape()
                    && a.data()
                        .iter()
                        .zip(b.data())
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (TensorPayload::Bf16(a), TensorPayload::Bf16(b)) => {
                a.rows() == b.rows() && a.cols() == b.cols() && a.bits() == b.bits()
            }
            _ => false,
        }
    }
}

/// Conversion of a concrete matrix into its [`TensorPayload`] variant —
/// the hook that lets weight-export code stay generic over the snapshot
/// precision.
pub trait IntoTensorPayload {
    /// Wraps `self` in the matching payload variant.
    fn into_payload(self) -> TensorPayload;
}

impl IntoTensorPayload for Matrix<f64> {
    fn into_payload(self) -> TensorPayload {
        TensorPayload::F64(self)
    }
}

impl IntoTensorPayload for Matrix<f32> {
    fn into_payload(self) -> TensorPayload {
        TensorPayload::F32(self)
    }
}

impl IntoTensorPayload for Bf16Matrix {
    fn into_payload(self) -> TensorPayload {
        TensorPayload::Bf16(self)
    }
}

/// One exported tensor: a stable dotted-path name (e.g.
/// `"brits.forward.cell.input_gate.weight"`) plus its payload.
#[derive(Debug, Clone)]
pub struct NamedTensor {
    /// Stable dotted-path identifier, unique within one export.
    pub name: String,
    /// The matrix payload at its storage dtype.
    pub payload: TensorPayload,
}

impl NamedTensor {
    /// Creates a named tensor from any supported matrix type.
    pub fn new(name: impl Into<String>, matrix: impl IntoTensorPayload) -> Self {
        Self {
            name: name.into(),
            payload: matrix.into_payload(),
        }
    }

    /// Bitwise equality of name and payload (see [`TensorPayload::bits_eq`]).
    pub fn bits_eq(&self, other: &NamedTensor) -> bool {
        self.name == other.name && self.payload.bits_eq(&other.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_reports_shape_dtype_and_bytes() {
        let t64 = NamedTensor::new("a", Matrix::<f64>::filled(2, 3, 1.5));
        let t32 = NamedTensor::new("a", Matrix::<f32>::filled(2, 3, 1.5));
        let tbf = NamedTensor::new(
            "a",
            Bf16Matrix::from_matrix(&Matrix::<f32>::filled(2, 3, 1.5)),
        );
        assert_eq!(t64.payload.rows(), 2);
        assert_eq!(t64.payload.cols(), 3);
        assert_eq!(t64.payload.dtype_name(), "f64");
        assert_eq!(t32.payload.dtype_name(), "f32");
        assert_eq!(tbf.payload.dtype_name(), "bf16");
        // The 4× axis the artifact inherits: 8 → 4 → 2 bytes per element.
        assert_eq!(t64.payload.payload_bytes(), 48);
        assert_eq!(t32.payload.payload_bytes(), 24);
        assert_eq!(tbf.payload.payload_bytes(), 12);
    }

    #[test]
    fn bits_eq_is_bitwise_not_ieee() {
        let nan = NamedTensor::new("n", Matrix::<f64>::filled(1, 1, f64::NAN));
        let nan2 = NamedTensor::new("n", Matrix::<f64>::filled(1, 1, f64::NAN));
        assert!(nan.bits_eq(&nan2));
        let pos = NamedTensor::new("z", Matrix::<f64>::filled(1, 1, 0.0));
        let neg = NamedTensor::new("z", Matrix::<f64>::filled(1, 1, -0.0));
        assert!(!pos.bits_eq(&neg));
        // Dtype mismatch is never equal, even for equal values.
        let a32 = NamedTensor::new("a", Matrix::<f32>::filled(1, 1, 1.0));
        let a64 = NamedTensor::new("a", Matrix::<f64>::filled(1, 1, 1.0));
        assert!(!a32.bits_eq(&a64));
    }
}
