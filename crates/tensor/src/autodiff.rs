//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Var`] wraps a matrix value in a dynamically-built computation graph.
//! Calling [`Var::backward`] on a scalar output accumulates gradients into
//! every upstream variable created with `requires_grad = true`.
//!
//! The graph is generic over the [`Scalar`] precision with the same `f64`
//! default as [`Matrix`]; training in this workspace runs at `f64` (the
//! determinism-contract precision) while `Var<f32>` exists so the whole
//! operation set monomorphises for single precision too.
//!
//! The operation set is the minimum needed by the sequence models in this
//! workspace (BiSIM, BRITS, SSGAN): matrix products, element-wise arithmetic,
//! sigmoid/tanh/ReLU/exp activations, masking by constant matrices, column
//! softmax, row concatenation and scalar reductions.

// rm-lint: hot-path
// Every training step builds and walks this graph, so allocating matmuls are
// lint-visible here; the per-worker arena (ROADMAP) is the planned fix.

use std::cell::{Ref, RefCell};
// rm-lint: allow(no-unordered-iteration): visited-set membership only — topological order comes from the DFS stack below
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::{Matrix, Scalar};

static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

fn fresh_id() -> usize {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// The operation that produced a graph node.
#[derive(Clone)]
enum Op<T: Scalar> {
    /// Leaf node (input or parameter).
    Leaf,
    /// Element-wise sum of two same-shape matrices.
    Add,
    /// `A + b` where `b` is a column vector broadcast across the columns of `A`.
    AddBroadcastCol,
    /// Element-wise difference.
    Sub,
    /// Element-wise (Hadamard) product of two variables.
    Hadamard,
    /// Matrix product.
    MatMul,
    /// Multiplication by a compile-time constant scalar.
    ScaleConst(T),
    /// Addition of a constant scalar to every entry. The offset does not
    /// influence the gradient, so it is not stored.
    AddConst,
    /// Element-wise product with a constant matrix (e.g. a mask).
    HadamardConst(Matrix<T>),
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Element-wise exponential.
    Exp,
    /// Element-wise square.
    Square,
    /// Sum of all entries, producing a 1×1 matrix.
    Sum,
    /// Mean of all entries, producing a 1×1 matrix.
    Mean,
    /// Vertical concatenation of several matrices with the given row counts.
    ConcatRows(Vec<usize>),
    /// Softmax over a column vector.
    SoftmaxCol,
    /// Element-wise product with a broadcast 1×1 variable (second parent).
    MulScalarVar,
}

struct Node<T: Scalar> {
    id: usize,
    value: Matrix<T>,
    grad: Matrix<T>,
    parents: Vec<Var<T>>,
    op: Op<T>,
    requires_grad: bool,
}

/// A node in the autodiff graph holding a matrix value.
///
/// `Var` is a cheap reference-counted handle; cloning it shares the underlying
/// node.
#[derive(Clone)]
pub struct Var<T: Scalar = f64> {
    node: Rc<RefCell<Node<T>>>,
}

impl<T: Scalar> std::fmt::Debug for Var<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.node.borrow();
        write!(f, "Var(id={}, shape={:?})", n.id, n.value.shape())
    }
}

impl<T: Scalar> Var<T> {
    fn from_node(value: Matrix<T>, parents: Vec<Var<T>>, op: Op<T>) -> Var<T> {
        let requires_grad = parents.iter().any(|p| p.node.borrow().requires_grad);
        let (r, c) = value.shape();
        Var {
            node: Rc::new(RefCell::new(Node {
                id: fresh_id(),
                grad: Matrix::zeros(r, c),
                value,
                parents,
                op,
                requires_grad,
            })),
        }
    }

    /// Creates a constant (non-trainable) leaf.
    pub fn constant(value: Matrix<T>) -> Var<T> {
        Var::from_node(value, Vec::new(), Op::Leaf)
    }

    /// Creates a trainable parameter leaf that accumulates gradients.
    pub fn parameter(value: Matrix<T>) -> Var<T> {
        let v = Var::from_node(value, Vec::new(), Op::Leaf);
        v.node.borrow_mut().requires_grad = true;
        v
    }

    /// A 1×1 constant.
    pub fn scalar(value: T) -> Var<T> {
        Var::constant(Matrix::from_vec(1, 1, vec![value]))
    }

    /// Unique node id (useful in tests and debugging).
    pub fn id(&self) -> usize {
        self.node.borrow().id
    }

    /// Shape of the value.
    pub fn shape(&self) -> (usize, usize) {
        self.node.borrow().value.shape()
    }

    /// Clones the current value out of the graph.
    pub fn value(&self) -> Matrix<T> {
        self.node.borrow().value.clone()
    }

    /// Borrow of the current value without cloning.
    pub fn value_ref(&self) -> Ref<'_, Matrix<T>> {
        Ref::map(self.node.borrow(), |n| &n.value)
    }

    /// The value of a 1×1 variable as a scalar.
    ///
    /// # Panics
    /// Panics if the variable is not 1×1.
    pub fn scalar_value(&self) -> T {
        let n = self.node.borrow();
        assert_eq!(n.value.shape(), (1, 1), "scalar_value on non-scalar Var");
        n.value.get(0, 0)
    }

    /// Clones the accumulated gradient.
    pub fn grad(&self) -> Matrix<T> {
        self.node.borrow().grad.clone()
    }

    /// Whether this variable participates in gradient accumulation.
    pub fn requires_grad(&self) -> bool {
        self.node.borrow().requires_grad
    }

    /// Resets the accumulated gradient of this node to zero.
    pub fn zero_grad(&self) {
        let mut n = self.node.borrow_mut();
        let (r, c) = n.value.shape();
        n.grad = Matrix::zeros(r, c);
    }

    /// Adds `delta` into this node's gradient buffer.
    ///
    /// This is the leaf-side half of mini-batch gradient accumulation: an
    /// externally computed gradient (e.g. extracted from a worker's detached
    /// replica of the graph) is summed into the parameter exactly as
    /// [`Var::backward`] would have, so an optimizer step over the
    /// accumulated buffer is bitwise-indistinguishable from one computed on
    /// this graph directly.
    ///
    /// # Panics
    /// Panics if `delta`'s shape differs from the value's shape.
    pub fn add_grad(&self, delta: &Matrix<T>) {
        let mut n = self.node.borrow_mut();
        assert_eq!(n.value.shape(), delta.shape(), "add_grad shape mismatch");
        n.grad.axpy(T::ONE, delta);
    }

    /// Replaces the value of a leaf (used by optimizers).
    ///
    /// # Panics
    /// Panics if the new value has a different shape.
    pub fn set_value(&self, value: Matrix<T>) {
        let mut n = self.node.borrow_mut();
        assert_eq!(n.value.shape(), value.shape(), "set_value shape mismatch");
        n.value = value;
    }

    /// Applies an in-place update `f(value, grad)` to the stored value.
    pub fn update_value(&self, f: impl FnOnce(&mut Matrix<T>, &Matrix<T>)) {
        let mut n = self.node.borrow_mut();
        // Split borrows: grad is only read, value is mutated.
        let grad = n.grad.clone();
        f(&mut n.value, &grad);
    }

    // ------------------------------------------------------------------
    // Operations
    // ------------------------------------------------------------------

    /// Element-wise sum.
    pub fn add(&self, rhs: &Var<T>) -> Var<T> {
        let v = &*self.value_ref() + &*rhs.value_ref();
        Var::from_node(v, vec![self.clone(), rhs.clone()], Op::Add)
    }

    /// Adds a column vector `rhs` (shape `(rows, 1)`) to every column of `self`.
    pub fn add_broadcast_col(&self, rhs: &Var<T>) -> Var<T> {
        let out = self.value_ref().add_broadcast_col(&rhs.value_ref());
        Var::from_node(out, vec![self.clone(), rhs.clone()], Op::AddBroadcastCol)
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Var<T>) -> Var<T> {
        let v = &*self.value_ref() - &*rhs.value_ref();
        Var::from_node(v, vec![self.clone(), rhs.clone()], Op::Sub)
    }

    /// Element-wise product of two variables.
    pub fn hadamard(&self, rhs: &Var<T>) -> Var<T> {
        let v = self.value_ref().hadamard(&rhs.value_ref());
        Var::from_node(v, vec![self.clone(), rhs.clone()], Op::Hadamard)
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Var<T>) -> Var<T> {
        // rm-lint: allow(prefer-matmul-into): a graph node owns its freshly computed value by contract; arena reuse is the ROADMAP follow-up
        let v = self.value_ref().matmul(&rhs.value_ref());
        Var::from_node(v, vec![self.clone(), rhs.clone()], Op::MatMul)
    }

    /// Multiplies every entry by the constant `s`.
    pub fn scale(&self, s: T) -> Var<T> {
        let v = self.value_ref().scale(s);
        Var::from_node(v, vec![self.clone()], Op::ScaleConst(s))
    }

    /// Adds the constant `s` to every entry.
    pub fn add_const(&self, s: T) -> Var<T> {
        let v = self.value_ref().map(|x| x + s);
        Var::from_node(v, vec![self.clone()], Op::AddConst)
    }

    /// Element-wise product with a constant matrix (no gradient flows into the
    /// mask). This is the primitive behind masked losses and the
    /// sparsity-friendly attention of BiSIM.
    pub fn mask(&self, mask: &Matrix<T>) -> Var<T> {
        let v = self.value_ref().hadamard(mask);
        Var::from_node(v, vec![self.clone()], Op::HadamardConst(mask.clone()))
    }

    /// Logistic sigmoid applied element-wise (the shared
    /// [`Scalar::sigmoid`] definition).
    pub fn sigmoid(&self) -> Var<T> {
        let v = self.value_ref().map(Scalar::sigmoid);
        Var::from_node(v, vec![self.clone()], Op::Sigmoid)
    }

    /// Hyperbolic tangent applied element-wise.
    pub fn tanh(&self) -> Var<T> {
        let v = self.value_ref().map(Scalar::tanh);
        Var::from_node(v, vec![self.clone()], Op::Tanh)
    }

    /// ReLU applied element-wise (the shared [`Scalar::relu`] definition).
    pub fn relu(&self) -> Var<T> {
        let v = self.value_ref().map(Scalar::relu);
        Var::from_node(v, vec![self.clone()], Op::Relu)
    }

    /// Element-wise exponential.
    pub fn exp(&self) -> Var<T> {
        let v = self.value_ref().map(Scalar::exp);
        Var::from_node(v, vec![self.clone()], Op::Exp)
    }

    /// Element-wise square.
    pub fn square(&self) -> Var<T> {
        let v = self.value_ref().map(|x| x * x);
        Var::from_node(v, vec![self.clone()], Op::Square)
    }

    /// Sum of all entries as a 1×1 variable.
    pub fn sum(&self) -> Var<T> {
        let v = Matrix::from_vec(1, 1, vec![self.value_ref().sum()]);
        Var::from_node(v, vec![self.clone()], Op::Sum)
    }

    /// Mean of all entries as a 1×1 variable.
    pub fn mean(&self) -> Var<T> {
        let v = Matrix::from_vec(1, 1, vec![self.value_ref().mean()]);
        Var::from_node(v, vec![self.clone()], Op::Mean)
    }

    /// Vertically concatenates several variables (all with the same column
    /// count) into one.
    ///
    /// # Panics
    /// Panics on an empty input or mismatching column counts.
    pub fn concat_rows(vars: &[Var<T>]) -> Var<T> {
        assert!(!vars.is_empty(), "concat_rows needs at least one variable");
        let mut value = vars[0].value();
        let mut counts = vec![value.rows()];
        for v in &vars[1..] {
            let m = v.value();
            counts.push(m.rows());
            value = value.vstack(&m);
        }
        Var::from_node(value, vars.to_vec(), Op::ConcatRows(counts))
    }

    /// Softmax over a column vector (shape `(n, 1)`), numerically stabilised.
    ///
    /// # Panics
    /// Panics if the variable is not a column vector.
    pub fn softmax_col(&self) -> Var<T> {
        let v = self.value_ref();
        assert_eq!(v.cols(), 1, "softmax_col expects a column vector");
        let max = v.max().unwrap_or(T::ZERO);
        let exps: Vec<T> = v.data().iter().map(|&x| (x - max).exp()).collect();
        let total = exps.iter().fold(T::ZERO, |acc, &e| acc + e);
        let out = Matrix::from_vec(v.rows(), 1, exps.iter().map(|&e| e / total).collect());
        drop(v);
        Var::from_node(out, vec![self.clone()], Op::SoftmaxCol)
    }

    /// Multiplies every entry of `self` by the 1×1 variable `s` (broadcast).
    pub fn mul_scalar_var(&self, s: &Var<T>) -> Var<T> {
        assert_eq!(s.shape(), (1, 1), "mul_scalar_var expects a 1x1 scalar Var");
        let sv = s.scalar_value();
        let v = self.value_ref().scale(sv);
        Var::from_node(v, vec![self.clone(), s.clone()], Op::MulScalarVar)
    }

    // ------------------------------------------------------------------
    // Backward pass
    // ------------------------------------------------------------------

    /// Runs reverse-mode differentiation from this scalar output.
    ///
    /// Gradients are *accumulated* into every reachable node with
    /// `requires_grad = true`; call [`Var::zero_grad`] (or an optimizer's
    /// `zero_grad`) between steps.
    ///
    /// # Panics
    /// Panics if this variable is not 1×1.
    pub fn backward(&self) {
        assert_eq!(self.shape(), (1, 1), "backward() requires a scalar output");
        {
            let mut n = self.node.borrow_mut();
            n.grad = Matrix::ones(1, 1);
        }
        let order = self.topological_order();
        for var in order.iter().rev() {
            var.propagate();
        }
    }

    /// Returns the nodes reachable from `self` in topological order
    /// (parents before children).
    fn topological_order(&self) -> Vec<Var<T>> {
        // rm-lint: allow(no-unordered-iteration): membership test on node ids; iteration order never observed
        let mut visited = HashSet::new();
        let mut order = Vec::new();
        // Iterative DFS with an explicit stack to avoid recursion limits on
        // long unrolled sequences.
        enum Frame<T: Scalar> {
            Enter(Var<T>),
            Exit(Var<T>),
        }
        let mut stack = vec![Frame::Enter(self.clone())];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(v) => {
                    let id = v.id();
                    if !visited.insert(id) {
                        continue;
                    }
                    stack.push(Frame::Exit(v.clone()));
                    for p in v.node.borrow().parents.iter() {
                        stack.push(Frame::Enter(p.clone()));
                    }
                }
                Frame::Exit(v) => order.push(v),
            }
        }
        order
    }

    /// Propagates this node's gradient to its parents.
    fn propagate(&self) {
        let node = self.node.borrow();
        if node.parents.is_empty() {
            return;
        }
        let grad = node.grad.clone();
        let value = node.value.clone();
        let op = node.op.clone();
        let parents = node.parents.clone();
        drop(node);

        match op {
            Op::Leaf => {}
            Op::Add => {
                parents[0].accumulate(&grad);
                parents[1].accumulate(&grad);
            }
            Op::AddBroadcastCol => {
                parents[0].accumulate(&grad);
                // Gradient of the broadcast column vector: row sums.
                let summed = Matrix::from_fn(grad.rows(), 1, |r, _| {
                    grad.row(r).iter().fold(T::ZERO, |acc, &v| acc + v)
                });
                parents[1].accumulate(&summed);
            }
            Op::Sub => {
                parents[0].accumulate(&grad);
                parents[1].accumulate(&grad.scale(-T::ONE));
            }
            Op::Hadamard => {
                let a = parents[0].value();
                let b = parents[1].value();
                parents[0].accumulate(&grad.hadamard(&b));
                parents[1].accumulate(&grad.hadamard(&a));
            }
            Op::MatMul => {
                // dA = dC · Bᵀ goes through the blocked kernel (a one-off
                // transpose is cheaper than losing the vectorised inner
                // loop); dB = Aᵀ · dC uses the transposed kernel, which is
                // axpy-shaped like the blocked one and skips the transpose.
                let a = parents[0].value();
                let b = parents[1].value();
                // rm-lint: allow(prefer-matmul-into): dA is handed to accumulate, which consumes it; buffer reuse lands with the arena (ROADMAP)
                parents[0].accumulate(&grad.matmul(&b.transpose()));
                parents[1].accumulate(&a.matmul_at_b(&grad));
            }
            Op::ScaleConst(s) => parents[0].accumulate(&grad.scale(s)),
            Op::AddConst => parents[0].accumulate(&grad),
            Op::HadamardConst(mask) => parents[0].accumulate(&grad.hadamard(&mask)),
            Op::Sigmoid => {
                let d = value.map(|y| y * (T::ONE - y));
                parents[0].accumulate(&grad.hadamard(&d));
            }
            Op::Tanh => {
                let d = value.map(|y| T::ONE - y * y);
                parents[0].accumulate(&grad.hadamard(&d));
            }
            Op::Relu => {
                let x = parents[0].value();
                let d = x.map(|v| if v > T::ZERO { T::ONE } else { T::ZERO });
                parents[0].accumulate(&grad.hadamard(&d));
            }
            Op::Exp => parents[0].accumulate(&grad.hadamard(&value)),
            Op::Square => {
                let x = parents[0].value();
                parents[0].accumulate(&grad.hadamard(&x.scale(T::from_f64(2.0))));
            }
            Op::Sum => {
                let g = grad.get(0, 0);
                let (r, c) = parents[0].shape();
                parents[0].accumulate(&Matrix::filled(r, c, g));
            }
            Op::Mean => {
                let (r, c) = parents[0].shape();
                let g = grad.get(0, 0) / T::from_f64((r * c) as f64);
                parents[0].accumulate(&Matrix::filled(r, c, g));
            }
            Op::ConcatRows(counts) => {
                let mut start = 0;
                for (parent, count) in parents.iter().zip(counts.iter()) {
                    parent.accumulate(&grad.slice_rows(start, *count));
                    start += count;
                }
            }
            Op::SoftmaxCol => {
                // dX_i = y_i * (dY_i - sum_j dY_j y_j)
                let y = value;
                let dot = y
                    .data()
                    .iter()
                    .zip(grad.data().iter())
                    .fold(T::ZERO, |acc, (&yi, &gi)| acc + yi * gi);
                let dx = Matrix::from_fn(y.rows(), 1, |r, _| y.get(r, 0) * (grad.get(r, 0) - dot));
                parents[0].accumulate(&dx);
            }
            Op::MulScalarVar => {
                let a = parents[0].value();
                let s = parents[1].value().get(0, 0);
                parents[0].accumulate(&grad.scale(s));
                let ds = grad
                    .data()
                    .iter()
                    .zip(a.data().iter())
                    .fold(T::ZERO, |acc, (&g, &av)| acc + g * av);
                parents[1].accumulate(&Matrix::from_vec(1, 1, vec![ds]));
            }
        }
    }

    fn accumulate(&self, delta: &Matrix<T>) {
        let mut n = self.node.borrow_mut();
        if !n.requires_grad && n.parents.is_empty() {
            // Pure constants never need gradients; skip the work.
            return;
        }
        n.grad.axpy(T::ONE, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks `d loss / d param[idx]` against autodiff.
    fn numeric_grad(param: &Var, idx: (usize, usize), loss_fn: impl Fn() -> Var, eps: f64) -> f64 {
        let original = param.value();
        let mut plus = original.clone();
        plus[(idx.0, idx.1)] += eps;
        param.set_value(plus);
        let l_plus = loss_fn().scalar_value();

        let mut minus = original.clone();
        minus[(idx.0, idx.1)] -= eps;
        param.set_value(minus);
        let l_minus = loss_fn().scalar_value();

        param.set_value(original);
        (l_plus - l_minus) / (2.0 * eps)
    }

    #[test]
    fn add_and_sub_gradients() {
        let a = Var::parameter(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = Var::parameter(Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let loss = a.add(&b).sub(&b).hadamard(&a).sum();
        loss.backward();
        // loss = sum(a * a) -> d/da = 2a
        assert!(a
            .grad()
            .approx_eq(&Matrix::from_vec(2, 2, vec![2.0, 4.0, 6.0, 8.0]), 1e-9));
    }

    #[test]
    fn matmul_gradient_matches_numeric() {
        let w = Var::parameter(Matrix::from_vec(2, 3, vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]));
        let x = Var::constant(Matrix::from_vec(3, 1, vec![1.0, 2.0, -1.0]));
        // rm-lint: allow(prefer-matmul-into): test-only graph, not a hot loop
        let loss_fn = || w.matmul(&x).square().sum();
        let loss = loss_fn();
        loss.backward();
        let analytic = w.grad();
        for r in 0..2 {
            for c in 0..3 {
                let numeric = numeric_grad(&w, (r, c), loss_fn, 1e-6);
                assert!(
                    (analytic.get(r, c) - numeric).abs() < 1e-5,
                    "grad mismatch at ({r},{c}): {} vs {}",
                    analytic.get(r, c),
                    numeric
                );
            }
        }
    }

    #[test]
    fn sigmoid_tanh_relu_exp_gradients_match_numeric() {
        let x = Var::parameter(Matrix::from_vec(2, 2, vec![0.5, -1.0, 2.0, -0.3]));
        let loss_fn = || {
            let s = x.sigmoid();
            let t = x.tanh();
            let r = x.relu();
            let e = x.scale(0.1).exp();
            s.add(&t).add(&r).add(&e).sum()
        };
        let loss = loss_fn();
        loss.backward();
        let analytic = x.grad();
        for r in 0..2 {
            for c in 0..2 {
                let numeric = numeric_grad(&x, (r, c), loss_fn, 1e-6);
                assert!(
                    (analytic.get(r, c) - numeric).abs() < 1e-5,
                    "grad mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn softmax_gradient_matches_numeric() {
        let x = Var::parameter(Matrix::column(&[0.1, 0.7, -0.4, 0.2]));
        let weights = Matrix::column(&[1.0, -2.0, 0.5, 3.0]);
        let loss_fn = || x.softmax_col().mask(&weights).sum();
        let loss = loss_fn();
        loss.backward();
        let analytic = x.grad();
        for r in 0..4 {
            let numeric = numeric_grad(&x, (r, 0), loss_fn, 1e-6);
            assert!(
                (analytic.get(r, 0) - numeric).abs() < 1e-6,
                "softmax grad mismatch at {r}: {} vs {}",
                analytic.get(r, 0),
                numeric
            );
        }
    }

    #[test]
    fn softmax_output_sums_to_one() {
        let x = Var::constant(Matrix::column(&[10.0, 20.0, 30.0]));
        let y = x.softmax_col().value();
        assert!((y.sum() - 1.0).abs() < 1e-12);
        assert!(y.data().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn broadcast_add_gradient() {
        let w = Var::parameter(Matrix::from_vec(2, 3, vec![1.0; 6]));
        let b = Var::parameter(Matrix::column(&[0.5, -0.5]));
        let loss_fn = || w.add_broadcast_col(&b).square().sum();
        let loss = loss_fn();
        loss.backward();
        let analytic_b = b.grad();
        for r in 0..2 {
            let numeric = numeric_grad(&b, (r, 0), loss_fn, 1e-6);
            assert!((analytic_b.get(r, 0) - numeric).abs() < 1e-5);
        }
    }

    #[test]
    fn concat_rows_routes_gradients() {
        let a = Var::parameter(Matrix::column(&[1.0, 2.0]));
        let b = Var::parameter(Matrix::column(&[3.0]));
        let mask = Matrix::column(&[1.0, 0.0, 2.0]);
        let loss = Var::concat_rows(&[a.clone(), b.clone()]).mask(&mask).sum();
        loss.backward();
        assert!(a.grad().approx_eq(&Matrix::column(&[1.0, 0.0]), 1e-12));
        assert!(b.grad().approx_eq(&Matrix::column(&[2.0]), 1e-12));
    }

    #[test]
    fn mul_scalar_var_gradients() {
        let a = Var::parameter(Matrix::column(&[1.0, 2.0, 3.0]));
        let s = Var::parameter(Matrix::from_vec(1, 1, vec![0.5]));
        let loss_fn = || a.mul_scalar_var(&s).square().sum();
        let loss = loss_fn();
        loss.backward();
        let numeric_s = numeric_grad(&s, (0, 0), loss_fn, 1e-6);
        assert!((s.grad().get(0, 0) - numeric_s).abs() < 1e-5);
        let numeric_a0 = numeric_grad(&a, (0, 0), loss_fn, 1e-6);
        assert!((a.grad().get(0, 0) - numeric_a0).abs() < 1e-5);
    }

    #[test]
    fn mean_and_sum_gradients() {
        let x = Var::parameter(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let loss = x.mean();
        loss.backward();
        assert!(x.grad().approx_eq(&Matrix::filled(2, 2, 0.25), 1e-12));

        x.zero_grad();
        let loss = x.sum();
        loss.backward();
        assert!(x.grad().approx_eq(&Matrix::ones(2, 2), 1e-12));
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let x = Var::parameter(Matrix::from_vec(1, 1, vec![3.0]));
        let loss1 = x.square().sum();
        loss1.backward();
        let loss2 = x.square().sum();
        loss2.backward();
        // Each backward adds 2*x = 6.
        assert!((x.grad().get(0, 0) - 12.0).abs() < 1e-12);
        x.zero_grad();
        assert_eq!(x.grad().get(0, 0), 0.0);
    }

    #[test]
    fn constants_do_not_accumulate_grad() {
        let c = Var::constant(Matrix::from_vec(1, 1, vec![2.0]));
        let x = Var::parameter(Matrix::from_vec(1, 1, vec![3.0]));
        let loss = x.hadamard(&c).sum();
        loss.backward();
        assert_eq!(c.grad().get(0, 0), 0.0);
        assert!((x.grad().get(0, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shared_subexpression_gradients_add_up() {
        // loss = sum(x*x + x*x) = 2 * sum(x^2) -> grad = 4x
        let x = Var::parameter(Matrix::from_vec(1, 1, vec![1.5]));
        let sq = x.square();
        let loss = sq.add(&sq).sum();
        loss.backward();
        assert!((x.grad().get(0, 0) - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "backward() requires a scalar output")]
    fn backward_rejects_non_scalar() {
        let x = Var::parameter(Matrix::<f64>::ones(2, 2));
        x.backward();
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // A 2000-deep chain exercises the iterative topological sort.
        let x = Var::parameter(Matrix::from_vec(1, 1, vec![1.0]));
        let mut y = x.clone();
        for _ in 0..2000 {
            y = y.add_const(0.001);
        }
        let loss = y.sum();
        loss.backward();
        assert!((x.grad().get(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f32_graph_runs_end_to_end() {
        // The whole op set monomorphises for f32; a small forward/backward
        // sanity check keeps that instantiation exercised.
        let w: Var<f32> = Var::parameter(Matrix::from_vec(1, 2, vec![0.5f32, -0.25]));
        let x: Var<f32> = Var::constant(Matrix::column(&[1.0f32, 2.0]));
        // rm-lint: allow(prefer-matmul-into): test-only graph, not a hot loop
        let loss = w.matmul(&x).sigmoid().square().sum();
        loss.backward();
        assert!(loss.scalar_value().is_finite());
        assert!(w.grad().is_finite());
        assert!(w.grad().frobenius_norm() > 0.0);
    }
}
