//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Var`] wraps a matrix value in a dynamically-built computation graph.
//! Calling [`Var::backward`] on a scalar output accumulates gradients into
//! every upstream variable created with `requires_grad = true`.
//!
//! The graph is generic over the [`Scalar`] precision with the same `f64`
//! default as [`Matrix`]; training in this workspace runs at `f64` (the
//! determinism-contract precision) while `Var<f32>` exists so the whole
//! operation set monomorphises for single precision too.
//!
//! The operation set is the minimum needed by the sequence models in this
//! workspace (BiSIM, BRITS, SSGAN): matrix products, element-wise arithmetic,
//! sigmoid/tanh/ReLU/exp activations, masking by constant matrices, column
//! softmax, row concatenation and scalar reductions.
//!
//! Graph storage is arena-backed: nodes come out of a per-thread [`NodePool`]
//! and return to it through [`Var::recycle`], every matrix a node holds draws
//! its buffer from the per-thread pool in [`crate::workspace`], and
//! [`Var::backward`] parks its traversal scratch between calls. Reuse is
//! capacity-only — values are bitwise identical to the fresh-allocation
//! reference path that `RM_ARENA=0` restores.

// rm-lint: hot-path
// Every training step builds and walks this graph. Node storage, matrix
// buffers and traversal scratch are recycled through the per-worker arena
// (`crate::workspace` + the NodePool below); matmul outputs go through
// `matmul_into` into pooled buffers.

use std::cell::{Ref, RefCell};
// rm-lint: allow(no-unordered-iteration): visited-set membership only — topological order comes from the DFS stack below
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::{Matrix, Scalar};

static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

fn fresh_id() -> usize {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Nodes kept on a thread's free list; overflow drops to the allocator so a
/// one-off huge graph cannot pin memory forever.
const NODE_POOL_CAP: usize = 1 << 15;

/// An explicit DFS frame of the topological sort (module-scoped so the
/// backward pass can park its stack in the [`NodePool`] between calls).
enum Frame<T: Scalar> {
    Enter(Var<T>),
    Exit(Var<T>),
}

/// Per-thread recycled autodiff storage: freed graph nodes plus the backward
/// pass's traversal scratch, reached through the sealed
/// [`Scalar`](crate::Scalar) trait exactly like the matrix buffer pool in
/// [`crate::workspace`].
///
/// Internal plumbing of the arena layer — public only because the sealed
/// trait's dispatch method names the type; not part of the stable API.
#[doc(hidden)]
pub struct NodePool<T: Scalar> {
    /// Recycled nodes, ready for `from_node` to reinitialise.
    free: Vec<Rc<RefCell<Node<T>>>>,
    // Traversal scratch for `backward`, parked here so steady-state training
    // steps reuse it instead of reallocating.
    // rm-lint: allow(no-unordered-iteration): visited-set membership only; iteration order never observed
    visited: HashSet<usize>,
    order: Vec<Var<T>>,
    frames: Vec<Frame<T>>,
    /// Worklist scratch for `recycle_all`.
    recycle_stack: Vec<Var<T>>,
    /// Recycled `ConcatRows` row-count vectors.
    counts: Vec<Vec<usize>>,
}

impl<T: Scalar> Default for NodePool<T> {
    fn default() -> Self {
        Self {
            free: Vec::new(),
            // rm-lint: allow(no-unordered-iteration): same membership-only visited set as above
            visited: HashSet::new(),
            order: Vec::new(),
            frames: Vec::new(),
            recycle_stack: Vec::new(),
            counts: Vec::new(),
        }
    }
}

/// The operation that produced a graph node.
enum Op<T: Scalar> {
    /// Leaf node (input or parameter).
    Leaf,
    /// Element-wise sum of two same-shape matrices.
    Add,
    /// `A + b` where `b` is a column vector broadcast across the columns of `A`.
    AddBroadcastCol,
    /// Element-wise difference.
    Sub,
    /// Element-wise (Hadamard) product of two variables.
    Hadamard,
    /// Matrix product.
    MatMul,
    /// Multiplication by a compile-time constant scalar.
    ScaleConst(T),
    /// Addition of a constant scalar to every entry. The offset does not
    /// influence the gradient, so it is not stored.
    AddConst,
    /// Element-wise product with a constant matrix (e.g. a mask).
    HadamardConst(Matrix<T>),
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Element-wise exponential.
    Exp,
    /// Element-wise square.
    Square,
    /// Sum of all entries, producing a 1×1 matrix.
    Sum,
    /// Mean of all entries, producing a 1×1 matrix.
    Mean,
    /// Vertical concatenation of several matrices with the given row counts.
    ConcatRows(Vec<usize>),
    /// Softmax over a column vector.
    SoftmaxCol,
    /// Element-wise product with a broadcast 1×1 variable (second parent).
    MulScalarVar,
}

struct Node<T: Scalar> {
    id: usize,
    value: Matrix<T>,
    grad: Matrix<T>,
    parents: Vec<Var<T>>,
    op: Op<T>,
    requires_grad: bool,
}

/// A node in the autodiff graph holding a matrix value.
///
/// `Var` is a cheap reference-counted handle; cloning it shares the underlying
/// node.
#[derive(Clone)]
pub struct Var<T: Scalar = f64> {
    node: Rc<RefCell<Node<T>>>,
}

impl<T: Scalar> std::fmt::Debug for Var<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.node.borrow();
        write!(f, "Var(id={}, shape={:?})", n.id, n.value.shape())
    }
}

impl<T: Scalar> Var<T> {
    /// Builds a node over `value` with the given parents, reusing a recycled
    /// node from this thread's [`NodePool`] when the arena layer is active.
    /// Reuse is capacity-only: every field is reinitialised, so the graph is
    /// bitwise identical to the fresh-allocation path (`RM_ARENA=0`).
    fn from_node(value: Matrix<T>, parents: &[&Var<T>], op: Op<T>) -> Var<T> {
        Self::from_node_with(value, parents.iter().copied(), op)
    }

    /// [`Var::from_node`] over any re-iterable listing of parents, so callers
    /// holding owned slices (e.g. [`Var::concat_rows`]) need not collect a
    /// reference vector first.
    fn from_node_with<'a, I>(value: Matrix<T>, parents: I, op: Op<T>) -> Var<T>
    where
        T: 'a,
        I: Iterator<Item = &'a Var<T>> + Clone,
    {
        let requires_grad = parents.clone().any(|p| p.node.borrow().requires_grad);
        let (r, c) = value.shape();
        if crate::workspace::arena_enabled() {
            if let Some(node) = T::with_node_pool(|pool| pool.free.pop()) {
                {
                    let mut n = node.borrow_mut();
                    debug_assert!(n.parents.is_empty(), "recycled node still has parents");
                    n.id = fresh_id();
                    n.grad = Matrix::zeros(r, c);
                    n.value = value;
                    n.parents.extend(parents.cloned());
                    n.op = op;
                    n.requires_grad = requires_grad;
                }
                return Var { node };
            }
        }
        Var {
            node: Rc::new(RefCell::new(Node {
                id: fresh_id(),
                grad: Matrix::zeros(r, c),
                value,
                parents: parents.cloned().collect(),
                op,
                requires_grad,
            })),
        }
    }

    /// Creates a constant (non-trainable) leaf.
    pub fn constant(value: Matrix<T>) -> Var<T> {
        Var::from_node(value, &[], Op::Leaf)
    }

    /// Creates a trainable parameter leaf that accumulates gradients.
    pub fn parameter(value: Matrix<T>) -> Var<T> {
        let v = Var::from_node(value, &[], Op::Leaf);
        v.node.borrow_mut().requires_grad = true;
        v
    }

    /// A 1×1 constant.
    pub fn scalar(value: T) -> Var<T> {
        Var::constant(Matrix::filled(1, 1, value))
    }

    /// Unique node id (useful in tests and debugging).
    pub fn id(&self) -> usize {
        self.node.borrow().id
    }

    /// Shape of the value.
    pub fn shape(&self) -> (usize, usize) {
        self.node.borrow().value.shape()
    }

    /// Clones the current value out of the graph.
    pub fn value(&self) -> Matrix<T> {
        self.node.borrow().value.clone()
    }

    /// Borrow of the current value without cloning.
    pub fn value_ref(&self) -> Ref<'_, Matrix<T>> {
        Ref::map(self.node.borrow(), |n| &n.value)
    }

    /// The value of a 1×1 variable as a scalar.
    ///
    /// # Panics
    /// Panics if the variable is not 1×1.
    pub fn scalar_value(&self) -> T {
        let n = self.node.borrow();
        assert_eq!(n.value.shape(), (1, 1), "scalar_value on non-scalar Var");
        n.value.get(0, 0)
    }

    /// Clones the accumulated gradient.
    pub fn grad(&self) -> Matrix<T> {
        self.node.borrow().grad.clone()
    }

    /// Whether this variable participates in gradient accumulation.
    pub fn requires_grad(&self) -> bool {
        self.node.borrow().requires_grad
    }

    /// Resets the accumulated gradient of this node to zero.
    pub fn zero_grad(&self) {
        let mut n = self.node.borrow_mut();
        let (r, c) = n.value.shape();
        n.grad = Matrix::zeros(r, c);
    }

    /// Adds `delta` into this node's gradient buffer.
    ///
    /// This is the leaf-side half of mini-batch gradient accumulation: an
    /// externally computed gradient (e.g. extracted from a worker's detached
    /// replica of the graph) is summed into the parameter exactly as
    /// [`Var::backward`] would have, so an optimizer step over the
    /// accumulated buffer is bitwise-indistinguishable from one computed on
    /// this graph directly.
    ///
    /// # Panics
    /// Panics if `delta`'s shape differs from the value's shape.
    pub fn add_grad(&self, delta: &Matrix<T>) {
        let mut n = self.node.borrow_mut();
        assert_eq!(n.value.shape(), delta.shape(), "add_grad shape mismatch");
        n.grad.axpy(T::ONE, delta);
    }

    /// Replaces the value of a leaf (used by optimizers).
    ///
    /// # Panics
    /// Panics if the new value has a different shape.
    pub fn set_value(&self, value: Matrix<T>) {
        let mut n = self.node.borrow_mut();
        assert_eq!(n.value.shape(), value.shape(), "set_value shape mismatch");
        n.value = value;
    }

    /// Applies an in-place update `f(value, grad)` to the stored value.
    pub fn update_value(&self, f: impl FnOnce(&mut Matrix<T>, &Matrix<T>)) {
        let mut n = self.node.borrow_mut();
        // Split borrows: value and grad are disjoint fields of the node.
        let n = &mut *n;
        f(&mut n.value, &n.grad);
    }

    // ------------------------------------------------------------------
    // Operations
    // ------------------------------------------------------------------

    /// Element-wise sum.
    pub fn add(&self, rhs: &Var<T>) -> Var<T> {
        let v = &*self.value_ref() + &*rhs.value_ref();
        Var::from_node(v, &[self, rhs], Op::Add)
    }

    /// Adds a column vector `rhs` (shape `(rows, 1)`) to every column of `self`.
    pub fn add_broadcast_col(&self, rhs: &Var<T>) -> Var<T> {
        let out = self.value_ref().add_broadcast_col(&rhs.value_ref());
        Var::from_node(out, &[self, rhs], Op::AddBroadcastCol)
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Var<T>) -> Var<T> {
        let v = &*self.value_ref() - &*rhs.value_ref();
        Var::from_node(v, &[self, rhs], Op::Sub)
    }

    /// Element-wise product of two variables.
    pub fn hadamard(&self, rhs: &Var<T>) -> Var<T> {
        let v = self.value_ref().hadamard(&rhs.value_ref());
        Var::from_node(v, &[self, rhs], Op::Hadamard)
    }

    /// Matrix product `self · rhs`, computed through the blocked kernel into
    /// a pooled buffer (bitwise identical to [`Matrix::matmul`]).
    pub fn matmul(&self, rhs: &Var<T>) -> Var<T> {
        let mut v = Matrix::zeros(self.value_ref().rows(), rhs.value_ref().cols());
        self.value_ref().matmul_into(&rhs.value_ref(), &mut v);
        Var::from_node(v, &[self, rhs], Op::MatMul)
    }

    /// Multiplies every entry by the constant `s`.
    pub fn scale(&self, s: T) -> Var<T> {
        let v = self.value_ref().scale(s);
        Var::from_node(v, &[self], Op::ScaleConst(s))
    }

    /// Adds the constant `s` to every entry.
    pub fn add_const(&self, s: T) -> Var<T> {
        let v = self.value_ref().map(|x| x + s);
        Var::from_node(v, &[self], Op::AddConst)
    }

    /// Element-wise product with a constant matrix (no gradient flows into the
    /// mask). This is the primitive behind masked losses and the
    /// sparsity-friendly attention of BiSIM.
    pub fn mask(&self, mask: &Matrix<T>) -> Var<T> {
        let v = self.value_ref().hadamard(mask);
        Var::from_node(v, &[self], Op::HadamardConst(mask.clone()))
    }

    /// Logistic sigmoid applied element-wise (the shared
    /// [`Scalar::sigmoid`] definition).
    pub fn sigmoid(&self) -> Var<T> {
        let v = self.value_ref().map(Scalar::sigmoid);
        Var::from_node(v, &[self], Op::Sigmoid)
    }

    /// Hyperbolic tangent applied element-wise.
    pub fn tanh(&self) -> Var<T> {
        let v = self.value_ref().map(Scalar::tanh);
        Var::from_node(v, &[self], Op::Tanh)
    }

    /// ReLU applied element-wise (the shared [`Scalar::relu`] definition).
    pub fn relu(&self) -> Var<T> {
        let v = self.value_ref().map(Scalar::relu);
        Var::from_node(v, &[self], Op::Relu)
    }

    /// Element-wise exponential.
    pub fn exp(&self) -> Var<T> {
        let v = self.value_ref().map(Scalar::exp);
        Var::from_node(v, &[self], Op::Exp)
    }

    /// Element-wise square.
    pub fn square(&self) -> Var<T> {
        let v = self.value_ref().map(|x| x * x);
        Var::from_node(v, &[self], Op::Square)
    }

    /// Sum of all entries as a 1×1 variable.
    pub fn sum(&self) -> Var<T> {
        let v = Matrix::filled(1, 1, self.value_ref().sum());
        Var::from_node(v, &[self], Op::Sum)
    }

    /// Mean of all entries as a 1×1 variable.
    pub fn mean(&self) -> Var<T> {
        let v = Matrix::filled(1, 1, self.value_ref().mean());
        Var::from_node(v, &[self], Op::Mean)
    }

    /// Vertically concatenates several variables (all with the same column
    /// count) into one.
    ///
    /// # Panics
    /// Panics on an empty input or mismatching column counts.
    pub fn concat_rows(vars: &[Var<T>]) -> Var<T> {
        assert!(!vars.is_empty(), "concat_rows needs at least one variable");
        let mut value = vars[0].value();
        // The per-parent row counts live in the op for the backward split;
        // recycled nodes park their vector in the pool for reuse here.
        let mut counts = T::with_node_pool(|pool| pool.counts.pop()).unwrap_or_default();
        counts.reserve(vars.len());
        counts.push(value.rows());
        for v in &vars[1..] {
            let m = v.value();
            counts.push(m.rows());
            value = value.vstack(&m);
        }
        Var::from_node_with(value, vars.iter(), Op::ConcatRows(counts))
    }

    /// Softmax over a column vector (shape `(n, 1)`), numerically stabilised.
    ///
    /// # Panics
    /// Panics if the variable is not a column vector.
    pub fn softmax_col(&self) -> Var<T> {
        let v = self.value_ref();
        assert_eq!(v.cols(), 1, "softmax_col expects a column vector");
        let max = v.max().unwrap_or(T::ZERO);
        let exps = v.map(|x| (x - max).exp());
        drop(v);
        let total = exps.sum();
        let out = exps.map(|e| e / total);
        Var::from_node(out, &[self], Op::SoftmaxCol)
    }

    /// Multiplies every entry of `self` by the 1×1 variable `s` (broadcast).
    pub fn mul_scalar_var(&self, s: &Var<T>) -> Var<T> {
        assert_eq!(s.shape(), (1, 1), "mul_scalar_var expects a 1x1 scalar Var");
        let sv = s.scalar_value();
        let v = self.value_ref().scale(sv);
        Var::from_node(v, &[self, s], Op::MulScalarVar)
    }

    // ------------------------------------------------------------------
    // Backward pass
    // ------------------------------------------------------------------

    /// Runs reverse-mode differentiation from this scalar output.
    ///
    /// Gradients are *accumulated* into every reachable node with
    /// `requires_grad = true`; call [`Var::zero_grad`] (or an optimizer's
    /// `zero_grad`) between steps.
    ///
    /// # Panics
    /// Panics if this variable is not 1×1.
    pub fn backward(&self) {
        assert_eq!(self.shape(), (1, 1), "backward() requires a scalar output");
        {
            let mut n = self.node.borrow_mut();
            n.grad = Matrix::ones(1, 1);
        }
        // Park the traversal scratch in the thread's node pool between calls
        // so steady-state training steps reuse it instead of reallocating.
        let reuse_scratch = crate::workspace::arena_enabled();
        let (mut visited, mut order, mut frames) = if reuse_scratch {
            T::with_node_pool(|pool| {
                (
                    std::mem::take(&mut pool.visited),
                    std::mem::take(&mut pool.order),
                    std::mem::take(&mut pool.frames),
                )
            })
        } else {
            // rm-lint: allow(no-unordered-iteration): membership test on node ids; iteration order never observed
            (HashSet::new(), Vec::new(), Vec::new())
        };
        self.topological_order_into(&mut visited, &mut order, &mut frames);
        for var in order.iter().rev() {
            var.propagate();
        }
        if reuse_scratch {
            visited.clear();
            order.clear();
            frames.clear();
            T::with_node_pool(|pool| {
                pool.visited = visited;
                pool.order = order;
                pool.frames = frames;
            });
        }
    }

    /// Collects the nodes reachable from `self` in topological order
    /// (parents before children) into `order`, using caller-owned scratch.
    fn topological_order_into(
        &self,
        // rm-lint: allow(no-unordered-iteration): membership test on node ids; iteration order never observed
        visited: &mut HashSet<usize>,
        order: &mut Vec<Var<T>>,
        frames: &mut Vec<Frame<T>>,
    ) {
        debug_assert!(visited.is_empty() && order.is_empty() && frames.is_empty());
        // Iterative DFS with an explicit stack to avoid recursion limits on
        // long unrolled sequences.
        frames.push(Frame::Enter(self.clone()));
        while let Some(frame) = frames.pop() {
            match frame {
                Frame::Enter(v) => {
                    let id = v.id();
                    if !visited.insert(id) {
                        continue;
                    }
                    frames.push(Frame::Exit(v.clone()));
                    for p in v.node.borrow().parents.iter() {
                        frames.push(Frame::Enter(p.clone()));
                    }
                }
                Frame::Exit(v) => order.push(v),
            }
        }
    }

    /// Propagates this node's gradient to its parents.
    ///
    /// Holds a shared borrow of this node across the whole dispatch: a node
    /// is created strictly after its parents, so it can never be its own
    /// parent and the `borrow_mut` inside `accumulate` cannot alias it.
    /// Parent *values* are only borrowed in temporaries that end before the
    /// matching `accumulate`, because the same parent may appear twice
    /// (e.g. `x.hadamard(&x)`).
    fn propagate(&self) {
        let node = self.node.borrow();
        if node.parents.is_empty() {
            return;
        }
        let grad = &node.grad;
        let parents = &node.parents;
        match &node.op {
            Op::Leaf => {}
            Op::Add => {
                parents[0].accumulate(grad);
                parents[1].accumulate(grad);
            }
            Op::AddBroadcastCol => {
                parents[0].accumulate(grad);
                // Gradient of the broadcast column vector: row sums.
                let summed = Matrix::from_fn(grad.rows(), 1, |r, _| {
                    grad.row(r).iter().fold(T::ZERO, |acc, &v| acc + v)
                });
                parents[1].accumulate(&summed);
            }
            Op::Sub => {
                parents[0].accumulate(grad);
                parents[1].accumulate(&grad.scale(-T::ONE));
            }
            Op::Hadamard => {
                let da = grad.hadamard(&parents[1].value_ref());
                let db = grad.hadamard(&parents[0].value_ref());
                parents[0].accumulate(&da);
                parents[1].accumulate(&db);
            }
            Op::MatMul => {
                // dA = dC · Bᵀ goes through the blocked kernel into a pooled
                // buffer (a one-off transpose is cheaper than losing the
                // vectorised inner loop); dB = Aᵀ · dC uses the transposed
                // kernel, which is axpy-shaped like the blocked one and
                // skips the transpose.
                let da = {
                    let bt = parents[1].value_ref().transpose();
                    let mut da = Matrix::zeros(grad.rows(), bt.cols());
                    grad.matmul_into(&bt, &mut da);
                    da
                };
                let db = parents[0].value_ref().matmul_at_b(grad);
                parents[0].accumulate(&da);
                parents[1].accumulate(&db);
            }
            Op::ScaleConst(s) => parents[0].accumulate(&grad.scale(*s)),
            Op::AddConst => parents[0].accumulate(grad),
            Op::HadamardConst(mask) => parents[0].accumulate(&grad.hadamard(mask)),
            Op::Sigmoid => {
                let d = node.value.map(|y| y * (T::ONE - y));
                parents[0].accumulate(&grad.hadamard(&d));
            }
            Op::Tanh => {
                let d = node.value.map(|y| T::ONE - y * y);
                parents[0].accumulate(&grad.hadamard(&d));
            }
            Op::Relu => {
                let d = parents[0]
                    .value_ref()
                    .map(|v| if v > T::ZERO { T::ONE } else { T::ZERO });
                parents[0].accumulate(&grad.hadamard(&d));
            }
            Op::Exp => parents[0].accumulate(&grad.hadamard(&node.value)),
            Op::Square => {
                let scaled = parents[0].value_ref().scale(T::from_f64(2.0));
                parents[0].accumulate(&grad.hadamard(&scaled));
            }
            Op::Sum => {
                let g = grad.get(0, 0);
                let (r, c) = parents[0].shape();
                parents[0].accumulate(&Matrix::filled(r, c, g));
            }
            Op::Mean => {
                let (r, c) = parents[0].shape();
                let g = grad.get(0, 0) / T::from_f64((r * c) as f64);
                parents[0].accumulate(&Matrix::filled(r, c, g));
            }
            Op::ConcatRows(counts) => {
                let mut start = 0;
                for (parent, count) in parents.iter().zip(counts.iter()) {
                    parent.accumulate(&grad.slice_rows(start, *count));
                    start += count;
                }
            }
            Op::SoftmaxCol => {
                // dX_i = y_i * (dY_i - sum_j dY_j y_j)
                let y = &node.value;
                let dot = y
                    .data()
                    .iter()
                    .zip(grad.data().iter())
                    .fold(T::ZERO, |acc, (&yi, &gi)| acc + yi * gi);
                let dx = Matrix::from_fn(y.rows(), 1, |r, _| y.get(r, 0) * (grad.get(r, 0) - dot));
                parents[0].accumulate(&dx);
            }
            Op::MulScalarVar => {
                let s = parents[1].value_ref().get(0, 0);
                let ds = {
                    let a = parents[0].value_ref();
                    grad.data()
                        .iter()
                        .zip(a.data().iter())
                        .fold(T::ZERO, |acc, (&g, &av)| acc + g * av)
                };
                parents[0].accumulate(&grad.scale(s));
                parents[1].accumulate(&Matrix::filled(1, 1, ds));
            }
        }
    }

    fn accumulate(&self, delta: &Matrix<T>) {
        let mut n = self.node.borrow_mut();
        if !n.requires_grad && n.parents.is_empty() {
            // Pure constants never need gradients; skip the work.
            return;
        }
        n.grad.axpy(T::ONE, delta);
    }

    // ------------------------------------------------------------------
    // Node recycling
    // ------------------------------------------------------------------

    /// Returns this graph to the thread's node pool for reuse.
    ///
    /// Call this after a training step (or a discarded forward pass) once
    /// every gradient has been read out: the handle is consumed, every
    /// reachable node whose only owner was this graph is stripped and parked
    /// in the per-thread [`NodePool`], and its matrix buffers flow back to
    /// the buffer pool. Nodes still referenced elsewhere — model parameters,
    /// outputs the caller kept — are left untouched, so recycling is always
    /// safe. A no-op under `RM_ARENA=0`.
    pub fn recycle(self) {
        Var::recycle_all(std::iter::once(self));
    }

    /// [`Var::recycle`] over several roots at once (e.g. every output of an
    /// inference pass).
    pub fn recycle_all(roots: impl IntoIterator<Item = Var<T>>) {
        if !crate::workspace::arena_enabled() {
            return;
        }
        let mut stack = T::with_node_pool(|pool| std::mem::take(&mut pool.recycle_stack));
        stack.extend(roots);
        while let Some(var) = stack.pop() {
            let Var { node } = var;
            if Rc::strong_count(&node) != 1 {
                // Another handle (a parameter, a kept output) owns this node
                // too; dropping ours here leaves that graph intact. If the
                // other handle is itself pending on the stack, the node is
                // revisited — and then recycled — when it drains.
                continue;
            }
            let recovered_counts = {
                let mut n = node.borrow_mut();
                while let Some(parent) = n.parents.pop() {
                    stack.push(parent);
                }
                // Strip the node: matrix buffers return to the buffer pool
                // now; the parents Vec — and a ConcatRows op's row-count
                // vector, parked below — keep their capacity for the next
                // graph.
                n.value = Matrix::zeros(0, 0);
                n.grad = Matrix::zeros(0, 0);
                n.requires_grad = false;
                match std::mem::replace(&mut n.op, Op::Leaf) {
                    Op::ConcatRows(mut counts) => {
                        counts.clear();
                        Some(counts)
                    }
                    _ => None,
                }
            };
            T::with_node_pool(|pool| {
                if let Some(counts) = recovered_counts {
                    if pool.counts.len() < NODE_POOL_CAP {
                        pool.counts.push(counts);
                    }
                }
                if pool.free.len() < NODE_POOL_CAP {
                    pool.free.push(node);
                }
            });
        }
        T::with_node_pool(|pool| pool.recycle_stack = stack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks `d loss / d param[idx]` against autodiff.
    fn numeric_grad(param: &Var, idx: (usize, usize), loss_fn: impl Fn() -> Var, eps: f64) -> f64 {
        let original = param.value();
        let mut plus = original.clone();
        plus[(idx.0, idx.1)] += eps;
        param.set_value(plus);
        let l_plus = loss_fn().scalar_value();

        let mut minus = original.clone();
        minus[(idx.0, idx.1)] -= eps;
        param.set_value(minus);
        let l_minus = loss_fn().scalar_value();

        param.set_value(original);
        (l_plus - l_minus) / (2.0 * eps)
    }

    #[test]
    fn add_and_sub_gradients() {
        let a = Var::parameter(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = Var::parameter(Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let loss = a.add(&b).sub(&b).hadamard(&a).sum();
        loss.backward();
        // loss = sum(a * a) -> d/da = 2a
        assert!(a
            .grad()
            .approx_eq(&Matrix::from_vec(2, 2, vec![2.0, 4.0, 6.0, 8.0]), 1e-9));
    }

    #[test]
    fn matmul_gradient_matches_numeric() {
        let w = Var::parameter(Matrix::from_vec(2, 3, vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]));
        let x = Var::constant(Matrix::from_vec(3, 1, vec![1.0, 2.0, -1.0]));
        // rm-lint: allow(prefer-matmul-into): test-only graph, not a hot loop
        let loss_fn = || w.matmul(&x).square().sum();
        let loss = loss_fn();
        loss.backward();
        let analytic = w.grad();
        for r in 0..2 {
            for c in 0..3 {
                let numeric = numeric_grad(&w, (r, c), loss_fn, 1e-6);
                assert!(
                    (analytic.get(r, c) - numeric).abs() < 1e-5,
                    "grad mismatch at ({r},{c}): {} vs {}",
                    analytic.get(r, c),
                    numeric
                );
            }
        }
    }

    #[test]
    fn sigmoid_tanh_relu_exp_gradients_match_numeric() {
        let x = Var::parameter(Matrix::from_vec(2, 2, vec![0.5, -1.0, 2.0, -0.3]));
        let loss_fn = || {
            let s = x.sigmoid();
            let t = x.tanh();
            let r = x.relu();
            let e = x.scale(0.1).exp();
            s.add(&t).add(&r).add(&e).sum()
        };
        let loss = loss_fn();
        loss.backward();
        let analytic = x.grad();
        for r in 0..2 {
            for c in 0..2 {
                let numeric = numeric_grad(&x, (r, c), loss_fn, 1e-6);
                assert!(
                    (analytic.get(r, c) - numeric).abs() < 1e-5,
                    "grad mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn softmax_gradient_matches_numeric() {
        let x = Var::parameter(Matrix::column(&[0.1, 0.7, -0.4, 0.2]));
        let weights = Matrix::column(&[1.0, -2.0, 0.5, 3.0]);
        let loss_fn = || x.softmax_col().mask(&weights).sum();
        let loss = loss_fn();
        loss.backward();
        let analytic = x.grad();
        for r in 0..4 {
            let numeric = numeric_grad(&x, (r, 0), loss_fn, 1e-6);
            assert!(
                (analytic.get(r, 0) - numeric).abs() < 1e-6,
                "softmax grad mismatch at {r}: {} vs {}",
                analytic.get(r, 0),
                numeric
            );
        }
    }

    #[test]
    fn softmax_output_sums_to_one() {
        let x = Var::constant(Matrix::column(&[10.0, 20.0, 30.0]));
        let y = x.softmax_col().value();
        assert!((y.sum() - 1.0).abs() < 1e-12);
        assert!(y.data().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn broadcast_add_gradient() {
        let w = Var::parameter(Matrix::from_vec(2, 3, vec![1.0; 6]));
        let b = Var::parameter(Matrix::column(&[0.5, -0.5]));
        let loss_fn = || w.add_broadcast_col(&b).square().sum();
        let loss = loss_fn();
        loss.backward();
        let analytic_b = b.grad();
        for r in 0..2 {
            let numeric = numeric_grad(&b, (r, 0), loss_fn, 1e-6);
            assert!((analytic_b.get(r, 0) - numeric).abs() < 1e-5);
        }
    }

    #[test]
    fn concat_rows_routes_gradients() {
        let a = Var::parameter(Matrix::column(&[1.0, 2.0]));
        let b = Var::parameter(Matrix::column(&[3.0]));
        let mask = Matrix::column(&[1.0, 0.0, 2.0]);
        let loss = Var::concat_rows(&[a.clone(), b.clone()]).mask(&mask).sum();
        loss.backward();
        assert!(a.grad().approx_eq(&Matrix::column(&[1.0, 0.0]), 1e-12));
        assert!(b.grad().approx_eq(&Matrix::column(&[2.0]), 1e-12));
    }

    #[test]
    fn mul_scalar_var_gradients() {
        let a = Var::parameter(Matrix::column(&[1.0, 2.0, 3.0]));
        let s = Var::parameter(Matrix::from_vec(1, 1, vec![0.5]));
        let loss_fn = || a.mul_scalar_var(&s).square().sum();
        let loss = loss_fn();
        loss.backward();
        let numeric_s = numeric_grad(&s, (0, 0), loss_fn, 1e-6);
        assert!((s.grad().get(0, 0) - numeric_s).abs() < 1e-5);
        let numeric_a0 = numeric_grad(&a, (0, 0), loss_fn, 1e-6);
        assert!((a.grad().get(0, 0) - numeric_a0).abs() < 1e-5);
    }

    #[test]
    fn mean_and_sum_gradients() {
        let x = Var::parameter(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let loss = x.mean();
        loss.backward();
        assert!(x.grad().approx_eq(&Matrix::filled(2, 2, 0.25), 1e-12));

        x.zero_grad();
        let loss = x.sum();
        loss.backward();
        assert!(x.grad().approx_eq(&Matrix::ones(2, 2), 1e-12));
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let x = Var::parameter(Matrix::from_vec(1, 1, vec![3.0]));
        let loss1 = x.square().sum();
        loss1.backward();
        let loss2 = x.square().sum();
        loss2.backward();
        // Each backward adds 2*x = 6.
        assert!((x.grad().get(0, 0) - 12.0).abs() < 1e-12);
        x.zero_grad();
        assert_eq!(x.grad().get(0, 0), 0.0);
    }

    #[test]
    fn constants_do_not_accumulate_grad() {
        let c = Var::constant(Matrix::from_vec(1, 1, vec![2.0]));
        let x = Var::parameter(Matrix::from_vec(1, 1, vec![3.0]));
        let loss = x.hadamard(&c).sum();
        loss.backward();
        assert_eq!(c.grad().get(0, 0), 0.0);
        assert!((x.grad().get(0, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shared_subexpression_gradients_add_up() {
        // loss = sum(x*x + x*x) = 2 * sum(x^2) -> grad = 4x
        let x = Var::parameter(Matrix::from_vec(1, 1, vec![1.5]));
        let sq = x.square();
        let loss = sq.add(&sq).sum();
        loss.backward();
        assert!((x.grad().get(0, 0) - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "backward() requires a scalar output")]
    fn backward_rejects_non_scalar() {
        let x = Var::parameter(Matrix::<f64>::ones(2, 2));
        x.backward();
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // A 2000-deep chain exercises the iterative topological sort.
        let x = Var::parameter(Matrix::from_vec(1, 1, vec![1.0]));
        let mut y = x.clone();
        for _ in 0..2000 {
            y = y.add_const(0.001);
        }
        let loss = y.sum();
        loss.backward();
        assert!((x.grad().get(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recycled_graphs_rebuild_bitwise_identical() {
        let w = Var::parameter(Matrix::from_vec(2, 2, vec![0.3, -0.1, 0.7, 0.2]));
        let x = Var::constant(Matrix::column(&[1.0, -2.0]));
        let build = || {
            // rm-lint: allow(prefer-matmul-into): test-only graph, not a hot loop
            let loss = w.matmul(&x).tanh().square().sum();
            loss.backward();
            loss
        };
        let loss1 = build();
        let l1: f64 = loss1.scalar_value();
        let g1 = w.grad();
        loss1.recycle();
        w.zero_grad();
        // Rebuilding the same graph on recycled nodes must be bit-identical.
        let loss2 = build();
        assert_eq!(loss2.scalar_value().to_bits(), l1.to_bits());
        assert!(w.grad().bits_eq(&g1));
        loss2.recycle();
        // The parameter leaf survives both recycles untouched.
        assert_eq!(w.shape(), (2, 2));
        assert!(w.value().is_finite());
    }

    #[test]
    fn recycle_parks_exclusive_nodes_and_skips_shared_handles() {
        if !crate::workspace::arena_enabled() {
            return; // RM_ARENA=0: recycling is a no-op by design.
        }
        let p = Var::<f64>::parameter(Matrix::ones(2, 2));
        let kept = p.square();
        let loss = kept.sum();
        loss.backward();
        let kept_id = kept.id();
        let before = f64::with_node_pool(|pool| pool.free.len());
        loss.recycle();
        let after = f64::with_node_pool(|pool| pool.free.len());
        // Only the loss node was exclusively owned by the recycled handle;
        // `kept` (still held here) and the parameter stay intact.
        assert_eq!(after, before + 1);
        assert_eq!(kept.id(), kept_id);
        assert_eq!(kept.shape(), (2, 2));
        assert_eq!(p.grad().get(0, 0), 2.0);
        // The next node built on this thread draws from the pool.
        let next = p.sum();
        assert_eq!(f64::with_node_pool(|pool| pool.free.len()), after - 1);
        assert_eq!(next.shape(), (1, 1));
    }

    #[test]
    fn f32_graph_runs_end_to_end() {
        // The whole op set monomorphises for f32; a small forward/backward
        // sanity check keeps that instantiation exercised.
        let w: Var<f32> = Var::parameter(Matrix::from_vec(1, 2, vec![0.5f32, -0.25]));
        let x: Var<f32> = Var::constant(Matrix::column(&[1.0f32, 2.0]));
        // rm-lint: allow(prefer-matmul-into): test-only graph, not a hot loop
        let loss = w.matmul(&x).sigmoid().square().sum();
        loss.backward();
        assert!(loss.scalar_value().is_finite());
        assert!(w.grad().is_finite());
        assert!(w.grad().frobenius_norm() > 0.0);
    }
}
