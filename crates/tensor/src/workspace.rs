//! Per-thread buffer pools and caller-owned scratch workspaces: the arena
//! layer that lets the training and inference hot loops reuse allocation
//! capacity across iterations instead of round-tripping the global
//! allocator.
//!
//! Three pieces:
//!
//! * [`BufferPool`] — a size-classed free list of raw `Vec<T>` buffers, one
//!   per thread per precision (reached through the sealed
//!   [`Scalar`](crate::Scalar) trait, so each pool worker owns its arena and
//!   no synchronisation is ever needed). Every [`Matrix`](crate::Matrix)
//!   constructor checks buffers out of it and every dropped matrix returns
//!   its buffer to it.
//! * [`Workspace`] — a caller-owned free list of whole scratch matrices for
//!   the graph-free snapshot forward paths, so a sequence loop reuses its
//!   per-step activations explicitly.
//! * The `RM_ARENA` escape hatch — `RM_ARENA=0` (or `off`) disables all
//!   reuse and restores the fresh-allocation path, the bitwise-checked
//!   reference baseline (same pattern as `RM_POOL=0`).
//!
//! Reuse is **capacity-only**: a checked-out buffer is always fully
//! re-initialised before use, so values are bitwise identical whether they
//! land in a recycled buffer or a fresh one. The determinism suite and the
//! `RM_THREADS=1/2/N` contract are unaffected by construction.

use std::sync::OnceLock;

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Element budget per size class: class `c` keeps roughly
/// `PER_CLASS_ELEMENT_BUDGET >> c` buffers, so small classes can absorb an
/// entire training graph's worth of vectors (an unrolled recurrent step
/// returns hundreds of `hidden × 1` buffers at once when its graph is
/// recycled) while huge classes park only a handful. Overflow is returned to
/// the global allocator so a one-off fan-out cannot pin memory forever.
const PER_CLASS_ELEMENT_BUDGET: usize = 1 << 16;

/// Bounds on the per-class buffer count derived from the element budget.
const PER_CLASS_MIN: usize = 4;
const PER_CLASS_MAX: usize = 4096;

/// Number of power-of-two size classes (class `c` holds buffers of capacity
/// at least `1 << c`); 48 classes cover any buffer this workspace can hold.
const CLASS_COUNT: usize = 48;

static ARENA_ENABLED: OnceLock<bool> = OnceLock::new();

/// Whether the arena layer is active (default) or disabled via `RM_ARENA=0`
/// (or `off`), which restores the fresh-allocation reference path. Resolved
/// once per process, like `RM_THREADS` and `RM_POOL`.
#[allow(clippy::disallowed_methods)] // audited env read; see the rm-lint allow inside
pub fn arena_enabled() -> bool {
    *ARENA_ENABLED.get_or_init(|| {
        !matches!(
            // rm-lint: allow(no-raw-env-read): this IS the once-per-process cached accessor for RM_ARENA
            std::env::var("RM_ARENA").as_deref(),
            Ok("0") | Ok("off")
        )
    })
}

/// Reuse counters of a thread's [`BufferPool`] (see [`buffer_pool_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferPoolStats {
    /// Buffers checked out of this thread's pool.
    pub takes: u64,
    /// Checkouts served from the free lists (the rest hit the allocator).
    pub hits: u64,
}

/// This thread's buffer-pool reuse counters for element type `T` — test and
/// bench introspection, mirroring `rm_runtime::pool_stats`.
pub fn buffer_pool_stats<T: Scalar>() -> BufferPoolStats {
    T::with_buffer_pool(|pool| BufferPoolStats {
        takes: pool.takes,
        hits: pool.hits,
    })
}

/// A per-thread, size-classed free list of raw `Vec<T>` buffers.
///
/// Class `c` holds only buffers with `capacity >= 1 << c`; a checkout of
/// `len` elements pops from class `ceil(log2(len))`, so any pooled buffer it
/// finds is guaranteed large enough. Checked-out buffers are always empty
/// (`len == 0`) — the caller re-initialises every element, which is what
/// keeps reuse capacity-only and values bitwise identical.
pub struct BufferPool<T: Scalar> {
    classes: Vec<Vec<Vec<T>>>,
    takes: u64,
    hits: u64,
}

impl<T: Scalar> Default for BufferPool<T> {
    fn default() -> Self {
        let mut classes = Vec::with_capacity(CLASS_COUNT);
        classes.resize_with(CLASS_COUNT, Vec::new);
        Self {
            classes,
            takes: 0,
            hits: 0,
        }
    }
}

impl<T: Scalar> BufferPool<T> {
    /// Smallest class whose buffers can hold `len` elements (`len >= 1`).
    fn class_for_len(len: usize) -> usize {
        (usize::BITS - (len - 1).leading_zeros()) as usize
    }

    /// How many buffers class `class` may park (budget-scaled, clamped).
    fn class_cap(class: usize) -> usize {
        (PER_CLASS_ELEMENT_BUDGET >> class.min(usize::BITS as usize - 1))
            .clamp(PER_CLASS_MIN, PER_CLASS_MAX)
    }

    /// Checks out an empty buffer with capacity for at least `len` elements,
    /// reusing a pooled one when available.
    pub(crate) fn take(&mut self, len: usize) -> Vec<T> {
        if len == 0 {
            return Vec::new();
        }
        self.takes += 1;
        let class = Self::class_for_len(len);
        if let Some(buf) = self.classes.get_mut(class).and_then(Vec::pop) {
            self.hits += 1;
            debug_assert!(buf.is_empty() && buf.capacity() >= len);
            return buf;
        }
        // Round fresh allocations up to the class size so the buffer slots
        // cleanly back into the same class on return.
        Vec::with_capacity(1usize << class)
    }

    /// Returns a buffer to the pool (cleared; dropped if its class is full).
    pub(crate) fn give(&mut self, mut buf: Vec<T>) {
        let capacity = buf.capacity();
        if capacity == 0 {
            return;
        }
        buf.clear();
        // floor(log2(capacity)): the largest class the buffer satisfies.
        let class = (usize::BITS - 1 - capacity.leading_zeros()) as usize;
        if let Some(slot) = self.classes.get_mut(class) {
            if slot.len() < Self::class_cap(class) {
                slot.push(buf);
            }
        }
    }
}

/// Checks an empty buffer of capacity `>= len` out of this thread's pool, or
/// allocates fresh when the arena layer is disabled (`RM_ARENA=0`).
pub(crate) fn take_buffer<T: Scalar>(len: usize) -> Vec<T> {
    if arena_enabled() {
        T::with_buffer_pool(|pool| pool.take(len))
    } else {
        Vec::with_capacity(len)
    }
}

/// Returns a matrix's backing buffer to this thread's pool; a no-op when the
/// arena layer is disabled (the buffer just drops).
pub(crate) fn give_buffer<T: Scalar>(buf: Vec<T>) {
    if buf.capacity() != 0 && arena_enabled() {
        T::with_buffer_pool(|pool| pool.give(buf));
    }
}

/// A caller-owned free list of scratch matrices for the graph-free snapshot
/// forward paths (`LinearWeights`/`LstmCellWeights`/`MlpWeights` and the
/// BRITS/SSGAN/BiSIM inference loops).
///
/// [`Workspace::take`] hands out a zeroed matrix bitwise identical to
/// `Matrix::zeros(rows, cols)` — reuse is capacity-only. With `RM_ARENA=0`
/// the free list stays empty and every checkout allocates fresh, keeping the
/// reference baseline honest.
pub struct Workspace<T: Scalar = f64> {
    free: Vec<Matrix<T>>,
}

impl<T: Scalar> Workspace<T> {
    /// An empty workspace.
    pub fn new() -> Self {
        Self { free: Vec::new() }
    }

    /// Checks out a zeroed `rows × cols` matrix, reusing a returned matrix's
    /// capacity when one is available.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix<T> {
        match self.free.pop() {
            Some(mut m) => {
                m.reset_zeros(rows, cols);
                m
            }
            None => Matrix::zeros(rows, cols),
        }
    }

    /// Returns a scratch matrix for later reuse (dropped under `RM_ARENA=0`).
    pub fn give(&mut self, m: Matrix<T>) {
        if arena_enabled() {
            self.free.push(m);
        }
    }

    /// Number of matrices currently parked in the workspace.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// Whether the workspace currently holds no parked matrices.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }
}

impl<T: Scalar> Default for Workspace<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_pool_reuses_capacity() {
        let before = buffer_pool_stats::<f64>();
        // Drop a matrix, then build one of the same size: with arenas on the
        // second construction must be served from the pool.
        drop(Matrix::<f64>::zeros(13, 7));
        let m = Matrix::<f64>::zeros(13, 7);
        assert_eq!(m.shape(), (13, 7));
        let after = buffer_pool_stats::<f64>();
        if arena_enabled() {
            assert!(after.takes > before.takes);
            assert!(after.hits > before.hits, "drop → rebuild missed the pool");
        } else {
            assert_eq!(after, before, "RM_ARENA=0 must bypass the pool");
        }
    }

    #[test]
    fn pooled_buffers_are_reinitialised() {
        // Park garbage in the pool, then check out a "zeros" of a smaller
        // shape that will reuse the same class: every element must be zero.
        drop(Matrix::<f64>::filled(8, 8, f64::NAN));
        let z = Matrix::<f64>::zeros(7, 9);
        assert!(z.data().iter().all(|v| v.to_bits() == 0.0f64.to_bits()));
        assert!(z.bits_eq(&Matrix::from_vec(7, 9, vec![0.0; 63])));
    }

    #[test]
    fn workspace_checkout_is_bitwise_zeros() {
        let mut ws = Workspace::<f64>::new();
        let mut scratch = ws.take(4, 3);
        for v in scratch.data_mut() {
            *v = f64::NAN;
        }
        ws.give(scratch);
        let fresh = ws.take(4, 3);
        assert!(fresh.bits_eq(&Matrix::zeros(4, 3)));
        // Shape changes through the same slot stay exact.
        ws.give(fresh);
        let reshaped = ws.take(2, 5);
        assert!(reshaped.bits_eq(&Matrix::zeros(2, 5)));
    }

    #[test]
    fn workspace_len_tracks_parked_matrices() {
        let mut ws = Workspace::<f64>::new();
        assert!(ws.is_empty());
        ws.give(Matrix::zeros(2, 2));
        ws.give(Matrix::zeros(3, 3));
        if arena_enabled() {
            assert_eq!(ws.len(), 2);
        } else {
            assert!(ws.is_empty(), "RM_ARENA=0 must not park scratch matrices");
        }
        let _ = ws.take(5, 5);
    }

    #[test]
    fn size_classes_round_trip() {
        let mut pool = BufferPool::<f64>::default();
        let buf = pool.take(100);
        assert!(buf.capacity() >= 100);
        let ptr = buf.as_ptr();
        pool.give(buf);
        // Same class (65..=128) must reuse the identical allocation.
        let again = pool.take(65);
        assert_eq!(again.as_ptr(), ptr);
        assert_eq!(pool.takes, 2);
        assert_eq!(pool.hits, 1);
    }

    #[test]
    fn zero_length_takes_bypass_the_pool() {
        let mut pool = BufferPool::<f32>::default();
        let buf = pool.take(0);
        assert_eq!(buf.capacity(), 0);
        pool.give(buf);
        assert_eq!(pool.takes, 0);
        assert_eq!(pool.hits, 0);
    }
}
