//! `radiomap-core` — the public facade of the radio-map imputation framework.
//!
//! This crate ties together the building blocks of the reproduction of
//! *"Data Imputation for Sparse Radio Maps in Indoor Positioning"* (ICDE 2023):
//!
//! * venue simulation and walking surveys ([`venue_sim`]),
//! * the radio-map data model ([`radiomap`]),
//! * missing-RSSI differentiation ([`differentiator`]),
//! * data imputation — the baselines ([`imputers`]) and BiSIM ([`bisim`]),
//! * online positioning and metrics ([`positioning`]),
//!
//! and exposes an [`ImputationPipeline`] that runs the full
//! differentiate → impute → evaluate protocol of the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use radiomap_core::prelude::*;
//!
//! // Build a small synthetic venue and its sparse radio map.
//! let dataset = DatasetSpec::new(VenuePreset::KaideLike, 7).with_scale(0.05).build();
//! println!("{}", dataset.stats().to_table_row());
//!
//! // Impute it with the topology-aware differentiator and linear interpolation
//! // (swap in `ImputerKind::Bisim` for the full model; `epochs` then bounds
//! // its training time — `None` honours the `RM_EPOCHS`/`RM_QUICK` env vars).
//! let config = PipelineConfig {
//!     imputer: ImputerKind::LinearInterpolation,
//!     epochs: Some(5),
//!     ..PipelineConfig::default()
//! };
//! let pipeline = ImputationPipeline::new(config);
//! let result = pipeline.evaluate(&dataset.radio_map, &dataset.venue.walls);
//! assert!(result.ape_m.is_finite());
//! assert!(result.num_test_queries > 0);
//! ```

pub mod ingest;
pub mod pipeline;

pub use ingest::LiveVenue;
pub use pipeline::{
    default_shards, rp_imputation_error, rssi_imputation_mae, BuildOptions, DifferentiatorKind,
    EvaluationResult, ImputationPipeline, ImputerKind, PipelineConfig, ShardedVenueSnapshot,
    VenueSnapshot,
};
pub use rm_tensor::{Precision, SnapshotDtype};

// Re-export the component crates under stable names so downstream users can
// depend on `radiomap-core` alone.
pub use rm_bisim as bisim;
pub use rm_clustering as clustering;
pub use rm_differentiator as differentiator;
pub use rm_geometry as geometry;
pub use rm_imputers as imputers;
pub use rm_nn as nn;
pub use rm_positioning as positioning;
pub use rm_radiomap as radiomap;
pub use rm_tensor as tensor;
pub use rm_venue_sim as venue_sim;

/// A convenient prelude for examples, tests and the experiment harness.
pub mod prelude {
    pub use crate::ingest::LiveVenue;
    pub use crate::pipeline::{
        rp_imputation_error, rssi_imputation_mae, BuildOptions, DifferentiatorKind,
        EvaluationResult, ImputationPipeline, ImputerKind, PipelineConfig, ShardedVenueSnapshot,
        VenueSnapshot,
    };
    pub use rm_bisim::{AttentionMode, Bisim, BisimConfig, TimeLagMode};
    pub use rm_differentiator::{Differentiator, MarOnly, MnarOnly};
    pub use rm_geometry::{MultiPolygon, Point, Polygon};
    pub use rm_imputers::{ImputedRadioMap, Imputer};
    pub use rm_positioning::{EstimatorKind, LocationEstimator, TestQuery};
    pub use rm_radiomap::{
        remove_random_rps, remove_random_rssis, DenseRadioMap, EntryKind, Fingerprint, MaskMatrix,
        RadioMap, RadioMapRecord, RadioMapStats, VenueShards, WalkingSurveyTable,
    };
    pub use rm_tensor::{Precision, SnapshotDtype};
    pub use rm_venue_sim::{Dataset, DatasetSpec, PropagationModel, VenuePreset};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_entry_points() {
        let config = PipelineConfig::default();
        assert_eq!(config.imputer, ImputerKind::Bisim);
        assert_eq!(config.differentiator, DifferentiatorKind::TopoAc);
        assert_eq!(config.estimator, EstimatorKind::Wknn);
    }
}
