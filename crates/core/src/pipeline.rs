//! The end-to-end imputation pipeline and the evaluation protocol of
//! Section V-A.
//!
//! # Parallelism and determinism
//!
//! The pipeline fans independent work out over the deterministic
//! [`rm_runtime`] pool: grid evaluations run cell by cell through an ordered
//! `par_map` ([`ImputationPipeline::evaluate_grid`]), positioning queries are
//! evaluated in parallel, and the imputers parallelise their column/sequence
//! loops internally. [`PipelineConfig::threads`] controls the fan-out width
//! (`0` = auto: the `RM_THREADS` environment variable, else available
//! parallelism). Results are **bit-identical at any thread count** — see the
//! determinism contract in `rm_runtime`.

use std::sync::OnceLock;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rm_bisim::{AttentionMode, Bisim, BisimConfig, TimeLagMode};
use rm_differentiator::{
    ClusteringDifferentiator, DasaKm, Differentiator, ElbowKm, MarOnly, MnarOnly, TopoAc,
};
use rm_geometry::MultiPolygon;
use rm_geometry::Point;
use rm_imputers::{
    Brits, BritsConfig, CaseDeletion, ImputedRadioMap, Imputer, LinearInterpolation,
    MatrixFactorization, Mice, SemiSupervised, Ssgan, SsganConfig,
};
use rm_positioning::{evaluate_estimator_threads, EstimatorKind, TestQuery};
use rm_radiomap::{DenseRadioMap, MaskMatrix, RadioMap, RemovedRp, RemovedRssi, VenueShards};
use rm_tensor::{NamedTensor, Precision, SnapshotDtype};

/// Default shard count for the sharded pipeline mode: the `RM_SHARDS`
/// environment variable if set to a positive integer, else `1` (unsharded).
/// Resolved once per process and cached, so every stage agrees and
/// concurrent tests never observe a mid-run environment change.
#[allow(clippy::disallowed_methods)] // audited env read; see the rm-lint allow inside
pub fn default_shards() -> usize {
    static SHARDS: OnceLock<usize> = OnceLock::new();
    *SHARDS.get_or_init(|| {
        // rm-lint: allow(no-raw-env-read): this IS the once-per-process cached accessor for RM_SHARDS
        std::env::var("RM_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(1)
    })
}

/// Which missing-RSSI differentiator the pipeline uses (Section V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DifferentiatorKind {
    /// Topology-aware agglomerative clustering (the paper's best).
    TopoAc,
    /// Differentiation-accuracy-aware sampled K-means.
    DasaKm,
    /// K-means with the elbow method (baseline).
    ElbowKm,
    /// Treat every missing RSSI as MAR (no differentiation).
    MarOnly,
    /// Treat every missing RSSI as MNAR (no differentiation).
    MnarOnly,
}

impl DifferentiatorKind {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            DifferentiatorKind::TopoAc => "TopoAC",
            DifferentiatorKind::DasaKm => "DasaKM",
            DifferentiatorKind::ElbowKm => "ElbowKM",
            DifferentiatorKind::MarOnly => "MAR-only",
            DifferentiatorKind::MnarOnly => "MNAR-only",
        }
    }

    /// Builds the differentiator. `topology` is the venue's obstacle
    /// multipolygon (used by `TopoAC` only) and `eta` the fraction threshold.
    pub fn build(self, topology: &MultiPolygon, eta: f64, seed: u64) -> Box<dyn Differentiator> {
        match self {
            DifferentiatorKind::TopoAc => {
                Box::new(ClusteringDifferentiator::new(TopoAc::new(topology.clone())).with_eta(eta))
            }
            DifferentiatorKind::DasaKm => {
                Box::new(ClusteringDifferentiator::new(DasaKm::new(seed)).with_eta(eta))
            }
            DifferentiatorKind::ElbowKm => {
                Box::new(ClusteringDifferentiator::new(ElbowKm::new(seed)).with_eta(eta))
            }
            DifferentiatorKind::MarOnly => Box::new(MarOnly),
            DifferentiatorKind::MnarOnly => Box::new(MnarOnly),
        }
    }
}

/// Which data imputer the pipeline uses (Section V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImputerKind {
    /// The paper's BiSIM model.
    Bisim,
    /// Case deletion.
    CaseDeletion,
    /// Linear interpolation of RPs.
    LinearInterpolation,
    /// Semi-supervised RP inference.
    SemiSupervised,
    /// Multiple imputation by chained equations.
    Mice,
    /// Matrix factorization.
    MatrixFactorization,
    /// Bidirectional recurrent imputation (BRITS).
    Brits,
    /// GAN-based time-series imputation (SSGAN).
    Ssgan,
}

impl ImputerKind {
    /// All imputer kinds in the order of Table VI (BiSIM last).
    pub fn all() -> [ImputerKind; 8] {
        [
            ImputerKind::CaseDeletion,
            ImputerKind::LinearInterpolation,
            ImputerKind::SemiSupervised,
            ImputerKind::Mice,
            ImputerKind::MatrixFactorization,
            ImputerKind::Brits,
            ImputerKind::Ssgan,
            ImputerKind::Bisim,
        ]
    }

    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            ImputerKind::Bisim => "BiSIM",
            ImputerKind::CaseDeletion => "CD",
            ImputerKind::LinearInterpolation => "LI",
            ImputerKind::SemiSupervised => "SL",
            ImputerKind::Mice => "MICE",
            ImputerKind::MatrixFactorization => "MF",
            ImputerKind::Brits => "BRITS",
            ImputerKind::Ssgan => "SSGAN",
        }
    }

    /// Builds the imputer from a [`BuildOptions`] bundle — the successor of
    /// the eight-positional-parameter [`ImputerKind::build`].
    ///
    /// The BiSIM ablation settings are ignored by the other imputers.
    /// `epochs` overrides the training epoch count of the neural imputers;
    /// `None` keeps their default (which honours the `RM_EPOCHS`/`RM_QUICK`
    /// environment variables). `threads` is forwarded to the imputers with
    /// internal fan-outs (`0` = auto); results are bit-identical at any
    /// thread count. `batch_size` overrides the training mini-batch size of
    /// the recurrent imputers (BiSIM, BRITS, SSGAN); `None` keeps their
    /// default (the `RM_BATCH` environment variable, else 1 — the classic
    /// per-sequence SGD trajectory). Unlike `threads`, the batch size *does*
    /// change which model a fixed seed yields (fewer, summed-gradient
    /// steps), but any fixed value stays bit-identical across thread counts.
    /// `precision` selects the inference precision of the neural imputers:
    /// training always runs at `f64`, and [`Precision::F32`] rounds the
    /// trained weights once and runs inference through the f32 SIMD kernels.
    /// `snapshot_dtype` selects the resident storage format of those
    /// inference snapshots ([`SnapshotDtype::Bf16`] halves the bytes; only
    /// meaningful with [`Precision::F32`]). The deterministic (non-neural)
    /// imputers ignore both.
    pub fn build_with(self, options: &BuildOptions) -> Box<dyn Imputer> {
        let &BuildOptions {
            seed,
            attention,
            time_lag,
            epochs,
            threads,
            batch_size,
            precision,
            snapshot_dtype,
        } = options;
        match self {
            ImputerKind::Bisim => {
                let mut config = BisimConfig {
                    seed,
                    attention,
                    time_lag,
                    threads,
                    precision,
                    snapshot_dtype,
                    ..BisimConfig::default()
                };
                if let Some(epochs) = epochs {
                    config.epochs = epochs;
                }
                if let Some(batch_size) = batch_size {
                    config.batch_size = batch_size;
                }
                Box::new(Bisim::new(config))
            }
            ImputerKind::CaseDeletion => Box::new(CaseDeletion),
            ImputerKind::LinearInterpolation => Box::new(LinearInterpolation),
            ImputerKind::SemiSupervised => Box::new(SemiSupervised::default()),
            ImputerKind::Mice => Box::new(Mice::new(rm_imputers::MiceConfig {
                threads,
                ..Default::default()
            })),
            ImputerKind::MatrixFactorization => Box::new(MatrixFactorization::new(
                rm_imputers::MatrixFactorizationConfig {
                    threads,
                    ..Default::default()
                },
            )),
            ImputerKind::Brits => {
                let mut config = BritsConfig {
                    seed,
                    threads,
                    precision,
                    snapshot_dtype,
                    ..BritsConfig::default()
                };
                if let Some(epochs) = epochs {
                    config.epochs = epochs;
                }
                if let Some(batch_size) = batch_size {
                    config.batch_size = batch_size;
                }
                Box::new(Brits::new(config))
            }
            ImputerKind::Ssgan => {
                let mut config = SsganConfig {
                    seed,
                    threads,
                    precision,
                    snapshot_dtype,
                    ..SsganConfig::default()
                };
                if let Some(epochs) = epochs {
                    config.epochs = epochs;
                }
                if let Some(batch_size) = batch_size {
                    config.batch_size = batch_size;
                }
                Box::new(Ssgan::new(config))
            }
        }
    }

    /// Positional-parameter shim over [`ImputerKind::build_with`], kept one
    /// release for out-of-tree callers.
    #[deprecated(
        since = "0.1.0",
        note = "use `build_with(&BuildOptions { .. })` — the positional list grew a parameter per release"
    )]
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        self,
        seed: u64,
        attention: AttentionMode,
        time_lag: TimeLagMode,
        epochs: Option<usize>,
        threads: usize,
        batch_size: Option<usize>,
        precision: Precision,
        snapshot_dtype: SnapshotDtype,
    ) -> Box<dyn Imputer> {
        self.build_with(&BuildOptions {
            seed,
            attention,
            time_lag,
            epochs,
            threads,
            batch_size,
            precision,
            snapshot_dtype,
        })
    }
}

/// Options for [`ImputerKind::build_with`]: everything an imputer's
/// construction depends on, with the same defaults as [`PipelineConfig`].
/// See [`ImputerKind::build_with`] for the meaning of each field.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// RNG seed for model initialisation and training.
    pub seed: u64,
    /// BiSIM attention variant (ablations; ignored by other imputers).
    pub attention: AttentionMode,
    /// BiSIM time-lag variant (ablations; ignored by other imputers).
    pub time_lag: TimeLagMode,
    /// Training epochs of the neural imputers; `None` = built-in default.
    pub epochs: Option<usize>,
    /// Worker threads for internal fan-outs (`0` = auto).
    pub threads: usize,
    /// Training mini-batch size; `None` = built-in default.
    pub batch_size: Option<usize>,
    /// Inference precision of the neural imputers.
    pub precision: Precision,
    /// Resident storage dtype of trained inference snapshots.
    pub snapshot_dtype: SnapshotDtype,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            seed: 2023,
            attention: AttentionMode::SparsityFriendly,
            time_lag: TimeLagMode::Encoder,
            epochs: None,
            threads: 0,
            batch_size: None,
            precision: Precision::F64,
            snapshot_dtype: SnapshotDtype::Native,
        }
    }
}

/// Configuration of the end-to-end pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The missing-RSSI differentiator.
    pub differentiator: DifferentiatorKind,
    /// The data imputer.
    pub imputer: ImputerKind,
    /// Fraction threshold η of the differentiator (0.1 by default).
    pub eta: f64,
    /// The online location-estimation algorithm.
    pub estimator: EstimatorKind,
    /// Neighbour count `k` for the KNN-style estimators.
    pub knn_k: usize,
    /// Fraction of RP-observed records held out as online test queries (10 %
    /// in the paper).
    pub test_fraction: f64,
    /// BiSIM attention variant (ablations).
    pub attention: AttentionMode,
    /// BiSIM time-lag variant (ablations).
    pub time_lag: TimeLagMode,
    /// Training epochs of the neural imputers (BiSIM, BRITS, SSGAN). `None`
    /// uses their built-in default, which honours the `RM_EPOCHS` and
    /// `RM_QUICK` environment variables; tests should set an explicit value so
    /// they stay deterministic under the parallel test runner.
    pub epochs: Option<usize>,
    /// Worker threads for every fan-out along the pipeline (grid cells,
    /// imputer column/sequence loops, training batches, positioning
    /// queries). `0` means auto: the `RM_THREADS` environment variable if
    /// set, else the machine's available parallelism; `1` forces the serial
    /// fallback path. The pipeline output is bit-identical at any value —
    /// parallelism is purely a wall-clock knob.
    pub threads: usize,
    /// Training mini-batch size of the recurrent imputers (BiSIM, BRITS,
    /// SSGAN). `None` uses their built-in default, which honours the
    /// `RM_BATCH` environment variable (else 1). Batch boundaries are fixed
    /// by the batch size alone and the per-batch gradient reduction is
    /// ordered, so any fixed value is bit-identical across thread counts —
    /// but unlike `threads`, `batch_size > 1` *does* change which model a
    /// fixed seed yields (fewer, summed-gradient optimizer steps).
    pub batch_size: Option<usize>,
    /// Numeric precision of the neural imputers' inference pass (BiSIM,
    /// BRITS, SSGAN). The default [`Precision::F64`] keeps the pipeline
    /// bit-identical to the pre-precision-axis output; [`Precision::F32`]
    /// rounds the trained weights once and runs inference through the f32
    /// SIMD kernels — faster, and still bit-identical across thread counts,
    /// just rounded differently from f64. Unlike `threads`, this knob *does*
    /// change output values.
    pub precision: Precision,
    /// Resident storage format of the neural imputers' trained inference
    /// snapshots. The default [`SnapshotDtype::Native`] stores them at the
    /// inference precision; [`SnapshotDtype::Bf16`] truncates f32 snapshots
    /// to bfloat16 (half the resident bytes) and decodes per inference task —
    /// epsilon-bounded against the f32 path and still bit-identical across
    /// thread counts. Only meaningful with [`Precision::F32`].
    pub snapshot_dtype: SnapshotDtype,
    /// Spatial shard count for the sharded pipeline mode ([`VenueShards`]).
    /// `None` means auto: the `RM_SHARDS` environment variable if set, else
    /// `1` (unsharded). With an effective count above 1,
    /// [`ImputationPipeline::impute`] and
    /// [`ImputationPipeline::export_sharded_snapshot`] partition the venue's
    /// survey paths into spatial shards and stream differentiation and
    /// imputation shard-by-shard (peak memory bounded by the largest shard),
    /// with per-shard seeds from [`rm_runtime::derive_seed`]. A shard count
    /// of 1 reproduces the unsharded pipeline bitwise; any fixed count is
    /// bit-identical across thread counts. The held-out evaluation protocol
    /// ([`ImputationPipeline::evaluate`]) always runs unsharded — it mirrors
    /// the paper's whole-venue tables.
    pub shards: Option<usize>,
    /// RNG seed controlling the test split and model initialisation.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            differentiator: DifferentiatorKind::TopoAc,
            imputer: ImputerKind::Bisim,
            eta: 0.1,
            estimator: EstimatorKind::Wknn,
            knn_k: 3,
            test_fraction: 0.1,
            attention: AttentionMode::SparsityFriendly,
            time_lag: TimeLagMode::Encoder,
            epochs: None,
            threads: 0,
            batch_size: None,
            precision: Precision::F64,
            snapshot_dtype: SnapshotDtype::Native,
            shards: None,
            seed: 2023,
        }
    }
}

/// Everything a serving process needs to answer positioning queries for one
/// venue, produced by [`ImputationPipeline::export_snapshot`]: the imputed
/// dense radio map, the differentiator's mask, the estimator configuration,
/// and the trained imputer snapshot as named tensors at the dtype the
/// inference path keeps resident ([`SnapshotDtype::Bf16`] exports are ¼ the
/// payload bytes of f64 exports of the same weights). This is the in-memory
/// form of the `rm-serve` artifact; the on-disk codec lives in that crate so
/// the pipeline stays serialization-free.
#[derive(Debug, Clone)]
pub struct VenueSnapshot {
    /// Stable venue identifier (artifact registry key).
    pub venue: String,
    /// The imputed dense radio map the estimator is built over.
    pub map: DenseRadioMap,
    /// The differentiator's MAR/MNAR assignment for the source map.
    pub mask: MaskMatrix,
    /// The online location-estimation algorithm to build at load time.
    pub estimator: EstimatorKind,
    /// Neighbour count `k` for the KNN-style estimators.
    pub knn_k: usize,
    /// The seed the pipeline ran with (provenance; a rebuild with this seed
    /// reproduces the snapshot bitwise).
    pub seed: u64,
    /// Inference precision the tensors were exported at.
    pub precision: Precision,
    /// Resident storage dtype the tensors were exported at.
    pub snapshot_dtype: SnapshotDtype,
    /// The trained imputer snapshot, one named tensor per parameter (empty
    /// for imputers without a trained model).
    pub tensors: Vec<NamedTensor>,
}

/// A venue's serving artifact in per-shard form, produced by
/// [`ImputationPipeline::export_sharded_snapshot`]: one [`VenueSnapshot`]
/// per spatial shard plus the [`VenueShards`] partition that produced them
/// (shard centroids route queries; member lists map shard-local record
/// indices back to global collection order). Each shard snapshot is an
/// independently publishable unit — an incremental update republishes only
/// the dirty shards' snapshots.
#[derive(Debug, Clone)]
pub struct ShardedVenueSnapshot {
    /// Stable venue identifier (artifact registry key).
    pub venue: String,
    /// One snapshot per shard, in shard-id order.
    pub snapshots: Vec<VenueSnapshot>,
    /// The partition the shards were computed under.
    pub shards: VenueShards,
}

impl ShardedVenueSnapshot {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.snapshots.len()
    }
}

/// The result of one end-to-end evaluation run.
#[derive(Debug, Clone)]
pub struct EvaluationResult {
    /// Average positioning error on the held-out test queries, in metres.
    pub ape_m: f64,
    /// Wall-clock time spent in differentiation, in seconds.
    pub differentiation_seconds: f64,
    /// Wall-clock time spent in imputation, in seconds.
    pub imputation_seconds: f64,
    /// Number of test queries evaluated.
    pub num_test_queries: usize,
    /// Fraction of missing RSSIs classified as MAR by the differentiator.
    pub mar_fraction: Option<f64>,
}

/// The end-to-end imputation pipeline: differentiator → MNAR filling →
/// imputer → (optionally) positioning evaluation.
pub struct ImputationPipeline {
    /// Pipeline configuration.
    pub config: PipelineConfig,
}

impl ImputationPipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Self { config }
    }

    /// The imputer construction options this pipeline uses, at `seed` (the
    /// venue seed for unsharded runs, a per-shard derived seed in sharded
    /// mode).
    pub fn build_options(&self, seed: u64) -> BuildOptions {
        BuildOptions {
            seed,
            attention: self.config.attention,
            time_lag: self.config.time_lag,
            epochs: self.config.epochs,
            threads: self.config.threads,
            batch_size: self.config.batch_size,
            precision: self.config.precision,
            snapshot_dtype: self.config.snapshot_dtype,
        }
    }

    /// The effective shard count: the configured value, else `RM_SHARDS`,
    /// else 1.
    pub fn effective_shards(&self) -> usize {
        self.config.shards.unwrap_or_else(default_shards).max(1)
    }

    /// The seed a shard's differentiation and imputation run with. With one
    /// shard this is the venue seed itself — the sharded path reproduces the
    /// unsharded pipeline bitwise — otherwise a per-shard derived stream.
    fn shard_seed(&self, num_shards: usize, shard: usize) -> u64 {
        if num_shards <= 1 {
            self.config.seed
        } else {
            rm_runtime::derive_seed(self.config.seed, shard as u64)
        }
    }

    /// Computes the venue's shard partition at the effective shard count —
    /// a pure function of `(map, shards, seed)`.
    pub fn shard(&self, map: &RadioMap) -> VenueShards {
        let requested = self.effective_shards();
        if requested <= 1 {
            VenueShards::single(map)
        } else {
            VenueShards::compute(map, requested, self.config.seed)
        }
    }

    /// Differentiates `map` with `seed` (factored out so sharded runs can
    /// re-seed per shard).
    fn differentiate_with_seed(
        &self,
        map: &RadioMap,
        topology: &MultiPolygon,
        seed: u64,
    ) -> MaskMatrix {
        self.config
            .differentiator
            .build(topology, self.config.eta, seed)
            .differentiate(map)
    }

    /// Runs only the differentiation stage.
    pub fn differentiate(&self, map: &RadioMap, topology: &MultiPolygon) -> MaskMatrix {
        self.differentiate_with_seed(map, topology, self.config.seed)
    }

    /// Runs differentiation followed by imputation and returns the imputed map
    /// together with the mask.
    ///
    /// With an effective shard count above 1 (see [`PipelineConfig::shards`])
    /// the venue is partitioned by [`VenueShards`] and each shard is
    /// differentiated and imputed independently — fanned over the
    /// deterministic pool with a per-shard derived seed — then the per-shard
    /// results are merged back into global record order. Shard count 1
    /// reproduces the unsharded path bitwise, and any fixed shard count is
    /// bit-identical across thread counts.
    pub fn impute(&self, map: &RadioMap, topology: &MultiPolygon) -> (ImputedRadioMap, MaskMatrix) {
        let shards = self.shard(map);
        if shards.num_shards() <= 1 {
            let mask = self.differentiate(map, topology);
            let imputer = self
                .config
                .imputer
                .build_with(&self.build_options(self.config.seed));
            return (imputer.impute(map, &mask), mask);
        }
        let parts = shards.split(map);
        let shard_ids: Vec<usize> = (0..shards.num_shards()).collect();
        let results = rm_runtime::par_map(self.config.threads, &shard_ids, |_, &shard| {
            let part = &parts[shard];
            let seed = self.shard_seed(shards.num_shards(), shard);
            let mask = self.differentiate_with_seed(part, topology, seed);
            let imputer = self.config.imputer.build_with(&self.build_options(seed));
            (imputer.impute(part, &mask), mask)
        });
        let masks: Vec<MaskMatrix> = results.iter().map(|(_, m)| m.clone()).collect();
        let mask = shards.merge_masks(&masks, map.num_aps());
        let mut fingerprints: Vec<Vec<f64>> = vec![Vec::new(); map.len()];
        let mut locations: Vec<Option<Point>> = vec![None; map.len()];
        for (shard, (imputed, _)) in results.into_iter().enumerate() {
            for (local, &record) in shards.members_of(shard).iter().enumerate() {
                fingerprints[record] = imputed.fingerprints[local].clone();
                locations[record] = imputed.locations[local];
            }
        }
        (
            ImputedRadioMap {
                fingerprints,
                locations,
            },
            mask,
        )
    }

    /// Differentiates and imputes one shard's sub-map with an explicit seed
    /// and packages it as that shard's [`VenueSnapshot`] — the unit the
    /// incremental ingest path recomputes and the per-shard registry swaps.
    pub(crate) fn compute_shard(
        &self,
        venue: &str,
        part: &RadioMap,
        topology: &MultiPolygon,
        seed: u64,
    ) -> VenueSnapshot {
        let mask = self.differentiate_with_seed(part, topology, seed);
        let imputer = self.config.imputer.build_with(&self.build_options(seed));
        let (imputed, tensors) = imputer.impute_with_snapshot(part, &mask);
        VenueSnapshot {
            venue: venue.to_string(),
            map: imputed.to_dense(part.num_aps()),
            mask,
            estimator: self.config.estimator,
            knn_k: self.config.knn_k,
            seed,
            precision: self.config.precision,
            snapshot_dtype: self.config.snapshot_dtype,
            tensors,
        }
    }

    /// Runs differentiation + imputation and packages the result as a
    /// [`VenueSnapshot`] — the in-memory serving artifact for `venue`.
    ///
    /// Unlike [`ImputationPipeline::evaluate`], no test split is held out:
    /// a serving model is built from the *whole* survey, and every imputed
    /// record with a location enters the radio map. The trained imputer
    /// weights ride along as named tensors (via
    /// [`Imputer::impute_with_snapshot`](rm_imputers::Imputer::impute_with_snapshot)),
    /// exported at exactly the bits the inference path keeps resident, so
    /// persisting and reloading the snapshot reproduces the serving model
    /// bit for bit.
    pub fn export_snapshot(
        &self,
        venue: impl Into<String>,
        map: &RadioMap,
        topology: &MultiPolygon,
    ) -> VenueSnapshot {
        self.compute_shard(&venue.into(), map, topology, self.config.seed)
    }

    /// Runs the sharded pipeline end to end and packages the result as a
    /// [`ShardedVenueSnapshot`]: the venue is partitioned by
    /// [`VenueShards`], every shard is differentiated and imputed
    /// independently (per-shard derived seed, fanned over the deterministic
    /// pool), and each shard becomes its own [`VenueSnapshot`] — the publish
    /// unit of per-shard serving. With an effective shard count of 1 the
    /// single shard snapshot is bitwise the [`ImputationPipeline::export_snapshot`]
    /// output.
    pub fn export_sharded_snapshot(
        &self,
        venue: impl Into<String>,
        map: &RadioMap,
        topology: &MultiPolygon,
    ) -> ShardedVenueSnapshot {
        let venue = venue.into();
        let shards = self.shard(map);
        let parts = shards.split(map);
        let shard_ids: Vec<usize> = (0..shards.num_shards()).collect();
        let snapshots = rm_runtime::par_map(self.config.threads, &shard_ids, |_, &shard| {
            self.compute_shard(
                &venue,
                &parts[shard],
                topology,
                self.shard_seed(shards.num_shards(), shard),
            )
        });
        ShardedVenueSnapshot {
            venue,
            snapshots,
            shards,
        }
    }

    /// Runs the full evaluation protocol of Section V-A:
    ///
    /// 1. 10 % of the records with observed RPs are selected as test queries
    ///    and their RPs are hidden from the pipeline;
    /// 2. the whole map (test records included) is differentiated and imputed;
    /// 3. the non-test imputed records form the radio map used by the location
    ///    estimator, which is evaluated on the imputed test fingerprints
    ///    against the held-out ground-truth RPs.
    pub fn evaluate(&self, map: &RadioMap, topology: &MultiPolygon) -> EvaluationResult {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let (_, test_indices) =
            rm_radiomap::split_test_records(map, self.config.test_fraction, &mut rng);
        let ground_truth: Vec<(usize, rm_geometry::Point)> = test_indices
            .iter()
            .map(|&i| (i, map.record(i).rp.expect("test records have RPs")))
            .collect();

        // Hide the test RPs from the pipeline.
        let mut working = map.clone();
        for &(i, _) in &ground_truth {
            working.records_mut()[i].rp = None;
        }

        #[allow(clippy::disallowed_methods)]
        // rm-lint: allow(no-wallclock-in-deterministic-path): stage-timing telemetry — reported, never branched on
        let diff_start = Instant::now();
        let mask = self.differentiate(&working, topology);
        let differentiation_seconds = diff_start.elapsed().as_secs_f64();
        let mar_fraction = mask.mar_fraction();

        let imputer = self
            .config
            .imputer
            .build_with(&self.build_options(self.config.seed));
        #[allow(clippy::disallowed_methods)]
        // rm-lint: allow(no-wallclock-in-deterministic-path): stage-timing telemetry — reported, never branched on
        let imp_start = Instant::now();
        let imputed = imputer.impute(&working, &mask);
        let imputation_seconds = imp_start.elapsed().as_secs_f64();

        // Radio map for estimation: all imputed records except the test ones.
        // Sorted-slice membership instead of a hash set: same O(log n)
        // contains, no unordered structure in the deterministic path.
        let mut test_set: Vec<usize> = test_indices.to_vec();
        test_set.sort_unstable();
        let mut fingerprints = Vec::new();
        let mut locations = Vec::new();
        for i in 0..imputed.len() {
            if test_set.binary_search(&i).is_ok() {
                continue;
            }
            if let Some(loc) = imputed.locations[i] {
                fingerprints.push(imputed.fingerprints[i].clone());
                locations.push(loc);
            }
        }
        let dense = rm_radiomap::DenseRadioMap::new(fingerprints, locations, map.num_aps());
        let estimator =
            self.config
                .estimator
                .build_threads(dense, self.config.knn_k, self.config.threads);

        // Test queries use the imputed fingerprints (online fingerprints are
        // also imputed, cf. the footnote in Section V-A).
        let queries: Vec<TestQuery> = ground_truth
            .iter()
            .map(|&(i, location)| TestQuery {
                fingerprint: imputed.fingerprints[i].clone(),
                location,
            })
            .collect();
        let ape_m = evaluate_estimator_threads(estimator.as_ref(), &queries, self.config.threads)
            .unwrap_or(f64::NAN);

        EvaluationResult {
            ape_m,
            differentiation_seconds,
            imputation_seconds,
            num_test_queries: queries.len(),
            mar_fraction,
        }
    }

    /// Runs the full evaluation protocol for every `(differentiator,
    /// imputer)` cell of a grid, fanning the cells out over the deterministic
    /// thread pool ([`PipelineConfig::threads`] wide; the per-cell inner
    /// fan-outs degrade to serial inside workers, so the machine is not
    /// oversubscribed).
    ///
    /// Every cell reuses this pipeline's configuration (seed, η, estimator,
    /// epochs, ablations) with only the differentiator and imputer replaced —
    /// exactly the protocol of Table VI, where all cells share one test
    /// split. Results are returned in cell order and are bit-identical to
    /// evaluating each cell serially.
    pub fn evaluate_grid(
        &self,
        map: &RadioMap,
        topology: &MultiPolygon,
        cells: &[(DifferentiatorKind, ImputerKind)],
    ) -> Vec<EvaluationResult> {
        rm_runtime::par_map(
            self.config.threads,
            cells,
            |_, &(differentiator, imputer)| {
                let config = PipelineConfig {
                    differentiator,
                    imputer,
                    ..self.config.clone()
                };
                ImputationPipeline::new(config).evaluate(map, topology)
            },
        )
    }
}

/// Computes the RSSI imputation MAE against ground truth removed by
/// [`rm_radiomap::remove_random_rssis`] (the Fig. 14 metric).
pub fn rssi_imputation_mae(imputed: &ImputedRadioMap, removed: &[RemovedRssi]) -> Option<f64> {
    if removed.is_empty() {
        return None;
    }
    let total: f64 = removed
        .iter()
        .map(|r| (imputed.rssi(r.record, r.ap) - r.value).abs())
        .sum();
    Some(total / removed.len() as f64)
}

/// Computes the RP imputation error (mean Euclidean distance) against ground
/// truth removed by [`rm_radiomap::remove_random_rps`] (the Fig. 15 metric).
/// Records the imputer could not locate are skipped; returns `None` if none
/// could be evaluated.
pub fn rp_imputation_error(imputed: &ImputedRadioMap, removed: &[RemovedRp]) -> Option<f64> {
    let mut total = 0.0;
    let mut count = 0usize;
    for r in removed {
        if let Some(p) = imputed.locations[r.record] {
            total += p.distance(r.location);
            count += 1;
        }
    }
    if count == 0 {
        None
    } else {
        Some(total / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_venue_sim::{DatasetSpec, VenuePreset};

    fn small_dataset() -> rm_venue_sim::Dataset {
        DatasetSpec::new(VenuePreset::KaideLike, 3)
            .with_scale(0.05)
            .build()
    }

    #[test]
    fn kinds_expose_names_and_builders() {
        assert_eq!(ImputerKind::all().len(), 8);
        assert_eq!(DifferentiatorKind::TopoAc.name(), "TopoAC");
        assert_eq!(ImputerKind::Bisim.name(), "BiSIM");
        let topology = MultiPolygon::empty();
        for kind in [
            DifferentiatorKind::MarOnly,
            DifferentiatorKind::MnarOnly,
            DifferentiatorKind::TopoAc,
        ] {
            let d = kind.build(&topology, 0.1, 1);
            assert_eq!(d.name(), kind.name());
        }
    }

    #[test]
    fn pipeline_with_fast_imputer_produces_reasonable_ape() {
        let dataset = small_dataset();
        let config = PipelineConfig {
            imputer: ImputerKind::LinearInterpolation,
            differentiator: DifferentiatorKind::MnarOnly,
            ..PipelineConfig::default()
        };
        let result =
            ImputationPipeline::new(config).evaluate(&dataset.radio_map, &dataset.venue.walls);
        assert!(result.num_test_queries > 0);
        assert!(result.ape_m.is_finite());
        // The venue is ~64 x 50 m; any sane pipeline stays well below the diagonal.
        assert!(result.ape_m < 60.0, "APE {} too large", result.ape_m);
        assert!(result.imputation_seconds >= 0.0);
    }

    #[test]
    fn evaluate_grid_matches_per_cell_evaluation() {
        let dataset = small_dataset();
        let config = PipelineConfig {
            epochs: Some(2),
            ..PipelineConfig::default()
        };
        let pipeline = ImputationPipeline::new(config.clone());
        let cells = [
            (
                DifferentiatorKind::MnarOnly,
                ImputerKind::LinearInterpolation,
            ),
            (DifferentiatorKind::MarOnly, ImputerKind::CaseDeletion),
            (DifferentiatorKind::TopoAc, ImputerKind::Mice),
        ];
        let grid = pipeline.evaluate_grid(&dataset.radio_map, &dataset.venue.walls, &cells);
        assert_eq!(grid.len(), cells.len());
        for (&(differentiator, imputer), result) in cells.iter().zip(grid.iter()) {
            let single = ImputationPipeline::new(PipelineConfig {
                differentiator,
                imputer,
                ..config.clone()
            })
            .evaluate(&dataset.radio_map, &dataset.venue.walls);
            assert_eq!(result.ape_m.to_bits(), single.ape_m.to_bits());
            assert_eq!(result.num_test_queries, single.num_test_queries);
        }
    }

    #[test]
    fn f32_precision_pipeline_evaluates_and_stays_close_to_f64() {
        let dataset = small_dataset();
        let base = PipelineConfig {
            imputer: ImputerKind::Brits,
            differentiator: DifferentiatorKind::MarOnly,
            epochs: Some(2),
            ..PipelineConfig::default()
        };
        let f64_result = ImputationPipeline::new(base.clone())
            .evaluate(&dataset.radio_map, &dataset.venue.walls);
        let f32_result = ImputationPipeline::new(PipelineConfig {
            precision: Precision::F32,
            ..base
        })
        .evaluate(&dataset.radio_map, &dataset.venue.walls);
        assert!(f32_result.ape_m.is_finite());
        assert_eq!(f64_result.num_test_queries, f32_result.num_test_queries);
        // Same trained weights, inference merely rounded: the end-to-end APE
        // must not drift by more than a few centimetres.
        assert!(
            (f64_result.ape_m - f32_result.ape_m).abs() < 0.05,
            "f32 APE {} drifted from f64 APE {}",
            f32_result.ape_m,
            f64_result.ape_m
        );
    }

    #[test]
    fn impute_returns_mask_and_dense_map() {
        let dataset = small_dataset();
        let config = PipelineConfig {
            imputer: ImputerKind::CaseDeletion,
            differentiator: DifferentiatorKind::TopoAc,
            ..PipelineConfig::default()
        };
        let (imputed, mask) =
            ImputationPipeline::new(config).impute(&dataset.radio_map, &dataset.venue.walls);
        assert_eq!(imputed.len(), dataset.radio_map.len());
        assert_eq!(mask.rows(), dataset.radio_map.len());
    }

    #[test]
    fn imputation_error_helpers() {
        let imputed = ImputedRadioMap {
            fingerprints: vec![vec![-70.0, -80.0], vec![-60.0, -90.0]],
            locations: vec![Some(rm_geometry::Point::new(0.0, 0.0)), None],
        };
        let removed_rssis = vec![RemovedRssi {
            record: 0,
            ap: 1,
            value: -76.0,
        }];
        assert_eq!(rssi_imputation_mae(&imputed, &removed_rssis), Some(4.0));
        assert_eq!(rssi_imputation_mae(&imputed, &[]), None);

        let removed_rps = vec![
            RemovedRp {
                record: 0,
                location: rm_geometry::Point::new(3.0, 4.0),
            },
            RemovedRp {
                record: 1,
                location: rm_geometry::Point::new(1.0, 1.0),
            },
        ];
        // Record 1 has no imputed location and is skipped.
        assert_eq!(rp_imputation_error(&imputed, &removed_rps), Some(5.0));
    }
}
