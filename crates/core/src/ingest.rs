//! The live-venue ingest path: incremental re-imputation of a sharded venue.
//!
//! A [`LiveVenue`] is the operational form of the sharded pipeline: it holds
//! the venue's survey map, its fixed [`VenueShards`] partition, and one
//! [`VenueSnapshot`] per shard. New survey fingerprints arrive as a log of
//! [`RadioMapRecord`]s; [`LiveVenue::ingest`] routes each record to its
//! shard (same survey path → same shard; new paths → nearest shard
//! centroid; unlocatable paths → shard 0), computes the **dirty-shard set**,
//! and recomputes only those shards — clean shards are untouched, bit for
//! bit.
//!
//! # Determinism contract
//!
//! Every shard's snapshot is a pure function of `(shard sub-map, shard
//! seed, pipeline config)`; the shard seeds are fixed when the venue is
//! built ([`rm_runtime::derive_seed`] per shard). Therefore:
//!
//! * a fixed ingest log yields a bit-identical venue state at any
//!   `RM_THREADS` (the dirty-shard fan-out is an ordered `par_map`, and
//!   each shard computation is itself thread-count independent), and
//! * incremental ingest ≡ full recompute: recomputing a dirty shard from
//!   its updated sub-map produces exactly what a from-scratch rebuild of
//!   the whole venue (with the same partition) would produce for that
//!   shard ([`LiveVenue::recompute_all`] exists to assert this).

use rm_geometry::MultiPolygon;
use rm_radiomap::{RadioMap, RadioMapRecord, VenueShards};

use crate::pipeline::{ImputationPipeline, PipelineConfig, ShardedVenueSnapshot, VenueSnapshot};

/// A sharded venue kept live: ingest survey fingerprints, re-impute dirty
/// shards, republish per shard.
pub struct LiveVenue {
    pipeline: ImputationPipeline,
    venue: String,
    topology: MultiPolygon,
    map: RadioMap,
    shards: VenueShards,
    /// Per-shard seed, fixed at build so incremental recomputes replay the
    /// exact stream a full rebuild would use.
    seeds: Vec<u64>,
    snapshots: Vec<VenueSnapshot>,
    /// Venue update counter: bumped once per ingest that dirties anything.
    generation: u64,
    /// Per-shard generation: the venue generation that last recomputed it.
    shard_generations: Vec<u64>,
}

impl LiveVenue {
    /// Builds the venue: partitions `map` at the pipeline's effective shard
    /// count ([`PipelineConfig::shards`], else `RM_SHARDS`) and computes
    /// every shard's snapshot. Generation starts at 1 for all shards.
    pub fn build(
        venue: impl Into<String>,
        map: RadioMap,
        topology: MultiPolygon,
        config: PipelineConfig,
    ) -> Self {
        let venue = venue.into();
        let pipeline = ImputationPipeline::new(config);
        let shards = pipeline.shard(&map);
        let n = shards.num_shards();
        let seeds: Vec<u64> = (0..n)
            .map(|s| {
                if n <= 1 {
                    pipeline.config.seed
                } else {
                    rm_runtime::derive_seed(pipeline.config.seed, s as u64)
                }
            })
            .collect();
        let shard_ids: Vec<usize> = (0..n).collect();
        let snapshots = rm_runtime::par_map(pipeline.config.threads, &shard_ids, |_, &s| {
            pipeline.compute_shard(&venue, &shards.submap(&map, s), &topology, seeds[s])
        });
        Self {
            pipeline,
            venue,
            topology,
            map,
            shards,
            seeds,
            snapshots,
            generation: 1,
            shard_generations: vec![1; n],
        }
    }

    /// Ingests a log of new survey fingerprints: routes each record to its
    /// shard, recomputes exactly the dirty shards (fanned over the
    /// deterministic pool), and bumps the venue generation once. Returns the
    /// sorted dirty-shard set. An empty log is a no-op returning `[]`.
    pub fn ingest(&mut self, log: &[RadioMapRecord]) -> Vec<usize> {
        let dirty = self.route_and_append(log);
        if dirty.is_empty() {
            return dirty;
        }
        let fresh = rm_runtime::par_map(self.pipeline.config.threads, &dirty, |_, &shard| {
            self.pipeline.compute_shard(
                &self.venue,
                &self.shards.submap(&self.map, shard),
                &self.topology,
                self.seeds[shard],
            )
        });
        self.generation += 1;
        for (&shard, snapshot) in dirty.iter().zip(fresh) {
            self.snapshots[shard] = snapshot;
            self.shard_generations[shard] = self.generation;
        }
        dirty
    }

    /// [`LiveVenue::ingest`] with warm-started re-imputation: dirty shards
    /// resume from their previous tensor snapshots through
    /// [`Imputer::impute_warm`](rm_imputers::Imputer::impute_warm) with
    /// `fine_tune_epochs` of additional mini-batch training, instead of
    /// training from scratch. Cheaper than [`LiveVenue::ingest`] for the
    /// neural imputers but *not* equivalent to a full recompute (fine-tuning
    /// is a different training trajectory); imputers without warm-start
    /// support fall back to the cold path.
    pub fn ingest_warm(&mut self, log: &[RadioMapRecord], fine_tune_epochs: usize) -> Vec<usize> {
        let dirty = self.route_and_append(log);
        if dirty.is_empty() {
            return dirty;
        }
        let previous: Vec<&VenueSnapshot> = dirty.iter().map(|&s| &self.snapshots[s]).collect();
        let fresh = rm_runtime::par_map(
            self.pipeline.config.threads,
            &dirty,
            |slot, &shard| -> VenueSnapshot {
                let part = self.shards.submap(&self.map, shard);
                let seed = self.seeds[shard];
                let mask = self
                    .pipeline
                    .config
                    .differentiator
                    .build(&self.topology, self.pipeline.config.eta, seed)
                    .differentiate(&part);
                let imputer = self
                    .pipeline
                    .config
                    .imputer
                    .build_with(&self.pipeline.build_options(seed));
                let (imputed, tensors) =
                    imputer.impute_warm(&part, &mask, &previous[slot].tensors, fine_tune_epochs);
                VenueSnapshot {
                    venue: self.venue.clone(),
                    map: imputed.to_dense(part.num_aps()),
                    mask,
                    estimator: self.pipeline.config.estimator,
                    knn_k: self.pipeline.config.knn_k,
                    seed,
                    precision: self.pipeline.config.precision,
                    snapshot_dtype: self.pipeline.config.snapshot_dtype,
                    tensors,
                }
            },
        );
        self.generation += 1;
        for (&shard, snapshot) in dirty.iter().zip(fresh) {
            self.snapshots[shard] = snapshot;
            self.shard_generations[shard] = self.generation;
        }
        dirty
    }

    /// Routes every log record to a shard, appends it to the map and the
    /// partition, and returns the sorted dirty-shard set.
    fn route_and_append(&mut self, log: &[RadioMapRecord]) -> Vec<usize> {
        let mut dirty: Vec<usize> = Vec::new();
        for record in log {
            let shard = match self.shards.shard_of_path(record.path_id) {
                Some(shard) => shard,
                None => {
                    let shard = match record.rp {
                        Some(rp) => self.shards.nearest_shard(rp),
                        // A new path with no location yet cannot be placed
                        // spatially; it joins shard 0 like the sharder's own
                        // unlocated-path rule.
                        None => 0,
                    };
                    self.shards.register_path(record.path_id, shard);
                    shard
                }
            };
            let index = self.map.len();
            self.map.push(record.clone());
            self.shards.push_record(index, shard);
            if let Err(i) = dirty.binary_search(&shard) {
                dirty.insert(i, shard);
            }
        }
        dirty
    }

    /// Recomputes **every** shard from the current map with the build-time
    /// seeds, without mutating the venue — the full-recompute reference the
    /// incremental path is tested against (incremental ≡ full on dirty
    /// shards; clean shards are bitwise untouched by construction).
    pub fn recompute_all(&self) -> Vec<VenueSnapshot> {
        let shard_ids: Vec<usize> = (0..self.shards.num_shards()).collect();
        rm_runtime::par_map(self.pipeline.config.threads, &shard_ids, |_, &s| {
            self.pipeline.compute_shard(
                &self.venue,
                &self.shards.submap(&self.map, s),
                &self.topology,
                self.seeds[s],
            )
        })
    }

    /// The venue identifier.
    pub fn venue(&self) -> &str {
        &self.venue
    }

    /// The current survey map (original records plus every ingested log).
    pub fn map(&self) -> &RadioMap {
        &self.map
    }

    /// The shard partition (fixed centroids; membership grows with ingest).
    pub fn shards(&self) -> &VenueShards {
        &self.shards
    }

    /// The per-shard seeds fixed at build.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// The current per-shard snapshots, in shard-id order.
    pub fn snapshots(&self) -> &[VenueSnapshot] {
        &self.snapshots
    }

    /// The venue update generation (1 after build, +1 per dirtying ingest).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Per-shard generations: the venue generation that last recomputed each
    /// shard. Clean shards keep their old generation across ingests.
    pub fn shard_generations(&self) -> &[u64] {
        &self.shard_generations
    }

    /// Packages the current state as a [`ShardedVenueSnapshot`] for
    /// publishing.
    pub fn sharded_snapshot(&self) -> ShardedVenueSnapshot {
        ShardedVenueSnapshot {
            venue: self.venue.clone(),
            snapshots: self.snapshots.clone(),
            shards: self.shards.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{DifferentiatorKind, ImputerKind};
    use rm_geometry::Point;
    use rm_radiomap::Fingerprint;

    fn record(x: f64, y: f64, path_id: usize, time: f64) -> RadioMapRecord {
        RadioMapRecord::new(
            Fingerprint::new(vec![Some(-40.0 - x), Some(-40.0 - y), None]),
            Some(Point::new(x, y)),
            time,
            path_id,
        )
    }

    fn venue_map() -> RadioMap {
        let mut records = Vec::new();
        for p in 0..4 {
            let base_x = if p < 2 { 0.0 } else { 60.0 };
            for s in 0..5 {
                records.push(record(base_x + s as f64, p as f64, p, s as f64));
            }
        }
        RadioMap::new(records, 3)
    }

    fn config() -> PipelineConfig {
        PipelineConfig {
            imputer: ImputerKind::LinearInterpolation,
            differentiator: DifferentiatorKind::MarOnly,
            shards: Some(2),
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn build_computes_one_snapshot_per_shard() {
        let live = LiveVenue::build("v", venue_map(), MultiPolygon::empty(), config());
        assert_eq!(live.shards().num_shards(), 2);
        assert_eq!(live.snapshots().len(), 2);
        assert_eq!(live.generation(), 1);
        assert_eq!(live.shard_generations(), &[1, 1]);
        assert!(live.snapshots().iter().all(|s| !s.map.is_empty()));
    }

    #[test]
    fn ingest_dirties_only_the_touched_shard() {
        let mut live = LiveVenue::build("v", venue_map(), MultiPolygon::empty(), config());
        let clean_before = live.snapshots()[1].clone();
        // Path 0 lives in the left clump → shard 0.
        let dirty = live.ingest(&[record(2.0, 0.5, 0, 9.0)]);
        assert_eq!(dirty, vec![0]);
        assert_eq!(live.generation(), 2);
        assert_eq!(live.shard_generations(), &[2, 1]);
        // The clean shard is bitwise untouched.
        let clean_after = &live.snapshots()[1];
        assert_eq!(clean_after.map, clean_before.map);
        assert_eq!(clean_after.seed, clean_before.seed);
    }

    #[test]
    fn new_paths_route_by_nearest_centroid_and_unlocated_to_shard_zero() {
        let mut live = LiveVenue::build("v", venue_map(), MultiPolygon::empty(), config());
        // A brand-new path near the right clump routes to shard 1.
        let dirty = live.ingest(&[record(61.0, 2.0, 77, 0.0)]);
        assert_eq!(dirty, vec![1]);
        assert_eq!(live.shards().shard_of_path(77), Some(1));
        // Later records on the same path follow it without a location.
        let mut no_rp = record(0.0, 0.0, 77, 1.0);
        no_rp.rp = None;
        assert_eq!(live.ingest(&[no_rp]), vec![1]);
        // An unlocatable new path lands in shard 0.
        let mut orphan = record(0.0, 0.0, 78, 0.0);
        orphan.rp = None;
        assert_eq!(live.ingest(&[orphan]), vec![0]);
    }

    #[test]
    fn empty_log_is_a_noop() {
        let mut live = LiveVenue::build("v", venue_map(), MultiPolygon::empty(), config());
        assert!(live.ingest(&[]).is_empty());
        assert_eq!(live.generation(), 1);
    }

    #[test]
    fn incremental_equals_full_recompute() {
        let mut live = LiveVenue::build("v", venue_map(), MultiPolygon::empty(), config());
        live.ingest(&[record(1.0, 1.5, 1, 9.0), record(62.0, 3.5, 3, 9.0)]);
        let full = live.recompute_all();
        for (incremental, reference) in live.snapshots().iter().zip(&full) {
            assert_eq!(incremental.map, reference.map);
            assert_eq!(incremental.mask, reference.mask);
            assert_eq!(incremental.seed, reference.seed);
        }
    }
}
