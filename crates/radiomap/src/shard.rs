//! Deterministic spatial sharding of a venue's radio map.
//!
//! A shard is a spatially-coherent subset of survey **paths** (never a split
//! path: sequence imputers consume whole paths). Sharding is a pure function
//! of `(map, num_shards, seed)`:
//!
//! 1. every path gets a centroid — the mean of its (interpolated) reference
//!    points,
//! 2. the path centroids are clustered with seeded k-means
//!    ([`rm_clustering::kmeans`], deterministic given its RNG),
//! 3. cluster labels are **relabelled** into stable shard ids by sorting the
//!    cluster centroids (x, then y, then lowest member path), so shard `0`
//!    is always the spatially-least cluster no matter what internal labels
//!    k-means produced.
//!
//! Paths with no observed reference point anywhere cannot be placed
//! spatially and are assigned to shard `0` (documented, deterministic).
//! The resulting [`VenueShards`] is a *partition*: every record belongs to
//! exactly one shard, and per-shard member lists are sorted ascending so
//! local record order preserves the global collection order.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rm_clustering::{kmeans, KMeansConfig};
use rm_geometry::Point;

use crate::mask::MaskMatrix;
use crate::radiomap::{DenseRadioMap, RadioMap};

/// A deterministic partition of a radio map's records into spatial shards.
#[derive(Debug, Clone, PartialEq)]
pub struct VenueShards {
    /// Shard id per record, parallel to `map.records()`.
    assignments: Vec<usize>,
    /// Record indices per shard, each sorted ascending.
    members: Vec<Vec<usize>>,
    /// Spatial centroid per shard (mean of the member paths' centroids).
    centroids: Vec<Point>,
    /// `(path_id, shard)` pairs sorted by path id, for ingest routing.
    path_shards: Vec<(usize, usize)>,
}

impl VenueShards {
    /// Partitions `map` into at most `num_shards` spatial shards.
    ///
    /// The result is a pure function of `(map, num_shards, seed)` — no
    /// thread-count or wall-clock dependence — and always a permutation:
    /// every record lands in exactly one shard. Fewer shards than requested
    /// are produced when the map has fewer located paths than `num_shards`.
    /// `num_shards <= 1` (or an empty map) yields the single trivial shard.
    pub fn compute(map: &RadioMap, num_shards: usize, seed: u64) -> Self {
        let paths = map.path_record_indices();
        if num_shards <= 1 || map.is_empty() || paths.len() <= 1 {
            return Self::single(map);
        }

        let interpolated = map.interpolate_rps();
        // Centroid per path: mean of its interpolated RPs, if any.
        let path_ids: Vec<usize> = paths.iter().map(|p| map.record(p[0]).path_id).collect();
        let mut located: Vec<usize> = Vec::new(); // indices into `paths`
        let mut samples: Vec<Vec<f64>> = Vec::new();
        for (pi, path) in paths.iter().enumerate() {
            let points: Vec<Point> = path.iter().filter_map(|&i| interpolated[i]).collect();
            if points.is_empty() {
                continue;
            }
            let n = points.len() as f64;
            let (sx, sy) = points
                .iter()
                .fold((0.0, 0.0), |(ax, ay), p| (ax + p.x, ay + p.y));
            located.push(pi);
            samples.push(vec![sx / n, sy / n]);
        }
        if located.len() <= 1 {
            return Self::single(map);
        }

        let k = num_shards.min(located.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let clustering = kmeans(&samples, &KMeansConfig::new(k), &mut rng);

        // Relabel cluster ids into stable shard ids by sorted centroid order
        // (x, then y, then the lowest member path as a total tie-break).
        let mut order: Vec<usize> = (0..clustering.num_clusters()).collect();
        let key = |c: usize| -> (f64, f64, usize) {
            let centroid = &clustering.centroids()[c];
            let first_member = clustering
                .assignments()
                .iter()
                .position(|&a| a == c)
                .unwrap_or(usize::MAX);
            (centroid[0], centroid[1], first_member)
        };
        order.sort_by(|&a, &b| {
            let (ax, ay, am) = key(a);
            let (bx, by, bm) = key(b);
            ax.total_cmp(&bx).then(ay.total_cmp(&by)).then(am.cmp(&bm))
        });
        // relabel[old cluster id] = stable shard id.
        let mut relabel = vec![0usize; clustering.num_clusters()];
        for (shard, &cluster) in order.iter().enumerate() {
            relabel[cluster] = shard;
        }

        // Shard per path (in `paths` order); unlocated paths go to shard 0.
        let mut shard_of_path = vec![0usize; paths.len()];
        for (si, &pi) in located.iter().enumerate() {
            shard_of_path[pi] = relabel[clustering.assignments()[si]];
        }

        let num = clustering.num_clusters();
        let mut assignments = vec![0usize; map.len()];
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); num];
        for (pi, path) in paths.iter().enumerate() {
            for &record in path {
                assignments[record] = shard_of_path[pi];
            }
        }
        for (record, &shard) in assignments.iter().enumerate() {
            members[shard].push(record);
        }

        let mut centroids = vec![Point::origin(); num];
        for (shard, &cluster) in order.iter().enumerate() {
            let c = &clustering.centroids()[cluster];
            centroids[shard] = Point::new(c[0], c[1]);
        }

        let mut path_shards: Vec<(usize, usize)> = path_ids
            .iter()
            .zip(&shard_of_path)
            .map(|(&id, &shard)| (id, shard))
            .collect();
        path_shards.sort_unstable();

        Self {
            assignments,
            members,
            centroids,
            path_shards,
        }
    }

    /// The trivial single-shard partition: everything in shard 0.
    pub fn single(map: &RadioMap) -> Self {
        let interpolated = map.interpolate_rps();
        let points: Vec<Point> = interpolated.iter().flatten().copied().collect();
        let centroid = if points.is_empty() {
            Point::origin()
        } else {
            let n = points.len() as f64;
            let (sx, sy) = points
                .iter()
                .fold((0.0, 0.0), |(ax, ay), p| (ax + p.x, ay + p.y));
            Point::new(sx / n, sy / n)
        };
        let mut path_shards: Vec<(usize, usize)> = map
            .path_record_indices()
            .iter()
            .map(|p| (map.record(p[0]).path_id, 0))
            .collect();
        path_shards.sort_unstable();
        Self {
            assignments: vec![0; map.len()],
            members: vec![(0..map.len()).collect()],
            centroids: vec![centroid],
            path_shards,
        }
    }

    /// Reassembles a partition from its serialized parts (the sharded
    /// serving artifact stores exactly these): shard id per record, one
    /// centroid per shard, and the `(path_id, shard)` routing pairs. Member
    /// lists are re-derived from `assignments`. Returns `None` — never
    /// panics — when the parts are inconsistent: no shards, an assignment or
    /// routing pair referencing a shard that doesn't exist.
    pub fn from_parts(
        assignments: Vec<usize>,
        centroids: Vec<Point>,
        mut path_shards: Vec<(usize, usize)>,
    ) -> Option<Self> {
        let num = centroids.len();
        if num == 0 {
            return None;
        }
        if assignments.iter().any(|&s| s >= num) || path_shards.iter().any(|&(_, s)| s >= num) {
            return None;
        }
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); num];
        for (record, &shard) in assignments.iter().enumerate() {
            members[shard].push(record);
        }
        path_shards.sort_unstable();
        Some(Self {
            assignments,
            members,
            centroids,
            path_shards,
        })
    }

    /// The `(path_id, shard)` routing pairs, sorted by path id (the
    /// serialized form consumed by [`VenueShards::from_parts`]).
    pub fn path_shards(&self) -> &[(usize, usize)] {
        &self.path_shards
    }

    /// Number of shards (≥ 1 for any non-degenerate map).
    pub fn num_shards(&self) -> usize {
        self.members.len()
    }

    /// Shard id per record, parallel to the map's records.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Record indices per shard, each sorted ascending.
    pub fn members(&self) -> &[Vec<usize>] {
        &self.members
    }

    /// The record indices of `shard`, sorted ascending.
    pub fn members_of(&self, shard: usize) -> &[usize] {
        &self.members[shard]
    }

    /// The spatial centroid of `shard`.
    pub fn centroids(&self) -> &[Point] {
        &self.centroids
    }

    /// The shard a record belongs to.
    pub fn shard_of_record(&self, record: usize) -> usize {
        self.assignments[record]
    }

    /// The shard that owns survey path `path_id`, if that path existed when
    /// the partition was computed.
    pub fn shard_of_path(&self, path_id: usize) -> Option<usize> {
        self.path_shards
            .binary_search_by_key(&path_id, |&(id, _)| id)
            .ok()
            .map(|i| self.path_shards[i].1)
    }

    /// The shard whose centroid is nearest to `point` (lowest id on ties) —
    /// the ingest route for records on previously-unseen paths.
    pub fn nearest_shard(&self, point: Point) -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (shard, c) in self.centroids.iter().enumerate() {
            let d = (c.x - point.x).powi(2) + (c.y - point.y).powi(2);
            if d < best_d {
                best_d = d;
                best = shard;
            }
        }
        best
    }

    /// Extracts one shard's sub-map; records keep their relative
    /// (collection) order, so paths remain contiguous sequences.
    ///
    /// # Panics
    /// Panics if `map` is not the map this partition was computed over
    /// (record-count mismatch).
    pub fn submap(&self, map: &RadioMap, shard: usize) -> RadioMap {
        assert_eq!(
            map.len(),
            self.assignments.len(),
            "shard partition does not match this map"
        );
        let records = self.members[shard]
            .iter()
            .map(|&i| map.record(i).clone())
            .collect();
        RadioMap::new(records, map.num_aps())
    }

    /// Splits `map` into one sub-map per shard (see [`VenueShards::submap`]).
    pub fn split(&self, map: &RadioMap) -> Vec<RadioMap> {
        (0..self.num_shards())
            .map(|shard| self.submap(map, shard))
            .collect()
    }

    /// Appends a freshly-ingested record to `shard`. New records are always
    /// appended at the end of the map, so member lists stay sorted.
    ///
    /// # Panics
    /// Panics unless `record_index` is exactly the next record index (the
    /// ingest path appends to the map and the partition in lockstep).
    pub fn push_record(&mut self, record_index: usize, shard: usize) {
        assert_eq!(
            record_index,
            self.assignments.len(),
            "ingested records must be appended in order"
        );
        assert!(shard < self.num_shards(), "shard {shard} out of range");
        self.assignments.push(shard);
        self.members[shard].push(record_index);
    }

    /// Remembers that survey path `path_id` belongs to `shard`, so later
    /// records on the same path route to the same shard. A no-op when the
    /// path is already registered (the original assignment wins).
    pub fn register_path(&mut self, path_id: usize, shard: usize) {
        if let Err(i) = self
            .path_shards
            .binary_search_by_key(&path_id, |&(id, _)| id)
        {
            self.path_shards.insert(i, (path_id, shard));
        }
    }

    /// Reassembles per-shard imputed outputs into one venue-wide dense map
    /// in global record order. Each `(fingerprints, locations)` pair must be
    /// parallel to [`VenueShards::members_of`] for its shard.
    ///
    /// # Panics
    /// Panics on any per-shard length mismatch.
    pub fn merge_dense(
        &self,
        per_shard: &[(Vec<Vec<f64>>, Vec<Point>)],
        num_aps: usize,
    ) -> DenseRadioMap {
        assert_eq!(per_shard.len(), self.num_shards(), "shard count mismatch");
        let total = self.assignments.len();
        let mut fingerprints: Vec<Vec<f64>> = vec![Vec::new(); total];
        let mut locations = vec![Point::origin(); total];
        for (shard, (fps, locs)) in per_shard.iter().enumerate() {
            let members = &self.members[shard];
            assert_eq!(fps.len(), members.len(), "shard {shard} row mismatch");
            assert_eq!(locs.len(), members.len(), "shard {shard} location mismatch");
            for ((&record, fp), &loc) in members.iter().zip(fps).zip(locs) {
                fingerprints[record] = fp.clone();
                locations[record] = loc;
            }
        }
        DenseRadioMap::new(fingerprints, locations, num_aps)
    }

    /// Reassembles per-shard mask matrices into one venue-wide mask in
    /// global record order.
    ///
    /// # Panics
    /// Panics on any per-shard shape mismatch.
    pub fn merge_masks(&self, per_shard: &[MaskMatrix], num_aps: usize) -> MaskMatrix {
        assert_eq!(per_shard.len(), self.num_shards(), "shard count mismatch");
        let mut mask = MaskMatrix::all_observed(self.assignments.len(), num_aps);
        for (shard, shard_mask) in per_shard.iter().enumerate() {
            let members = &self.members[shard];
            assert_eq!(
                shard_mask.rows(),
                members.len(),
                "shard {shard} mask row mismatch"
            );
            assert_eq!(
                shard_mask.cols(),
                num_aps,
                "shard {shard} mask col mismatch"
            );
            for (local, &record) in members.iter().enumerate() {
                for ap in 0..num_aps {
                    mask.set(record, ap, shard_mask.get(local, ap));
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Fingerprint;
    use crate::radiomap::RadioMapRecord;

    fn record(x: f64, y: f64, path_id: usize, time: f64) -> RadioMapRecord {
        RadioMapRecord::new(
            Fingerprint::new(vec![Some(-60.0), Some(-70.0)]),
            Some(Point::new(x, y)),
            time,
            path_id,
        )
    }

    /// Two spatial clumps of paths, far apart.
    fn two_clump_map() -> RadioMap {
        let mut records = Vec::new();
        for p in 0..3 {
            for s in 0..4 {
                records.push(record(s as f64, p as f64, p, s as f64));
            }
        }
        for p in 3..6 {
            for s in 0..4 {
                records.push(record(100.0 + s as f64, p as f64, p, s as f64));
            }
        }
        RadioMap::new(records, 2)
    }

    #[test]
    fn sharding_is_a_partition_with_sorted_members() {
        let map = two_clump_map();
        let shards = VenueShards::compute(&map, 2, 7);
        assert_eq!(shards.num_shards(), 2);
        let mut seen = vec![false; map.len()];
        for shard in 0..shards.num_shards() {
            let members = shards.members_of(shard);
            assert!(members.windows(2).all(|w| w[0] < w[1]), "unsorted members");
            for &i in members {
                assert!(!seen[i], "record {i} in two shards");
                seen[i] = true;
                assert_eq!(shards.shard_of_record(i), shard);
            }
        }
        assert!(seen.iter().all(|&s| s), "record missing from every shard");
    }

    #[test]
    fn clumps_land_in_different_shards_with_stable_ids() {
        let map = two_clump_map();
        let shards = VenueShards::compute(&map, 2, 7);
        // Stable relabelling: shard 0 is the spatially-least (x≈1.5) clump.
        assert_eq!(shards.shard_of_record(0), 0);
        assert_eq!(shards.shard_of_record(map.len() - 1), 1);
        assert!(shards.centroids()[0].x < shards.centroids()[1].x);
        // Whole paths stay together.
        for shard in 0..2 {
            for &i in shards.members_of(shard) {
                let path = map.record(i).path_id;
                assert_eq!(shards.shard_of_path(path), Some(shard));
            }
        }
    }

    #[test]
    fn sharding_is_deterministic_and_seed_sensitive_only_through_kmeans() {
        let map = two_clump_map();
        let a = VenueShards::compute(&map, 2, 7);
        let b = VenueShards::compute(&map, 2, 7);
        assert_eq!(a, b);
        // A different seed may pick different k-means starts, but the
        // relabelled partition of two well-separated clumps is identical.
        let c = VenueShards::compute(&map, 2, 1234);
        assert_eq!(a.assignments(), c.assignments());
    }

    #[test]
    fn single_shard_and_degenerate_requests_collapse_to_one() {
        let map = two_clump_map();
        for shards in [
            VenueShards::compute(&map, 1, 7),
            VenueShards::compute(&map, 0, 7),
            VenueShards::single(&map),
        ] {
            assert_eq!(shards.num_shards(), 1);
            assert_eq!(shards.members_of(0).len(), map.len());
        }
    }

    #[test]
    fn unlocated_paths_fall_back_to_shard_zero() {
        let mut map = two_clump_map();
        map.push(RadioMapRecord::new(Fingerprint::empty(2), None, 0.0, 9));
        map.push(RadioMapRecord::new(Fingerprint::empty(2), None, 1.0, 9));
        let shards = VenueShards::compute(&map, 2, 7);
        assert_eq!(shards.shard_of_path(9), Some(0));
        assert_eq!(shards.shard_of_record(map.len() - 1), 0);
    }

    #[test]
    fn more_shards_than_paths_caps_at_path_count() {
        let map = two_clump_map(); // 6 located paths
        let shards = VenueShards::compute(&map, 64, 7);
        assert!(shards.num_shards() <= 6);
        assert!(shards.num_shards() >= 2);
    }

    #[test]
    fn from_parts_round_trips_and_rejects_inconsistency() {
        let map = two_clump_map();
        let shards = VenueShards::compute(&map, 2, 7);
        let rebuilt = VenueShards::from_parts(
            shards.assignments().to_vec(),
            shards.centroids().to_vec(),
            shards.path_shards().to_vec(),
        )
        .expect("consistent parts");
        assert_eq!(rebuilt, shards);
        assert!(VenueShards::from_parts(vec![0], Vec::new(), Vec::new()).is_none());
        assert!(
            VenueShards::from_parts(vec![5], vec![Point::origin()], Vec::new()).is_none(),
            "assignment to a nonexistent shard must be rejected"
        );
        assert!(
            VenueShards::from_parts(vec![0], vec![Point::origin()], vec![(0, 9)]).is_none(),
            "routing to a nonexistent shard must be rejected"
        );
    }

    #[test]
    fn nearest_shard_routes_by_centroid() {
        let map = two_clump_map();
        let shards = VenueShards::compute(&map, 2, 7);
        assert_eq!(shards.nearest_shard(Point::new(0.0, 0.0)), 0);
        assert_eq!(shards.nearest_shard(Point::new(100.0, 2.0)), 1);
    }

    #[test]
    fn split_preserves_order_and_merge_restores_it() {
        let map = two_clump_map();
        let shards = VenueShards::compute(&map, 2, 7);
        let parts = shards.split(&map);
        assert_eq!(parts.len(), 2);
        assert_eq!(
            parts.iter().map(RadioMap::len).sum::<usize>(),
            map.len(),
            "split must not lose records"
        );
        for (shard, part) in parts.iter().enumerate() {
            for (local, &global) in shards.members_of(shard).iter().enumerate() {
                assert_eq!(part.record(local), map.record(global));
            }
        }
        // Merge a synthetic per-shard dense output back into global order.
        let per_shard: Vec<(Vec<Vec<f64>>, Vec<Point>)> = (0..2)
            .map(|shard| {
                let members = shards.members_of(shard);
                (
                    members.iter().map(|&i| vec![i as f64, 0.0]).collect(),
                    members.iter().map(|&i| Point::new(i as f64, 0.0)).collect(),
                )
            })
            .collect();
        let dense = shards.merge_dense(&per_shard, 2);
        for i in 0..map.len() {
            assert_eq!(dense.fingerprints()[i][0], i as f64);
            assert_eq!(dense.locations()[i].x, i as f64);
        }
        // Mask round-trip through split/merge.
        let masks: Vec<MaskMatrix> = (0..2)
            .map(|shard| {
                let mut m = MaskMatrix::all_observed(shards.members_of(shard).len(), 2);
                if shard == 1 {
                    m.set(0, 1, crate::mask::EntryKind::Mar);
                }
                m
            })
            .collect();
        let merged = shards.merge_masks(&masks, 2);
        let first_of_shard1 = shards.members_of(1)[0];
        assert_eq!(merged.get(first_of_shard1, 1), crate::mask::EntryKind::Mar);
        assert_eq!(merged.get(0, 0), crate::mask::EntryKind::Observed);
    }
}
