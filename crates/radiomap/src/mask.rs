//! The radio-map mask matrix `M ∈ {-1, 0, 1}^{N×D}`.

/// Classification of a single RSSI entry in the radio map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// The RSSI was observed (mask value `1`).
    Observed,
    /// Missing At Random — the AP was observable but the reading was lost to a
    /// random event (mask value `0`).
    Mar,
    /// Missing Not At Random — the AP is unobservable at this location
    /// (mask value `-1`).
    Mnar,
}

impl EntryKind {
    /// The numeric encoding used by the paper: 1, 0, −1.
    pub fn as_i8(self) -> i8 {
        match self {
            EntryKind::Observed => 1,
            EntryKind::Mar => 0,
            EntryKind::Mnar => -1,
        }
    }

    /// Parses the numeric encoding.
    ///
    /// # Panics
    /// Panics on values outside `{-1, 0, 1}`.
    pub fn from_i8(v: i8) -> Self {
        match v {
            1 => EntryKind::Observed,
            0 => EntryKind::Mar,
            -1 => EntryKind::Mnar,
            other => panic!("invalid mask value {other}"),
        }
    }
}

/// The `N × D` mask matrix returned by the missing-RSSI differentiator
/// (Algorithm 2): `Observed` for observed entries, `Mar` / `Mnar` for the two
/// kinds of missing entries.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskMatrix {
    rows: usize,
    cols: usize,
    data: Vec<EntryKind>,
}

impl MaskMatrix {
    /// Creates a mask with every entry marked `Observed` (matching the
    /// initialisation `M ← 1^{N×D}` in Algorithm 2).
    pub fn all_observed(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![EntryKind::Observed; rows * cols],
        }
    }

    /// Number of radio-map records (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of access points (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The kind of entry `(record, ap)`.
    pub fn get(&self, record: usize, ap: usize) -> EntryKind {
        debug_assert!(record < self.rows && ap < self.cols);
        self.data[record * self.cols + ap]
    }

    /// Sets the kind of entry `(record, ap)`.
    pub fn set(&mut self, record: usize, ap: usize, kind: EntryKind) {
        debug_assert!(record < self.rows && ap < self.cols);
        self.data[record * self.cols + ap] = kind;
    }

    /// Counts entries of each kind: `(observed, mar, mnar)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut observed = 0;
        let mut mar = 0;
        let mut mnar = 0;
        for &k in &self.data {
            match k {
                EntryKind::Observed => observed += 1,
                EntryKind::Mar => mar += 1,
                EntryKind::Mnar => mnar += 1,
            }
        }
        (observed, mar, mnar)
    }

    /// Fraction of missing entries (MAR + MNAR) classified as MAR; `None` when
    /// nothing is missing.
    pub fn mar_fraction(&self) -> Option<f64> {
        let (_, mar, mnar) = self.counts();
        let missing = mar + mnar;
        if missing == 0 {
            None
        } else {
            Some(mar as f64 / missing as f64)
        }
    }

    /// The amended mask `M'` used by the data imputer (Section IV): MNARs are
    /// filled with −100 dBm and re-marked as observed, so the result contains
    /// only `Observed` and `Mar`.
    pub fn amend_mnars_as_observed(&self) -> MaskMatrix {
        let data = self
            .data
            .iter()
            .map(|&k| match k {
                EntryKind::Mnar => EntryKind::Observed,
                other => other,
            })
            .collect();
        MaskMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// A row of the mask as the `{0, 1}` vector `m_i` fed to the imputer:
    /// 1 for `Observed`, 0 for `Mar` (and 0 for `Mnar`, which the imputer
    /// never sees because MNARs are amended first).
    pub fn observation_vector(&self, record: usize) -> Vec<f64> {
        (0..self.cols)
            .map(|ap| match self.get(record, ap) {
                EntryKind::Observed => 1.0,
                _ => 0.0,
            })
            .collect()
    }

    /// Iterates over `(record, ap, kind)` for all entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, EntryKind)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &k)| (i / cols, i % cols, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_kind_roundtrip() {
        for kind in [EntryKind::Observed, EntryKind::Mar, EntryKind::Mnar] {
            assert_eq!(EntryKind::from_i8(kind.as_i8()), kind);
        }
    }

    #[test]
    #[should_panic(expected = "invalid mask value")]
    fn entry_kind_rejects_invalid() {
        let _ = EntryKind::from_i8(5);
    }

    #[test]
    fn counts_and_fraction() {
        let mut m = MaskMatrix::all_observed(2, 3);
        assert_eq!(m.counts(), (6, 0, 0));
        assert_eq!(m.mar_fraction(), None);
        m.set(0, 1, EntryKind::Mar);
        m.set(1, 2, EntryKind::Mnar);
        m.set(1, 0, EntryKind::Mnar);
        assert_eq!(m.counts(), (3, 1, 2));
        assert!((m.mar_fraction().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn amend_mnars_flips_only_mnars() {
        let mut m = MaskMatrix::all_observed(1, 3);
        m.set(0, 0, EntryKind::Mar);
        m.set(0, 1, EntryKind::Mnar);
        let amended = m.amend_mnars_as_observed();
        assert_eq!(amended.get(0, 0), EntryKind::Mar);
        assert_eq!(amended.get(0, 1), EntryKind::Observed);
        assert_eq!(amended.get(0, 2), EntryKind::Observed);
        // Original is untouched.
        assert_eq!(m.get(0, 1), EntryKind::Mnar);
    }

    #[test]
    fn observation_vector_marks_only_observed() {
        let mut m = MaskMatrix::all_observed(1, 4);
        m.set(0, 1, EntryKind::Mar);
        m.set(0, 3, EntryKind::Mnar);
        assert_eq!(m.observation_vector(0), vec![1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn iter_covers_all_entries() {
        let m = MaskMatrix::all_observed(2, 2);
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[3], (1, 1, EntryKind::Observed));
    }
}
